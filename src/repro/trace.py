"""Run-trace observability: typed event tracing and per-phase profiling.

The paper's whole argument is about *where the communication goes*
(Tables 3-4, Figures 7-9), but :class:`~repro.runtime.stats.MessageStats`
only reports end-of-run aggregates.  This module records the timeline
behind those aggregates: per parallel step, which processes relaxed,
which directed edges carried solve / residual messages (and how many
bytes), where ghost-layer estimate updates and deadlock repairs
happened, and how much wall-clock each phase of a step cost
(``time.perf_counter`` spans).

Design constraints, in order:

1. **Zero behavior change.**  Tracing is pure observation — a traced run
   produces bit-identical convergence histories and byte-identical
   :class:`MessageStats` on both message planes (pinned by digest tests).
   Event hooks fire at exactly the sites that charge the stats, so trace
   aggregates reconcile *exactly* with the stats totals.
2. **Zero cost when off.**  Every hot-path hook is gated on
   ``tracer.enabled`` (a plain attribute read); the default
   :data:`NULL_TRACER` never allocates, and the flat-plane batched hooks
   fire once per epoch, not once per message.
3. **Cheap when on.**  Events are stored as tuples (batched hooks keep
   their numpy arrays) and only expanded to JSON at save time.

Sinks: :meth:`RunTracer.save_jsonl` writes one JSON object per event
(the format :mod:`repro.analysis.traceagg` and the ``repro trace`` CLI
summarize); :meth:`RunTracer.save_chrome` writes the Chrome
``trace_event`` JSON that ``chrome://tracing`` / Perfetto load, with
phases as complete ("X") spans and the per-step active-process count as
a counter track.  See DESIGN.md §5.9 for the event schema.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "RunTracer",
    "TRACE_SCHEMA",
    "Tracer",
    "tracer_from_config",
]

#: schema tag stamped into every trace file's meta event
TRACE_SCHEMA = "repro.trace/v1"

#: flat-plane slot kind -> message category (slot encoding 2*edge + kind)
_KIND_CATEGORY = ("solve", "residual")


class Tracer:
    """The tracing protocol every run-time hook calls.

    The base class *is* the disabled implementation: ``enabled`` is
    False and every hook is a no-op, so passing any :class:`Tracer` is
    always safe and the hot paths only ever pay one attribute check.
    Recording implementations (:class:`RunTracer`) set ``enabled`` and
    override the hooks they care about.

    Hook vocabulary (``*`` marks batched flat-plane variants that take
    numpy arrays and fire once per epoch):

    - lifecycle: :meth:`begin_run`, :meth:`end_run`, :meth:`step_begin`,
      :meth:`step_end`
    - profiling: :meth:`phase_begin` / :meth:`phase_end` (perf-counter
      spans)
    - solver events: :meth:`relax`, :meth:`ghost` / :meth:`ghosts`*,
      :meth:`repair` / :meth:`repairs`*, :meth:`retry` / :meth:`retries`*
    - message plane: :meth:`send` / :meth:`sends_flat`*, :meth:`recv` /
      :meth:`recv_msgs` / :meth:`recvs_flat`*
    - fault plane: :meth:`fault` / :meth:`faults_flat`* (every injected
      drop / duplicate / reorder / delay / ghost-stale / stall)
    """

    enabled = False
    __slots__ = ()

    # lifecycle ---------------------------------------------------------
    def begin_run(self, method: str, n_procs: int) -> None:
        """A run loop is starting (records the trace meta event)."""

    def end_run(self, stats, faults=None) -> None:
        """The run loop finished; ``stats`` is the run's MessageStats
        (recorded as the reconciliation footer).  ``faults`` is the
        injected-fault totals dict of the run's
        :class:`~repro.faults.FaultRuntime`, when one was active."""

    def step_begin(self, step: int) -> None:
        """Parallel step ``step`` (1-based) is opening."""

    def step_end(self, active: int) -> None:
        """The open step closed with ``active`` relaxing processes."""

    # profiling ---------------------------------------------------------
    def phase_begin(self, name: str) -> None:
        """A named phase of the open step started (perf-counter stamp)."""

    def phase_end(self, name: str) -> None:
        """The named phase ended."""

    # setup plane -------------------------------------------------------
    def setup_cache(self, key: str, hit: bool) -> None:
        """The persistent setup cache was consulted for ``key``
        (DESIGN.md §5.10): ``hit`` is whether the partition + block
        system were loaded from disk instead of being rebuilt."""

    # multigrid plane ---------------------------------------------------
    def mg_level(self, level: int, n: int, n_parts: int, msgs: int,
                 nbytes: int, recvs: int, relaxations: int,
                 nnz_dropped: int) -> None:
        """One multigrid level's accumulated smoothing totals
        (DESIGN.md §5.16): grid side ``n``, smoothing partition size
        ``n_parts``, messages / bytes / receives / relaxations summed
        over every visit to the level, and the coarse-operator entries
        dropped by sparsification.  Emitted once per level right before
        :meth:`end_run`; the per-level rows sum to the footer totals by
        equality (``repro trace`` verifies it)."""

    # solver events -----------------------------------------------------
    def relax(self, p: int) -> None:
        """Process ``p`` relaxed its subdomain this step."""

    def ghost(self, p: int, q: int) -> None:
        """``p`` updated its ghost layer / norm estimate of ``q``
        locally (DS line 15 — the zero-communication update)."""

    def ghosts(self, p: int, neighbors) -> None:
        """Batched :meth:`ghost`: ``p`` updated every listed neighbor."""

    def repair(self, src: int, dst: int) -> None:
        """``src`` sent ``dst`` a deadlock-repair residual message
        (DS lines 27-30)."""

    def repairs(self, srcs, dsts) -> None:
        """Batched :meth:`repair` (parallel arrays)."""

    def retry(self, src: int, dst: int) -> None:
        """``src`` re-sent its residual-norm repair to ``dst`` because
        the edge timed out (loss-hardening heartbeat, not a genuine
        Γ̃ > Γ repair)."""

    def retries(self, srcs, dsts) -> None:
        """Batched :meth:`retry` (parallel arrays)."""

    # fault plane -------------------------------------------------------
    def fault(self, kind: str, src: int, dst: int, category: str) -> None:
        """One fault was injected: ``kind`` is ``drop`` / ``duplicate``
        / ``reorder`` / ``delay`` / ``ghost_stale`` / ``stall`` (stalls
        carry the stalled rank as ``src`` and ``dst = -1``)."""

    def faults_flat(self, kind: str, srcs, dsts, category: str) -> None:
        """Batched :meth:`fault` (parallel arrays, one fault kind)."""

    # message plane -----------------------------------------------------
    def send(self, src: int, dst: int, category: str, nbytes: int) -> None:
        """One message was put (charged at the same site as the stats)."""

    def sends_flat(self, plane, sids, category: str) -> None:
        """A batched flat-plane put of the slot-ids ``sids``."""

    def recv(self, src: int, dst: int, category: str) -> None:
        """``dst`` read one message from ``src``."""

    def recv_msgs(self, dst: int, msgs) -> None:
        """``dst`` drained the object-plane messages ``msgs``."""

    def recvs_flat(self, plane, dst: int, sids) -> None:
        """``dst`` drained the flat-plane slot-ids ``sids``."""


class NullTracer(Tracer):
    """The zero-cost default: disabled, records nothing."""

    __slots__ = ()


#: the shared do-nothing tracer every run defaults to
NULL_TRACER = NullTracer()


def tracer_from_config() -> Tracer:
    """The default tracer per :mod:`repro.config`: a fresh recording
    :class:`RunTracer` when ``REPRO_TRACE`` is active, else
    :data:`NULL_TRACER`.  The CI zero-behavior-change leg runs the whole
    tier-1 suite with this forced on."""
    from repro import config

    return RunTracer() if config.trace_active() else NULL_TRACER


class RunTracer(Tracer):
    """In-memory event recorder with JSONL / Chrome ``trace_event`` sinks.

    Events are tuples ``(tag, step, ...)`` appended to one list; batched
    flat-plane hooks keep their numpy arrays and are expanded to
    per-message JSON objects only at save time.  One tracer may record
    several runs back to back (each gets its own meta event).
    """

    enabled = True

    def __init__(self) -> None:
        self._events: list[tuple] = []
        self._step = 0
        self._phase_t0: dict[str, float] = {}

    # lifecycle ---------------------------------------------------------
    def begin_run(self, method: str, n_procs: int) -> None:
        self._step = 0
        self._events.append(("meta", method, int(n_procs)))

    def end_run(self, stats, faults=None) -> None:
        footer = {
            "total_msgs": int(stats.total_messages),
            "total_bytes": int(stats.total_bytes),
            "total_recvs": int(stats.total_receives),
            "cat_msgs": {k: int(v) for k, v in stats.category_msgs.items()},
            "cat_bytes": {k: int(v) for k, v in stats.category_bytes.items()},
            "simulated_time": float(stats.elapsed_time()),
            "steps": len(stats.steps),
        }
        if faults is not None:
            footer["faults"] = {k: int(v) for k, v in faults.items()}
        self._events.append(("stats", footer))

    def step_begin(self, step: int) -> None:
        self._step = int(step)

    def step_end(self, active: int) -> None:
        self._events.append(("step", self._step, int(active),
                             time.perf_counter()))

    # profiling ---------------------------------------------------------
    def phase_begin(self, name: str) -> None:
        self._phase_t0[name] = time.perf_counter()

    def phase_end(self, name: str) -> None:
        t1 = time.perf_counter()
        t0 = self._phase_t0.pop(name, t1)
        self._events.append(("phase", self._step, name, t0, t1))

    # setup plane -------------------------------------------------------
    def setup_cache(self, key: str, hit: bool) -> None:
        self._events.append(("setupc", key, bool(hit)))

    # multigrid plane ---------------------------------------------------
    def mg_level(self, level: int, n: int, n_parts: int, msgs: int,
                 nbytes: int, recvs: int, relaxations: int,
                 nnz_dropped: int) -> None:
        self._events.append(("mglvl", int(level), int(n), int(n_parts),
                             int(msgs), int(nbytes), int(recvs),
                             int(relaxations), int(nnz_dropped)))

    # solver events -----------------------------------------------------
    def relax(self, p: int) -> None:
        self._events.append(("relax", self._step, int(p)))

    def ghost(self, p: int, q: int) -> None:
        self._events.append(("ghost", self._step, int(p), int(q)))

    def ghosts(self, p: int, neighbors) -> None:
        self._events.append(("ghostv", self._step, int(p),
                             np.asarray(neighbors, dtype=np.int64)))

    def repair(self, src: int, dst: int) -> None:
        self._events.append(("repair", self._step, int(src), int(dst)))

    def repairs(self, srcs, dsts) -> None:
        self._events.append(("repairv", self._step,
                             np.asarray(srcs, dtype=np.int64),
                             np.asarray(dsts, dtype=np.int64)))

    def retry(self, src: int, dst: int) -> None:
        self._events.append(("retry", self._step, int(src), int(dst)))

    def retries(self, srcs, dsts) -> None:
        self._events.append(("retryv", self._step,
                             np.asarray(srcs, dtype=np.int64),
                             np.asarray(dsts, dtype=np.int64)))

    # fault plane -------------------------------------------------------
    def fault(self, kind: str, src: int, dst: int, category: str) -> None:
        self._events.append(("fault", self._step, kind, int(src), int(dst),
                             category))

    def faults_flat(self, kind: str, srcs, dsts, category: str) -> None:
        self._events.append(("faultv", self._step, kind,
                             np.asarray(srcs, dtype=np.int64),
                             np.asarray(dsts, dtype=np.int64), category))

    # message plane -----------------------------------------------------
    def send(self, src: int, dst: int, category: str, nbytes: int) -> None:
        self._events.append(("send", self._step, int(src), int(dst),
                             category, int(nbytes)))

    def sends_flat(self, plane, sids, category: str) -> None:
        eids = sids >> 1
        self._events.append(("sendv", self._step, plane.edge_src[eids],
                             plane.edge_dst[eids], category,
                             plane.sid_nbytes[sids]))

    def recv(self, src: int, dst: int, category: str) -> None:
        self._events.append(("recv", self._step, int(src), int(dst),
                             category))

    def recv_msgs(self, dst: int, msgs) -> None:
        step = self._step
        for m in msgs:
            self._events.append(("recv", step, int(m.src), int(dst),
                                 m.category))

    def recvs_flat(self, plane, dst: int, sids) -> None:
        self._events.append(("recvv", self._step, plane.edge_src[sids >> 1],
                             int(dst), sids & 1))

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def iter_events(self):
        """Yield every event as a JSON-able dict, expanding batches.

        The per-message expansion order inside one batch is the batch's
        array order — ascending destination per sender for flat puts,
        which is exactly the per-put order of the object plane.
        """
        for ev in self._events:
            tag = ev[0]
            if tag == "meta":
                yield {"ev": "meta", "schema": TRACE_SCHEMA,
                       "method": ev[1], "n_procs": ev[2]}
            elif tag == "stats":
                yield {"ev": "stats", **ev[1]}
            elif tag == "step":
                yield {"ev": "step", "step": ev[1], "active": ev[2],
                       "t": ev[3]}
            elif tag == "phase":
                yield {"ev": "phase", "step": ev[1], "name": ev[2],
                       "t0": ev[3], "t1": ev[4]}
            elif tag == "setupc":
                yield {"ev": "setup_cache", "key": ev[1], "hit": ev[2]}
            elif tag == "mglvl":
                yield {"ev": "mg_level", "level": ev[1], "n": ev[2],
                       "n_parts": ev[3], "msgs": ev[4], "bytes": ev[5],
                       "recvs": ev[6], "relaxations": ev[7],
                       "nnz_dropped": ev[8]}
            elif tag == "relax":
                yield {"ev": "relax", "step": ev[1], "p": ev[2]}
            elif tag == "ghost":
                yield {"ev": "ghost", "step": ev[1], "p": ev[2], "q": ev[3]}
            elif tag == "ghostv":
                _, step, p, qs = ev
                for q in qs.tolist():
                    yield {"ev": "ghost", "step": step, "p": p, "q": q}
            elif tag == "repair":
                yield {"ev": "repair", "step": ev[1], "src": ev[2],
                       "dst": ev[3]}
            elif tag == "repairv":
                _, step, srcs, dsts = ev
                for s, d in zip(srcs.tolist(), dsts.tolist()):
                    yield {"ev": "repair", "step": step, "src": s, "dst": d}
            elif tag == "retry":
                yield {"ev": "retry", "step": ev[1], "src": ev[2],
                       "dst": ev[3]}
            elif tag == "retryv":
                _, step, srcs, dsts = ev
                for s, d in zip(srcs.tolist(), dsts.tolist()):
                    yield {"ev": "retry", "step": step, "src": s, "dst": d}
            elif tag == "fault":
                yield {"ev": "fault", "step": ev[1], "kind": ev[2],
                       "src": ev[3], "dst": ev[4], "cat": ev[5]}
            elif tag == "faultv":
                _, step, kind, srcs, dsts, cat = ev
                for s, d in zip(srcs.tolist(), dsts.tolist()):
                    yield {"ev": "fault", "step": step, "kind": kind,
                           "src": s, "dst": d, "cat": cat}
            elif tag == "send":
                yield {"ev": "send", "step": ev[1], "src": ev[2],
                       "dst": ev[3], "cat": ev[4], "nb": ev[5]}
            elif tag == "sendv":
                _, step, srcs, dsts, cat, nbs = ev
                for s, d, nb in zip(srcs.tolist(), dsts.tolist(),
                                    nbs.tolist()):
                    yield {"ev": "send", "step": step, "src": s, "dst": d,
                           "cat": cat, "nb": nb}
            elif tag == "recv":
                yield {"ev": "recv", "step": ev[1], "src": ev[2],
                       "dst": ev[3], "cat": ev[4]}
            elif tag == "recvv":
                _, step, srcs, dst, kinds = ev
                for s, k in zip(srcs.tolist(), kinds.tolist()):
                    yield {"ev": "recv", "step": step, "src": s, "dst": dst,
                           "cat": _KIND_CATEGORY[k]}
            else:  # pragma: no cover - exhaustive over recorded tags
                raise ValueError(f"unknown trace event tag {tag!r}")

    def save_jsonl(self, path) -> Path:
        """Write the JSONL sink: one JSON object per line, per event."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            for obj in self.iter_events():
                fh.write(json.dumps(obj, separators=(",", ":")))
                fh.write("\n")
        return path

    def save_chrome(self, path) -> Path:
        """Write the Chrome ``trace_event`` sink (load in Perfetto /
        ``chrome://tracing``): phase spans as "X" complete events, the
        per-step active count as a "C" counter track."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        stamps = [ev[3] for ev in self._events if ev[0] == "phase"]
        stamps += [ev[3] for ev in self._events if ev[0] == "step"]
        base = min(stamps) if stamps else 0.0
        out = [{"name": "process_name", "ph": "M", "pid": 0,
                "args": {"name": ev[1]}}
               for ev in self._events if ev[0] == "meta"][:1]
        for ev in self._events:
            if ev[0] == "phase":
                _, step, name, t0, t1 = ev
                out.append({"name": name, "cat": "phase", "ph": "X",
                            "ts": (t0 - base) * 1e6,
                            "dur": (t1 - t0) * 1e6,
                            "pid": 0, "tid": 0, "args": {"step": step}})
            elif ev[0] == "step":
                _, step, active, t = ev
                out.append({"name": "active processes", "ph": "C",
                            "ts": (t - base) * 1e6, "pid": 0,
                            "args": {"active": active}})
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"traceEvents": out, "displayTimeUnit": "ms"}, fh)
        return path

    def save(self, path) -> Path:
        """Write ``path`` in the format its suffix names: ``.json`` /
        ``.chrome`` → Chrome ``trace_event``, anything else → JSONL."""
        suffix = Path(path).suffix.lower()
        if suffix in (".json", ".chrome"):
            return self.save_chrome(path)
        return self.save_jsonl(path)
