"""Reproduction of *Distributed Southwell: An Iterative Method with Low
Communication Costs* (Wolfson-Pou & Chow, SC17).

The package is organised as the paper's system is:

``repro.sparsela``
    From-scratch sparse matrix substrate (CSR/COO, IO, scaling, kernels).
``repro.matrices``
    Test-problem generators, including the synthetic analog of the paper's
    SuiteSparse suite (Table 1).
``repro.partition``
    Graph partitioning (METIS substitute) and multicoloring.
``repro.runtime``
    Simulated distributed-memory runtime with one-sided (RMA-style) windows
    and exact message accounting.
``repro.core``
    The Southwell family: Sequential, Parallel (scalar + block, Algorithm 2)
    and Distributed Southwell (scalar + block, Algorithm 3 — the paper's
    contribution).
``repro.solvers``
    Baselines: Jacobi, Gauss-Seidel, Multicolor Gauss-Seidel, Block Jacobi
    (Algorithm 1), local subdomain solvers, and preconditioned CG.
``repro.multigrid``
    Geometric multigrid with pluggable smoothers (Figure 6).
``repro.analysis``
    Histories, metric extraction, and table formatting.
``repro.faults``
    Deterministic, seeded fault injection (message drop / duplication /
    reordering / delay, process stalls, ghost staleness) and the
    methods' repair / graceful-degradation semantics.
``repro.experiments``
    One driver per paper table/figure.

Quickstart::

    import repro
    problem = repro.matrices.fem_poisson_2d(target_rows=3081, seed=0)
    result = repro.solve(problem.matrix,
                         method="distributed-southwell",
                         config=repro.RunConfig(n_parts=16, max_steps=50,
                                                target_norm=0.1))
    print(result.summary())
"""

from repro import analysis, config, faults, matrices, multigrid, partition
from repro import core, runtime, solvers, sparsela, trace
from repro.api import AsyncConfig, RunConfig, SolveResult, solve
from repro.faults import DegradedRunError, FaultPlan
from repro.sparsela import CSRMatrix

__version__ = "2.0.0"

__all__ = [
    "AsyncConfig",
    "CSRMatrix",
    "DegradedRunError",
    "FaultPlan",
    "RunConfig",
    "SolveResult",
    "analysis",
    "config",
    "core",
    "faults",
    "matrices",
    "multigrid",
    "partition",
    "runtime",
    "solve",
    "solvers",
    "sparsela",
    "trace",
]
