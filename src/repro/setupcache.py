"""Persistent setup-plane cache: partitions + block systems on disk.

Profiling the experiment drivers shows the *setup plane* — multilevel
partitioning plus block-system assembly — dominating end-to-end wall
clock for short runs (the paper's experiments are 20-50 parallel steps;
partitioning af_5_k101 at P = 256 costs more than the steps themselves).
The setup products are pure functions of the matrix and a handful of
parameters, so they are cached across *processes and invocations*:
:func:`get_setup` pickles each ``(Partition, BlockSystem)`` pair under a
key of

- the matrix digest (shape + the three CSR arrays, exact bytes),
- the setup parameters ``(n_parts, partitioner, seed, local solver,
  sweeps)``,
- a digest of the setup-plane *source code* (the partitioner, the block
  builder, the local solvers, and the sparse substrate they run on).

The code digest means a stale partition can never survive an edit to
anything that could have produced it — same policy as the sweep-result
cache (:mod:`repro.experiments.parallel`), scoped to the setup plane so
solver-side edits don't needlessly retire partitions.

Correctness notes:

- Partitions are bit-identical across kernel backends (pinned digests in
  ``tests/test_partition.py``), so the backend knob is deliberately *not*
  part of the key — a partition computed under numba is valid for a
  scipy-backend run.
- SuperLU factors cannot be pickled; the local solvers serialize their
  diagonal block and re-factorize on load (``__reduce__``), so a cache
  hit still pays factorization — but skips partitioning and block
  assembly, the two phases the bench (``scripts/bench_setup.py``) shows
  dominating.
- Stores are atomic (tmp + rename) and failures are silent: the cache is
  an optimisation, never a correctness dependency.

The cache is off by default; enable with ``REPRO_SETUP_CACHE=1`` (default
directory ``~/.cache/repro-southwell/setup``) or a directory path.  Setup
work is traced (``setup:partition`` / ``setup:block_build`` /
``setup:cache_load`` phases plus a ``setup_cache`` hit/miss event) so
``repro trace FILE`` reports where setup time went.  See DESIGN.md §5.10.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from functools import lru_cache
from pathlib import Path

from repro import config as _config
from repro.core.blockdata import BlockSystem, build_block_system
from repro.partition import Partition, partition
from repro.sparsela import CSRMatrix
from repro.trace import NULL_TRACER, Tracer

__all__ = [
    "SETUP_SCHEMA",
    "get_setup",
    "matrix_digest",
    "setup_code_digest",
    "setup_key",
]

#: version tag baked into every key; bump to retire all cached setups
SETUP_SCHEMA = "repro.setup/v1"

#: package-relative source files whose behaviour the cached products
#: depend on: the partitioner, the kernels it dispatches to, the block
#: builder + local solvers, and the sparse substrate under all of them
_SETUP_SOURCES = (
    "partition",                # whole subpackage
    "sparsela",                 # whole subpackage
    "core/blockdata.py",
    "core/local_solvers.py",
)


@lru_cache(maxsize=1)
def setup_code_digest() -> str:
    """Digest of the setup-plane source files (cache-invalidation token).

    Narrower than the sweep cache's whole-package digest on purpose:
    editing a solver or an analysis module does not invalidate
    partitions, editing anything that *computes* them does.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    h = hashlib.sha256()
    for entry in _SETUP_SOURCES:
        path = root / entry
        files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for f in files:
            h.update(str(f.relative_to(root)).encode())
            h.update(b"\0")
            h.update(f.read_bytes())
    return h.hexdigest()


def matrix_digest(A: CSRMatrix) -> str:
    """Exact content digest of a CSR matrix (shape + the three arrays)."""
    h = hashlib.sha256()
    h.update(repr(A.shape).encode())
    h.update(A.indptr.tobytes())
    h.update(A.indices.tobytes())
    h.update(A.data.tobytes())
    return h.hexdigest()


def setup_key(A: CSRMatrix, n_parts: int, method: str = "multilevel",
              seed: int = 0, local_solver: str = "gs",
              n_sweeps: int = 1) -> str:
    """Stable cache key for one ``(matrix, setup parameters)`` pair."""
    parts = (
        SETUP_SCHEMA,
        matrix_digest(A),
        str(int(n_parts)),
        method,
        str(int(seed)),
        local_solver,
        str(int(n_sweeps)),
        setup_code_digest(),
    )
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()


# ----------------------------------------------------------------------
# cache I/O (same atomicity discipline as the sweep cache)
# ----------------------------------------------------------------------
def _load(cache: Path, key: str):
    try:
        with open(cache / f"{key}.pkl", "rb") as fh:
            return pickle.load(fh)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, ValueError):
        return None


def _store(cache: Path, key: str, value) -> None:
    try:
        cache.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=cache, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, cache / f"{key}.pkl")
        except BaseException:
            os.unlink(tmp)
            raise
    except OSError:
        pass


# ----------------------------------------------------------------------
# the front door
# ----------------------------------------------------------------------
def get_setup(A: CSRMatrix, n_parts: int, method: str = "multilevel",
              seed: int = 0, local_solver: str = "gs", n_sweeps: int = 1,
              tracer: Tracer = NULL_TRACER,
              cache_dir: Path | str | None = None
              ) -> tuple[Partition, BlockSystem]:
    """Partition ``A`` and build its block system, through the disk cache.

    With the cache off (the default) this is exactly
    ``partition(...)`` + ``build_block_system(...)``, with the two
    phases traced.  With ``REPRO_SETUP_CACHE`` set (or ``cache_dir``
    given), results round-trip through the on-disk store: a hit loads
    the pickled pair (re-factorizing local solvers) instead of
    recomputing, and fires a ``setup_cache`` trace event either way.
    """
    cache = (Path(cache_dir) if cache_dir is not None
             else _config.setup_cache_dir())
    key = None
    if cache is not None:
        key = setup_key(A, n_parts, method=method, seed=seed,
                        local_solver=local_solver, n_sweeps=n_sweeps)
        if tracer.enabled:
            tracer.phase_begin("setup:cache_load")
        hit = _load(cache, key)
        if tracer.enabled:
            tracer.phase_end("setup:cache_load")
            tracer.setup_cache(key, hit is not None)
        if hit is not None:
            return hit

    if tracer.enabled:
        tracer.phase_begin("setup:partition")
    part = partition(A, n_parts, method=method, seed=seed)
    if tracer.enabled:
        tracer.phase_end("setup:partition")
        tracer.phase_begin("setup:block_build")
    system = build_block_system(A, part, local_solver=local_solver,
                                n_sweeps=n_sweeps)
    if tracer.enabled:
        tracer.phase_end("setup:block_build")

    if cache is not None:
        _store(cache, key, (part, system))
    return part, system
