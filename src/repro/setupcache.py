"""Persistent setup-plane cache: partitions + block systems on disk.

Profiling the experiment drivers shows the *setup plane* — multilevel
partitioning plus block-system assembly — dominating end-to-end wall
clock for short runs (the paper's experiments are 20-50 parallel steps;
partitioning af_5_k101 at P = 256 costs more than the steps themselves).
The setup products are pure functions of the matrix and a handful of
parameters, so they are cached across *processes and invocations*:
:func:`get_setup` pickles each ``(Partition, BlockSystem)`` pair under a
key of

- the matrix digest (shape + the three CSR arrays, exact bytes),
- the setup parameters ``(n_parts, partitioner, seed, local solver,
  sweeps)``,
- a digest of the setup-plane *source code* (the partitioner, the block
  builder, the local solvers, and the sparse substrate they run on).

The code digest means a stale partition can never survive an edit to
anything that could have produced it — same policy as the sweep-result
cache (:mod:`repro.experiments.parallel`), scoped to the setup plane so
solver-side edits don't needlessly retire partitions.

Correctness notes:

- Partitions are bit-identical across kernel backends (pinned digests in
  ``tests/test_partition.py``), so the backend knob is deliberately *not*
  part of the key — a partition computed under numba is valid for a
  scipy-backend run.
- SuperLU factors cannot be pickled; the local solvers serialize their
  diagonal block and re-factorize on load (``__reduce__``), so a cache
  hit still pays factorization — but skips partitioning and block
  assembly, the two phases the bench (``scripts/bench_setup.py``) shows
  dominating.
- Stores are atomic (tmp + rename) and failures are silent: the cache is
  an optimisation, never a correctness dependency.
- Large numeric arrays are *externalized*: the pickle stream keeps only
  a persistent id ``(offset, dtype, shape)`` and the bytes live in a
  sidecar ``<key>.blob`` file at 64-byte-aligned offsets.  Warm loads
  map the blob with ``np.memmap(mode="r")``, so a hit at n = 1M costs
  O(touched pages), not a full deserialize — the paper-scale warm-setup
  requirement (DESIGN.md §5.13).  Loaded arrays are read-only views;
  every consumer of the setup products treats them as immutable.

The cache is off by default; enable with ``REPRO_SETUP_CACHE=1`` (default
directory ``~/.cache/repro-southwell/setup``) or a directory path.  Setup
work is traced (``setup:partition`` / ``setup:block_build`` /
``setup:cache_load`` phases plus a ``setup_cache`` hit/miss event) so
``repro trace FILE`` reports where setup time went.  See DESIGN.md §5.10.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from functools import lru_cache
from pathlib import Path

import numpy as np

from repro import config as _config
from repro.core.blockdata import BlockSystem, build_block_system
from repro.partition import Partition, partition
from repro.sparsela import CSRMatrix
from repro.trace import NULL_TRACER, Tracer

__all__ = [
    "SETUP_SCHEMA",
    "get_setup",
    "matrix_digest",
    "setup_code_digest",
    "setup_key",
]

#: version tag baked into every key; bump to retire all cached setups
#: (v2: numeric arrays externalized to a ``<key>.blob`` sidecar, loaded
#: as read-only ``np.memmap`` views)
SETUP_SCHEMA = "repro.setup/v2"

#: arrays at least this big go to the blob; smaller ones stay inline in
#: the pickle stream where a memmap view would cost more than it saves
_BLOB_MIN_NBYTES = 256

#: blob offsets are aligned so memmap views start on cache-line
#: boundaries (and dtype alignment is satisfied for every numeric dtype)
_BLOB_ALIGN = 64

#: package-relative source files whose behaviour the cached products
#: depend on: the partitioner, the kernels it dispatches to, the block
#: builder + local solvers, and the sparse substrate under all of them
_SETUP_SOURCES = (
    "partition",                # whole subpackage
    "sparsela",                 # whole subpackage
    "core/blockdata.py",
    "core/local_solvers.py",
)


@lru_cache(maxsize=1)
def setup_code_digest() -> str:
    """Digest of the setup-plane source files (cache-invalidation token).

    Narrower than the sweep cache's whole-package digest on purpose:
    editing a solver or an analysis module does not invalidate
    partitions, editing anything that *computes* them does.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    h = hashlib.sha256()
    for entry in _SETUP_SOURCES:
        path = root / entry
        files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for f in files:
            h.update(str(f.relative_to(root)).encode())
            h.update(b"\0")
            h.update(f.read_bytes())
    return h.hexdigest()


def matrix_digest(A: CSRMatrix) -> str:
    """Exact content digest of a CSR matrix (shape + the three arrays)."""
    h = hashlib.sha256()
    h.update(repr(A.shape).encode())
    h.update(A.indptr.tobytes())
    h.update(A.indices.tobytes())
    h.update(A.data.tobytes())
    return h.hexdigest()


def setup_key(A: CSRMatrix, n_parts: int, method: str = "multilevel",
              seed: int = 0, local_solver: str = "gs",
              n_sweeps: int = 1) -> str:
    """Stable cache key for one ``(matrix, setup parameters)`` pair."""
    parts = (
        SETUP_SCHEMA,
        matrix_digest(A),
        str(int(n_parts)),
        method,
        str(int(seed)),
        local_solver,
        str(int(n_sweeps)),
        setup_code_digest(),
    )
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()


# ----------------------------------------------------------------------
# cache I/O (same atomicity discipline as the sweep cache, plus the
# array-externalizing blob sidecar)
# ----------------------------------------------------------------------
class _BlobWriter:
    """Appends raw array bytes to the sidecar at aligned offsets."""

    def __init__(self, fh) -> None:
        self._fh = fh
        self._off = 0

    def put(self, arr: np.ndarray) -> int:
        pad = -self._off % _BLOB_ALIGN
        if pad:
            self._fh.write(b"\0" * pad)
            self._off += pad
        off = self._off
        self._fh.write(memoryview(arr).cast("B"))
        self._off += arr.nbytes
        return off


class _BlobPickler(pickle.Pickler):
    """Pickler that externalizes large plain numeric arrays.

    Only exact ``np.ndarray`` instances (no subclasses) with simple
    C-contiguous numeric dtypes are diverted — everything else pickles
    inline, so objects with ``__reduce__`` hooks (the local solvers)
    keep their existing behaviour.
    """

    def __init__(self, fh, blob: _BlobWriter) -> None:
        super().__init__(fh, protocol=pickle.HIGHEST_PROTOCOL)
        self._blob = blob

    def persistent_id(self, obj):
        if (type(obj) is np.ndarray and obj.flags.c_contiguous
                and obj.dtype.kind in "biufc"
                and obj.nbytes >= _BLOB_MIN_NBYTES):
            off = self._blob.put(obj)
            return ("blob", off, obj.dtype.str, obj.shape)
        return None


class _BlobUnpickler(pickle.Unpickler):
    """Unpickler resolving blob ids to read-only ``np.memmap`` views."""

    def __init__(self, fh, blob_path: Path) -> None:
        super().__init__(fh)
        self._blob_path = blob_path

    def persistent_load(self, pid):
        try:
            tag, off, dtype_str, shape = pid
        except (TypeError, ValueError) as exc:
            raise pickle.UnpicklingError(f"bad persistent id {pid!r}") from exc
        if tag != "blob":
            raise pickle.UnpicklingError(f"unknown persistent id {tag!r}")
        return np.memmap(self._blob_path, mode="r",
                         dtype=np.dtype(dtype_str), shape=tuple(shape),
                         offset=int(off))


def _load(cache: Path, key: str):
    try:
        with open(cache / f"{key}.pkl", "rb") as fh:
            return _BlobUnpickler(fh, cache / f"{key}.blob").load()
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, ValueError, TypeError):
        return None


def _store(cache: Path, key: str, value) -> None:
    try:
        cache.mkdir(parents=True, exist_ok=True)
        bfd, btmp = tempfile.mkstemp(dir=cache, suffix=".blob.tmp")
        pfd, ptmp = tempfile.mkstemp(dir=cache, suffix=".tmp")
        try:
            with os.fdopen(bfd, "wb") as bfh, os.fdopen(pfd, "wb") as pfh:
                _BlobPickler(pfh, _BlobWriter(bfh)).dump(value)
            # blob first: a reader only follows blob offsets it found in
            # the pickle, so the pair is consistent once the .pkl lands
            os.replace(btmp, cache / f"{key}.blob")
            os.replace(ptmp, cache / f"{key}.pkl")
        except BaseException:
            for tmp in (btmp, ptmp):
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
            raise
    except OSError:
        pass


# ----------------------------------------------------------------------
# the front door
# ----------------------------------------------------------------------
def get_setup(A: CSRMatrix, n_parts: int, method: str = "multilevel",
              seed: int = 0, local_solver: str = "gs", n_sweeps: int = 1,
              tracer: Tracer = NULL_TRACER,
              cache_dir: Path | str | None = None
              ) -> tuple[Partition, BlockSystem]:
    """Partition ``A`` and build its block system, through the disk cache.

    With the cache off (the default) this is exactly
    ``partition(...)`` + ``build_block_system(...)``, with the two
    phases traced.  With ``REPRO_SETUP_CACHE`` set (or ``cache_dir``
    given), results round-trip through the on-disk store: a hit loads
    the pickled pair (re-factorizing local solvers) instead of
    recomputing, and fires a ``setup_cache`` trace event either way.
    """
    cache = (Path(cache_dir) if cache_dir is not None
             else _config.setup_cache_dir())
    key = None
    if cache is not None:
        key = setup_key(A, n_parts, method=method, seed=seed,
                        local_solver=local_solver, n_sweeps=n_sweeps)
        if tracer.enabled:
            tracer.phase_begin("setup:cache_load")
        hit = _load(cache, key)
        if tracer.enabled:
            tracer.phase_end("setup:cache_load")
            tracer.setup_cache(key, hit is not None)
        if hit is not None:
            return hit

    if tracer.enabled:
        tracer.phase_begin("setup:partition")
    part = partition(A, n_parts, method=method, seed=seed)
    if tracer.enabled:
        tracer.phase_end("setup:partition")
        tracer.phase_begin("setup:block_build")
    system = build_block_system(A, part, local_solver=local_solver,
                                n_sweeps=n_sweeps)
    if tracer.enabled:
        tracer.phase_end("setup:block_build")

    if cache is not None:
        _store(cache, key, (part, system))
    return part, system
