"""Random SPD generators (primarily for tests and property-based checks)."""

from __future__ import annotations

import numpy as np

from repro.sparsela import COOMatrix, CSRMatrix

__all__ = ["random_spd", "random_sparse_spd"]


def random_spd(n: int, seed: int = 0, condition: float = 100.0) -> CSRMatrix:
    """Dense random SPD matrix with prescribed condition number.

    Built as ``Q diag(lam) Q^T`` with a random orthogonal ``Q`` and
    logarithmically spaced eigenvalues in ``[1/condition, 1]``.  Returned as
    a (dense-pattern) :class:`CSRMatrix` — intended for small test systems.
    """
    if n < 1:
        raise ValueError("n must be positive")
    if condition < 1.0:
        raise ValueError("condition must be >= 1")
    rng = np.random.default_rng(seed)
    q, _ = np.linalg.qr(rng.standard_normal((n, n)))
    lam = np.logspace(-np.log10(condition), 0.0, n)
    dense = (q * lam) @ q.T
    dense = 0.5 * (dense + dense.T)
    return CSRMatrix.from_dense(dense)


def random_sparse_spd(n: int, density: float = 0.02, seed: int = 0,
                      shift: float = 0.05) -> CSRMatrix:
    """Sparse random SPD matrix via ``B^T B + shift*I`` on a random pattern.

    ``density`` controls the pattern of the random factor ``B`` (so the
    product is roughly twice as dense).  ``shift > 0`` guarantees strict
    positive definiteness.
    """
    if not 0.0 < density <= 1.0:
        raise ValueError("density must be in (0, 1]")
    if shift <= 0.0:
        raise ValueError("shift must be positive")
    rng = np.random.default_rng(seed)
    nnz = max(n, int(density * n * n))
    rows = rng.integers(0, n, nnz)
    cols = rng.integers(0, n, nnz)
    vals = rng.standard_normal(nnz)
    B = COOMatrix(rows, cols, vals, (n, n)).to_csr().to_scipy()
    A = (B.T @ B).tocsr()
    A = A + shift * _scipy_identity(n)
    out = CSRMatrix.from_scipy(A)
    return out.prune(0.0)


def _scipy_identity(n: int):
    import scipy.sparse as sp

    return sp.identity(n, format="csr")
