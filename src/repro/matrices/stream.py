"""Chunked/streamed matrix generation (the million-row build path).

The seed generators assemble a COO triplet list for the *entire* matrix
(~9 float64/int64 triplets per row for a 5-point operator) and then sort
it, which peaks at hundreds of bytes per row before the CSR even exists.
At paper-class sizes (n >= 1M, DESIGN.md §5.13) that intermediate is the
single largest allocation of the whole pipeline.  This module builds the
CSR directly in row blocks instead:

- :func:`grid2d_stream` — the 5-point family (``poisson_2d`` and
  friends).  The per-row sparsity count is known in closed form, so the
  final ``indptr``/``indices``/``data`` arrays are allocated once and
  each block of grid rows is written straight into its slice.  Per-block
  position arithmetic runs in int32 whenever ``nnz`` and ``n`` fit.
- :func:`stream_coo_to_csr` — a streaming duplicate-summing accumulator
  for generators without a closed-form pattern (FEM assembly).  Chunks
  are merged one at a time into a sorted key/value store, dropping the
  rows/cols arrays and the global argsort scratch of the seed path.
- :func:`random_sparse_spd_streamed` — forms ``B^T B`` in row blocks of
  ``B^T`` instead of one sparse product.

Every function here is **bit-identical** to its seed counterpart — same
``indptr``/``indices``/``data`` bytes, hence the same ``matrix_digest``
— which the property tests (``tests/test_stream_matrices.py``) and the
``scripts/bench_scale.py`` digest gates enforce.  Two identities make
that possible:

- adding ``0.0`` in place of an absent stencil term is exact, so the
  blockwise diagonal fold ``((E + W) + N) + S`` reproduces the seed's
  ``np.bincount`` accumulation order;
- duplicate summation keeps raw triplets until one final ``reduceat``
  whose segments match the seed's global pass exactly (``reduceat`` is
  SIMD-pairwise, so partial per-chunk sums would reassociate).
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

import numpy as np

from repro.sparsela import CSRMatrix

__all__ = [
    "grid2d_stream",
    "random_sparse_spd_streamed",
    "stream_coo_to_csr",
]

_INT32_LIMIT = int(np.iinfo(np.int32).max)

# target cells per generation block (~1M cells ≈ 8 MB of float64 scratch)
_BLOCK_CELLS = 1 << 20


def _pick_idx_dtype(*maxima: int):
    """int32 when every value fits, else int64 (the int32 policy)."""
    return np.int32 if all(m <= _INT32_LIMIT for m in maxima) else np.int64


def grid2d_stream(nx: int, ny: int,
                  coeff: Callable[[np.ndarray, np.ndarray], tuple],
                  block_rows: int | None = None) -> CSRMatrix:
    """Streamed 5-point assembly, bit-identical to ``_grid2d_entries``.

    ``coeff(i, j)`` follows the seed contract: conductivities of the west
    and south links of cell ``(i, j)``.  The coefficient field is still
    evaluated once on the full grid (it is two float64 arrays, small next
    to the triplet list the seed materializes), but the CSR is filled one
    block of ``block_rows`` grid rows at a time with no COO intermediate.
    """
    n = nx * ny
    if n == 0:
        return CSRMatrix(np.zeros(1, dtype=np.int64), np.zeros(0, np.int64),
                         np.zeros(0), (0, 0))
    i, j = np.meshgrid(np.arange(nx), np.arange(ny), indexing="xy")
    cx, cy = coeff(i, j)
    cx = np.broadcast_to(np.asarray(cx, dtype=np.float64), (ny, nx))
    cy = np.broadcast_to(np.asarray(cy, dtype=np.float64), (ny, nx))
    del i, j
    # link weights, exactly as the seed computes them
    wx = 0.5 * (cx[:, :-1] + cx[:, 1:])         # (ny, nx-1) horizontal
    wy = 0.5 * (cy[:-1, :] + cy[1:, :])         # (ny-1, nx) vertical
    # boundary faces keep only the four edge slices of the coefficient
    cx_w, cx_e = cx[:, 0].copy(), cx[:, -1].copy()
    cy_s, cy_n = cy[0, :].copy(), cy[-1, :].copy()
    del cx, cy

    # closed-form row counts -> indptr in one pass
    inc_i = np.zeros(nx, dtype=np.int64)
    inc_i[1:] += 1                              # has a west neighbor
    inc_i[:-1] += 1                             # has an east neighbor
    row_nnz = np.empty(ny, dtype=np.int64)      # nnz per grid row j
    row_nnz[:] = nx + int(inc_i.sum())          # diag + E/W links
    row_nnz[1:] += nx                           # S links
    row_nnz[:-1] += nx                          # N links
    indptr = np.zeros(n + 1, dtype=np.int64)    # filled blockwise below
    nnz = int(row_nnz.sum())
    indices = np.empty(nnz, dtype=np.int64)
    data = np.empty(nnz)

    if block_rows is None:
        block_rows = max(1, _BLOCK_CELLS // max(nx, 1))
    work_dt = _pick_idx_dtype(nnz, n)

    cell_inc = (1 + inc_i).astype(np.int64)     # diag + E/W per cell
    pos = 0
    for j0 in range(0, ny, block_rows):
        j1 = min(j0 + block_rows, ny)
        m = j1 - j0
        jj = np.arange(j0, j1)
        # per-cell nnz for this block -> indptr slice
        cnt = np.broadcast_to(cell_inc, (m, nx)).copy()
        cnt[jj > 0, :] += 1                     # S neighbor present
        cnt[jj < ny - 1, :] += 1                # N neighbor present
        flat_cnt = cnt.ravel()
        lo = j0 * nx
        np.cumsum(flat_cnt, out=indptr[lo + 1:j1 * nx + 1])
        indptr[lo + 1:j1 * nx + 1] += pos
        pos = int(indptr[j1 * nx])

        # stencil values for the block, 0.0 where the link is absent
        e_val = np.zeros((m, nx))
        w_val = np.zeros((m, nx))
        if nx > 1:
            e_val[:, :-1] = wx[j0:j1, :]
            w_val[:, 1:] = wx[j0:j1, :]
        n_val = np.zeros((m, nx))
        s_val = np.zeros((m, nx))
        has_n = jj < ny - 1
        has_s = jj > 0
        if ny > 1:
            n_val[has_n, :] = wy[jj[has_n], :]
            s_val[has_s, :] = wy[jj[has_s] - 1, :]
        # diagonal: the seed's bincount accumulates E, W, N, S in that
        # order starting from 0.0; adding 0.0 for absent links is exact
        diag = ((e_val + w_val) + n_val) + s_val
        bd = np.zeros((m, nx))
        bd[:, 0] += cx_w[j0:j1]
        bd[:, -1] += cx_e[j0:j1]
        if j0 == 0:
            bd[0, :] += cy_s
        if j1 == ny:
            bd[-1, :] += cy_n
        diag = diag + bd

        # scatter the five stencil members into their sorted-column slots
        r = np.arange(lo, j1 * nx, dtype=work_dt)
        base_pos = indptr[lo:j1 * nx].astype(work_dt)
        s_mask = np.broadcast_to(has_s[:, None], (m, nx)).ravel()
        n_mask = np.broadcast_to(has_n[:, None], (m, nx)).ravel()
        w_mask = np.broadcast_to(np.arange(nx) > 0, (m, nx)).ravel()
        e_mask = np.broadcast_to(np.arange(nx) < nx - 1, (m, nx)).ravel()
        s_cnt = s_mask.astype(work_dt)
        w_cnt = w_mask.astype(work_dt)
        e_cnt = e_mask.astype(work_dt)

        slot = base_pos[s_mask]                         # S at rank 0
        indices[slot] = r[s_mask] - nx
        data[slot] = -s_val.ravel()[s_mask]
        slot = (base_pos + s_cnt)[w_mask]               # W after S
        indices[slot] = r[w_mask] - 1
        data[slot] = -w_val.ravel()[w_mask]
        slot = base_pos + s_cnt + w_cnt                 # diag, always
        indices[slot] = r
        data[slot] = diag.ravel()
        slot = (base_pos + s_cnt + w_cnt + 1)[e_mask]   # E after diag
        indices[slot] = r[e_mask] + 1
        data[slot] = -e_val.ravel()[e_mask]
        slot = (base_pos + s_cnt + w_cnt + 1 + e_cnt)[n_mask]  # N last
        indices[slot] = r[n_mask] + nx
        data[slot] = -n_val.ravel()[n_mask]

    return CSRMatrix(indptr, indices, data, (n, n))


def stream_coo_to_csr(chunks: Iterable[tuple], shape: tuple[int, int]
                      ) -> CSRMatrix:
    """Duplicate-summing CSR build from an iterator of triplet chunks.

    Bit-identical to ``COOMatrix(concat(chunks)).to_csr()``.  The seed's
    ``sum_duplicates`` reduces each key's contribution segment with one
    ``np.add.reduceat`` call, and that reduction is SIMD-pairwise — not
    a left fold — so summing per-chunk partials would reassociate the
    floating-point sum.  Instead the accumulator holds the *raw* sorted
    ``(key, value)`` pairs (16 B/triplet, vs ~56 B live for the seed's
    rows/cols/vals plus argsort scratch): each sorted chunk is merged in
    linear time with ``searchsorted`` (ties keep earlier chunks first,
    i.e. original positional order), and a single final ``reduceat``
    then sees exactly the segments the seed's global pass sees.
    """
    m, n_cols = shape
    acc_keys = np.zeros(0, dtype=np.int64)
    acc_vals = np.zeros(0)
    for rows, cols, vals in chunks:
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        vals = np.asarray(vals, dtype=np.float64)
        keys = rows * n_cols + cols
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        vals = vals[order]
        if acc_keys.size == 0:
            acc_keys, acc_vals = keys, vals
            continue
        # linear merge: chunk entries slot in *after* equal-key entries
        # already accumulated, preserving global positional order
        ins = np.searchsorted(acc_keys, keys, side="right")
        total = acc_keys.size + keys.size
        chunk_pos = ins + np.arange(keys.size)
        acc_mask = np.ones(total, dtype=bool)
        acc_mask[chunk_pos] = False
        merged_keys = np.empty(total, dtype=np.int64)
        merged_vals = np.empty(total)
        merged_keys[chunk_pos] = keys
        merged_vals[chunk_pos] = vals
        merged_keys[acc_mask] = acc_keys
        merged_vals[acc_mask] = acc_vals
        acc_keys, acc_vals = merged_keys, merged_vals
    if acc_keys.size:
        boundary = np.empty(acc_keys.size, dtype=bool)
        boundary[0] = True
        np.not_equal(acc_keys[1:], acc_keys[:-1], out=boundary[1:])
        starts = np.flatnonzero(boundary)
        out_keys = acc_keys[starts]
        out_vals = np.add.reduceat(acc_vals, starts)
    else:
        out_keys = acc_keys
        out_vals = acc_vals
    out_rows = out_keys // n_cols
    out_cols = out_keys % n_cols
    counts = np.bincount(out_rows, minlength=m)
    indptr = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return CSRMatrix(indptr, out_cols, out_vals, shape)


def iter_chunks(total: int, block: int) -> Iterator[tuple[int, int]]:
    """Yield ``(lo, hi)`` ranges covering ``[0, total)`` in ``block`` steps."""
    for lo in range(0, total, block):
        yield lo, min(lo + block, total)


def random_sparse_spd_streamed(n: int, density: float = 0.02, seed: int = 0,
                               shift: float = 0.05,
                               row_block: int = 65536) -> CSRMatrix:
    """Streamed ``random_sparse_spd``: ``B^T B`` formed in row blocks.

    The random factor ``B`` is drawn exactly as the seed draws it (one
    rng call per triplet array), but the product — the memory peak, at
    roughly twice the factor's density — is computed as ``B^T[lo:hi] @ B``
    row blocks and re-sorted per row, which is bit-identical to the whole
    product (CSR matmul is row-local and deterministic).
    """
    import scipy.sparse as sp

    from repro.sparsela import COOMatrix

    if not 0.0 < density <= 1.0:
        raise ValueError("density must be in (0, 1]")
    if shift <= 0.0:
        raise ValueError("shift must be positive")
    rng = np.random.default_rng(seed)
    nnz = max(n, int(density * n * n))
    rows = rng.integers(0, n, nnz)
    cols = rng.integers(0, n, nnz)
    vals = rng.standard_normal(nnz)
    B = COOMatrix(rows, cols, vals, (n, n)).to_csr().to_scipy()
    Bt = B.T.tocsr()
    blocks = []
    for lo, hi in iter_chunks(n, row_block):
        blk = (Bt[lo:hi] @ B).tocsr()
        blk.sort_indices()
        blocks.append(blk)
    A = sp.vstack(blocks, format="csr") if len(blocks) > 1 else blocks[0]
    A = A + shift * sp.identity(n, format="csr")
    out = CSRMatrix.from_scipy(A)
    return out.prune(0.0)
