"""Test-problem generators.

The paper evaluates on (a) a small irregular finite-element Poisson problem
(Figures 2 and 5), (b) regular-grid 2D Poisson for multigrid smoothing
(Figure 6), and (c) fourteen large SPD matrices from the SuiteSparse
collection (Table 1, all other experiments).  SuiteSparse is not available
offline, so :mod:`repro.matrices.suite` provides a named synthetic analog
for each matrix, built from the generators here:

- :mod:`repro.matrices.poisson` — 2D/3D finite-difference Laplacians
  (5/9-point, 7/27-point stencils), anisotropic and jump-coefficient
  variants.
- :mod:`repro.matrices.fem` — P1 finite elements on irregular triangular
  meshes (scalar Poisson), matching the paper's Figure 2 problem.
- :mod:`repro.matrices.elasticity` — P1 plane-strain linear elasticity,
  giving the strongly non-diagonally-dominant SPD matrices on which Block
  Jacobi misbehaves (the Flan/audikw/bone class).
- :mod:`repro.matrices.random_spd` — random SPD matrices for tests.
- :mod:`repro.matrices.stream` — chunked/streamed CSR builders used by
  the generators above at million-row scale (bit-identical to the seed
  whole-COO paths; DESIGN.md §5.13).
"""

from repro.matrices.elasticity import elasticity_fem_2d
from repro.matrices.fem import (
    fem_poisson_2d,
    fem_rotated_anisotropic,
    triangular_mesh,
)
from repro.matrices.poisson import (
    poisson_1d,
    poisson_2d,
    poisson_2d_anisotropic,
    poisson_2d_jump,
    poisson_2d_ninepoint,
    poisson_3d,
    poisson_3d_27point,
)
from repro.matrices.problem import Problem
from repro.matrices.random_spd import random_spd, random_sparse_spd
from repro.matrices.stream import (
    grid2d_stream,
    random_sparse_spd_streamed,
    stream_coo_to_csr,
)
from repro.matrices.suite import SUITE_NAMES, load_problem, load_suite, suite_table

__all__ = [
    "Problem",
    "SUITE_NAMES",
    "elasticity_fem_2d",
    "fem_poisson_2d",
    "fem_rotated_anisotropic",
    "grid2d_stream",
    "load_problem",
    "load_suite",
    "poisson_1d",
    "poisson_2d",
    "poisson_2d_anisotropic",
    "poisson_2d_jump",
    "poisson_2d_ninepoint",
    "poisson_3d",
    "poisson_3d_27point",
    "random_sparse_spd",
    "random_sparse_spd_streamed",
    "random_spd",
    "stream_coo_to_csr",
    "suite_table",
    "triangular_mesh",
]
