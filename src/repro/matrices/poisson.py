"""Finite-difference Laplacians on regular grids.

All generators return the raw (unscaled) stiffness matrix as a
:class:`CSRMatrix` with homogeneous Dirichlet boundary eliminated; callers
scale with :func:`repro.sparsela.symmetric_unit_diagonal_scale` when they
need the paper's unit-diagonal convention.  Grid unknowns are ordered
lexicographically (x fastest).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.matrices.stream import grid2d_stream
from repro.sparsela import COOMatrix, CSRMatrix

__all__ = [
    "poisson_1d",
    "poisson_2d",
    "poisson_2d_anisotropic",
    "poisson_2d_jump",
    "poisson_2d_ninepoint",
    "poisson_3d",
    "poisson_3d_27point",
]


def poisson_1d(n: int) -> CSRMatrix:
    """Tridiagonal ``[-1, 2, -1]`` operator of order ``n``."""
    if n < 1:
        raise ValueError("n must be positive")
    rows = np.concatenate([np.arange(n), np.arange(n - 1), np.arange(1, n)])
    cols = np.concatenate([np.arange(n), np.arange(1, n), np.arange(n - 1)])
    vals = np.concatenate([np.full(n, 2.0), np.full(2 * (n - 1), -1.0)])
    return COOMatrix(rows, cols, vals, (n, n)).to_csr()


def _grid2d_entries(nx: int, ny: int,
                    coeff: Callable[[np.ndarray, np.ndarray], tuple]):
    """Assemble a 5-point operator with per-cell coefficients.

    ``coeff(i, j)`` returns ``(cx, cy)`` — conductivities of the west and
    south links of cell ``(i, j)`` (harmonic-mean style flux coefficients).

    This is the reference (whole-COO) implementation; the public 5-point
    generators below delegate to the bit-identical streamed builder
    :func:`repro.matrices.stream.grid2d_stream`, which writes the CSR in
    row blocks and is the one exercised at million-row scale.
    """
    idx = np.arange(nx * ny).reshape(ny, nx)
    i, j = np.meshgrid(np.arange(nx), np.arange(ny), indexing="xy")
    cx, cy = coeff(i, j)

    rows, cols, vals = [], [], []

    def link(a: np.ndarray, b: np.ndarray, w: np.ndarray) -> None:
        rows.extend([a, b])
        cols.extend([b, a])
        vals.extend([-w, -w])

    # horizontal links between (i, j) and (i+1, j)
    wx = 0.5 * (cx[:, :-1] + cx[:, 1:])
    link(idx[:, :-1].ravel(), idx[:, 1:].ravel(), wx.ravel())
    # vertical links between (i, j) and (i, j+1)
    wy = 0.5 * (cy[:-1, :] + cy[1:, :])
    link(idx[:-1, :].ravel(), idx[1:, :].ravel(), wy.ravel())

    rows = np.concatenate(rows)
    cols = np.concatenate(cols)
    vals = np.concatenate(vals)
    # Dirichlet boundary: the diagonal is (sum of interior link weights)
    # plus the weight of links to the eliminated boundary, which for a
    # uniform-coefficient row equals the full stencil weight.  We use the
    # standard form diag = sum |offdiag| + boundary contribution; assembling
    # via the graph Laplacian plus boundary mass keeps the matrix SPD.
    n = nx * ny
    diag = np.bincount(rows, weights=-vals, minlength=n)
    # boundary faces contribute their coefficient to the diagonal
    cx_pad = cx
    cy_pad = cy
    boundary = np.zeros((ny, nx))
    boundary[:, 0] += cx_pad[:, 0]
    boundary[:, -1] += cx_pad[:, -1]
    boundary[0, :] += cy_pad[0, :]
    boundary[-1, :] += cy_pad[-1, :]
    diag += boundary.ravel()
    rows = np.concatenate([rows, np.arange(n)])
    cols = np.concatenate([cols, np.arange(n)])
    vals = np.concatenate([vals, diag])
    return COOMatrix(rows, cols, vals, (n, n)).to_csr()


def poisson_2d(nx: int, ny: int | None = None) -> CSRMatrix:
    """Standard 5-point 2D Laplacian on an ``nx × ny`` interior grid.

    Homogeneous Dirichlet boundary; diagonal 4, off-diagonal -1 (before any
    scaling).  This is the paper's Figure 6 test operator.
    """
    ny = nx if ny is None else ny
    return grid2d_stream(nx, ny,
                         lambda i, j: (np.ones(i.shape), np.ones(i.shape)))


def poisson_2d_anisotropic(nx: int, ny: int | None = None,
                           epsilon: float = 1e-2) -> CSRMatrix:
    """Anisotropic operator ``-eps u_xx - u_yy`` (5-point)."""
    ny = nx if ny is None else ny
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    return grid2d_stream(
        nx, ny, lambda i, j: (np.full(i.shape, epsilon), np.ones(i.shape)))


def poisson_2d_jump(nx: int, ny: int | None = None, contrast: float = 1e3,
                    seed: int = 0, n_islands: int = 6) -> CSRMatrix:
    """Jump-coefficient diffusion: random high-contrast rectangular islands.

    The coefficient is 1 in the background and ``contrast`` inside
    ``n_islands`` random axis-aligned rectangles — the "jumps in
    coefficients" setting Rüde's adaptive smoothers target (Section 5).
    """
    ny = nx if ny is None else ny
    rng = np.random.default_rng(seed)
    field = np.ones((ny, nx))
    for _ in range(n_islands):
        x0, y0 = rng.integers(0, nx), rng.integers(0, ny)
        w = int(rng.integers(nx // 8 + 1, nx // 3 + 2))
        h = int(rng.integers(ny // 8 + 1, ny // 3 + 2))
        field[y0:y0 + h, x0:x0 + w] = contrast
    return grid2d_stream(nx, ny, lambda i, j: (field, field))


def poisson_2d_ninepoint(nx: int, ny: int | None = None) -> CSRMatrix:
    """9-point (compact) 2D Laplacian: diag 8/3, edge -1/3, corner -1/3.

    Bilinear-FEM stencil ``(1/3) [[-1,-1,-1],[-1,8,-1],[-1,-1,-1]]``, useful
    for denser connectivity than the 5-point operator.
    """
    ny = nx if ny is None else ny
    idx = np.arange(nx * ny).reshape(ny, nx)
    rows, cols, vals = [], [], []

    def link(a, b, w):
        rows.extend([a.ravel(), b.ravel()])
        cols.extend([b.ravel(), a.ravel()])
        vals.extend([np.full(a.size, w), np.full(a.size, w)])

    third = -1.0 / 3.0
    link(idx[:, :-1], idx[:, 1:], third)          # E/W
    link(idx[:-1, :], idx[1:, :], third)          # N/S
    link(idx[:-1, :-1], idx[1:, 1:], third)       # NE/SW
    link(idx[:-1, 1:], idx[1:, :-1], third)       # NW/SE
    n = nx * ny
    rows.append(np.arange(n))
    cols.append(np.arange(n))
    vals.append(np.full(n, 8.0 / 3.0))
    return COOMatrix(np.concatenate(rows), np.concatenate(cols),
                     np.concatenate(vals), (n, n)).to_csr()


def poisson_3d(nx: int, ny: int | None = None, nz: int | None = None
               ) -> CSRMatrix:
    """7-point 3D Laplacian on an interior grid (Dirichlet boundary)."""
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    idx = np.arange(nx * ny * nz).reshape(nz, ny, nx)
    rows, cols, vals = [], [], []

    def link(a, b, w):
        rows.extend([a.ravel(), b.ravel()])
        cols.extend([b.ravel(), a.ravel()])
        vals.extend([np.full(a.size, w), np.full(a.size, w)])

    link(idx[:, :, :-1], idx[:, :, 1:], -1.0)
    link(idx[:, :-1, :], idx[:, 1:, :], -1.0)
    link(idx[:-1, :, :], idx[1:, :, :], -1.0)
    n = nx * ny * nz
    rows.append(np.arange(n))
    cols.append(np.arange(n))
    vals.append(np.full(n, 6.0))
    return COOMatrix(np.concatenate(rows), np.concatenate(cols),
                     np.concatenate(vals), (n, n)).to_csr()


def poisson_3d_27point(nx: int, ny: int | None = None, nz: int | None = None
                       ) -> CSRMatrix:
    """27-point 3D operator (trilinear-FEM-style connectivity).

    Weights: face -4/13, edge -1/13, corner -1/13 relative to a diagonal
    chosen as the negated neighbor sum plus a Dirichlet boundary term, giving
    an SPD M-matrix with 3D FEM-like connectivity (up to 26 neighbors/row),
    the connectivity class of the paper's bone010/audikw matrices.
    """
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    idx = np.arange(nx * ny * nz).reshape(nz, ny, nx)
    rows, cols, vals = [], [], []

    def link(a, b, w):
        rows.extend([a.ravel(), b.ravel()])
        cols.extend([b.ravel(), a.ravel()])
        vals.extend([np.full(a.size, w), np.full(a.size, w)])

    face, edge, corner = -4.0 / 13.0, -1.0 / 13.0, -1.0 / 13.0
    # 3 face directions
    link(idx[:, :, :-1], idx[:, :, 1:], face)
    link(idx[:, :-1, :], idx[:, 1:, :], face)
    link(idx[:-1, :, :], idx[1:, :, :], face)
    # 6 edge diagonals (two per coordinate plane)
    link(idx[:, :-1, :-1], idx[:, 1:, 1:], edge)
    link(idx[:, :-1, 1:], idx[:, 1:, :-1], edge)
    link(idx[:-1, :, :-1], idx[1:, :, 1:], edge)
    link(idx[:-1, :, 1:], idx[1:, :, :-1], edge)
    link(idx[:-1, :-1, :], idx[1:, 1:, :], edge)
    link(idx[:-1, 1:, :], idx[1:, :-1, :], edge)
    # 4 corner diagonals
    link(idx[:-1, :-1, :-1], idx[1:, 1:, 1:], corner)
    link(idx[:-1, :-1, 1:], idx[1:, 1:, :-1], corner)
    link(idx[:-1, 1:, :-1], idx[1:, :-1, 1:], corner)
    link(idx[:-1, 1:, 1:], idx[1:, :-1, :-1], corner)

    n = nx * ny * nz
    rows_cat = np.concatenate(rows)
    vals_cat = np.concatenate(vals)
    # diagonal = |neighbor sum| + Dirichlet boundary surplus so interior rows
    # are exactly weakly dominant and boundary rows strictly dominant.
    full_stencil = 6 * abs(face) + 12 * abs(edge) + 8 * abs(corner)
    diag = np.full(n, full_stencil)
    rows.append(np.arange(n))
    cols.append(np.arange(n))
    vals.append(diag)
    del rows_cat, vals_cat
    return COOMatrix(np.concatenate(rows), np.concatenate(cols),
                     np.concatenate(vals), (n, n)).to_csr()
