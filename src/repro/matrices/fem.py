"""P1 finite elements on irregular triangular meshes (scalar Poisson).

The paper's Figures 2 and 5 use "a finite element discretization of the
Poisson equation on a square domain.  Irregularly structured linear
triangular elements are used" with 3081 rows.  We reproduce that class of
problem: a jittered grid of points on the unit square, Delaunay-triangulated
(via ``scipy.spatial``), with the P1 stiffness matrix assembled from scratch
and homogeneous Dirichlet boundary eliminated.  ``fem_poisson_2d`` can hit an
exact interior row count (3081 by default) by discarding surplus interior
points before triangulating.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.matrices.problem import Problem
from repro.matrices.stream import iter_chunks, stream_coo_to_csr
from repro.sparsela import CSRMatrix, symmetric_unit_diagonal_scale

__all__ = ["TriangularMesh", "assemble_p1_stiffness", "fem_poisson_2d",
           "triangular_mesh"]


@dataclass(frozen=True)
class TriangularMesh:
    """An irregular triangulation of the unit square.

    Attributes
    ----------
    points:
        ``(n_pts, 2)`` vertex coordinates.
    triangles:
        ``(n_tri, 3)`` vertex indices (counter-clockwise).
    boundary:
        ``(n_pts,)`` boolean mask of vertices on the square's boundary.
    """

    points: np.ndarray
    triangles: np.ndarray
    boundary: np.ndarray

    @property
    def n_interior(self) -> int:
        return int((~self.boundary).sum())


def triangular_mesh(grid: int, jitter: float = 0.35, seed: int = 0,
                    drop_interior: int = 0) -> TriangularMesh:
    """Jittered-grid Delaunay mesh of the unit square.

    Parameters
    ----------
    grid:
        Points per side (total ``grid**2`` before dropping).
    jitter:
        Interior points are perturbed uniformly by ``±jitter*h`` in each
        coordinate (``h`` = grid spacing); boundary points stay put so the
        square's boundary is exact.
    drop_interior:
        Randomly remove this many interior points (used to hit an exact
        unknown count).
    """
    from scipy.spatial import Delaunay

    if grid < 3:
        raise ValueError("grid must be at least 3")
    rng = np.random.default_rng(seed)
    h = 1.0 / (grid - 1)
    xs, ys = np.meshgrid(np.linspace(0, 1, grid), np.linspace(0, 1, grid))
    pts = np.column_stack([xs.ravel(), ys.ravel()])
    on_boundary = ((pts[:, 0] == 0) | (pts[:, 0] == 1)
                   | (pts[:, 1] == 0) | (pts[:, 1] == 1))
    interior = np.flatnonzero(~on_boundary)
    pts[interior] += rng.uniform(-jitter * h, jitter * h, (interior.size, 2))
    if drop_interior:
        if drop_interior > interior.size:
            raise ValueError("cannot drop more interior points than exist")
        drop = rng.choice(interior, size=drop_interior, replace=False)
        keep = np.ones(pts.shape[0], dtype=bool)
        keep[drop] = False
        pts = pts[keep]
        on_boundary = on_boundary[keep]
    tri = Delaunay(pts)
    simplices = _orient_ccw(pts, tri.simplices)
    return TriangularMesh(points=pts, triangles=simplices,
                          boundary=on_boundary)


def _orient_ccw(pts: np.ndarray, tris: np.ndarray) -> np.ndarray:
    """Flip triangles so all have positive signed area."""
    p = pts[tris]
    area2 = ((p[:, 1, 0] - p[:, 0, 0]) * (p[:, 2, 1] - p[:, 0, 1])
             - (p[:, 2, 0] - p[:, 0, 0]) * (p[:, 1, 1] - p[:, 0, 1]))
    out = tris.copy()
    flip = area2 < 0
    out[flip, 1], out[flip, 2] = tris[flip, 2], tris[flip, 1]
    return out


def _element_ke(p: np.ndarray, K: np.ndarray | None) -> np.ndarray:
    """3×3 element stiffness matrices for a batch of triangle coords.

    Elementwise over triangles, so computing a chunk of elements yields
    bit-identical values to computing the whole batch at once.
    """
    # edge-opposite coefficient vectors: b_i = y_j - y_k, c_i = x_k - x_j
    j = [1, 2, 0]
    k = [2, 0, 1]
    b = p[:, j, 1] - p[:, k, 1]                 # (n_tri, 3)
    c = p[:, k, 0] - p[:, j, 0]
    area2 = b[:, 0] * c[:, 1] - b[:, 1] * c[:, 0]
    # for CCW triangles the doubled area equals b0*c1 - b1*c0 > 0
    if np.any(area2 <= 0):
        raise ValueError("degenerate or misoriented triangle in mesh")
    if K is None:
        ke = (b[:, :, None] * b[:, None, :] + c[:, :, None] * c[:, None, :])
    else:
        # basis gradient of vertex i is (b_i, c_i)/(2A); contract with K
        kb = K[0, 0] * b + K[0, 1] * c
        kc = K[1, 0] * b + K[1, 1] * c
        ke = (b[:, :, None] * kb[:, None, :] + c[:, :, None] * kc[:, None, :])
    ke /= (2.0 * area2)[:, None, None]          # K_e = A g_i^T K g_j
    return ke


# elements per assembly chunk: ~9 triplets/element keeps the live COO
# scratch around 30 MB regardless of mesh size
_TRI_BLOCK = 131072


def assemble_p1_stiffness(mesh: TriangularMesh,
                          tensor: np.ndarray | None = None,
                          tri_block: int = _TRI_BLOCK) -> CSRMatrix:
    """Assemble the P1 stiffness matrix with Dirichlet boundary eliminated.

    Vectorised over elements in chunks of ``tri_block`` triangles: per-
    triangle gradients of the barycentric basis give the 3×3 element
    matrix ``K_e[i,j] = (g_i^T K g_j) A`` with diffusion tensor ``K``
    (identity by default, i.e. ``(b_i b_j + c_i c_j)/(4A)``); the global
    accumulation streams each chunk into a collapsed CSR accumulator
    (:func:`repro.matrices.stream.stream_coo_to_csr`), bit-identical to
    the seed's whole-COO duplicate sum but without ever materialising
    the full triplet list.  A full (rotated anisotropic) tensor produces
    positive off-diagonal entries — an SPD but non-M-matrix, the
    character of the paper's flow matrices.  Returns the interior-only
    SPD matrix, with unknowns numbered in interior-point order.
    """
    pts, tris = mesh.points, mesh.triangles
    if tensor is None:
        K = None
    else:
        K = np.asarray(tensor, dtype=np.float64)
        if K.shape != (2, 2) or not np.allclose(K, K.T):
            raise ValueError("tensor must be a symmetric 2x2 matrix")
    n_pts = pts.shape[0]

    def chunks():
        for lo, hi in iter_chunks(tris.shape[0], tri_block):
            t = tris[lo:hi]
            ke = _element_ke(pts[t], K)         # (m, 3, 2) -> (m, 3, 3)
            rows = np.repeat(t, 3, axis=1).ravel()
            cols = np.tile(t, (1, 3)).ravel()
            vals = ke.transpose(0, 2, 1).ravel()
            yield rows, cols, vals

    full = stream_coo_to_csr(chunks(), (n_pts, n_pts))

    interior = np.flatnonzero(~mesh.boundary)
    return full.extract_block(interior, interior)


def rotation_tensor(epsilon: float, angle: float) -> np.ndarray:
    """Rotated anisotropic diffusion tensor ``R diag(1, eps) R^T``."""
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    ct, st = np.cos(angle), np.sin(angle)
    R = np.array([[ct, -st], [st, ct]])
    return R @ np.diag([1.0, epsilon]) @ R.T


def fem_rotated_anisotropic(target_rows: int, epsilon: float = 1e-3,
                            angle: float = np.pi / 6, seed: int = 0,
                            jitter: float = 0.35,
                            scale: bool = True) -> Problem:
    """P1 diffusion with a rotated anisotropic tensor (non-M-matrix SPD).

    The full tensor produces positive off-diagonal stiffness entries, the
    character of the paper's flow problem (StocF-1465) on which Block
    Jacobi struggles.  Mesh construction matches :func:`fem_poisson_2d`.
    """
    if target_rows < 1:
        raise ValueError("target_rows must be positive")
    grid = int(np.ceil(np.sqrt(target_rows))) + 2
    surplus = (grid - 2) ** 2 - target_rows
    mesh = triangular_mesh(grid, jitter=jitter, seed=seed,
                           drop_interior=surplus)
    A = assemble_p1_stiffness(mesh, tensor=rotation_tensor(epsilon, angle))
    meta = {"generator": "fem_rotated_anisotropic", "grid": grid,
            "seed": seed, "epsilon": epsilon, "angle": angle,
            "scaled": scale}
    if scale:
        A = symmetric_unit_diagonal_scale(A).matrix
    return Problem(name=f"fem_rotaniso_{A.n_rows}", matrix=A,
                   description="P1 rotated-anisotropic diffusion on an "
                               "irregular mesh (SPD, non-M-matrix)",
                   meta=meta)


def fem_poisson_2d(target_rows: int = 3081, seed: int = 0,
                   jitter: float = 0.35, scale: bool = True) -> Problem:
    """The paper's small irregular FEM Poisson problem (3081 rows).

    Chooses the smallest jittered grid with at least ``target_rows`` interior
    points and drops surplus interior points so the assembled system has
    exactly ``target_rows`` equations.  With ``scale=True`` (default) the
    matrix is symmetrically scaled to unit diagonal, as the paper does.
    """
    if target_rows < 1:
        raise ValueError("target_rows must be positive")
    grid = int(np.ceil(np.sqrt(target_rows))) + 2
    surplus = (grid - 2) ** 2 - target_rows
    mesh = triangular_mesh(grid, jitter=jitter, seed=seed,
                           drop_interior=surplus)
    A = assemble_p1_stiffness(mesh)
    meta = {"generator": "fem_poisson_2d", "grid": grid, "seed": seed,
            "jitter": jitter, "scaled": scale}
    if scale:
        A = symmetric_unit_diagonal_scale(A).matrix
    return Problem(name=f"fem_poisson_{A.n_rows}", matrix=A,
                   description="P1 FEM Poisson on an irregular triangular "
                               "mesh of the unit square (Figures 2/5 class)",
                   meta=meta)
