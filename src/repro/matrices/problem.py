"""Problem container shared by generators, the suite and experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.sparsela import CSRMatrix

__all__ = ["Problem"]


@dataclass
class Problem:
    """A named linear system ``A x = b`` ready for the solvers.

    Matrices are stored already symmetrically scaled to unit diagonal (the
    paper's convention); ``meta`` records generator parameters and, for suite
    members, which SuiteSparse matrix they stand in for.
    """

    name: str
    matrix: CSRMatrix
    description: str = ""
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def n(self) -> int:
        """Number of equations."""
        return self.matrix.n_rows

    @property
    def nnz(self) -> int:
        """Number of stored nonzeros."""
        return self.matrix.nnz

    def initial_state(self, seed: int = 0, x_zeros: bool = False
                      ) -> tuple[np.ndarray, np.ndarray]:
        """The paper's initial data convention (Section 4.2).

        Default (``x_zeros=False``): random initial guess, ``b = 0``, with
        ``x`` scaled so the initial residual satisfies ``‖r⁰‖₂ = 1``.  With
        ``x_zeros=True`` (the artifact's ``-x_zeros`` flag): ``x = 0`` and a
        random ``b`` scaled to unit norm.

        Returns ``(x0, b)``.
        """
        rng = np.random.default_rng(seed)
        if x_zeros:
            b = rng.uniform(-1.0, 1.0, self.n)
            b /= np.linalg.norm(b)
            return np.zeros(self.n), b
        x0 = rng.uniform(-1.0, 1.0, self.n)
        b = np.zeros(self.n)
        r0 = b - self.matrix.matvec(x0)
        nrm = np.linalg.norm(r0)
        if nrm == 0.0:
            raise ValueError("degenerate zero initial residual")
        return x0 / nrm, b

    def summary(self) -> str:
        """One-line description for tables and logs."""
        analog = self.meta.get("analog_of")
        tail = f" (analog of {analog})" if analog else ""
        return f"{self.name}: n={self.n:,} nnz={self.nnz:,}{tail}"
