"""Synthetic analog of the paper's SuiteSparse test suite (Table 1).

The paper evaluates on 14 SPD matrices from the SuiteSparse Matrix
Collection, 0.4M-1.6M rows.  The collection is not available offline, so
each matrix is replaced by a *named synthetic analog* of the same problem
class, scaled down (~1/43 in rows) to sizes a 2-core simulation sweeps in
minutes:

- The structural/elasticity matrices (Flan_1565, audikw_1, Serena, ...,
  msdoor) map to P1 plane-strain elasticity with the Poisson ratio ``nu``
  chosen per matrix: higher ``nu`` → less diagonal dominance → harder for
  Block Jacobi, mirroring the †-pattern of the paper's Table 2.
- StocF-1465 (porous-media flow) maps to a high-contrast jump-coefficient
  diffusion problem.
- af_5_k101 (the one matrix on which Block Jacobi never diverged) maps to a
  plain 5-point Poisson problem, which is weakly diagonally dominant and
  therefore safe for Block Jacobi.

Every problem is symmetrically scaled to unit diagonal, as in the paper.
``meta['paper_n']``/``meta['paper_nnz']`` record the true Table 1 sizes so
the Table 1 bench can print both.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.matrices.elasticity import elasticity_fem_2d
from repro.matrices.fem import fem_poisson_2d
from repro.matrices.poisson import poisson_2d, poisson_2d_jump
from repro.matrices.problem import Problem
from repro.sparsela import symmetric_unit_diagonal_scale

__all__ = ["SUITE_NAMES", "SuiteSpec", "load_problem", "load_suite",
           "suite_table"]


@dataclass(frozen=True)
class SuiteSpec:
    """Recipe for one suite member.

    Sizes and Poisson ratios are *calibrated* so the paper's Table 2
    †-pattern reproduces at the default experiment scale (P = 256
    simulated processes): Block Jacobi divergence is a block-size effect
    — in 2D plane-strain elasticity it needs subdomains of ≲ 35 rows at
    high ``nu`` — so the hard members sit at 5-10k rows rather than a
    uniform rescaling of the paper's sizes.
    """

    name: str
    generator: str          # 'elasticity' | 'jump' | 'poisson5'
    target_rows: int        # rows at size_scale = 1.0
    nu: float               # elasticity only
    mesh_seed: int          # generator seed (combined with the user seed)
    paper_n: int            # Table 1: number of equations
    paper_nnz: int          # Table 1: number of nonzeros
    note: str


_SPECS: tuple[SuiteSpec, ...] = (
    SuiteSpec("Flan_1565", "elasticity", 6000, 0.493, 10,
              1_564_794, 114_165_372,
              "3D shell elasticity; BJ diverges in the paper"),
    SuiteSpec("audikw_1", "elasticity", 6200, 0.490, 11,
              943_695, 77_651_847,
              "3D elasticity, very dense rows; BJ diverges"),
    SuiteSpec("Serena", "elasticity", 6800, 0.488, 12,
              1_382_121, 64_122_743,
              "gas-reservoir structural; BJ diverges"),
    SuiteSpec("Geo_1438", "elasticity", 9000, 0.488, 1,
              1_371_480, 60_169_842,
              "geomechanical; BJ reaches 0.1 then diverges"),
    SuiteSpec("Hook_1498", "elasticity", 10000, 0.490, 1,
              1_468_023, 59_344_451,
              "steel hook elasticity; BJ reaches 0.1 then diverges"),
    SuiteSpec("bone010", "elasticity", 6000, 0.490, 0,
              986_703, 47_851_783,
              "bone micro-FE; BJ shrinks then diverges"),
    SuiteSpec("ldoor", "elasticity", 6000, 0.485, 1,
              909_537, 42_451_151,
              "structural; BJ diverges"),
    SuiteSpec("boneS10", "elasticity", 5800, 0.490, 13,
              914_898, 40_878_708,
              "bone micro-FE; BJ diverges"),
    SuiteSpec("Emilia_923", "elasticity", 5500, 0.495, 2,
              908_712, 40_359_114,
              "geomechanical; the hardest member (paper: even Parallel "
              "Southwell misses 0.1 in 50 steps at 8192 processes)"),
    SuiteSpec("inline_1", "elasticity", 5000, 0.490, 14,
              503_712, 36_816_170,
              "inline skater elasticity; BJ diverges"),
    SuiteSpec("Fault_639", "elasticity", 5200, 0.495, 15,
              616_923, 27_224_065,
              "fault mechanics; hard (paper: Parallel Southwell misses "
              "0.1 in 50 steps at 8192 processes)"),
    SuiteSpec("StocF-1465", "elasticity", 7000, 0.485, 16,
              1_436_033, 20_976_285,
              "porous-media flow; mapped to the hard non-M SPD class "
              "because its defining paper behaviour is BJ failure"),
    SuiteSpec("msdoor", "elasticity", 4500, 0.485, 17,
              404_785, 19_162_085,
              "structural; BJ diverges"),
    SuiteSpec("af_5_k101", "poisson5", 12100, 0.0, 0,
              503_625, 17_550_675,
              "sheet stiffness -> plain 5-point Poisson; BJ never diverges"),
)

SUITE_NAMES: tuple[str, ...] = tuple(s.name for s in _SPECS)
_BY_NAME = {s.name: s for s in _SPECS}


@lru_cache(maxsize=32)
def load_problem(name: str, size_scale: float = 1.0, seed: int = 0) -> Problem:
    """Build (and cache) one suite member.

    Parameters
    ----------
    name:
        A Table 1 matrix name (see :data:`SUITE_NAMES`).
    size_scale:
        Multiplies the analog's row count; tests use small values (e.g.
        0.05) for fast instances of the same problem class.
    seed:
        Mesh/coefficient randomness seed.
    """
    if name not in _BY_NAME:
        raise KeyError(f"unknown suite matrix {name!r}; "
                       f"choices: {', '.join(SUITE_NAMES)}")
    spec = _BY_NAME[name]
    rows = max(64, int(round(spec.target_rows * size_scale)))
    gen_seed = spec.mesh_seed + 1000 * seed
    if spec.generator == "elasticity":
        prob = elasticity_fem_2d(target_rows=rows, nu=spec.nu, seed=gen_seed)
    elif spec.generator == "jump":
        side = max(8, int(round(rows ** 0.5)))
        A = poisson_2d_jump(side, side, contrast=1e3, seed=gen_seed)
        prob = Problem(name=name,
                       matrix=symmetric_unit_diagonal_scale(A).matrix,
                       meta={"generator": "poisson_2d_jump", "side": side})
    elif spec.generator == "poisson5":
        side = max(8, int(round(rows ** 0.5)))
        A = poisson_2d(side, side)
        prob = Problem(name=name,
                       matrix=symmetric_unit_diagonal_scale(A).matrix,
                       meta={"generator": "poisson_2d", "side": side})
    else:  # pragma: no cover - specs are static
        raise AssertionError(f"bad generator {spec.generator}")
    prob.name = name
    prob.description = spec.note
    prob.meta.update({
        "analog_of": name,
        "paper_n": spec.paper_n,
        "paper_nnz": spec.paper_nnz,
        "size_scale": size_scale,
        "nu": spec.nu if spec.generator == "elasticity" else None,
    })
    return prob


def load_suite(size_scale: float = 1.0, seed: int = 0,
               names: tuple[str, ...] | None = None) -> list[Problem]:
    """Build every (or the named subset of) suite member(s)."""
    names = SUITE_NAMES if names is None else names
    return [load_problem(name, size_scale=size_scale, seed=seed)
            for name in names]


def suite_table(size_scale: float = 1.0) -> list[dict]:
    """Rows for the Table 1 reproduction: paper sizes next to analog sizes."""
    out = []
    for name in SUITE_NAMES:
        prob = load_problem(name, size_scale=size_scale)
        spec = _BY_NAME[name]
        out.append({
            "matrix": name,
            "paper_nonzeros": spec.paper_nnz,
            "paper_equations": spec.paper_n,
            "analog_nonzeros": prob.nnz,
            "analog_equations": prob.n,
            "analog_generator": prob.meta.get("generator",
                                              prob.meta.get("analog_of")),
        })
    return out
