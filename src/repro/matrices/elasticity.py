"""P1 plane-strain linear elasticity on irregular triangular meshes.

The hard matrices in the paper's suite (Flan_1565, audikw_1, bone010,
Emilia_923, Fault_639, ...) are 3D structural/elasticity problems: SPD but
strongly *non*-diagonally-dominant after unit-diagonal scaling, which is
exactly the regime where Block Jacobi with small blocks diverges.  Plane-
strain P1 elasticity reproduces that character in 2D: two displacement
degrees of freedom per mesh vertex, vector coupling between them, and
off-diagonal mass that grows as the Poisson ratio ``nu`` approaches the
incompressible limit 0.5.
"""

from __future__ import annotations

import numpy as np

from repro.matrices.fem import TriangularMesh, triangular_mesh
from repro.matrices.problem import Problem
from repro.sparsela import COOMatrix, CSRMatrix, symmetric_unit_diagonal_scale

__all__ = ["assemble_elasticity", "elasticity_fem_2d"]


def _elastic_moduli(young: float, nu: float) -> np.ndarray:
    """Plane-strain constitutive matrix ``D`` (Voigt notation)."""
    if not 0.0 <= nu < 0.5:
        raise ValueError("plane strain needs 0 <= nu < 0.5")
    factor = young / ((1.0 + nu) * (1.0 - 2.0 * nu))
    return factor * np.array([
        [1.0 - nu, nu, 0.0],
        [nu, 1.0 - nu, 0.0],
        [0.0, 0.0, (1.0 - 2.0 * nu) / 2.0],
    ])


def assemble_elasticity(mesh: TriangularMesh, young: float = 1.0,
                        nu: float = 0.3) -> CSRMatrix:
    """Assemble the P1 plane-strain stiffness matrix, Dirichlet-eliminated.

    Degrees of freedom interleave as ``(u_x, u_y)`` per interior vertex.  The
    element matrix is the standard ``A_e * B^T D B`` with the 3×6
    strain-displacement matrix ``B`` built from barycentric gradients; the
    whole assembly is vectorised over elements with one einsum.
    """
    pts, tris = mesh.points, mesh.triangles
    p = pts[tris]
    j = [1, 2, 0]
    k = [2, 0, 1]
    b = p[:, j, 1] - p[:, k, 1]
    c = p[:, k, 0] - p[:, j, 0]
    area2 = b[:, 0] * c[:, 1] - b[:, 1] * c[:, 0]
    if np.any(area2 <= 0):
        raise ValueError("degenerate or misoriented triangle in mesh")
    n_tri = tris.shape[0]

    # B is 3x6: rows (eps_xx, eps_yy, gamma_xy); columns (u1x,u1y,...,u3y).
    B = np.zeros((n_tri, 3, 6))
    inv2a = 1.0 / area2
    for loc in range(3):
        B[:, 0, 2 * loc] = b[:, loc] * inv2a
        B[:, 1, 2 * loc + 1] = c[:, loc] * inv2a
        B[:, 2, 2 * loc] = c[:, loc] * inv2a
        B[:, 2, 2 * loc + 1] = b[:, loc] * inv2a
    D = _elastic_moduli(young, nu)
    area = 0.5 * area2
    ke = np.einsum("tpi,pq,tqj,t->tij", B, D, B, area, optimize=True)

    dof = np.empty((n_tri, 6), dtype=np.int64)
    dof[:, 0::2] = 2 * tris
    dof[:, 1::2] = 2 * tris + 1
    rows = np.repeat(dof, 6, axis=1).ravel()
    cols = np.tile(dof, (1, 6)).ravel()
    n_dof = 2 * pts.shape[0]
    full = COOMatrix(rows, cols, ke.ravel(), (n_dof, n_dof)).to_csr()

    interior_pts = np.flatnonzero(~mesh.boundary)
    keep = np.empty(2 * interior_pts.size, dtype=np.int64)
    keep[0::2] = 2 * interior_pts
    keep[1::2] = 2 * interior_pts + 1
    return full.extract_block(keep, keep)


def elasticity_fem_2d(target_rows: int = 2000, nu: float = 0.3,
                      seed: int = 0, jitter: float = 0.3,
                      scale: bool = True) -> Problem:
    """An elasticity Problem with approximately ``target_rows`` equations.

    ``target_rows`` counts scalar equations (2 per interior vertex); the
    actual count is the nearest even value reachable on a jittered grid.
    Higher ``nu`` (e.g. 0.45) yields a harder, less diagonally dominant
    system — the bone010/Emilia class; ``nu = 0.3`` is the milder
    Flan/audikw class.
    """
    if target_rows < 2:
        raise ValueError("target_rows must be at least 2")
    n_vertices = target_rows // 2
    grid = int(np.ceil(np.sqrt(n_vertices))) + 2
    surplus = (grid - 2) ** 2 - n_vertices
    mesh = triangular_mesh(grid, jitter=jitter, seed=seed,
                           drop_interior=surplus)
    A = assemble_elasticity(mesh, nu=nu)
    meta = {"generator": "elasticity_fem_2d", "grid": grid, "nu": nu,
            "seed": seed, "scaled": scale}
    if scale:
        A = symmetric_unit_diagonal_scale(A).matrix
    return Problem(name=f"elasticity_{A.n_rows}_nu{nu}", matrix=A,
                   description="P1 plane-strain elasticity on an irregular "
                               "triangular mesh (hard SPD class)",
                   meta=meta)
