"""Central run configuration: every ``REPRO_*`` knob in one place.

The package grew one environment variable per subsystem — the kernel
backend (``REPRO_BACKEND``), the message-plane mode (``REPRO_RUNTIME``),
the sweep pool size (``REPRO_WORKERS``), the sweep cache directory
(``REPRO_SWEEP_CACHE``) — and PR 3 adds run tracing (``REPRO_TRACE``).
This module is the single read-through point for all of them, with one
documented precedence rule:

    explicit argument  >  programmatic override  >  environment  >  default

*Explicit argument* is a value passed to a getter here (ultimately a
:class:`~repro.api.RunConfig` field or a function kwarg); *programmatic
override* is :func:`repro.sparsela.backend.set_backend` /
:func:`repro.runtime.flatplane.set_runtime_mode` state, which the
subsystem modules keep (this module never mutates them); unset or junk
environment values fall back to the default rather than breaking a run.

``repro config`` on the command line prints :func:`describe` — every
knob with its environment variable, effective value, and where that
value came from.

This module imports nothing from the rest of the package so every
subsystem (including ``repro.sparsela`` and ``repro.runtime``, which are
imported during package init) can read through it without cycles.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "ENV_ASYNC_LATENCY",
    "ENV_ASYNC_SCHEDULER",
    "ENV_ASYNC_SPEED",
    "ENV_BACKEND",
    "ENV_FAULTS",
    "ENV_MG_BUDGET",
    "ENV_MG_CYCLES",
    "ENV_MG_DROP_TOL",
    "ENV_MG_LEVELS",
    "ENV_MG_SMOOTHER",
    "ENV_RUNTIME",
    "ENV_SETUP_CACHE",
    "ENV_SHM_MB",
    "ENV_SWEEP_CACHE",
    "ENV_TRACE",
    "ENV_WORKERS",
    "KNOBS",
    "Knob",
    "VALID_ASYNC_SCHEDULERS",
    "VALID_MG_SMOOTHERS",
    "VALID_RUNTIME_MODES",
    "async_latency",
    "async_scheduler",
    "async_speed_factors",
    "backend",
    "parse_speed_factors",
    "describe",
    "faults_spec",
    "mg_budget",
    "mg_cycles",
    "mg_drop_tol",
    "mg_levels",
    "mg_smoother",
    "runtime",
    "setup_cache_dir",
    "setup_cache_spec",
    "shm_mb",
    "shm_workers",
    "sweep_cache",
    "trace_active",
    "trace_dir",
    "trace_spec",
    "workers",
]

ENV_BACKEND = "REPRO_BACKEND"
ENV_RUNTIME = "REPRO_RUNTIME"
ENV_WORKERS = "REPRO_WORKERS"
ENV_SWEEP_CACHE = "REPRO_SWEEP_CACHE"
ENV_TRACE = "REPRO_TRACE"
ENV_SETUP_CACHE = "REPRO_SETUP_CACHE"
ENV_FAULTS = "REPRO_FAULTS"
ENV_SHM_MB = "REPRO_SHM_MB"
ENV_ASYNC_LATENCY = "REPRO_ASYNC_LATENCY"
ENV_ASYNC_SPEED = "REPRO_ASYNC_SPEED_FACTORS"
ENV_ASYNC_SCHEDULER = "REPRO_ASYNC_SCHEDULER"
ENV_MG_SMOOTHER = "REPRO_MG_SMOOTHER"
ENV_MG_BUDGET = "REPRO_MG_BUDGET"
ENV_MG_DROP_TOL = "REPRO_MG_DROP_TOL"
ENV_MG_CYCLES = "REPRO_MG_CYCLES"
ENV_MG_LEVELS = "REPRO_MG_LEVELS"

#: message-plane modes accepted by ``REPRO_RUNTIME`` / ``set_runtime_mode``;
#: ``shm`` is the flat plane plus a shared-memory worker pool that runs the
#: per-rank phases on real OS processes (DESIGN.md §5.12); ``async`` is the
#: flat plane driven by the discrete-event executor instead of lockstep
#: epochs (DESIGN.md §5.14)
VALID_RUNTIME_MODES = ("auto", "flat", "shm", "async", "object")

#: simulated one-way network latency (seconds) for the async runtime
DEFAULT_ASYNC_LATENCY = 5e-6

#: async event-loop schedulers: ``scalar`` is the one-rank-per-turn heap
#: oracle, ``batched`` the event-horizon macro-turn engine that executes
#: every rank below the lookahead horizon in vectorized phases — both
#: produce bit-identical results (DESIGN.md §5.15)
VALID_ASYNC_SCHEDULERS = ("scalar", "batched")
DEFAULT_ASYNC_SCHEDULER = "scalar"

#: multigrid smoother names accepted by ``REPRO_MG_SMOOTHER`` /
#: ``MultigridConfig.smoother``: the block methods run the real
#: distributed runtime inside the V-cycle; the ``scalar-*`` forms are
#: the paper's published Figure 6 smoothers; ``gs`` is the baseline
VALID_MG_SMOOTHERS = ("ds", "ps", "bj", "gs", "scalar-ds", "scalar-ps")
DEFAULT_MG_SMOOTHER = "ds"
DEFAULT_MG_BUDGET = 1.0
DEFAULT_MG_DROP_TOL = 0.0
DEFAULT_MG_CYCLES = 9

#: ``REPRO_TRACE`` spellings meaning "off" (same set as unset)
_TRACE_OFF = ("", "0", "off", "false", "no")
#: ``REPRO_TRACE`` spellings meaning "on, in memory" (events recorded and
#: discarded — the CI zero-behavior-change guard); any other value is a
#: directory that per-run trace files are written into
_TRACE_ON = ("1", "on", "true", "yes")

#: ``REPRO_SETUP_CACHE`` spellings meaning "on, in the default directory";
#: the off set is shared with ``REPRO_TRACE``, any other value is a
#: directory path
_SETUP_ON = ("1", "on", "true", "yes")


@dataclass(frozen=True)
class Knob:
    """One documented configuration knob."""

    env: str
    default: str
    doc: str


KNOBS: tuple[Knob, ...] = (
    Knob(ENV_BACKEND, "scipy (reference if scipy is missing)",
         "kernel backend: reference | scipy | numba"),
    Knob(ENV_RUNTIME, "auto",
         "message plane: auto | flat | shm (flat + worker pool) | object"),
    Knob(ENV_WORKERS, "0",
         "worker-pool size: sweep pool (< 2 runs inline) and shm runtime "
         "ranks (< 1 uses the core count)"),
    Knob(ENV_SWEEP_CACHE, "~/.cache/repro-southwell",
         "on-disk sweep result cache directory"),
    Knob(ENV_TRACE, "off",
         "run tracing: off | 1 (in-memory) | <dir> (one file per run)"),
    Knob(ENV_SETUP_CACHE, "off",
         "persistent setup cache (partitions + block systems): "
         "off | 1 (default dir) | <dir>"),
    Knob(ENV_FAULTS, "off",
         "fault injection: off | <path to a FaultPlan JSON file>"),
    Knob(ENV_SHM_MB, "0",
         "shared-memory segment floor in MB for the shm runtime "
         "(0 = size from demand; raise it when ShmArena reports overflow)"),
    Knob(ENV_ASYNC_LATENCY, "5e-06",
         "async runtime one-way network latency in simulated seconds"),
    Knob(ENV_ASYNC_SPEED, "none",
         "async runtime straggler spec: 'rank:factor,rank:factor' "
         "(factor < 1 slows that rank's compute)"),
    Knob(ENV_ASYNC_SCHEDULER, "scalar",
         "async event-loop scheduler: scalar (per-turn heap oracle) | "
         "batched (vectorized event-horizon macro-turns, bit-identical)"),
    Knob(ENV_MG_SMOOTHER, "ds",
         "multigrid smoother: ds | ps | bj (block methods) | gs | "
         "scalar-ds | scalar-ps"),
    Knob(ENV_MG_BUDGET, "1.0",
         "multigrid smoothing budget in sweeps (relaxations per "
         "application = budget * level rows)"),
    Knob(ENV_MG_DROP_TOL, "0.0",
         "Galerkin coarse-operator sparsification threshold "
         "(|a_ij| < tol*sqrt(|a_ii*a_jj|) entries are dropped)"),
    Knob(ENV_MG_CYCLES, "9",
         "multigrid V-cycles per solve (the paper's Figure 6 runs 9)"),
    Knob(ENV_MG_LEVELS, "all",
         "multigrid hierarchy depth: all | an integer >= 2 "
         "(truncated hierarchies solve a bigger coarsest system)"),
)


def _env(var: str) -> str | None:
    """The stripped environment value, or ``None`` when unset/empty."""
    val = os.environ.get(var, "").strip()
    return val or None


# ----------------------------------------------------------------------
# typed getters (explicit argument > environment > default)
# ----------------------------------------------------------------------
def backend(explicit: str | None = None) -> str | None:
    """Requested kernel-backend name, or ``None`` for "use the default".

    Availability resolution (scipy importable? numba importable?) stays
    in :mod:`repro.sparsela.backend`; this only answers "what was asked
    for".
    """
    return explicit if explicit else _env(ENV_BACKEND)


def runtime(explicit: str | None = None) -> str:
    """The message-plane mode; junk values degrade to ``auto``."""
    mode = (explicit if explicit else _env(ENV_RUNTIME)) or "auto"
    mode = mode.strip().lower()
    return mode if mode in VALID_RUNTIME_MODES else "auto"


def workers(explicit: int | None = None) -> int:
    """Sweep pool size; non-integers degrade to 0 (serial)."""
    if explicit is not None:
        return int(explicit)
    try:
        return int(_env(ENV_WORKERS) or 0)
    except ValueError:
        return 0


def shm_workers(explicit: int | None = None) -> int:
    """Worker count for the ``shm`` runtime (``REPRO_WORKERS`` reuse).

    An explicit value (argument or environment) is honored as-is so tests
    and CI can run 2 workers on any box; when unset (the sweep default of
    0) the pool sizes itself to the machine's core count — the tentpole's
    "W ≤ physical cores" contract for unattended runs.
    """
    w = workers(explicit)
    if w < 1:
        w = os.cpu_count() or 1
    return max(1, w)


def shm_mb(explicit: int | None = None) -> int:
    """Shared-memory segment floor in MB for the shm runtime.

    The segment is sized from actual demand (DESIGN.md §5.13); this knob
    only raises that to a floor — the actionable escape hatch the
    :class:`~repro.runtime.shmplane.ShmArenaOverflow` error suggests
    when a rehome hook needs more than the estimate.  Junk or negative
    values degrade to 0 (pure demand sizing).
    """
    if explicit is not None:
        return max(0, int(explicit))
    try:
        return max(0, int(_env(ENV_SHM_MB) or 0))
    except ValueError:
        return 0


def sweep_cache(explicit: Path | str | None = None) -> Path:
    """The on-disk sweep cache directory."""
    if explicit is not None:
        return Path(explicit)
    env = _env(ENV_SWEEP_CACHE)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-southwell"


def trace_spec(explicit: str | None = None) -> str | None:
    """Normalised ``REPRO_TRACE`` value: ``None`` (off), ``"1"``
    (in-memory), or a directory path (one trace file per run)."""
    raw = explicit if explicit is not None else _env(ENV_TRACE)
    if raw is None or raw.strip().lower() in _TRACE_OFF:
        return None
    if raw.strip().lower() in _TRACE_ON:
        return "1"
    return raw


def trace_active(explicit: str | None = None) -> bool:
    """Should runs construct a recording tracer by default?"""
    return trace_spec(explicit) is not None


def trace_dir(explicit: str | None = None) -> Path | None:
    """Directory per-run trace files go to, or ``None`` (off/in-memory)."""
    spec = trace_spec(explicit)
    if spec is None or spec == "1":
        return None
    return Path(spec)


def faults_spec(explicit: str | None = None) -> str | None:
    """Normalised ``REPRO_FAULTS`` value: ``None`` (off) or the path of
    a :meth:`repro.faults.FaultPlan.to_json` plan file.

    Loading/validating the plan stays in :mod:`repro.faults`; this only
    answers "which plan file was asked for".  Callers also use the
    returned string as a cache-key component so cached run results are
    never shared across different fault plans.
    """
    raw = explicit if explicit is not None else _env(ENV_FAULTS)
    if raw is None or raw.strip().lower() in _TRACE_OFF:
        return None
    return raw


def setup_cache_spec(explicit: str | Path | None = None) -> str | None:
    """Normalised ``REPRO_SETUP_CACHE`` value: ``None`` (off), ``"1"``
    (on, default directory), or a directory path."""
    raw = str(explicit) if explicit is not None else _env(ENV_SETUP_CACHE)
    if raw is None or raw.strip().lower() in _TRACE_OFF:
        return None
    if raw.strip().lower() in _SETUP_ON:
        return "1"
    return raw


def setup_cache_dir(explicit: str | Path | None = None) -> Path | None:
    """The setup-cache directory, or ``None`` when the cache is off.

    The default directory lives beside the sweep cache so one
    ``rm -rf ~/.cache/repro-southwell`` clears both.
    """
    spec = setup_cache_spec(explicit)
    if spec is None:
        return None
    if spec == "1":
        return Path.home() / ".cache" / "repro-southwell" / "setup"
    return Path(spec)


def async_latency(explicit: float | None = None) -> float:
    """One-way simulated network latency (seconds) for the async runtime.

    Junk or negative environment values degrade to the default rather
    than breaking a run; an explicit negative argument is a programming
    error and raises.
    """
    if explicit is not None:
        lat = float(explicit)
        if lat < 0.0:
            raise ValueError("async latency must be non-negative")
        return lat
    try:
        lat = float(_env(ENV_ASYNC_LATENCY) or DEFAULT_ASYNC_LATENCY)
    except ValueError:
        return DEFAULT_ASYNC_LATENCY
    return lat if lat >= 0.0 else DEFAULT_ASYNC_LATENCY


def async_scheduler(explicit: str | None = None) -> str:
    """Async event-loop scheduler: ``scalar`` or ``batched``.

    A junk environment value degrades to the scalar oracle; an explicit
    junk argument is a programming error and raises.
    """
    if explicit is not None:
        val = str(explicit).strip().lower()
        if val not in VALID_ASYNC_SCHEDULERS:
            raise ValueError(
                f"unknown async scheduler {explicit!r}; expected one of "
                f"{', '.join(VALID_ASYNC_SCHEDULERS)}")
        return val
    env = (_env(ENV_ASYNC_SCHEDULER) or "").strip().lower()
    return env if env in VALID_ASYNC_SCHEDULERS else DEFAULT_ASYNC_SCHEDULER


def parse_speed_factors(spec: str) -> tuple[tuple[int, float], ...]:
    """Parse a ``"rank:factor,rank:factor"`` straggler spec.

    Raises :class:`ValueError` on malformed entries or non-positive
    factors — the CLI and :func:`async_speed_factors` share this.
    """
    out: list[tuple[int, float]] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        rank_s, sep, factor_s = part.partition(":")
        if not sep:
            raise ValueError(
                f"speed-factor entry {part!r} is not 'rank:factor'")
        rank = int(rank_s)
        factor = float(factor_s)
        if rank < 0:
            raise ValueError(f"speed-factor rank {rank} is negative")
        if factor <= 0.0:
            raise ValueError(f"speed factor {factor} must be positive")
        out.append((rank, factor))
    return tuple(out)


def async_speed_factors(
    explicit: tuple[tuple[int, float], ...] | str | None = None,
) -> tuple[tuple[int, float], ...] | None:
    """Per-rank straggler factors for the async runtime, or ``None``.

    Accepts an already-parsed ``((rank, factor), ...)`` tuple or a
    ``"rank:factor,..."`` string.  A junk environment value degrades to
    ``None``; an explicit junk argument raises.
    """
    if explicit is not None:
        if isinstance(explicit, str):
            return parse_speed_factors(explicit) or None
        return tuple((int(r), float(f)) for r, f in explicit) or None
    env = _env(ENV_ASYNC_SPEED)
    if env is None or env.strip().lower() in ("none", "off"):
        return None
    try:
        return parse_speed_factors(env) or None
    except ValueError:
        return None


def mg_smoother(explicit: str | None = None) -> str:
    """Multigrid smoother name (:data:`VALID_MG_SMOOTHERS`).

    A junk environment value degrades to the default (``ds``); an
    explicit junk argument is a programming error and raises.
    """
    if explicit is not None:
        val = str(explicit).strip().lower()
        if val not in VALID_MG_SMOOTHERS:
            raise ValueError(
                f"unknown multigrid smoother {explicit!r}; expected one "
                f"of {', '.join(VALID_MG_SMOOTHERS)}")
        return val
    env = (_env(ENV_MG_SMOOTHER) or "").strip().lower()
    return env if env in VALID_MG_SMOOTHERS else DEFAULT_MG_SMOOTHER


def mg_budget(explicit: float | None = None) -> float:
    """Smoothing budget in sweeps (relaxations = budget × level rows).

    Junk or non-positive environment values degrade to 1.0; an explicit
    non-positive argument raises.
    """
    if explicit is not None:
        budget = float(explicit)
        if budget <= 0.0:
            raise ValueError("multigrid smoothing budget must be positive")
        return budget
    try:
        budget = float(_env(ENV_MG_BUDGET) or DEFAULT_MG_BUDGET)
    except ValueError:
        return DEFAULT_MG_BUDGET
    return budget if budget > 0.0 else DEFAULT_MG_BUDGET


def mg_drop_tol(explicit: float | None = None) -> float:
    """Galerkin sparsification threshold (0 = keep the exact operator).

    Junk or negative environment values degrade to 0.0; an explicit
    negative argument raises.
    """
    if explicit is not None:
        tol = float(explicit)
        if tol < 0.0:
            raise ValueError("multigrid drop_tol must be non-negative")
        return tol
    try:
        tol = float(_env(ENV_MG_DROP_TOL) or DEFAULT_MG_DROP_TOL)
    except ValueError:
        return DEFAULT_MG_DROP_TOL
    return tol if tol >= 0.0 else DEFAULT_MG_DROP_TOL


def mg_cycles(explicit: int | None = None) -> int:
    """V-cycles per solve; junk environment values degrade to 9."""
    if explicit is not None:
        cycles = int(explicit)
        if cycles < 1:
            raise ValueError("multigrid needs at least one V-cycle")
        return cycles
    try:
        cycles = int(_env(ENV_MG_CYCLES) or DEFAULT_MG_CYCLES)
    except ValueError:
        return DEFAULT_MG_CYCLES
    return cycles if cycles >= 1 else DEFAULT_MG_CYCLES


def mg_levels(explicit: int | None = None) -> int | None:
    """Hierarchy depth, or ``None`` for "coarsen all the way to 3×3".

    Junk environment values (including anything below 2) degrade to the
    full hierarchy; an explicit value below 2 raises.
    """
    if explicit is not None:
        levels = int(explicit)
        if levels < 2:
            raise ValueError("a multigrid hierarchy needs at least 2 levels")
        return levels
    env = _env(ENV_MG_LEVELS)
    if env is None or env.strip().lower() in ("all", "full", "none"):
        return None
    try:
        levels = int(env)
    except ValueError:
        return None
    return levels if levels >= 2 else None


# ----------------------------------------------------------------------
# reporting
# ----------------------------------------------------------------------
def _effective(knob: Knob) -> tuple[str, str]:
    """``(value, source)`` for one knob, seeing programmatic overrides."""
    if knob.env == ENV_BACKEND:
        # lazy: repro.sparsela imports this module during package init
        from repro.sparsela import backend as backend_mod

        if backend_mod._current is not None:
            return backend_mod._current.name, "active (set_backend/env)"
        env = _env(ENV_BACKEND)
        if env:
            return env, "environment"
        return backend_mod.default_backend_name(), "default"
    if knob.env == ENV_RUNTIME:
        from repro.runtime import flatplane

        if flatplane._mode_override is not None:
            return flatplane._mode_override, "set_runtime_mode()"
        return runtime(), "environment" if _env(ENV_RUNTIME) else "default"
    if knob.env == ENV_WORKERS:
        return str(workers()), "environment" if _env(ENV_WORKERS) else "default"
    if knob.env == ENV_SWEEP_CACHE:
        return (str(sweep_cache()),
                "environment" if _env(ENV_SWEEP_CACHE) else "default")
    if knob.env == ENV_TRACE:
        spec = trace_spec()
        if spec is None:
            return "off", "environment" if _env(ENV_TRACE) else "default"
        return ("in-memory" if spec == "1" else spec), "environment"
    if knob.env == ENV_SETUP_CACHE:
        cdir = setup_cache_dir()
        if cdir is None:
            return ("off",
                    "environment" if _env(ENV_SETUP_CACHE) else "default")
        return str(cdir), "environment"
    if knob.env == ENV_FAULTS:
        spec = faults_spec()
        if spec is None:
            return "off", "environment" if _env(ENV_FAULTS) else "default"
        return spec, "environment"
    if knob.env == ENV_SHM_MB:
        return (str(shm_mb()),
                "environment" if _env(ENV_SHM_MB) else "default")
    if knob.env == ENV_ASYNC_LATENCY:
        return (repr(async_latency()),
                "environment" if _env(ENV_ASYNC_LATENCY) else "default")
    if knob.env == ENV_ASYNC_SPEED:
        factors = async_speed_factors()
        if factors is None:
            return ("none",
                    "environment" if _env(ENV_ASYNC_SPEED) else "default")
        return (",".join(f"{r}:{f:g}" for r, f in factors), "environment")
    if knob.env == ENV_ASYNC_SCHEDULER:
        return (async_scheduler(),
                "environment" if _env(ENV_ASYNC_SCHEDULER) else "default")
    if knob.env == ENV_MG_SMOOTHER:
        return (mg_smoother(),
                "environment" if _env(ENV_MG_SMOOTHER) else "default")
    if knob.env == ENV_MG_BUDGET:
        return (repr(mg_budget()),
                "environment" if _env(ENV_MG_BUDGET) else "default")
    if knob.env == ENV_MG_DROP_TOL:
        return (repr(mg_drop_tol()),
                "environment" if _env(ENV_MG_DROP_TOL) else "default")
    if knob.env == ENV_MG_CYCLES:
        return (str(mg_cycles()),
                "environment" if _env(ENV_MG_CYCLES) else "default")
    if knob.env == ENV_MG_LEVELS:
        levels = mg_levels()
        return ("all" if levels is None else str(levels),
                "environment" if _env(ENV_MG_LEVELS) else "default")
    raise ValueError(f"unknown knob {knob.env}")  # pragma: no cover


def describe() -> str:
    """Human-readable table of every knob: value, source, meaning.

    Printed by the ``repro config`` CLI subcommand; the precedence rule
    in the header is the module's contract.
    """
    lines = ["configuration (precedence: explicit arg > programmatic "
             "override > env > default)", ""]
    rows = []
    for knob in KNOBS:
        value, source = _effective(knob)
        rows.append((knob.env, value, source, knob.doc))
    w0 = max(len(r[0]) for r in rows)
    w1 = max(len(r[1]) for r in rows)
    w2 = max(len(r[2]) for r in rows)
    for env, value, source, doc in rows:
        lines.append(f"  {env:<{w0}}  {value:<{w1}}  [{source:<{w2}}]  {doc}")
    return "\n".join(lines)
