"""Graph partitioning (METIS substitute) and multicoloring.

The paper partitions each matrix with METIS, one subdomain per MPI process
(Section 2.4).  This package provides a from-scratch multilevel recursive-
bisection partitioner with the same three phases as METIS (heavy-edge
matching coarsening, greedy graph-growing initial partition, FM boundary
refinement), plus regular-grid blocks, quality metrics, and the greedy BFS
multicoloring used by Multicolor Gauss-Seidel.

The main entry point is :func:`partition`, which returns a
:class:`Partition` bundling the labels with everything the distributed
solvers need (row offsets, permutation, neighbor topology).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.partition.bisect import fm_refine, greedy_grow_bisection
from repro.partition.coarsen import (
    coarsen_graph,
    coarsen_labels,
    heavy_edge_matching,
    matching_relabel,
)
from repro.partition.coloring import (
    color_classes,
    greedy_coloring,
    is_valid_coloring,
)
from repro.partition.graph import Graph, matrix_graph
from repro.partition.grid import factor_near_square, grid_blocks_2d
from repro.partition.metrics import (
    edge_cut,
    imbalance,
    neighbor_lists,
    parts_are_valid,
)
from repro.partition.multilevel import (
    multilevel_bisection,
    partition_graph,
    partition_matrix,
    partition_matrix_coarse,
)
from repro.partition.spectral import (
    fiedler_vector,
    spectral_bisection,
    spectral_partition,
)
from repro.sparsela import CSRMatrix

__all__ = [
    "Graph",
    "Partition",
    "coarsen_graph",
    "coarsen_labels",
    "color_classes",
    "edge_cut",
    "factor_near_square",
    "fiedler_vector",
    "fm_refine",
    "greedy_coloring",
    "greedy_grow_bisection",
    "grid_blocks_2d",
    "heavy_edge_matching",
    "imbalance",
    "is_valid_coloring",
    "matching_relabel",
    "matrix_graph",
    "multilevel_bisection",
    "neighbor_lists",
    "partition",
    "partition_from_parts",
    "partition_graph",
    "partition_matrix",
    "partition_matrix_coarse",
    "parts_are_valid",
    "spectral_bisection",
    "spectral_partition",
]


@dataclass(frozen=True)
class Partition:
    """A row partition in the form the distributed solvers consume.

    Attributes
    ----------
    parts:
        ``parts[row] = owning process`` in *original* row numbering.
    n_parts:
        Number of processes ``P``.
    perm:
        Permutation grouping rows by part: ``perm[k]`` is the original row
        at global position ``k`` after renumbering (part 0's rows first).
    offsets:
        The paper's ``δ`` array — ``P+1`` prefix offsets; process ``p`` owns
        permuted rows ``offsets[p]:offsets[p+1]``.
    neighbors:
        ``neighbors[p]`` = sorted array of processes coupled to ``p``
        (given the matrix the partition was built for).
    """

    parts: np.ndarray
    n_parts: int
    perm: np.ndarray
    offsets: np.ndarray
    neighbors: list[np.ndarray]

    def rows_of(self, p: int) -> np.ndarray:
        """Original row indices owned by process ``p``."""
        return self.perm[self.offsets[p]:self.offsets[p + 1]]

    def size_of(self, p: int) -> int:
        """Number of rows owned by process ``p``."""
        return int(self.offsets[p + 1] - self.offsets[p])

    @property
    def max_neighbors(self) -> int:
        return max((len(nb) for nb in self.neighbors), default=0)


def partition_from_parts(A: CSRMatrix, parts: np.ndarray,
                         n_parts: int) -> Partition:
    """Assemble a :class:`Partition` from precomputed labels."""
    parts = np.asarray(parts, dtype=np.int64)
    if parts.size != A.n_rows:
        raise ValueError("parts length must equal the number of rows")
    counts = np.bincount(parts, minlength=n_parts)
    offsets = np.zeros(n_parts + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    perm = np.argsort(parts, kind="stable")
    nbrs = neighbor_lists(A, parts, n_parts)
    return Partition(parts=parts, n_parts=n_parts, perm=perm,
                     offsets=offsets, neighbors=nbrs)


def partition(A: CSRMatrix, n_parts: int, method: str = "multilevel",
              seed: int = 0, grid_shape: tuple[int, int] | None = None
              ) -> Partition:
    """Partition a matrix into ``n_parts`` subdomains.

    Parameters
    ----------
    method:
        ``'multilevel'`` (default, METIS-like), ``'coarse'`` (coarsen
        with the in-place-relabel path then run the multilevel cut on
        the collapsed graph — the memory-bounded paper-scale choice),
        ``'spectral'`` (recursive Fiedler bisection), ``'grid'``
        (rectangular blocks; needs ``grid_shape=(nx, ny)`` with
        ``nx*ny == n_rows``), or ``'strided'`` (contiguous equal chunks
        of the natural ordering — the trivial baseline).
    """
    if n_parts < 1:
        raise ValueError("n_parts must be positive")
    if n_parts > A.n_rows:
        raise ValueError("more parts than rows")
    if method == "multilevel":
        parts = partition_matrix(A, n_parts, seed=seed)
    elif method == "coarse":
        parts = partition_matrix_coarse(A, n_parts, seed=seed)
    elif method == "spectral":
        parts = spectral_partition(matrix_graph(A), n_parts, seed=seed)
    elif method == "grid":
        if grid_shape is None:
            raise ValueError("grid method needs grid_shape=(nx, ny)")
        nx, ny = grid_shape
        if nx * ny != A.n_rows:
            raise ValueError("grid_shape inconsistent with matrix size")
        parts = grid_blocks_2d(nx, ny, n_parts)
    elif method == "strided":
        parts = np.minimum(
            np.arange(A.n_rows) * n_parts // A.n_rows, n_parts - 1)
    else:
        raise ValueError(f"unknown partition method {method!r}")
    return partition_from_parts(A, parts, n_parts)
