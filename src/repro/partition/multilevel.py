"""Multilevel recursive-bisection k-way partitioner (METIS substitute).

Pipeline per bisection (the classic multilevel scheme):

1. **Coarsen** with heavy-edge matching until the graph is small.
2. **Initial partition** of the coarsest graph by greedy graph growing.
3. **Uncoarsen**, projecting the bisection up and running FM boundary
   refinement at every level.

k-way partitions come from recursive bisection with proportional weight
targets, so any ``k`` (not just powers of two) is balanced.
"""

from __future__ import annotations

import numpy as np

from repro.partition.bisect import fm_refine, greedy_grow_bisection
from repro.partition.coarsen import coarsen_graph, coarsen_labels
from repro.partition.graph import Graph, matrix_graph
from repro.sparsela import CSRMatrix

__all__ = ["multilevel_bisection", "partition_graph", "partition_matrix",
           "partition_matrix_coarse"]


def multilevel_bisection(g: Graph, fraction0: float = 0.5, seed: int = 0,
                         imbalance: float = 0.05) -> np.ndarray:
    """Bisect ``g`` with side 0 receiving ``fraction0`` of the vertex weight.

    Returns a 0/1 side array.
    """
    if not 0.0 < fraction0 < 1.0:
        raise ValueError("fraction0 must be in (0, 1)")
    target0_frac = fraction0
    levels = coarsen_graph(g, seed=seed)
    coarsest = levels[-1].graph if levels else g
    side = greedy_grow_bisection(
        coarsest, target0=target0_frac * coarsest.total_vertex_weight(),
        seed=seed)
    side = fm_refine(coarsest, side,
                     target0=target0_frac * coarsest.total_vertex_weight(),
                     imbalance=imbalance)
    # project up through the hierarchy, refining at each level
    for level, fine in zip(reversed(levels),
                           reversed([g] + [lv.graph for lv in levels[:-1]])):
        side = side[level.cmap]
        side = fm_refine(fine, side,
                         target0=target0_frac * fine.total_vertex_weight(),
                         imbalance=imbalance)
    return side


def partition_graph(g: Graph, n_parts: int, seed: int = 0,
                    imbalance: float = 0.05) -> np.ndarray:
    """k-way partition by recursive multilevel bisection.

    Returns ``parts`` with ``parts[v] ∈ [0, n_parts)``.  Part weights are
    proportional (each final part targets ``1/n_parts`` of the total vertex
    weight, to within ``imbalance`` per bisection).
    """
    if n_parts < 1:
        raise ValueError("n_parts must be positive")
    n = g.n_vertices
    parts = np.zeros(n, dtype=np.int64)
    if n_parts == 1:
        return parts
    # split the imbalance budget across the bisection levels so it does not
    # compound: (1 + eps)^levels ~= 1 + imbalance
    levels = max(1, int(np.ceil(np.log2(n_parts))))
    imbalance = imbalance / levels

    def recurse(vertices: np.ndarray, sub: Graph, k: int, base: int,
                depth: int) -> None:
        if k == 1 or vertices.size == 0:
            parts[vertices] = base
            return
        k0 = k // 2
        frac0 = k0 / k
        if sub.n_vertices <= 1:
            # degenerate: everything to the first child
            parts[vertices] = base
            return
        side = multilevel_bisection(sub, fraction0=frac0,
                                    seed=seed + 31 * depth + base,
                                    imbalance=imbalance)
        for s, kk, b in ((0, k0, base), (1, k - k0, base + k0)):
            mask = side == s
            child_vertices = vertices[mask]
            if kk == 1 or child_vertices.size <= 1:
                parts[child_vertices] = b
                continue
            child = _induced_subgraph(sub, np.flatnonzero(mask))
            recurse(child_vertices, child, kk, b, depth + 1)

    recurse(np.arange(n), g, n_parts, 0, 0)
    return parts


def _induced_subgraph(g: Graph, keep: np.ndarray) -> Graph:
    """Subgraph induced by the vertex set ``keep`` (renumbered 0..len-1)."""
    n = g.n_vertices
    remap = np.full(n, -1, dtype=np.int64)
    remap[keep] = np.arange(keep.size)
    rows = g.expanded_rows()
    mask = (remap[rows] >= 0) & (remap[g.adjncy] >= 0)
    new_rows = remap[rows[mask]]
    new_cols = remap[g.adjncy[mask]]
    new_wgts = g.adjwgt[mask]
    # ``keep`` is sorted, so ``remap`` is order-preserving and the
    # filtered slots are already in row-major order — no sort needed
    counts = np.bincount(new_rows, minlength=keep.size)
    xadj = np.zeros(keep.size + 1, dtype=np.int64)
    np.cumsum(counts, out=xadj[1:])
    return Graph(xadj=xadj, adjncy=new_cols, adjwgt=new_wgts,
                 vwgt=g.vwgt[keep])


def partition_matrix(A: CSRMatrix, n_parts: int, seed: int = 0,
                     imbalance: float = 0.05,
                     weighted: bool = True) -> np.ndarray:
    """Partition the rows of a square matrix into ``n_parts`` subdomains.

    Convenience wrapper: builds the adjacency graph and runs
    :func:`partition_graph`.
    """
    return partition_graph(matrix_graph(A, weighted=weighted), n_parts,
                           seed=seed, imbalance=imbalance)


def partition_matrix_coarse(A: CSRMatrix, n_parts: int, seed: int = 0,
                            imbalance: float = 0.05, weighted: bool = True,
                            min_vertices: int | None = None) -> np.ndarray:
    """Memory-compact paper-scale partitioner: coarsen first, then cut.

    Collapses the graph with the in-place-relabel coarsening path
    (:func:`repro.partition.coarsen.coarsen_labels`, which never retains
    intermediate levels) down to ``min_vertices`` (default
    ``max(32 * n_parts, 4096)``), runs the full multilevel partitioner
    on the small coarse graph, and projects the labels back through the
    composed coarse map.  Skipping per-level FM refinement on the fine
    levels trades some edge-cut quality for a setup that is bounded by
    the coarsening sweep — the paper's regime of n ≥ 1M, P ≥ 4096 where
    recursive bisection of the full graph is the setup bottleneck
    (DESIGN.md §5.13).
    """
    if n_parts < 1:
        raise ValueError("n_parts must be positive")
    if min_vertices is None:
        # one contraction can nearly halve the graph past the threshold,
        # so leave a wide margin above n_parts for the coarse cut
        min_vertices = max(32 * n_parts, 4096)
    g = matrix_graph(A, weighted=weighted)
    labels, coarse, _ = coarsen_labels(g, min_vertices=min_vertices,
                                       seed=seed)
    cparts = partition_graph(coarse, n_parts, seed=seed,
                             imbalance=imbalance)
    return cparts[labels]
