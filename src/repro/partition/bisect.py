"""Bisection: greedy graph growing + Fiduccia-Mattheyses-style refinement.

These run on the *coarsest* graph of the multilevel hierarchy (initial
partition) and after every uncoarsening step (refinement), mirroring the
METIS phases.

:func:`fm_refine` dispatches its move loop through the kernel backend
layer (``repro.sparsela.backend``); all backends replay the seed's greedy
decision sequence exactly (see :mod:`repro.partition._kernels`), so the
refined bisection is bit-identical whichever backend is active.
"""

from __future__ import annotations

import numpy as np

from repro.partition.graph import Graph
from repro.sparsela.backend import get_backend

__all__ = ["fm_refine", "greedy_grow_bisection", "bisection_cut"]


def bisection_cut(g: Graph, side: np.ndarray) -> float:
    """Total weight of edges crossing the bisection ``side`` (0/1 array)."""
    crossing = side[g.expanded_rows()] != side[g.adjncy]
    return float(g.adjwgt[crossing].sum() / 2.0)


def greedy_grow_bisection(g: Graph, target0: float, n_tries: int = 4,
                          seed: int = 0) -> np.ndarray:
    """Grow side 0 by BFS from random seeds until it holds ``target0`` weight.

    Runs ``n_tries`` seeds and keeps the lowest-cut result.  ``target0`` is
    the desired total vertex weight of side 0 (absolute, not a fraction).
    Returns the 0/1 side array.

    The BFS runs on flat lists (same visit order and the same RNG call
    sequence as the seed implementation — one ``integers`` per try plus
    one ``choice`` per disconnected jump — so results are bit-identical).
    """
    n = g.n_vertices
    rng = np.random.default_rng(seed)
    xa, adj, _ = g.adj_lists()
    vw = g.vwgt_list()
    best_side: np.ndarray | None = None
    best_cut = np.inf
    for t in range(max(1, n_tries)):
        start = int(rng.integers(n))
        side = [1] * n
        weight0 = 0.0
        frontier = [start]
        visited = bytearray(n)
        visited[start] = 1
        while frontier and weight0 < target0:
            nxt: list[int] = []
            for u in frontier:
                if weight0 >= target0:
                    break
                side[u] = 0
                weight0 += vw[u]
                for j in range(xa[u], xa[u + 1]):
                    v = adj[j]
                    if not visited[v]:
                        visited[v] = 1
                        nxt.append(v)
            frontier = nxt
            if not frontier and weight0 < target0:
                # disconnected: jump to any vertex still on side 1
                side_arr = np.array(side, dtype=np.int8)
                vis = np.frombuffer(visited, dtype=np.uint8).astype(bool)
                remaining = np.flatnonzero((side_arr == 1) & ~vis)
                if remaining.size == 0:
                    remaining = np.flatnonzero(side_arr == 1)
                if remaining.size == 0:
                    break
                s = int(rng.choice(remaining))
                visited[s] = 1
                frontier = [s]
        side_arr = np.array(side, dtype=np.int8)
        cut = bisection_cut(g, side_arr)
        if cut < best_cut:
            best_cut = cut
            best_side = side_arr
    assert best_side is not None
    return best_side


def fm_refine(g: Graph, side: np.ndarray, target0: float,
              imbalance: float = 0.05, max_passes: int = 4,
              stall_limit: int | None = None) -> np.ndarray:
    """Boundary FM refinement of a bisection (in place; also returned).

    Each pass greedily moves the best-gain boundary vertex whose move keeps
    side 0's weight within ``imbalance`` of ``target0``, locks it, and
    rolls back to the best prefix of moves.  A pass ends early after
    ``stall_limit`` consecutive non-improving moves (the hill the classic
    FM climbs over is shallow; unbounded exploration costs far more than it
    recovers).  Stops when a pass yields no improvement.
    """
    n = g.n_vertices
    total = float(g.vwgt.sum())
    lo = target0 - imbalance * total
    hi = target0 + imbalance * total
    if stall_limit is None:
        stall_limit = 64 + n // 64
    return get_backend().fm_refine(g, side, target0, lo, hi, max_passes,
                                   stall_limit)
