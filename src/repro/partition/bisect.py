"""Bisection: greedy graph growing + Fiduccia-Mattheyses-style refinement.

These run on the *coarsest* graph of the multilevel hierarchy (initial
partition) and after every uncoarsening step (refinement), mirroring the
METIS phases.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.partition.graph import Graph

__all__ = ["fm_refine", "greedy_grow_bisection", "bisection_cut"]


def bisection_cut(g: Graph, side: np.ndarray) -> float:
    """Total weight of edges crossing the bisection ``side`` (0/1 array)."""
    rows = np.repeat(np.arange(g.n_vertices), g.degrees())
    crossing = side[rows] != side[g.adjncy]
    return float(g.adjwgt[crossing].sum() / 2.0)


def greedy_grow_bisection(g: Graph, target0: float, n_tries: int = 4,
                          seed: int = 0) -> np.ndarray:
    """Grow side 0 by BFS from random seeds until it holds ``target0`` weight.

    Runs ``n_tries`` seeds and keeps the lowest-cut result.  ``target0`` is
    the desired total vertex weight of side 0 (absolute, not a fraction).
    Returns the 0/1 side array.
    """
    n = g.n_vertices
    rng = np.random.default_rng(seed)
    best_side: np.ndarray | None = None
    best_cut = np.inf
    for t in range(max(1, n_tries)):
        start = int(rng.integers(n))
        side = np.ones(n, dtype=np.int8)
        weight0 = 0.0
        frontier = [start]
        visited = np.zeros(n, dtype=bool)
        visited[start] = True
        while frontier and weight0 < target0:
            nxt: list[int] = []
            for u in frontier:
                if weight0 >= target0:
                    break
                side[u] = 0
                weight0 += g.vwgt[u]
                for v in g.neighbors(u):
                    if not visited[v]:
                        visited[v] = True
                        nxt.append(int(v))
            frontier = nxt
            if not frontier and weight0 < target0:
                # disconnected: jump to any vertex still on side 1
                remaining = np.flatnonzero((side == 1) & ~visited)
                if remaining.size == 0:
                    remaining = np.flatnonzero(side == 1)
                if remaining.size == 0:
                    break
                s = int(rng.choice(remaining))
                visited[s] = True
                frontier = [s]
        cut = bisection_cut(g, side)
        if cut < best_cut:
            best_cut = cut
            best_side = side
    assert best_side is not None
    return best_side


def fm_refine(g: Graph, side: np.ndarray, target0: float,
              imbalance: float = 0.05, max_passes: int = 4,
              stall_limit: int | None = None) -> np.ndarray:
    """Boundary FM refinement of a bisection (in place; also returned).

    Each pass greedily moves the best-gain boundary vertex whose move keeps
    side 0's weight within ``imbalance`` of ``target0``, locks it, and
    rolls back to the best prefix of moves.  A pass ends early after
    ``stall_limit`` consecutive non-improving moves (the hill the classic
    FM climbs over is shallow; unbounded exploration costs far more than it
    recovers).  Stops when a pass yields no improvement.
    """
    n = g.n_vertices
    total = float(g.vwgt.sum())
    lo = target0 - imbalance * total
    hi = target0 + imbalance * total
    if stall_limit is None:
        stall_limit = 64 + n // 64

    rows = np.repeat(np.arange(n), g.degrees())

    for _ in range(max_passes):
        # gain[v] = external weight - internal weight
        same = side[rows] == side[g.adjncy]
        ext = np.bincount(rows, weights=np.where(same, 0.0, g.adjwgt),
                          minlength=n)
        int_ = np.bincount(rows, weights=np.where(same, g.adjwgt, 0.0),
                           minlength=n)
        gain = ext - int_
        boundary = np.flatnonzero(ext > 0)
        if boundary.size == 0:
            break

        heap = [(-gain[v], int(v)) for v in boundary]
        heapq.heapify(heap)
        locked = np.zeros(n, dtype=bool)
        weight0 = float(g.vwgt[side == 0].sum())
        moves: list[int] = []
        cum = 0.0
        best_prefix = 0
        best_cum = 0.0
        best_in_band = lo <= weight0 <= hi
        cur_gain = gain.copy()
        stalled = 0

        while heap and stalled < stall_limit:
            negg, v = heapq.heappop(heap)
            if locked[v] or -negg != cur_gain[v]:
                continue  # stale heap entry
            new_w0 = weight0 - g.vwgt[v] if side[v] == 0 else weight0 + g.vwgt[v]
            # accept in-band moves; when currently out of band (coarse
            # vertices are lumpy) also accept any move toward the target so
            # refinement can restore balance instead of freezing it
            feasible = lo <= new_w0 <= hi or (
                abs(new_w0 - target0) < abs(weight0 - target0))
            if not feasible:
                continue
            # apply move
            locked[v] = True
            cum += cur_gain[v]
            side[v] = 1 - side[v]
            weight0 = new_w0
            moves.append(v)
            in_band = lo <= weight0 <= hi
            # lexicographic: an in-band prefix always beats an out-of-band
            # one; among equals, larger cumulative gain wins
            if (in_band, cum) > (best_in_band, best_cum + 1e-12):
                best_in_band = in_band
                best_cum = cum
                best_prefix = len(moves)
                stalled = 0
            else:
                stalled += 1
            # update neighbor gains: edge (u, v) just became internal if the
            # sides now agree (u's gain drops by 2w), external otherwise
            for u, w in zip(g.neighbors(v), g.edge_weights(v)):
                if locked[u]:
                    continue
                delta = -2.0 * w if side[u] == side[v] else 2.0 * w
                cur_gain[u] += delta
                heapq.heappush(heap, (-cur_gain[u], int(u)))

        # roll back past the best prefix
        for v in moves[best_prefix:]:
            side[v] = 1 - side[v]
        if best_cum <= 1e-12:
            break
    return side
