"""Adjacency-graph view of a sparse matrix, with edge weights.

The partitioner (like METIS) works on the undirected adjacency graph of the
matrix: vertices = rows, edges = symmetrised off-diagonal couplings, edge
weight = |a_ij| + |a_ji| (coupling strength), vertex weight = 1 (or row nnz
for work balancing).  The graph is stored CSR-style so all traversals are
numpy-sliceable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparsela import COOMatrix, CSRMatrix

__all__ = ["Graph", "matrix_graph"]


@dataclass
class Graph:
    """Undirected weighted graph in CSR adjacency form.

    ``xadj``/``adjncy`` follow the METIS convention: the neighbors of vertex
    ``u`` are ``adjncy[xadj[u]:xadj[u+1]]`` with edge weights ``adjwgt`` at
    the same positions (each undirected edge appears twice).  ``vwgt`` are
    vertex weights.
    """

    xadj: np.ndarray
    adjncy: np.ndarray
    adjwgt: np.ndarray
    vwgt: np.ndarray

    def __post_init__(self) -> None:
        self._rows: np.ndarray | None = None
        self._lists: tuple[list, list, list] | None = None
        self._vwgt_list: list | None = None

    @property
    def n_vertices(self) -> int:
        return int(self.xadj.size - 1)

    def expanded_rows(self) -> np.ndarray:
        """Source vertex of every adjacency slot (cached ``np.repeat``).

        The CSR row-id expansion is recomputed by every cut evaluation
        and refinement pass; graphs are immutable after construction, so
        it is computed once per graph.
        """
        if self._rows is None:
            self._rows = np.repeat(np.arange(self.n_vertices),
                                   self.degrees())
        return self._rows

    def adj_lists(self) -> tuple[list, list, list]:
        """``(xadj, adjncy, adjwgt)`` as flat Python lists (cached).

        The sequential greedy kernels (matching, FM refinement, BFS
        growing) run several times faster on list scalars than on numpy
        scalar indexing; each graph is visited by more than one kernel,
        so the conversion is done once and shared.
        """
        if self._lists is None:
            self._lists = (self.xadj.tolist(), self.adjncy.tolist(),
                           self.adjwgt.tolist())
        return self._lists

    def vwgt_list(self) -> list:
        """Vertex weights as a flat Python list (cached)."""
        if self._vwgt_list is None:
            self._vwgt_list = self.vwgt.tolist()
        return self._vwgt_list

    @property
    def n_edges(self) -> int:
        """Number of undirected edges."""
        return int(self.adjncy.size // 2)

    def neighbors(self, u: int) -> np.ndarray:
        """Adjacent vertices of ``u``."""
        return self.adjncy[self.xadj[u]:self.xadj[u + 1]]

    def edge_weights(self, u: int) -> np.ndarray:
        """Edge weights aligned with :meth:`neighbors`."""
        return self.adjwgt[self.xadj[u]:self.xadj[u + 1]]

    def degree(self, u: int) -> int:
        """Number of neighbors of ``u``."""
        return int(self.xadj[u + 1] - self.xadj[u])

    def degrees(self) -> np.ndarray:
        """All vertex degrees."""
        return np.diff(self.xadj)

    def total_vertex_weight(self) -> int:
        """Sum of vertex weights."""
        return int(self.vwgt.sum())

    def validate(self) -> None:
        """Internal-consistency check (used by tests): symmetric adjacency,
        no self-loops, matching reciprocal weights."""
        n = self.n_vertices
        rows = np.repeat(np.arange(n), self.degrees())
        if np.any(rows == self.adjncy):
            raise ValueError("self-loop present")
        fwd = {}
        for u, v, w in zip(rows, self.adjncy, self.adjwgt):
            fwd[(int(u), int(v))] = float(w)
        for (u, v), w in fwd.items():
            if (v, u) not in fwd or fwd[(v, u)] != w:
                raise ValueError(f"edge ({u},{v}) not symmetric")


def matrix_graph(A: CSRMatrix, weighted: bool = True,
                 vertex_weight_nnz: bool = False) -> Graph:
    """Adjacency graph of a square matrix.

    The pattern is symmetrised (``A + A.T`` structurally); edge weight is
    ``|a_uv| + |a_vu|`` when ``weighted`` else 1.  ``vertex_weight_nnz``
    weights vertices by their row nnz (work proxy) instead of 1.
    """
    if A.n_rows != A.n_cols:
        raise ValueError("adjacency graph needs a square matrix")
    n = A.n_rows
    rows = A._expanded_row_ids()
    off = rows != A.indices
    u = np.concatenate([rows[off], A.indices[off]])
    v = np.concatenate([A.indices[off], rows[off]])
    w = np.abs(np.concatenate([A.data[off], A.data[off]]))
    # Sum duplicate directed edges (a_uv and a_vu both present) into one
    # weight per direction by COO duplicate-summation.
    sym = COOMatrix(u, v, w, (n, n)).to_csr()
    adjwgt = (sym.data if weighted
              else np.ones(sym.nnz))
    vwgt = (A.row_counts().astype(np.int64) if vertex_weight_nnz
            else np.ones(n, dtype=np.int64))
    return Graph(xadj=sym.indptr.copy(), adjncy=sym.indices.copy(),
                 adjwgt=adjwgt.astype(np.float64), vwgt=vwgt)
