"""Hot partitioner kernels: heavy-edge matching and FM refinement.

The multilevel partitioner spends essentially all its time in two inner
loops — the coarsening matcher (:func:`hem_match_*`) and the boundary
refinement sweep (:func:`fm_refine_*`) — called once per level per
bisection (255 bisections at P=256).  Both are *sequential greedy*
algorithms whose output the rest of the pipeline pins bit-for-bit (the
partition-label digests in ``tests/test_partition.py``), so every
implementation here must reproduce the seed's decisions exactly:

``*_reference``
    The seed loops verbatim (per-vertex numpy slicing, ``heapq`` on
    tuples).  Ground truth.
``*_fast``
    The default numpy-path kernels.  The matcher and the FM move loop —
    both sequential greedy through shared match/lock/gain state — run
    the same recurrences over flat Python lists (scalar loads, no
    per-candidate ``np.any``/``np.argmax`` temporaries), which beats
    per-vertex numpy slicing by ~7× at suite sizes; gain initialisation
    and rollback stay whole-array.  IEEE float64 arithmetic and tuple
    ordering are value-identical between numpy scalars and Python
    floats, so the decision sequence — and hence the matching and the
    refined bisection — is unchanged.  A whole-array *rounds* matcher
    (:func:`_hem_match_rounds`) simulates the sequential random-order
    greedy exactly by committing, per round, every vertex whose visit
    rank is minimal within graph distance ≤ 2 (its decision then
    provably cannot be affected by any unresolved earlier-ranked vertex,
    and committed vertices are pairwise far enough apart not to
    conflict); it is opt-in via :data:`HEM_ROUNDS_MIN_VERTICES` for
    denser graphs where per-slot Python-loop cost dominates.
``make_numba_kernels``
    Optional nopython versions (via the ``numba`` backend).  The FM
    kernel embeds an exact replica of CPython's binary-heap routines so
    stale-entry pop order matches ``heapq`` tuple ordering.
"""

from __future__ import annotations

import heapq

import numpy as np

__all__ = [
    "fm_refine_fast",
    "fm_refine_reference",
    "hem_match_fast",
    "hem_match_reference",
    "make_numba_kernels",
]

#: vertex count above which matching runs as whole-array rounds instead
#: of the flat-list scan.  On the suite's mesh-like graphs (degree ~5,
#: diameter-limited round count) the list scan wins at every size
#: measured (3.8 ms vs 8.7 ms at n = 12100), so the default disables the
#: rounds path; it is kept (and cross-validated in the tests) because its
#: cost scales with round count rather than nnz, which pays off on
#: denser graphs.
HEM_ROUNDS_MIN_VERTICES: int | None = None


# ----------------------------------------------------------------------
# heavy-edge matching
# ----------------------------------------------------------------------
def hem_match_reference(g, perm: np.ndarray) -> np.ndarray:
    """The seed matcher, verbatim: visit ``perm`` order, grab the
    heaviest unmatched neighbor (first one on ties, as ``np.argmax``)."""
    n = g.n_vertices
    match = np.full(n, -1, dtype=np.int64)
    for u in perm:
        if match[u] >= 0:
            continue
        nbrs = g.neighbors(u)
        wgts = g.edge_weights(u)
        free = match[nbrs] < 0
        if np.any(free):
            cand = nbrs[free]
            best = cand[np.argmax(wgts[free])]
            match[u] = best
            match[best] = u
        else:
            match[u] = u
    return match


def hem_match_fast(g, perm: np.ndarray) -> np.ndarray:
    """Decision-identical matcher: flat lists by default, whole-array
    rounds above :data:`HEM_ROUNDS_MIN_VERTICES` when that is set."""
    if (HEM_ROUNDS_MIN_VERTICES is not None
            and g.n_vertices >= HEM_ROUNDS_MIN_VERTICES):
        return _hem_match_rounds(g, perm)
    return _hem_match_lists(g, perm)


def _hem_match_lists(g, perm: np.ndarray) -> np.ndarray:
    """Flat-list sequential matcher.

    The strict ``>`` keeps the *first* maximum-weight free neighbor,
    which is exactly the seed's ``cand[np.argmax(wgts[free])]``; edge
    weights are non-negative (``|a_uv| + |a_vu|``) so the ``-1.0``
    sentinel never wins.
    """
    n = g.n_vertices
    xa, adj, wgt = g.adj_lists()
    match = [-1] * n
    for u in perm.tolist():
        if match[u] >= 0:
            continue
        best = -1
        bw = -1.0
        for j in range(xa[u], xa[u + 1]):
            v = adj[j]
            if match[v] < 0 and wgt[j] > bw:
                bw = wgt[j]
                best = v
        if best >= 0:
            match[u] = best
            match[best] = u
        else:
            match[u] = u
    return np.array(match, dtype=np.int64)


def _segmin(values: np.ndarray, starts_nz: np.ndarray, nz_mask: np.ndarray,
            n: int, fill) -> np.ndarray:
    """Per-CSR-segment minimum of ``values``; empty segments get ``fill``.

    ``reduceat`` must only see non-empty segment starts: a clipped start
    for a trailing empty segment would silently truncate the *previous*
    segment's range.
    """
    out = np.full(n, fill, dtype=values.dtype)
    if starts_nz.size:
        out[nz_mask] = np.minimum.reduceat(values, starts_nz)
    return out


def _hem_match_rounds(g, perm: np.ndarray) -> np.ndarray:
    """Exact whole-array simulation of the sequential random-order greedy.

    Per round, the *frontier* F is every unresolved vertex whose visit
    rank is a minimum among unresolved vertices within graph distance
    ≤ 2.  When such a vertex's turn comes in the sequential order, no
    unresolved earlier-ranked vertex can still change its neighborhood
    (any vertex able to do so is within distance 2), so its greedy
    decision is already determined — and distinct frontier vertices are
    mutually > distance 2 apart, so their decisions commute.  Each round
    resolves F (and its grabbed partners) with the same
    heaviest-free-neighbor / first-tie rule as the scalar loop.
    """
    n = g.n_vertices
    xadj, adj, wgt = g.xadj, g.adjncy, g.adjwgt
    deg = np.diff(xadj)
    match = np.full(n, -1, dtype=np.int64)
    rank = np.empty(n, dtype=np.int64)
    rank[perm] = np.arange(n)
    INF = n
    nz = deg > 0
    starts_nz = xadj[:-1][nz]
    unres = rank.copy()               # rank while unmatched, else INF
    while True:
        m1 = _segmin(unres[adj], starts_nz, nz, n, INF)
        np.minimum(m1, unres, out=m1)
        m2 = _segmin(m1[adj], starts_nz, nz, n, INF)
        np.minimum(m2, unres, out=m2)
        F = np.flatnonzero((unres < INF) & (m2 == unres))
        if F.size == 0:
            break
        dF = deg[F]
        tot = int(dF.sum())
        if tot:
            segs = np.repeat(np.arange(F.size), dF)
            sF = np.cumsum(dF) - dF
            within = np.arange(tot) - sF[segs]
            pos = xadj[F][segs] + within
            nb = adj[pos]
            free = match[nb] < 0
            w_eff = np.where(free, wgt[pos], -np.inf)
            nzF = dF > 0
            segmax = np.full(F.size, -np.inf)
            segmax[nzF] = np.maximum.reduceat(w_eff, sF[nzF])
            has_free = segmax > -np.inf
            # first slot achieving the max = np.argmax tie-break
            hit = w_eff == segmax[segs]
            within_masked = np.where(hit, within, tot)
            first = np.zeros(F.size, dtype=np.int64)
            first[nzF] = np.minimum.reduceat(within_masked, sF[nzF])
            u_match = F[has_free]
            b_match = adj[xadj[u_match] + first[has_free]]
            match[u_match] = b_match
            match[b_match] = u_match
            unres[b_match] = INF
            u_self = F[~has_free]
            match[u_self] = u_self
        else:
            match[F] = F
        unres[F] = INF
    return match


# ----------------------------------------------------------------------
# FM boundary refinement
# ----------------------------------------------------------------------
def fm_refine_reference(g, side: np.ndarray, target0: float, lo: float,
                        hi: float, max_passes: int,
                        stall_limit: int) -> np.ndarray:
    """The seed refinement loop, verbatim (lazy-stale ``heapq`` entries,
    lexicographic best-prefix bookkeeping, rollback)."""
    n = g.n_vertices
    rows = np.repeat(np.arange(n), np.diff(g.xadj))

    for _ in range(max_passes):
        # gain[v] = external weight - internal weight
        same = side[rows] == side[g.adjncy]
        ext = np.bincount(rows, weights=np.where(same, 0.0, g.adjwgt),
                          minlength=n)
        int_ = np.bincount(rows, weights=np.where(same, g.adjwgt, 0.0),
                           minlength=n)
        gain = ext - int_
        boundary = np.flatnonzero(ext > 0)
        if boundary.size == 0:
            break

        heap = [(-gain[v], int(v)) for v in boundary]
        heapq.heapify(heap)
        locked = np.zeros(n, dtype=bool)
        weight0 = float(g.vwgt[side == 0].sum())
        moves: list[int] = []
        cum = 0.0
        best_prefix = 0
        best_cum = 0.0
        best_in_band = lo <= weight0 <= hi
        cur_gain = gain.copy()
        stalled = 0

        while heap and stalled < stall_limit:
            negg, v = heapq.heappop(heap)
            if locked[v] or -negg != cur_gain[v]:
                continue  # stale heap entry
            new_w0 = (weight0 - g.vwgt[v] if side[v] == 0
                      else weight0 + g.vwgt[v])
            # accept in-band moves; when currently out of band (coarse
            # vertices are lumpy) also accept any move toward the target
            # so refinement can restore balance instead of freezing it
            feasible = lo <= new_w0 <= hi or (
                abs(new_w0 - target0) < abs(weight0 - target0))
            if not feasible:
                continue
            # apply move
            locked[v] = True
            cum += cur_gain[v]
            side[v] = 1 - side[v]
            weight0 = new_w0
            moves.append(v)
            in_band = lo <= weight0 <= hi
            # lexicographic: an in-band prefix always beats an
            # out-of-band one; among equals, larger cumulative gain wins
            if (in_band, cum) > (best_in_band, best_cum + 1e-12):
                best_in_band = in_band
                best_cum = cum
                best_prefix = len(moves)
                stalled = 0
            else:
                stalled += 1
            # update neighbor gains: edge (u, v) just became internal if
            # the sides now agree (u's gain drops by 2w), external
            # otherwise
            for u, w in zip(g.neighbors(v), g.edge_weights(v)):
                if locked[u]:
                    continue
                delta = -2.0 * w if side[u] == side[v] else 2.0 * w
                cur_gain[u] += delta
                heapq.heappush(heap, (-cur_gain[u], int(u)))

        # roll back past the best prefix
        for v in moves[best_prefix:]:
            side[v] = 1 - side[v]
        if best_cum <= 1e-12:
            break
    return side


def fm_refine_fast(g, side: np.ndarray, target0: float, lo: float,
                   hi: float, max_passes: int,
                   stall_limit: int) -> np.ndarray:
    """Decision-identical refinement on flat lists.

    Per pass, the gain initialisation is the same whole-array bincount;
    the move loop then runs on Python scalars.  Heap entries stay
    ``(-gain, vertex)`` tuples through the stdlib ``heapq``, so pop
    order (including stale-entry ties) matches the reference exactly;
    the gains themselves take identical float64 values because every
    update is the same ``±2w`` IEEE operation.
    """
    n = g.n_vertices
    rows = g.expanded_rows()
    adjncy = g.adjncy
    adjwgt = g.adjwgt
    xa, adj, wgt = g.adj_lists()
    vw = g.vwgt_list()
    pop = heapq.heappop
    push = heapq.heappush
    sides: list[int] | None = None
    weight0 = 0.0

    for _ in range(max_passes):
        same = side[rows] == side[adjncy]
        ext = np.bincount(rows, weights=np.where(same, 0.0, adjwgt),
                          minlength=n)
        int_ = np.bincount(rows, weights=np.where(same, adjwgt, 0.0),
                           minlength=n)
        boundary = np.flatnonzero(ext > 0)
        if boundary.size == 0:
            break

        cur_gain = (ext - int_).tolist()
        heap = [(-cur_gain[v], v) for v in boundary.tolist()]
        heapq.heapify(heap)
        locked = bytearray(n)
        if sides is None:
            # vertex weights are int64, so the side-0 weight is an exact
            # integer: the per-pass recomputation of the reference equals
            # this running value carried across passes bit-for-bit
            weight0 = float(g.vwgt[side == 0].sum())
            sides = side.tolist()
        moves: list[int] = []
        cum = 0.0
        best_prefix = 0
        best_cum = 0.0
        best_w0 = weight0
        best_in_band = lo <= weight0 <= hi
        stalled = 0

        while heap and stalled < stall_limit:
            negg, v = pop(heap)
            if locked[v] or -negg != cur_gain[v]:
                continue  # stale heap entry
            wv = vw[v]
            new_w0 = weight0 - wv if sides[v] == 0 else weight0 + wv
            if not (lo <= new_w0 <= hi or
                    abs(new_w0 - target0) < abs(weight0 - target0)):
                continue
            locked[v] = 1
            cum += cur_gain[v]
            sv = 1 - sides[v]
            sides[v] = sv
            weight0 = new_w0
            moves.append(v)
            in_band = lo <= weight0 <= hi
            if (in_band and not best_in_band) or (
                    in_band == best_in_band and cum > best_cum + 1e-12):
                best_in_band = in_band
                best_cum = cum
                best_prefix = len(moves)
                best_w0 = weight0
                stalled = 0
            else:
                stalled += 1
            for j in range(xa[v], xa[v + 1]):
                u = adj[j]
                if locked[u]:
                    continue
                w = wgt[j]
                gu = cur_gain[u] + (-2.0 * w if sides[u] == sv else 2.0 * w)
                cur_gain[u] = gu
                push(heap, (-gu, u))

        for v in moves[best_prefix:]:
            sides[v] = 1 - sides[v]
        weight0 = best_w0
        side[:] = sides
        if best_cum <= 1e-12:
            break
    return side


# ----------------------------------------------------------------------
# numba kernels (optional)
# ----------------------------------------------------------------------
def make_numba_kernels():
    """Compile nopython matching/refinement (raises without numba).

    Returns ``(nb_hem_match, nb_fm_pass)``.  The FM kernel runs one
    *pass* (the caller keeps the vectorised gain init and the pass loop
    in numpy) and hand-rolls CPython's ``heapq`` sift routines over
    parallel ``(key, vertex)`` arrays with lexicographic comparison, so
    the pop sequence is identical to tuple ordering in the reference.
    """
    import numba

    jit = numba.njit(cache=True, fastmath=False)

    @jit
    def nb_hem_match(xadj, adjncy, adjwgt, perm):
        n = xadj.size - 1
        match = np.full(n, -1, dtype=np.int64)
        for i in range(n):
            u = perm[i]
            if match[u] >= 0:
                continue
            best = np.int64(-1)
            bw = -1.0
            for j in range(xadj[u], xadj[u + 1]):
                v = adjncy[j]
                if match[v] < 0 and adjwgt[j] > bw:
                    bw = adjwgt[j]
                    best = v
            if best >= 0:
                match[u] = best
                match[best] = u
            else:
                match[u] = u
        return match

    @jit
    def _less(hk, hv, a, b):
        # tuple order of (-gain, vertex): float key then vertex id
        if hk[a] != hk[b]:
            return hk[a] < hk[b]
        return hv[a] < hv[b]

    @jit
    def _siftdown(hk, hv, startpos, pos):
        # CPython heapq._siftdown with the item already at ``pos``
        nk = hk[pos]
        nv = hv[pos]
        while pos > startpos:
            parent = (pos - 1) >> 1
            pk = hk[parent]
            pv = hv[parent]
            if nk < pk or (nk == pk and nv < pv):
                hk[pos] = pk
                hv[pos] = pv
                pos = parent
                continue
            break
        hk[pos] = nk
        hv[pos] = nv

    @jit
    def _siftup(hk, hv, pos, endpos):
        # CPython heapq._siftup: bubble the hole down to a leaf, then
        # sift the displaced item back up
        startpos = pos
        nk = hk[pos]
        nv = hv[pos]
        childpos = 2 * pos + 1
        while childpos < endpos:
            rightpos = childpos + 1
            if rightpos < endpos and not _less(hk, hv, childpos, rightpos):
                childpos = rightpos
            hk[pos] = hk[childpos]
            hv[pos] = hv[childpos]
            pos = childpos
            childpos = 2 * pos + 1
        hk[pos] = nk
        hv[pos] = nv
        _siftdown(hk, hv, startpos, pos)

    @jit
    def nb_fm_pass(xadj, adjncy, adjwgt, vwgt, side, cur_gain, boundary,
                   weight0, target0, lo, hi, stall_limit):
        """One FM pass on ``side`` (in place); returns ``best_cum``."""
        n = xadj.size - 1
        # worst-case heap occupancy: the initial boundary plus one push
        # per touched edge per move (each move pushes deg(v) entries)
        cap = boundary.size + adjncy.size + 1
        hk = np.empty(cap)
        hv = np.empty(cap, dtype=np.int64)
        m = boundary.size
        for i in range(m):
            v = boundary[i]
            hk[i] = -cur_gain[v]
            hv[i] = v
        # heapify, exactly as CPython: _siftup from the last parent down
        for i in range(m // 2 - 1, -1, -1):
            _siftup(hk, hv, i, m)

        locked = np.zeros(n, dtype=np.uint8)
        moves = np.empty(n, dtype=np.int64)
        n_moves = 0
        cum = 0.0
        best_prefix = 0
        best_cum = 0.0
        best_in_band = lo <= weight0 <= hi
        stalled = 0

        while m > 0 and stalled < stall_limit:
            # heappop
            negg = hk[0]
            v = hv[0]
            m -= 1
            if m > 0:
                hk[0] = hk[m]
                hv[0] = hv[m]
                _siftup(hk, hv, 0, m)
            if locked[v] == 1 or -negg != cur_gain[v]:
                continue
            if side[v] == 0:
                new_w0 = weight0 - vwgt[v]
            else:
                new_w0 = weight0 + vwgt[v]
            if not (lo <= new_w0 <= hi or
                    abs(new_w0 - target0) < abs(weight0 - target0)):
                continue
            locked[v] = 1
            cum += cur_gain[v]
            sv = 1 - side[v]
            side[v] = sv
            weight0 = new_w0
            moves[n_moves] = v
            n_moves += 1
            in_band = lo <= weight0 <= hi
            if (in_band and not best_in_band) or (
                    in_band == best_in_band and cum > best_cum + 1e-12):
                best_in_band = in_band
                best_cum = cum
                best_prefix = n_moves
                stalled = 0
            else:
                stalled += 1
            for j in range(xadj[v], xadj[v + 1]):
                u = adjncy[j]
                if locked[u] == 1:
                    continue
                w = adjwgt[j]
                if side[u] == sv:
                    gu = cur_gain[u] - 2.0 * w
                else:
                    gu = cur_gain[u] + 2.0 * w
                cur_gain[u] = gu
                # heappush
                hk[m] = -gu
                hv[m] = u
                m += 1
                _siftdown(hk, hv, 0, m - 1)

        for i in range(best_prefix, n_moves):
            v = moves[i]
            side[v] = 1 - side[v]
        return best_cum

    return nb_hem_match, nb_fm_pass
