"""Greedy multicoloring for Multicolor Gauss-Seidel.

The paper (Section 2.3) assigns colors "using a breadth-first traversal";
its Figure 2 problem needs 6 colors with very unbalanced color classes.  We
implement exactly that: greedy first-fit coloring along a BFS visitation
order, plus validation and class-extraction helpers.
"""

from __future__ import annotations

import numpy as np

from repro.sparsela import CSRMatrix
from repro.sparsela.ordering import bfs_order

__all__ = ["color_classes", "greedy_coloring", "is_valid_coloring"]


def greedy_coloring(A: CSRMatrix, order: np.ndarray | None = None,
                    start: int = 0) -> np.ndarray:
    """First-fit coloring of the matrix adjacency graph.

    Parameters
    ----------
    order:
        Visitation order; default is BFS from ``start`` (the paper's
        choice).  Each vertex takes the smallest color unused by its already
        -colored neighbors.

    Returns the per-row color array.
    """
    n = A.n_rows
    if order is None:
        order = bfs_order(A, start=start)
    colors = np.full(n, -1, dtype=np.int64)
    for u in order:
        cols, _ = A.row(int(u))
        nbr_colors = colors[cols[cols != u]]
        nbr_colors = nbr_colors[nbr_colors >= 0]
        if nbr_colors.size == 0:
            colors[u] = 0
            continue
        used = np.zeros(nbr_colors.max() + 2, dtype=bool)
        used[nbr_colors] = True
        colors[u] = int(np.flatnonzero(~used)[0])
    return colors


def is_valid_coloring(A: CSRMatrix, colors: np.ndarray) -> bool:
    """No edge connects two rows of the same color."""
    rows = A._expanded_row_ids()
    off = rows != A.indices
    return not np.any(colors[rows[off]] == colors[A.indices[off]])


def color_classes(colors: np.ndarray) -> list[np.ndarray]:
    """Row index arrays per color, ascending color."""
    n_colors = int(colors.max()) + 1 if colors.size else 0
    return [np.flatnonzero(colors == c) for c in range(n_colors)]
