"""Spectral bisection (Fiedler-vector) partitioning.

An alternative to the multilevel scheme: split at the median of the graph
Laplacian's second eigenvector.  Slower than multilevel coarsening but a
useful quality cross-check (the tests compare edge cuts) and a classic
method worth having next to a METIS-substitute.
"""

from __future__ import annotations

import numpy as np

from repro.partition.graph import Graph
from repro.sparsela import COOMatrix

__all__ = ["fiedler_vector", "spectral_bisection", "spectral_partition"]


def _laplacian(g: Graph):
    """Weighted graph Laplacian as a scipy CSR matrix."""
    n = g.n_vertices
    rows = np.repeat(np.arange(n), g.degrees())
    deg = np.bincount(rows, weights=g.adjwgt, minlength=n)
    coo = COOMatrix(
        np.concatenate([rows, np.arange(n)]),
        np.concatenate([g.adjncy, np.arange(n)]),
        np.concatenate([-g.adjwgt, deg]),
        (n, n))
    return coo.to_csr().to_scipy()


def fiedler_vector(g: Graph, seed: int = 0) -> np.ndarray:
    """The eigenvector of the second-smallest Laplacian eigenvalue.

    Uses shift-inverted Lanczos (``scipy.sparse.linalg.eigsh``) with a
    deterministic start vector; falls back to dense eigendecomposition
    for very small graphs.
    """
    import scipy.sparse.linalg as spla

    n = g.n_vertices
    if n < 3:
        return np.arange(n, dtype=np.float64)
    L = _laplacian(g)
    if n <= 64:
        vals, vecs = np.linalg.eigh(L.toarray())
        return vecs[:, 1]
    rng = np.random.default_rng(seed)
    v0 = rng.standard_normal(n)
    _, vecs = spla.eigsh(L, k=2, sigma=-1e-6, which="LM", v0=v0)
    return vecs[:, 1]


def spectral_bisection(g: Graph, fraction0: float = 0.5,
                       seed: int = 0) -> np.ndarray:
    """0/1 side array splitting the sorted Fiedler vector so side 0 holds
    ``fraction0`` of the vertex weight."""
    if not 0.0 < fraction0 < 1.0:
        raise ValueError("fraction0 must be in (0, 1)")
    f = fiedler_vector(g, seed=seed)
    order = np.argsort(f, kind="stable")
    weights = g.vwgt[order]
    target = float(weights.sum()) * fraction0
    cum = np.cumsum(weights)
    k = int(np.searchsorted(cum, target)) + 1
    k = min(max(k, 1), g.n_vertices - 1)
    side = np.ones(g.n_vertices, dtype=np.int8)
    side[order[:k]] = 0
    return side


def spectral_partition(g: Graph, n_parts: int, seed: int = 0) -> np.ndarray:
    """k-way partition by recursive spectral bisection."""
    from repro.partition.multilevel import _induced_subgraph

    if n_parts < 1:
        raise ValueError("n_parts must be positive")
    parts = np.zeros(g.n_vertices, dtype=np.int64)
    if n_parts == 1:
        return parts

    def recurse(vertices: np.ndarray, sub: Graph, k: int,
                base: int) -> None:
        if k == 1 or vertices.size <= 1:
            parts[vertices] = base
            return
        k0 = k // 2
        side = spectral_bisection(sub, fraction0=k0 / k, seed=seed + base)
        for s, kk, b in ((0, k0, base), (1, k - k0, base + k0)):
            mask = side == s
            child_vertices = vertices[mask]
            if kk == 1 or child_vertices.size <= 1:
                parts[child_vertices] = b
                continue
            recurse(child_vertices,
                    _induced_subgraph(sub, np.flatnonzero(mask)), kk, b)

    recurse(np.arange(g.n_vertices), g, n_parts, 0)
    return parts
