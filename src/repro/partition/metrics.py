"""Partition quality metrics: edge cut, balance, subdomain connectivity."""

from __future__ import annotations

import numpy as np

from repro.partition.graph import Graph, matrix_graph
from repro.sparsela import CSRMatrix

__all__ = ["edge_cut", "imbalance", "neighbor_lists", "parts_are_valid"]


def parts_are_valid(parts: np.ndarray, n_parts: int) -> bool:
    """Every label in range and every part nonempty."""
    parts = np.asarray(parts)
    if parts.size == 0:
        return n_parts == 0
    if parts.min() < 0 or parts.max() >= n_parts:
        return False
    return np.unique(parts).size == n_parts


def edge_cut(g: Graph, parts: np.ndarray) -> float:
    """Total weight of edges whose endpoints lie in different parts."""
    rows = np.repeat(np.arange(g.n_vertices), g.degrees())
    crossing = parts[rows] != parts[g.adjncy]
    return float(g.adjwgt[crossing].sum() / 2.0)


def imbalance(g: Graph, parts: np.ndarray, n_parts: int) -> float:
    """``max part weight / ideal part weight`` (1.0 = perfectly balanced)."""
    weights = np.bincount(parts, weights=g.vwgt, minlength=n_parts)
    ideal = g.vwgt.sum() / n_parts
    return float(weights.max() / ideal)


def neighbor_lists(A: CSRMatrix, parts: np.ndarray,
                   n_parts: int) -> list[np.ndarray]:
    """For each part, the sorted array of parts it couples to in ``A``.

    Part ``q`` is a neighbor of ``p`` if some matrix entry connects a row of
    ``p`` with a column owned by ``q`` (symmetrised).  This is the process
    topology over which all solver messages flow.
    """
    rows = A._expanded_row_ids()
    pu = parts[rows]
    pv = parts[A.indices]
    mask = pu != pv
    pairs = np.unique(np.stack([np.concatenate([pu[mask], pv[mask]]),
                                np.concatenate([pv[mask], pu[mask]])],
                               axis=1), axis=0)
    out: list[np.ndarray] = [np.empty(0, dtype=np.int64)
                             for _ in range(n_parts)]
    if pairs.size == 0:
        return out
    split = np.searchsorted(pairs[:, 0], np.arange(n_parts + 1))
    for p in range(n_parts):
        out[p] = pairs[split[p]:split[p + 1], 1].copy()
    return out
