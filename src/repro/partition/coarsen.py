"""Graph coarsening via heavy-edge matching (the METIS coarsening phase).

Each coarsening level matches vertices with their heaviest-weight unmatched
neighbor; matched pairs contract to one coarse vertex whose weight is the
sum and whose edges accumulate parallel-edge weights.  Coarsening stops
when the graph is small enough or stops shrinking (high-degree graphs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.partition.graph import Graph
from repro.sparsela import COOMatrix

__all__ = ["CoarseLevel", "coarsen_graph", "heavy_edge_matching"]


@dataclass
class CoarseLevel:
    """One level of the coarsening hierarchy.

    ``cmap[v]`` is the coarse vertex containing fine vertex ``v``.
    """

    graph: Graph
    cmap: np.ndarray


def heavy_edge_matching(g: Graph, seed: int = 0) -> np.ndarray:
    """Heavy-edge matching: ``match[v]`` = partner of ``v`` (or ``v`` itself).

    Vertices are visited in random order; an unmatched vertex grabs its
    heaviest unmatched neighbor.  The result is a valid matching
    (``match[match[v]] == v``).
    """
    n = g.n_vertices
    rng = np.random.default_rng(seed)
    match = np.full(n, -1, dtype=np.int64)
    for u in rng.permutation(n):
        if match[u] >= 0:
            continue
        nbrs = g.neighbors(u)
        wgts = g.edge_weights(u)
        free = match[nbrs] < 0
        if np.any(free):
            cand = nbrs[free]
            best = cand[np.argmax(wgts[free])]
            match[u] = best
            match[best] = u
        else:
            match[u] = u
    return match


def contract(g: Graph, match: np.ndarray) -> CoarseLevel:
    """Contract a matching into the coarse graph."""
    n = g.n_vertices
    # coarse ids: the smaller endpoint of each pair names the coarse vertex
    leader = np.minimum(np.arange(n), match)
    order = np.argsort(leader, kind="stable")
    is_first = np.empty(n, dtype=bool)
    is_first[0] = True
    sorted_leader = leader[order]
    is_first[1:] = sorted_leader[1:] != sorted_leader[:-1]
    cmap = np.empty(n, dtype=np.int64)
    cmap[order] = np.cumsum(is_first) - 1
    nc = int(cmap.max()) + 1

    cvwgt = np.bincount(cmap, weights=g.vwgt, minlength=nc).astype(np.int64)

    rows = np.repeat(np.arange(n), g.degrees())
    cu = cmap[rows]
    cv = cmap[g.adjncy]
    keep = cu != cv                      # drop contracted (internal) edges
    merged = COOMatrix(cu[keep], cv[keep], g.adjwgt[keep], (nc, nc)).to_csr()
    coarse = Graph(xadj=merged.indptr.copy(), adjncy=merged.indices.copy(),
                   adjwgt=merged.data.copy(), vwgt=cvwgt)
    return CoarseLevel(graph=coarse, cmap=cmap)


def coarsen_graph(g: Graph, min_vertices: int = 48, max_levels: int = 30,
                  shrink_threshold: float = 0.92, seed: int = 0
                  ) -> list[CoarseLevel]:
    """Full coarsening hierarchy, finest first.

    Stops at ``min_vertices``, after ``max_levels``, or when a level shrinks
    the vertex count by less than ``1 - shrink_threshold`` (matching has
    stalled).  Returns the list of levels; an empty list means the input was
    already small.
    """
    levels: list[CoarseLevel] = []
    current = g
    for lev in range(max_levels):
        if current.n_vertices <= min_vertices:
            break
        match = heavy_edge_matching(current, seed=seed + lev)
        level = contract(current, match)
        if level.graph.n_vertices >= shrink_threshold * current.n_vertices:
            break
        levels.append(level)
        current = level.graph
    return levels
