"""Graph coarsening via heavy-edge matching (the METIS coarsening phase).

Each coarsening level matches vertices with their heaviest-weight unmatched
neighbor; matched pairs contract to one coarse vertex whose weight is the
sum and whose edges accumulate parallel-edge weights.  Coarsening stops
when the graph is small enough or stops shrinking (high-degree graphs).

The matcher itself dispatches through the kernel backend layer
(``repro.sparsela.backend``): the default is the list-based fast kernel in
:mod:`repro.partition._kernels`, ``reference`` is the seed loop verbatim,
``numba`` a compiled version — all three produce bit-identical matchings
(pinned by the partition-label digests in ``tests/test_partition.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.partition.graph import Graph
from repro.sparsela.backend import get_backend

__all__ = ["CoarseLevel", "coarsen_graph", "coarsen_labels",
           "heavy_edge_matching", "matching_relabel"]


@dataclass
class CoarseLevel:
    """One level of the coarsening hierarchy.

    ``cmap[v]`` is the coarse vertex containing fine vertex ``v``.
    """

    graph: Graph
    cmap: np.ndarray


def heavy_edge_matching(g: Graph, seed: int = 0) -> np.ndarray:
    """Heavy-edge matching: ``match[v]`` = partner of ``v`` (or ``v`` itself).

    Vertices are visited in random order; an unmatched vertex grabs its
    heaviest unmatched neighbor.  The result is a valid matching
    (``match[match[v]] == v``).
    """
    rng = np.random.default_rng(seed)
    perm = rng.permutation(g.n_vertices)
    return get_backend().hem_match(g, perm)


def matching_relabel(match: np.ndarray) -> tuple[np.ndarray, int]:
    """Coarse labels for a matching: ``(cmap, n_coarse)``.

    The smaller endpoint of each pair names the coarse vertex, and
    coarse ids are assigned in increasing-leader order — so the id of a
    group is its leader's rank among all leaders, a single cumsum over
    the leader mask (no argsort needed).
    """
    n = match.size
    idx = np.arange(n)
    leader = np.minimum(idx, match)
    cid = np.cumsum(leader == idx) - 1
    cmap = cid[leader]
    nc = int(cid[-1]) + 1 if n else 0
    return cmap, nc


def contract(g: Graph, match: np.ndarray) -> CoarseLevel:
    """Contract a matching into the coarse graph."""
    cmap, nc = matching_relabel(match)

    cvwgt = np.bincount(cmap, weights=g.vwgt, minlength=nc).astype(np.int64)

    cu = cmap[g.expanded_rows()]
    cv = cmap[g.adjncy]
    keep = cu != cv                      # drop contracted (internal) edges
    # merge parallel edges: the COO duplicate-summation inlined (same
    # stable key sort + reduceat as COOMatrix.sum_duplicates, minus the
    # matrix-object validation passes on this hot path)
    keys = cu[keep] * nc + cv[keep]
    vals = g.adjwgt[keep]
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    vals = vals[order]
    if keys.size:
        bnd = np.empty(keys.size, dtype=bool)
        bnd[0] = True
        np.not_equal(keys[1:], keys[:-1], out=bnd[1:])
        starts = np.flatnonzero(bnd)
        adjwgt = np.add.reduceat(vals, starts)
        ckeys = keys[starts]
    else:
        adjwgt = vals
        ckeys = keys
    xadj = np.zeros(nc + 1, dtype=np.int64)
    np.cumsum(np.bincount(ckeys // nc, minlength=nc), out=xadj[1:])
    coarse = Graph(xadj=xadj, adjncy=ckeys % nc, adjwgt=adjwgt, vwgt=cvwgt)
    return CoarseLevel(graph=coarse, cmap=cmap)


def coarsen_graph(g: Graph, min_vertices: int = 48, max_levels: int = 30,
                  shrink_threshold: float = 0.92, seed: int = 0
                  ) -> list[CoarseLevel]:
    """Full coarsening hierarchy, finest first.

    Stops at ``min_vertices``, after ``max_levels``, or when a level shrinks
    the vertex count by less than ``1 - shrink_threshold`` (matching has
    stalled).  Returns the list of levels; an empty list means the input was
    already small.
    """
    levels: list[CoarseLevel] = []
    current = g
    for lev in range(max_levels):
        if current.n_vertices <= min_vertices:
            break
        match = heavy_edge_matching(current, seed=seed + lev)
        level = contract(current, match)
        if level.graph.n_vertices >= shrink_threshold * current.n_vertices:
            break
        levels.append(level)
        current = level.graph
    return levels


def coarsen_labels(g: Graph, min_vertices: int = 48, max_levels: int = 30,
                   shrink_threshold: float = 0.92, seed: int = 0
                   ) -> tuple[np.ndarray, Graph, int]:
    """Memory-compact coarsening: relabel in place, keep only one graph.

    Runs the exact :func:`coarsen_graph` schedule (same matchings, same
    stopping rules, bit-identical coarse graphs) but composes the level
    maps into one fine→coarsest label array as it goes, so intermediate
    graphs are freed immediately instead of being retained in a
    hierarchy — the difference between O(sum of level sizes) and
    O(finest + current) resident memory at million-row scale
    (DESIGN.md §5.13).

    Returns ``(labels, coarsest, n_levels)`` where
    ``labels[v] ∈ [0, coarsest.n_vertices)``; composing the cmaps of
    :func:`coarsen_graph` gives the identical array.
    """
    labels = np.arange(g.n_vertices, dtype=np.int64)
    current = g
    n_levels = 0
    for lev in range(max_levels):
        if current.n_vertices <= min_vertices:
            break
        match = heavy_edge_matching(current, seed=seed + lev)
        level = contract(current, match)
        if level.graph.n_vertices >= shrink_threshold * current.n_vertices:
            break
        labels = level.cmap[labels]
        current = level.graph       # previous level is dropped here
        n_levels += 1
    return labels, current, n_levels
