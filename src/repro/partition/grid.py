"""Regular-grid block partitioner.

For lexicographically ordered ``nx × ny`` grid problems, splitting into a
``px × py`` array of rectangular blocks gives contiguous, low-cut
subdomains without running the multilevel machinery — useful for the
multigrid experiments and as a fast deterministic alternative in tests.
"""

from __future__ import annotations

import numpy as np

__all__ = ["grid_blocks_2d", "factor_near_square"]


def factor_near_square(p: int) -> tuple[int, int]:
    """Factor ``p = px * py`` with ``px``, ``py`` as close as possible."""
    if p < 1:
        raise ValueError("p must be positive")
    px = int(np.sqrt(p))
    while p % px:
        px -= 1
    return px, p // px


def grid_blocks_2d(nx: int, ny: int, n_parts: int) -> np.ndarray:
    """Partition an ``nx × ny`` grid (x fastest) into rectangular blocks.

    ``n_parts`` is factored near-square; remainders spread one extra
    row/column of cells over the leading blocks so sizes differ by at most
    one grid line.
    """
    px, py = factor_near_square(n_parts)
    if px > nx or py > ny:
        raise ValueError(f"cannot cut a {nx}x{ny} grid into {px}x{py} blocks")
    x_edges = np.linspace(0, nx, px + 1).astype(np.int64)
    y_edges = np.linspace(0, ny, py + 1).astype(np.int64)
    x_block = np.searchsorted(x_edges, np.arange(nx), side="right") - 1
    y_block = np.searchsorted(y_edges, np.arange(ny), side="right") - 1
    return (y_block[:, None] * px + x_block[None, :]).ravel()
