"""Intergrid transfer: full-weighting restriction and bilinear prolongation.

For ``2^k - 1`` grids with 2:1 coarsening, the coarse point ``(I, J)``
sits on the fine point ``(2I+1, 2J+1)`` (0-based interior indices).  Full
weighting averages the 3×3 fine neighborhood with the stencil
``1/16 [[1,2,1],[2,4,2],[1,2,1]]``; bilinear prolongation is its transpose
times 4.  Both are implemented as array operations on the 2D views — no
matrices are formed.
"""

from __future__ import annotations

import numpy as np

from repro.sparsela import COOMatrix, CSRMatrix

__all__ = ["bilinear_prolongation", "full_weighting",
           "prolongation_matrix", "restriction_matrix", "sparsify"]


def full_weighting(fine: np.ndarray, n_fine: int) -> np.ndarray:
    """Restrict a fine-grid vector (length ``n_fine²``) to the coarse grid.

    Returns a vector of length ``((n_fine - 1) // 2)²``.
    """
    if fine.size != n_fine * n_fine:
        raise ValueError("fine vector does not match the grid size")
    n_coarse = (n_fine - 1) // 2
    u = fine.reshape(n_fine, n_fine)
    # fine index of coarse (I, J) is (2I + 1, 2J + 1)
    c = u[1::2, 1::2][:n_coarse, :n_coarse]
    out = 4.0 * c
    out = out + 2.0 * (u[0:-2:2, 1::2] + u[2::2, 1::2]
                       + u[1::2, 0:-2:2] + u[1::2, 2::2])
    out = out + (u[0:-2:2, 0:-2:2] + u[0:-2:2, 2::2]
                 + u[2::2, 0:-2:2] + u[2::2, 2::2])
    return (out / 16.0).ravel()


def bilinear_prolongation(coarse: np.ndarray, n_coarse: int) -> np.ndarray:
    """Interpolate a coarse-grid vector to the ``2*n_coarse + 1`` fine grid.

    Standard bilinear interpolation: coincident points copy, edge points
    average 2 coarse neighbors, cell centers average 4.  Dirichlet zero
    values are assumed outside the boundary.
    """
    if coarse.size != n_coarse * n_coarse:
        raise ValueError("coarse vector does not match the grid size")
    n_fine = 2 * n_coarse + 1
    c = coarse.reshape(n_coarse, n_coarse)
    cp = np.zeros((n_coarse + 2, n_coarse + 2))
    cp[1:-1, 1:-1] = c                      # zero-padded (Dirichlet halo)
    out = np.zeros((n_fine, n_fine))
    out[1::2, 1::2] = c                     # coincident
    # vertical edges: fine (2I, 2J+1) between coarse (I-1, J) and (I, J)
    out[0::2, 1::2] = 0.5 * (cp[0:-1, 1:-1] + cp[1:, 1:-1])
    # horizontal edges
    out[1::2, 0::2] = 0.5 * (cp[1:-1, 0:-1] + cp[1:-1, 1:])
    # cell centers: average of 4 coarse corners
    out[0::2, 0::2] = 0.25 * (cp[0:-1, 0:-1] + cp[0:-1, 1:]
                              + cp[1:, 0:-1] + cp[1:, 1:])
    return out.ravel()


def restriction_matrix(n_fine: int) -> CSRMatrix:
    """Full weighting as an explicit sparse matrix ``R``.

    Shape ``(n_coarse², n_fine²)``; ``R @ fine == full_weighting(fine)``.
    Used to form Galerkin coarse operators ``A_c = R A P``.
    """
    n_coarse = (n_fine - 1) // 2
    rows, cols, vals = [], [], []
    stencil = {(-1, -1): 1, (-1, 0): 2, (-1, 1): 1,
               (0, -1): 2, (0, 0): 4, (0, 1): 2,
               (1, -1): 1, (1, 0): 2, (1, 1): 1}
    I, J = np.meshgrid(np.arange(n_coarse), np.arange(n_coarse),
                       indexing="ij")
    coarse_idx = (I * n_coarse + J).ravel()
    fi = (2 * I + 1).ravel()
    fj = (2 * J + 1).ravel()
    for (di, dj), w in stencil.items():
        rows.append(coarse_idx)
        cols.append((fi + di) * n_fine + (fj + dj))
        vals.append(np.full(coarse_idx.size, w / 16.0))
    return COOMatrix(np.concatenate(rows), np.concatenate(cols),
                     np.concatenate(vals),
                     (n_coarse * n_coarse, n_fine * n_fine)).to_csr()


def prolongation_matrix(n_coarse: int) -> CSRMatrix:
    """Bilinear interpolation as an explicit sparse matrix ``P = 4 Rᵀ``."""
    n_fine = 2 * n_coarse + 1
    return restriction_matrix(n_fine).transpose().scale(4.0)


def sparsify(A: CSRMatrix, drop_tol: float) -> tuple[CSRMatrix, int]:
    """Drop weak off-diagonal couplings from a (Galerkin) coarse operator.

    The AMG-sparsification idea of Bienz et al. (arXiv 1512.04629): an
    off-diagonal entry ``a_ij`` is *weak* — and dropped — when

        ``|a_ij| < drop_tol * sqrt(|a_ii * a_jj|)``

    The criterion is symmetric in ``(i, j)``, so a structurally symmetric
    operator stays structurally symmetric (the block methods' neighbor
    graph requires it); diagonal entries are always kept.  Dropping an
    entry removes its column from the row's coupling set, which on the
    distributed side removes that edge's messages — at the price of a
    stiffer coarse operator whose correction converges more slowly.
    That comm-vs-convergence trade-off is exactly what
    ``scripts/bench_mg.py`` measures: messages per cycle fall with
    ``drop_tol`` while cycles per digit rise.  (Diagonal lumping of the
    dropped weight — the classic AMG compensation — was measured here
    and *diverges* on the constant-coefficient Poisson hierarchy: it
    rescales the coarse diagonal and overcorrects; plain dropping only
    dampens the correction, which is the safe direction.)

    Returns ``(A_sparsified, nnz_dropped)``.  ``drop_tol = 0`` returns
    ``A`` itself untouched (the exact Galerkin operator).
    """
    if drop_tol < 0.0:
        raise ValueError("drop_tol must be >= 0")
    if A.n_rows != A.n_cols:
        raise ValueError("sparsify expects a square operator")
    if drop_tol == 0.0:
        return A, 0
    rows = np.repeat(np.arange(A.n_rows, dtype=np.int64),
                     np.diff(A.indptr))
    cols = A.indices
    diag = A.diagonal()
    thresh = drop_tol * np.sqrt(np.abs(diag[rows] * diag[cols]))
    keep = (rows == cols) | (np.abs(A.data) >= thresh)
    dropped = int(keep.size - np.count_nonzero(keep))
    if dropped == 0:
        return A, 0
    counts = np.bincount(rows[keep], minlength=A.n_rows)
    indptr = np.zeros(A.n_rows + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return CSRMatrix(indptr, cols[keep], A.data[keep].copy(),
                     A.shape), dropped
