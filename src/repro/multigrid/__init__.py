"""Geometric multigrid substrate (the paper's Section 4.1 experiment).

V-cycles on the 2D Poisson problem with pluggable smoothers: Gauss-Seidel
(baseline) versus Distributed Southwell at an exactly equal — or halved —
relaxation budget.  The paper's headline: Distributed Southwell smoothing
gives grid-size-independent convergence even at half a sweep, and beats
Gauss-Seidel per relaxation.
"""

from repro.multigrid.grid import GridLevel, build_hierarchy, valid_grid_dims
from repro.multigrid.smoothers import (
    ChebyshevSmoother,
    DistributedSouthwellSmoother,
    GaussSeidelSmoother,
    ParallelSouthwellSmoother,
    RedBlackGaussSeidelSmoother,
    Smoother,
    WeightedJacobiSmoother,
)
from repro.multigrid.transfer import (
    bilinear_prolongation,
    full_weighting,
    prolongation_matrix,
    restriction_matrix,
)
from repro.multigrid.vcycle import MultigridSolver, vcycle_experiment_run

__all__ = [
    "ChebyshevSmoother",
    "DistributedSouthwellSmoother",
    "GaussSeidelSmoother",
    "GridLevel",
    "MultigridSolver",
    "ParallelSouthwellSmoother",
    "RedBlackGaussSeidelSmoother",
    "Smoother",
    "WeightedJacobiSmoother",
    "bilinear_prolongation",
    "build_hierarchy",
    "full_weighting",
    "prolongation_matrix",
    "restriction_matrix",
    "valid_grid_dims",
    "vcycle_experiment_run",
]
