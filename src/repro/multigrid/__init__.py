"""Geometric multigrid substrate (the paper's Section 4.1 experiment).

V-cycles on the 2D Poisson problem with pluggable smoothers: Gauss-Seidel
(baseline) versus Distributed Southwell at an exactly equal — or halved —
relaxation budget.  The paper's headline: Distributed Southwell smoothing
gives grid-size-independent convergence even at half a sweep, and beats
Gauss-Seidel per relaxation.

The front door is ``solve(A, method="mg", ...)`` (DESIGN.md §5.16),
which drives :class:`MultigridExecutor` — V-cycles with block-DS/PS/BJ
smoothing through the real distributed runtime, per-level message
accounting, and optional Galerkin-coarse-operator sparsification.  The
seed-era :class:`MultigridSolver` / :func:`vcycle_experiment_run` pair
is deprecated in its favour.
"""

from repro.multigrid.block_smoothers import (
    BLOCK_SMOOTHER_METHODS,
    BlockSmoother,
    LevelRunner,
)
from repro.multigrid.grid import (
    GridLevel,
    build_hierarchy,
    build_operator_hierarchy,
    fine_dim_of,
    valid_grid_dims,
)
from repro.multigrid.mg_exec import (
    LevelStats,
    MultigridExecutor,
    make_smoother,
)
from repro.multigrid.smoothers import (
    ChebyshevSmoother,
    DistributedSouthwellSmoother,
    GaussSeidelSmoother,
    ParallelSouthwellSmoother,
    RedBlackGaussSeidelSmoother,
    Smoother,
    WeightedJacobiSmoother,
)
from repro.multigrid.transfer import (
    bilinear_prolongation,
    full_weighting,
    prolongation_matrix,
    restriction_matrix,
    sparsify,
)
from repro.multigrid.vcycle import MultigridSolver, vcycle_experiment_run

__all__ = [
    "BLOCK_SMOOTHER_METHODS",
    "BlockSmoother",
    "ChebyshevSmoother",
    "DistributedSouthwellSmoother",
    "GaussSeidelSmoother",
    "GridLevel",
    "LevelRunner",
    "LevelStats",
    "MultigridExecutor",
    "MultigridSolver",
    "ParallelSouthwellSmoother",
    "RedBlackGaussSeidelSmoother",
    "Smoother",
    "WeightedJacobiSmoother",
    "bilinear_prolongation",
    "build_hierarchy",
    "build_operator_hierarchy",
    "fine_dim_of",
    "full_weighting",
    "make_smoother",
    "prolongation_matrix",
    "restriction_matrix",
    "sparsify",
    "valid_grid_dims",
    "vcycle_experiment_run",
]
