"""The multigrid V-cycle with pluggable smoothers (Figure 6).

One V-cycle: pre-smooth, restrict the residual, recurse (exact solve at the
3×3 coarsest level), prolongate and correct, post-smooth.  The paper's
experiment runs 9 V-cycles with one pre- and one post-smoothing step and
compares the relative residual norm across grid sizes; grid-size-independent
convergence is the property under test.

.. deprecated::
    :class:`MultigridSolver` and :func:`vcycle_experiment_run` are
    deprecated for one release cycle in favour of the ``solve()`` front
    door (``solve(A, method="mg", config=RunConfig(mg=MultigridConfig(...)))``)
    and :class:`~repro.multigrid.mg_exec.MultigridExecutor`, whose
    V-cycle arithmetic is bit-identical and which additionally accounts
    for every smoothing message.  They will be removed next cycle.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.analysis.history import ConvergenceHistory
from repro.multigrid.grid import GridLevel, build_hierarchy
from repro.multigrid.smoothers import Smoother
from repro.multigrid.transfer import bilinear_prolongation, full_weighting

__all__ = ["MultigridSolver", "vcycle_experiment_run"]


class MultigridSolver:
    """Geometric multigrid for the 2D Poisson problem.

    Parameters
    ----------
    fine_dim:
        Fine-grid points per side (``2^k - 1``).
    pre_smoother, post_smoother:
        :class:`~repro.multigrid.smoothers.Smoother` instances (one
        application each per level visit, as in the paper).
    coarsest_dim:
        Exact-solve level (3 in the paper).
    galerkin:
        Build coarse operators variationally (``A_c = R A P`` with the
        explicit transfer matrices) instead of rediscretizing.  The
        Galerkin operators are 9-point but spectrally equivalent; both
        hierarchies give grid-independent V-cycles.
    """

    def __init__(self, fine_dim: int, pre_smoother: Smoother,
                 post_smoother: Smoother, coarsest_dim: int = 3,
                 galerkin: bool = False):
        warnings.warn(
            "MultigridSolver is deprecated (one release cycle): use "
            "solve(A, method='mg', config=RunConfig(mg=MultigridConfig"
            "(...))) or repro.multigrid.MultigridExecutor, whose V-cycle "
            "is bit-identical and message-accounted",
            DeprecationWarning, stacklevel=2)
        self.levels: list[GridLevel] = build_hierarchy(fine_dim,
                                                       coarsest_dim)
        self.galerkin = galerkin
        if galerkin:
            from repro.multigrid.grid import GridLevel as _GL
            from repro.multigrid.transfer import (
                prolongation_matrix,
                restriction_matrix,
            )

            rebuilt = [self.levels[0]]
            for lvl in range(1, len(self.levels)):
                n_f = rebuilt[-1].n
                A_f = rebuilt[-1].matrix
                R = restriction_matrix(n_f)
                P = prolongation_matrix((n_f - 1) // 2)
                A_c = R.matmat(A_f).matmat(P).prune(1e-14)
                rebuilt.append(_GL(n=(n_f - 1) // 2, matrix=A_c))
            self.levels = rebuilt
        self.pre = pre_smoother
        self.post = post_smoother
        coarsest = self.levels[-1].matrix
        self._coarse_dense = np.linalg.inv(coarsest.to_dense())

    @property
    def fine_level(self) -> GridLevel:
        return self.levels[0]

    def _cycle(self, lvl: int, x: np.ndarray, b: np.ndarray,
               gamma: int = 1) -> np.ndarray:
        level = self.levels[lvl]
        if lvl == len(self.levels) - 1:
            return self._coarse_dense @ b
        A = level.matrix
        x = self.pre.smooth(A, x, b)
        r = b - A.matvec(x)
        r_c = full_weighting(r, level.n)
        n_coarse = self.levels[lvl + 1].n
        e_c = np.zeros(n_coarse * n_coarse)
        for _ in range(gamma):                   # gamma=1 V, gamma=2 W
            e_c = self._cycle(lvl + 1, e_c, r_c, gamma=gamma)
        x = x + bilinear_prolongation(e_c, n_coarse)
        x = self.post.smooth(A, x, b)
        return x

    def vcycle(self, x: np.ndarray, b: np.ndarray) -> np.ndarray:
        """One V-cycle from the fine grid."""
        return self._cycle(0, np.asarray(x, dtype=np.float64),
                           np.asarray(b, dtype=np.float64), gamma=1)

    def wcycle(self, x: np.ndarray, b: np.ndarray) -> np.ndarray:
        """One W-cycle (two recursive coarse visits per level)."""
        return self._cycle(0, np.asarray(x, dtype=np.float64),
                           np.asarray(b, dtype=np.float64), gamma=2)

    def fmg(self, b: np.ndarray) -> np.ndarray:
        """Full multigrid: solve coarse first, interpolate up, one V-cycle
        per level — an O(n) solver to discretisation accuracy."""
        b = np.asarray(b, dtype=np.float64)
        rhs: list[np.ndarray] = [b]
        for lvl in range(len(self.levels) - 1):
            rhs.append(full_weighting(rhs[-1], self.levels[lvl].n))
        x = self._coarse_dense @ rhs[-1]
        for lvl in range(len(self.levels) - 2, -1, -1):
            x = bilinear_prolongation(x, self.levels[lvl + 1].n)
            x = self._cycle(lvl, x, rhs[lvl], gamma=1)
        return x

    def solve(self, b: np.ndarray, n_cycles: int = 9,
              x0: np.ndarray | None = None) -> ConvergenceHistory:
        """Run ``n_cycles`` V-cycles, recording the residual after each."""
        A = self.fine_level.matrix
        n = A.n_rows
        x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        hist = ConvergenceHistory()
        r0 = float(np.linalg.norm(b - A.matvec(x)))
        hist.append(norm=r0, relaxations=0, parallel_steps=0)
        for k in range(1, n_cycles + 1):
            x = self.vcycle(x, b)
            hist.append(norm=float(np.linalg.norm(b - A.matvec(x))),
                        relaxations=0, parallel_steps=k)
        self.x = x
        return hist


def vcycle_experiment_run(fine_dim: int, smoother_factory, n_cycles: int = 9,
                          seed: int = 0) -> float:
    """Figure 6 protocol for one grid size: 9 V-cycles, random RHS in
    ``[-1, 1]``, returns the relative residual norm ``‖r_9‖/‖r_0‖``."""
    warnings.warn(
        "vcycle_experiment_run is deprecated (one release cycle): use "
        "solve(A, method='mg') or repro.multigrid.MultigridExecutor "
        "(see repro.experiments.fig6 for the migrated protocol)",
        DeprecationWarning, stacklevel=2)
    rng = np.random.default_rng(seed)
    n = fine_dim * fine_dim
    b = rng.uniform(-1.0, 1.0, n)
    pre, post = smoother_factory(), smoother_factory()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        mg = MultigridSolver(fine_dim, pre, post)
    hist = mg.solve(b, n_cycles=n_cycles)
    return hist.final_norm / hist.initial_norm
