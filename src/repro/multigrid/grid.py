"""Geometric grid hierarchy for the 2D Poisson multigrid (Figure 6).

The paper's smoothing experiment solves the 2D Poisson equation on square
grids from 15×15 up to 255×255, coarsening each V-cycle level by standard
2:1 coarsening until the coarsest level is 3×3 (solved exactly).  Grid
sizes are therefore ``2^k - 1`` per side; this module builds the level
structure and the per-level operators.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.matrices.poisson import poisson_2d
from repro.sparsela import CSRMatrix

__all__ = ["GridLevel", "build_hierarchy", "build_operator_hierarchy",
           "fine_dim_of", "valid_grid_dims"]


@dataclass(frozen=True)
class GridLevel:
    """One level: an ``n × n`` interior grid and its 5-point operator."""

    n: int                  # points per side
    matrix: CSRMatrix       # 5-point Laplacian scaled by 1/h^2, h = 1/(n+1)

    @property
    def n_unknowns(self) -> int:
        return self.n * self.n

    @property
    def h(self) -> float:
        return 1.0 / (self.n + 1)


def valid_grid_dims(max_dim: int = 255, min_dim: int = 15) -> list[int]:
    """The paper's grid dimensions: ``2^k - 1`` from 15 to ``max_dim``."""
    dims = []
    d = 3
    while d <= max_dim:
        if d >= min_dim:
            dims.append(d)
        d = 2 * d + 1
    return dims


def coarse_dim(n: int) -> int:
    """Standard 2:1 coarsening of a ``2^k - 1`` grid: ``(n - 1) // 2``."""
    if n < 3 or (n + 1) & n != 0:
        raise ValueError(f"grid dimension {n} is not of the form 2^k - 1")
    return (n - 1) // 2


def fine_dim_of(n_unknowns: int) -> int:
    """Grid side ``d`` with ``d² == n_unknowns`` and ``d = 2^k - 1``.

    The validation gate for ``solve(A, method="mg")``: the geometric
    hierarchy only exists for square ``2^k - 1`` grids, so any other
    operator size is rejected with a clear error instead of a shape
    mismatch deep inside the transfer operators.
    """
    d = round(n_unknowns ** 0.5)
    if d * d != n_unknowns or d < 3 or (d + 1) & d != 0:
        raise ValueError(
            f"multigrid needs n = d² with d = 2^k - 1 >= 3 (a 2D Poisson "
            f"grid); got n = {n_unknowns}")
    return d


def build_hierarchy(fine_dim: int, coarsest_dim: int = 3) -> list[GridLevel]:
    """All levels from ``fine_dim`` down to ``coarsest_dim`` (finest first).

    Each level rediscretizes the Laplacian (geometric multigrid), scaled
    by ``1/h²`` so the hierarchy is dimensionally consistent with
    full-weighting restriction and bilinear prolongation.
    """
    if coarsest_dim < 3:
        raise ValueError("coarsest grid must be at least 3x3")
    levels = []
    d = fine_dim
    while True:
        h = 1.0 / (d + 1)
        levels.append(GridLevel(n=d, matrix=poisson_2d(d).scale(1.0 / h**2)))
        if d <= coarsest_dim:
            break
        d = coarse_dim(d)
    if levels[-1].n != coarsest_dim:
        raise ValueError(
            f"fine dim {fine_dim} does not coarsen to {coarsest_dim}")
    return levels


def build_operator_hierarchy(A: CSRMatrix, coarsest_dim: int = 3,
                             n_levels: int | None = None,
                             hierarchy: str = "geometric",
                             drop_tol: float = 0.0,
                             ) -> tuple[list[GridLevel], list[int]]:
    """Level structure for an arbitrary fine operator ``A`` (finest first).

    ``hierarchy="geometric"`` keeps ``A`` at the fine level and
    rediscretizes the Laplacian below it — exactly the hierarchy
    :func:`build_hierarchy` builds (``A`` must then *be* the scaled
    5-point Laplacian for the correction to be consistent, which is the
    Figure 6 setting).  ``hierarchy="galerkin"`` forms each coarse
    operator variationally, ``A_c = R A_f P``, and — with ``drop_tol``
    positive — passes it through :func:`~repro.multigrid.transfer.sparsify`
    to drop weak couplings (arXiv 1512.04629).

    ``n_levels`` truncates the hierarchy (``None`` = coarsen all the way
    to ``coarsest_dim``); the last level is always solved exactly, so a
    truncated hierarchy just solves a bigger coarsest system.

    Returns ``(levels, nnz_dropped)`` with one dropped-entry count per
    level (always 0 at the fine level and for geometric/dense levels).
    """
    if hierarchy not in ("geometric", "galerkin"):
        raise ValueError(f"unknown hierarchy {hierarchy!r}")
    if drop_tol > 0.0 and hierarchy != "galerkin":
        raise ValueError(
            "drop_tol sparsification applies to Galerkin coarse "
            "operators; pass hierarchy='galerkin'")
    fine_dim = fine_dim_of(A.n_rows)
    if n_levels is not None and n_levels < 2:
        raise ValueError("a multigrid hierarchy needs at least 2 levels")
    levels = [GridLevel(n=fine_dim, matrix=A)]
    dropped = [0]
    from repro.multigrid.transfer import (
        prolongation_matrix,
        restriction_matrix,
        sparsify,
    )

    while levels[-1].n > coarsest_dim:
        if n_levels is not None and len(levels) >= n_levels:
            break
        n_f = levels[-1].n
        n_c = coarse_dim(n_f)
        if hierarchy == "galerkin":
            A_f = levels[-1].matrix
            A_c = (restriction_matrix(n_f).matmat(A_f)
                   .matmat(prolongation_matrix(n_c)).prune(1e-14))
            A_c, n_drop = sparsify(A_c, drop_tol)
        else:
            h_c = 1.0 / (n_c + 1)
            A_c = poisson_2d(n_c).scale(1.0 / h_c ** 2)
            n_drop = 0
        levels.append(GridLevel(n=n_c, matrix=A_c))
        dropped.append(n_drop)
    return levels, dropped
