"""Geometric grid hierarchy for the 2D Poisson multigrid (Figure 6).

The paper's smoothing experiment solves the 2D Poisson equation on square
grids from 15×15 up to 255×255, coarsening each V-cycle level by standard
2:1 coarsening until the coarsest level is 3×3 (solved exactly).  Grid
sizes are therefore ``2^k - 1`` per side; this module builds the level
structure and the per-level operators.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.matrices.poisson import poisson_2d
from repro.sparsela import CSRMatrix

__all__ = ["GridLevel", "build_hierarchy", "valid_grid_dims"]


@dataclass(frozen=True)
class GridLevel:
    """One level: an ``n × n`` interior grid and its 5-point operator."""

    n: int                  # points per side
    matrix: CSRMatrix       # 5-point Laplacian scaled by 1/h^2, h = 1/(n+1)

    @property
    def n_unknowns(self) -> int:
        return self.n * self.n

    @property
    def h(self) -> float:
        return 1.0 / (self.n + 1)


def valid_grid_dims(max_dim: int = 255, min_dim: int = 15) -> list[int]:
    """The paper's grid dimensions: ``2^k - 1`` from 15 to ``max_dim``."""
    dims = []
    d = 3
    while d <= max_dim:
        if d >= min_dim:
            dims.append(d)
        d = 2 * d + 1
    return dims


def coarse_dim(n: int) -> int:
    """Standard 2:1 coarsening of a ``2^k - 1`` grid: ``(n - 1) // 2``."""
    if n < 3 or (n + 1) & n != 0:
        raise ValueError(f"grid dimension {n} is not of the form 2^k - 1")
    return (n - 1) // 2


def build_hierarchy(fine_dim: int, coarsest_dim: int = 3) -> list[GridLevel]:
    """All levels from ``fine_dim`` down to ``coarsest_dim`` (finest first).

    Each level rediscretizes the Laplacian (geometric multigrid), scaled
    by ``1/h²`` so the hierarchy is dimensionally consistent with
    full-weighting restriction and bilinear prolongation.
    """
    if coarsest_dim < 3:
        raise ValueError("coarsest grid must be at least 3x3")
    levels = []
    d = fine_dim
    while True:
        h = 1.0 / (d + 1)
        levels.append(GridLevel(n=d, matrix=poisson_2d(d).scale(1.0 / h**2)))
        if d <= coarsest_dim:
            break
        d = coarse_dim(d)
    if levels[-1].n != coarsest_dim:
        raise ValueError(
            f"fine dim {fine_dim} does not coarsen to {coarsest_dim}")
    return levels
