"""Communication-aware multigrid execution (DESIGN.md §5.16).

:class:`MultigridExecutor` runs V-cycles over an operator hierarchy with
*one* shared smoother instance (one application pre and one post per
level visit, the paper's Figure 6 protocol) and accounts for every
message the smoothing steps send:

- per-level :class:`LevelStats` rows (grid size, partition count,
  messages, bytes, receives, relaxations, sparsified-away nonzeros) that
  sum to the run totals *by equality* — ``repro trace`` verifies the
  reconciliation;
- an aggregate :class:`~repro.runtime.stats.MessageStats`-shaped footer
  for the trace (`mg:level{k}:pre` / ``mg:restrict`` / ``mg:prolong`` /
  ``mg:level{k}:post`` phases, one trace step per V-cycle);
- merged injected-fault totals when the smoother runs under a
  :class:`~repro.faults.FaultPlan`.

The cycle arithmetic is exactly
:meth:`repro.multigrid.vcycle.MultigridSolver._cycle` with ``gamma=1``,
so a scalar-smoothed executor run is bit-identical to the deprecated
solver's V-cycles.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.analysis.history import ConvergenceHistory
from repro.multigrid.block_smoothers import (
    BLOCK_SMOOTHER_METHODS,
    BlockSmoother,
)
from repro.multigrid.grid import GridLevel, build_operator_hierarchy
from repro.multigrid.smoothers import (
    DistributedSouthwellSmoother,
    GaussSeidelSmoother,
    ParallelSouthwellSmoother,
    Smoother,
)
from repro.multigrid.transfer import bilinear_prolongation, full_weighting
from repro.runtime import CORI_LIKE, CostModel
from repro.sparsela import CSRMatrix
from repro.trace import tracer_from_config

__all__ = ["LevelStats", "MultigridExecutor", "make_smoother"]


@dataclass(frozen=True)
class LevelStats:
    """One hierarchy level's accumulated smoothing totals."""

    level: int          # 0 = finest
    n: int              # grid points per side
    n_unknowns: int     # n * n
    n_parts: int        # smoothing partition count (0 = unsmoothed level)
    msgs: int           # messages sent smoothing this level, all cycles
    bytes: int
    recvs: int
    relaxations: int    # row relaxations spent on this level, all cycles
    nnz_dropped: int    # coarse-operator entries removed by sparsify()

    def to_dict(self) -> dict:
        """JSON-able view (one row of ``SolveResult.levels``)."""
        return dataclasses.asdict(self)


class _AggregateStats:
    """Sum of the level runners' MessageStats, shaped for ``end_run``."""

    def __init__(self, parts, n_procs: int):
        self.n_procs = max(int(n_procs), 1)
        self.category_msgs: dict[str, int] = {}
        self.category_bytes: dict[str, int] = {}
        self.steps: list = []
        self._msgs = 0
        self._bytes = 0
        self._recvs = 0
        self._time = 0.0
        for st in parts:
            self._msgs += st.total_messages
            self._bytes += st.total_bytes
            self._recvs += st.total_receives
            self._time += st.elapsed_time()
            self.steps.extend(st.steps)
            for k, v in st.category_msgs.items():
                self.category_msgs[k] = self.category_msgs.get(k, 0) + v
            for k, v in st.category_bytes.items():
                self.category_bytes[k] = self.category_bytes.get(k, 0) + v

    @property
    def total_messages(self) -> int:
        return self._msgs

    @property
    def total_bytes(self) -> int:
        return self._bytes

    @property
    def total_receives(self) -> int:
        return self._recvs

    def elapsed_time(self) -> float:
        return self._time

    def communication_cost(self) -> float:
        return self._msgs / self.n_procs


def make_smoother(name: str, budget: float = 1.0, n_parts: int = 4,
                  seed: int = 0, local_solver: str = "gs",
                  partition_method: str = "multilevel",
                  cost_model: CostModel = CORI_LIKE,
                  tracer=None, faults=None, cache_dir=None) -> Smoother:
    """Build the smoother a :class:`MultigridConfig` names.

    ``"ds"`` / ``"ps"`` / ``"bj"`` are the block methods
    (:class:`~repro.multigrid.block_smoothers.BlockSmoother`);
    ``"scalar-ds"`` / ``"scalar-ps"`` are the paper's published scalar
    smoothers; ``"gs"`` is the Gauss-Seidel baseline (``budget`` rounds
    to whole sweeps).
    """
    if name in BLOCK_SMOOTHER_METHODS:
        return BlockSmoother(method=name, n_parts=n_parts, fraction=budget,
                             seed=seed, local_solver=local_solver,
                             partition_method=partition_method,
                             cost_model=cost_model, tracer=tracer,
                             faults=faults, cache_dir=cache_dir)
    if name == "gs":
        return GaussSeidelSmoother(max(1, int(round(budget))))
    if name == "scalar-ds":
        return DistributedSouthwellSmoother(budget, seed=seed)
    if name == "scalar-ps":
        return ParallelSouthwellSmoother(budget, seed=seed)
    raise ValueError(f"unknown multigrid smoother {name!r}; choices: "
                     f"{sorted(BLOCK_SMOOTHER_METHODS) + ['gs', 'scalar-ds', 'scalar-ps']}")


class MultigridExecutor:
    """V-cycles over ``A``'s hierarchy with full message accounting.

    Parameters
    ----------
    A:
        Fine operator — an ``n = d²`` matrix with ``d = 2^k - 1`` (the
        2D Poisson grid family; anything else raises).
    smoother:
        One :class:`~repro.multigrid.smoothers.Smoother`, applied once
        pre- and once post- per level visit.  A fresh instance per
        executor: the per-level accounting reads the smoother's
        cumulative runner stats.
    n_levels, hierarchy, drop_tol, coarsest_dim:
        Passed to :func:`~repro.multigrid.grid.build_operator_hierarchy`.
    tracer:
        Trace sink; defaults to the ``REPRO_TRACE`` config.
    """

    def __init__(self, A: CSRMatrix, smoother: Smoother,
                 coarsest_dim: int = 3, n_levels: int | None = None,
                 hierarchy: str = "geometric", drop_tol: float = 0.0,
                 tracer=None):
        self.levels: list[GridLevel]
        self.levels, self.dropped = build_operator_hierarchy(
            A, coarsest_dim=coarsest_dim, n_levels=n_levels,
            hierarchy=hierarchy, drop_tol=drop_tol)
        self.smoother = smoother
        self.tracer = tracer if tracer is not None else tracer_from_config()
        self._coarse_dense = np.linalg.inv(self.levels[-1].matrix.to_dense())
        #: smoothing applications per level (2 per cycle per smoothed
        #: level) — the relaxation accounting for scalar smoothers,
        #: which spend their budget exactly but keep no counters
        self._visits = [0] * len(self.levels)
        self.cycles = 0
        self.history: ConvergenceHistory | None = None
        self.x: np.ndarray | None = None

    # ------------------------------------------------------------------
    # cycle arithmetic (bit-identical to MultigridSolver._cycle, gamma=1)
    # ------------------------------------------------------------------
    def _cycle(self, lvl: int, x: np.ndarray, b: np.ndarray) -> np.ndarray:
        trc = self.tracer
        if lvl == len(self.levels) - 1:
            trc.phase_begin("mg:coarse")
            out = self._coarse_dense @ b
            trc.phase_end("mg:coarse")
            return out
        level = self.levels[lvl]
        A = level.matrix
        trc.phase_begin(f"mg:level{lvl}:pre")
        x = self.smoother.smooth(A, x, b)
        trc.phase_end(f"mg:level{lvl}:pre")
        self._visits[lvl] += 1
        r = b - A.matvec(x)
        trc.phase_begin("mg:restrict")
        r_c = full_weighting(r, level.n)
        trc.phase_end("mg:restrict")
        n_coarse = self.levels[lvl + 1].n
        e_c = self._cycle(lvl + 1, np.zeros(n_coarse * n_coarse), r_c)
        trc.phase_begin("mg:prolong")
        x = x + bilinear_prolongation(e_c, n_coarse)
        trc.phase_end("mg:prolong")
        trc.phase_begin(f"mg:level{lvl}:post")
        x = self.smoother.smooth(A, x, b)
        trc.phase_end(f"mg:level{lvl}:post")
        self._visits[lvl] += 1
        return x

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def _records(self) -> list:
        if not hasattr(self.smoother, "record_for"):
            return []
        return [rec for rec in (self.smoother.record_for(lvl.matrix)
                                for lvl in self.levels) if rec is not None]

    def _scalar_relaxations(self, visits: int, n: int) -> int:
        """Budget the scalar smoothers spend exactly (they keep no
        counters); 0 when the smoother has no budget contract at all."""
        budget = getattr(self.smoother, "relaxations", None)
        return visits * budget(n) if (visits and budget is not None) else 0

    def _totals(self) -> tuple[int, int, float, int]:
        """(messages, bytes, simulated time, relaxations) so far."""
        recs = self._records()
        msgs = nbytes = relax = 0
        time = 0.0
        for rec in recs:
            msgs += rec.stats.total_messages
            nbytes += rec.stats.total_bytes
            time += rec.stats.elapsed_time()
            relax += rec.relaxations
        if not recs:
            relax = sum(self._scalar_relaxations(v, lvl.n_unknowns)
                        for v, lvl in zip(self._visits, self.levels))
        return msgs, nbytes, time, relax

    def aggregate_stats(self) -> _AggregateStats:
        """The run's summed MessageStats (what the trace footer records)."""
        recs = self._records()
        n_procs = max((rec.n_parts for rec in recs), default=1)
        return _AggregateStats([rec.stats for rec in recs], n_procs)

    def level_stats(self) -> list[LevelStats]:
        """One row per hierarchy level, finest first.

        The rows sum to :meth:`aggregate_stats` totals by construction:
        both read the same per-level runner stats, and every smoothing
        message is charged to exactly one level's runner.
        """
        rows = []
        scalar = not hasattr(self.smoother, "record_for")
        for k, lvl in enumerate(self.levels):
            rec = (None if scalar
                   else self.smoother.record_for(lvl.matrix))
            if rec is not None:
                st = rec.stats
                rows.append(LevelStats(
                    level=k, n=lvl.n, n_unknowns=lvl.n_unknowns,
                    n_parts=rec.n_parts, msgs=st.total_messages,
                    bytes=st.total_bytes, recvs=st.total_receives,
                    relaxations=rec.relaxations,
                    nnz_dropped=self.dropped[k]))
            else:
                relax = self._scalar_relaxations(self._visits[k],
                                                 lvl.n_unknowns)
                rows.append(LevelStats(
                    level=k, n=lvl.n, n_unknowns=lvl.n_unknowns,
                    n_parts=1 if self._visits[k] else 0, msgs=0, bytes=0,
                    recvs=0, relaxations=relax,
                    nnz_dropped=self.dropped[k]))
        return rows

    def _merged_faults(self) -> dict | None:
        plan = getattr(self.smoother, "faults", None)
        if plan is None or plan.is_null:
            return None
        merged: dict[str, int] = {}
        for rec in self._records():
            for k, v in rec.fault_counts.items():
                merged[k] = merged.get(k, 0) + v
        return merged

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def run(self, b: np.ndarray, x0: np.ndarray | None = None,
            n_cycles: int = 9) -> ConvergenceHistory:
        """``n_cycles`` V-cycles; residual norm recorded after each."""
        A = self.levels[0].matrix
        b = np.asarray(b, dtype=np.float64)
        x = (np.zeros(A.n_rows) if x0 is None
             else np.array(x0, dtype=np.float64))
        # build every smoothed level's runner up front so the trace meta
        # line carries the hierarchy's true process count (and a warm
        # setup cache registers one hit per level before the first cycle)
        n_procs = 1
        if hasattr(self.smoother, "prepare"):
            for lvl in self.levels[:-1]:
                n_procs = max(n_procs,
                              self.smoother.prepare(lvl.matrix).n_parts)
        trc = self.tracer
        trc.begin_run(f"mg-{getattr(self.smoother, 'name', 'smoother')}",
                      n_procs)
        hist = ConvergenceHistory()
        hist.append(norm=float(np.linalg.norm(b - A.matvec(x))),
                    relaxations=0, parallel_steps=0, comm_cost=0.0,
                    time=0.0)
        for c in range(1, n_cycles + 1):
            trc.step_begin(c)
            x = self._cycle(0, x, b)
            msgs, _, time, relax = self._totals()
            hist.append(norm=float(np.linalg.norm(b - A.matvec(x))),
                        relaxations=relax, parallel_steps=c,
                        comm_cost=msgs / n_procs, time=time)
            trc.step_end(n_procs)
        self.cycles = n_cycles
        self.x = x
        self.history = hist
        for row in self.level_stats():
            trc.mg_level(row.level, row.n, row.n_parts, row.msgs,
                         row.bytes, row.recvs, row.relaxations,
                         row.nnz_dropped)
        trc.end_run(self.aggregate_stats(), faults=self._merged_faults())
        return hist
