"""Block Distributed-Southwell smoothing for the multigrid V-cycle.

The paper's Figure 6 runs the *scalar* Southwell methods as smoothers.
This module runs the real block machinery — the same
:class:`~repro.core.distributed_southwell_block.DistributedSouthwell` /
:class:`~repro.core.parallel_southwell_block.ParallelSouthwell` /
:class:`~repro.solvers.block_jacobi.BlockJacobi` runners that power
``solve()`` — inside the V-cycle, at the paper's equal-relaxation-budget
contract (DESIGN.md §5.16):

- "1 sweep" on an ``n``-row level = ``n`` row relaxations; ``fraction``
  scales the budget exactly like the scalar smoothers.
- Blocks are coarser than rows, so a step's winner set can overshoot the
  remaining budget.  A :attr:`~repro.core.block_base.BlockMethodBase.
  _relax_filter` hook truncates the winners — a seeded random subset that
  still fits — and any unspendable shortfall (smaller than the smallest
  block) carries into the level's next smoothing application, keeping the
  *cumulative* budget exact to within one block.

Each level's runner is built once per operator (via the persistent setup
cache, so a warm run re-partitions nothing) and reused across every
V-cycle visit; its engine's :class:`~repro.runtime.stats.MessageStats`
therefore accumulates the level's smoothing traffic for the per-level
accounting in :mod:`repro.multigrid.mg_exec`.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from repro.core.distributed_southwell_block import DistributedSouthwell
from repro.core.parallel_southwell_block import ParallelSouthwell
from repro.multigrid.smoothers import Smoother
from repro.runtime import CORI_LIKE, CostModel, runtime_mode, use_runtime
from repro.setupcache import get_setup
from repro.solvers.block_jacobi import BlockJacobi
from repro.sparsela import CSRMatrix
from repro.trace import tracer_from_config

__all__ = ["BLOCK_SMOOTHER_METHODS", "BlockSmoother", "LevelRunner"]

#: block smoother method name -> runner class
BLOCK_SMOOTHER_METHODS = {
    "ds": DistributedSouthwell,
    "ps": ParallelSouthwell,
    "bj": BlockJacobi,
}

#: consecutive relaxation-free parallel steps before a smoothing
#: application gives up on its remaining budget (covers DS repair-only
#: steps, which legitimately relax nothing while resolving deadlocks)
_STALL_PATIENCE = 8


@dataclass
class LevelRunner:
    """One level's persistent runner plus its cross-cycle accounting."""

    runner: object                  # BlockMethodBase subclass instance
    n_parts: int
    sizes: np.ndarray               # rows per partition (budget arithmetic)
    min_block: int                  # smallest partition (budget floor)
    carry: int = 0                  # unspent budget owed to this level
    relaxations: int = 0            # cumulative row relaxations
    fault_counts: dict = field(default_factory=dict)

    @property
    def stats(self):
        """The runner engine's cumulative :class:`MessageStats`."""
        return self.runner.engine.stats


class BlockSmoother(Smoother):
    """Block-DS/PS/BJ as a V-cycle smoother at an exact relaxation budget.

    Parameters
    ----------
    method:
        ``"ds"``, ``"ps"`` or ``"bj"`` (:data:`BLOCK_SMOOTHER_METHODS`).
    n_parts:
        Processes per level (capped at the level's row count).
    fraction:
        Budget in sweeps: ``max(1, round(fraction * n))`` relaxations per
        smoothing application of an ``n``-row level, exactly the scalar
        smoothers' contract.
    seed:
        Seeds the partitioner, the runtime engine, and the winner-subset
        truncation.
    faults:
        Optional :class:`~repro.faults.FaultPlan`, applied to every
        level's runner (the smoothing steps run the full fault
        machinery; injected-fault counts accumulate per level).
    tracer:
        Shared :class:`~repro.trace.Tracer`; the level runners emit
        their send/recv/relax events into it so a multigrid trace
        reconciles end to end.
    """

    def __init__(self, method: str = "ds", n_parts: int = 4,
                 fraction: float = 1.0, seed: int = 0,
                 local_solver: str = "gs",
                 partition_method: str = "multilevel",
                 cost_model: CostModel = CORI_LIKE,
                 tracer=None, faults=None, cache_dir=None):
        if method not in BLOCK_SMOOTHER_METHODS:
            raise ValueError(f"unknown block smoother method {method!r}; "
                             f"choices: {sorted(BLOCK_SMOOTHER_METHODS)}")
        if fraction <= 0:
            raise ValueError("fraction must be positive")
        if n_parts < 1:
            raise ValueError("n_parts must be positive")
        self.method = method
        self.name = f"block-{method}"
        self.n_parts = n_parts
        self.fraction = fraction
        self.seed = seed
        self.local_solver = local_solver
        self.partition_method = partition_method
        self.cost_model = cost_model
        self.tracer = tracer if tracer is not None else tracer_from_config()
        self.faults = faults
        self.cache_dir = cache_dir
        self._levels: dict[int, LevelRunner] = {}

    # ------------------------------------------------------------------
    # Smoother protocol
    # ------------------------------------------------------------------
    def relaxations(self, n: int) -> int:
        """Relaxation budget on an ``n``-row level (scalar contract)."""
        return max(1, int(round(self.fraction * n)))

    def prepare(self, A: CSRMatrix) -> LevelRunner:
        """Build (or fetch) the persistent runner for operator ``A``.

        Partitioning and block building go through the persistent setup
        cache, so a warm multigrid run re-partitions no level.
        """
        key = id(A)
        lr = self._levels.get(key)
        if lr is None:
            n_parts = min(self.n_parts, A.n_rows)
            _, system = get_setup(
                A, n_parts, method=self.partition_method, seed=self.seed,
                local_solver=self.local_solver, tracer=self.tracer,
                cache_dir=self.cache_dir)
            cls = BLOCK_SMOOTHER_METHODS[self.method]
            runner = cls(system, cost_model=self.cost_model, seed=self.seed,
                         tracer=self.tracer, faults=self.faults)
            sizes = np.array([system.size_of(p) for p in range(n_parts)],
                             dtype=np.int64)
            lr = LevelRunner(runner=runner, n_parts=n_parts, sizes=sizes,
                             min_block=int(sizes.min()))
            self._levels[key] = lr
        return lr

    def smooth(self, A: CSRMatrix, x: np.ndarray,
               b: np.ndarray) -> np.ndarray:
        """One budgeted smoothing application of ``A x = b``."""
        lr = self.prepare(A)
        runner = lr.runner
        budget = self.relaxations(A.n_rows) + lr.carry
        rng = np.random.default_rng(self.seed)
        sizes = lr.sizes

        def truncate(relaxed):
            remaining = budget - runner.total_relaxations
            if remaining <= 0:
                return np.zeros_like(relaxed)
            winners = np.flatnonzero(relaxed)
            if winners.size == 0 or int(sizes[winners].sum()) <= remaining:
                return relaxed
            keep = np.zeros_like(relaxed)
            acc = 0
            for w in rng.permutation(winners):
                s = int(sizes[w])
                if acc + s <= remaining:
                    keep[w] = True
                    acc += s
                    if acc == remaining:
                        break
            return keep

        # the smoothing steps always run a lockstep plane: under the shm /
        # async runtimes a per-application worker pool (or event loop)
        # would cost far more than the tiny level solves it serves
        ctx = (use_runtime("flat") if runtime_mode() in ("shm", "async")
               else nullcontext())
        runner._relax_filter = truncate
        try:
            with ctx:
                runner.setup(np.asarray(x, dtype=np.float64), b)
                stalled = 0
                while runner.total_relaxations < budget:
                    if budget - runner.total_relaxations < lr.min_block:
                        break           # nothing left that fits a block
                    before = runner.total_relaxations
                    runner.step()
                    runner.steps_taken += 1
                    if runner.total_relaxations == before:
                        stalled += 1
                        if stalled >= _STALL_PATIENCE:
                            break
                    else:
                        stalled = 0
        finally:
            runner._relax_filter = None
            runner._shm_close()
        lr.carry = min(budget - runner.total_relaxations, A.n_rows)
        lr.relaxations += runner.total_relaxations
        if runner._faults is not None:
            for k, v in runner._faults.injected.items():
                if v:
                    lr.fault_counts[k] = lr.fault_counts.get(k, 0) + int(v)
        return runner.solution()

    # ------------------------------------------------------------------
    # per-level accounting (read by the multigrid executor)
    # ------------------------------------------------------------------
    def record_for(self, A: CSRMatrix) -> LevelRunner | None:
        """The accounting record for operator ``A`` (None if never seen)."""
        return self._levels.get(id(A))
