"""Smoothers for the multigrid V-cycle (Figure 6).

The paper compares Gauss-Seidel smoothing against Distributed Southwell
smoothing at an *exactly equal relaxation budget*: "1 sweep" = as many
relaxations as the level has unknowns, "1/2 sweep" = half that, with a
random subset of the final parallel step's selected rows relaxed to hit
the budget exactly.  Smoothers here implement that contract.
"""

from __future__ import annotations

import numpy as np

from repro.core.scalar import (
    ScalarDistributedSouthwell,
    ScalarParallelSouthwell,
)
from repro.sparsela import CSRMatrix
from repro.sparsela.kernels import gauss_seidel_sweep, jacobi_sweep, residual

__all__ = ["ChebyshevSmoother", "DistributedSouthwellSmoother",
           "GaussSeidelSmoother", "ParallelSouthwellSmoother",
           "RedBlackGaussSeidelSmoother", "Smoother",
           "WeightedJacobiSmoother"]


class Smoother:
    """Interface: ``smooth(A, x, b) -> x_new`` (one smoothing application)."""

    def smooth(self, A: CSRMatrix, x: np.ndarray,
               b: np.ndarray) -> np.ndarray:  # pragma: no cover
        """Return the smoothed iterate for ``A x = b``."""
        raise NotImplementedError


class GaussSeidelSmoother(Smoother):
    """``n_sweeps`` forward Gauss-Seidel sweeps (the paper's baseline)."""

    name = "gauss-seidel"

    def __init__(self, n_sweeps: int = 1):
        if n_sweeps < 1:
            raise ValueError("n_sweeps must be at least 1")
        self.n_sweeps = n_sweeps

    def smooth(self, A: CSRMatrix, x: np.ndarray,
               b: np.ndarray) -> np.ndarray:
        """``n_sweeps`` forward GS sweeps."""
        out = np.asarray(x, dtype=np.float64)
        for _ in range(self.n_sweeps):
            out = gauss_seidel_sweep(A, out, b)
        return out

    def relaxations(self, n: int) -> int:
        """Relaxation budget this smoother spends on an ``n``-row level."""
        return self.n_sweeps * n


class _SouthwellSmoother(Smoother):
    """Budget-driven Southwell smoothing (scalar form, Section 4.1).

    Runs parallel steps until exactly ``fraction * n`` relaxations have
    been performed; the final step relaxes a random subset of the selected
    rows to hit the budget exactly, as the paper specifies.
    """

    method_cls: type

    def __init__(self, fraction: float = 1.0, seed: int = 0):
        if fraction <= 0:
            raise ValueError("fraction must be positive")
        self.fraction = fraction
        self.seed = seed
        self._cache: dict[int, object] = {}

    def _solver_for(self, A: CSRMatrix):
        key = id(A)
        if key not in self._cache:
            self._cache[key] = self.method_cls(A)
        return self._cache[key]

    def relaxations(self, n: int) -> int:
        return max(1, int(round(self.fraction * n)))

    def smooth(self, A: CSRMatrix, x: np.ndarray,
               b: np.ndarray) -> np.ndarray:
        solver = self._solver_for(A)
        budget = self.relaxations(A.n_rows)
        solver.run(x, b, max_relaxations=budget, exact_relaxations=True,
                   seed=self.seed)
        return solver.x.copy()


class DistributedSouthwellSmoother(_SouthwellSmoother):
    """Scalar Distributed Southwell as a smoother (the paper's Figure 6)."""

    name = "distributed-southwell"
    method_cls = ScalarDistributedSouthwell


class ParallelSouthwellSmoother(_SouthwellSmoother):
    """Scalar Parallel Southwell as a smoother (extension experiment)."""

    name = "parallel-southwell"
    method_cls = ScalarParallelSouthwell


class WeightedJacobiSmoother(Smoother):
    """Damped Jacobi, the classic embarrassingly-parallel smoother.

    ``omega = 4/5`` is optimal for the 5-point Laplacian's high
    frequencies; plain Jacobi (``omega = 1``) does not damp the highest
    modes and makes a poor smoother — a useful contrast baseline.
    """

    name = "weighted-jacobi"

    def __init__(self, omega: float = 0.8, n_sweeps: int = 1):
        if not 0.0 < omega <= 1.0:
            raise ValueError("omega must be in (0, 1]")
        if n_sweeps < 1:
            raise ValueError("n_sweeps must be at least 1")
        self.omega = omega
        self.n_sweeps = n_sweeps

    def relaxations(self, n: int) -> int:
        """Relaxation budget on an ``n``-row level."""
        return self.n_sweeps * n

    def smooth(self, A: CSRMatrix, x: np.ndarray,
               b: np.ndarray) -> np.ndarray:
        """``n_sweeps`` damped-Jacobi updates (cached-diagonal kernel)."""
        out = np.asarray(x, dtype=np.float64)
        for _ in range(self.n_sweeps):
            out = jacobi_sweep(A, out, b, omega=self.omega)
        return out


class ChebyshevSmoother(Smoother):
    """Chebyshev polynomial smoother (Adams et al. [2] in the paper).

    The classic massively-parallel alternative to Gauss-Seidel smoothing:
    a degree-``k`` Chebyshev polynomial in ``D^{-1}A`` targeting the upper
    part ``[lambda_max/alpha, lambda_max]`` of the spectrum.  Needs only
    matvecs (no ordering, no colors), which is why the multigrid community
    reaches for it at scale — the same motivation as Distributed
    Southwell.

    ``lambda_max`` of ``D^{-1}A`` is estimated once per operator with a
    few power-method iterations and cached.
    """

    name = "chebyshev"

    def __init__(self, degree: int = 2, eig_ratio: float = 30.0,
                 power_iterations: int = 15, seed: int = 0):
        if degree < 1:
            raise ValueError("degree must be at least 1")
        if eig_ratio <= 1.0:
            raise ValueError("eig_ratio must exceed 1")
        self.degree = degree
        self.eig_ratio = eig_ratio
        self.power_iterations = power_iterations
        self.seed = seed
        self._lmax_cache: dict[int, float] = {}

    def relaxations(self, n: int) -> int:
        """Budget analog: one matvec-wide update per polynomial degree."""
        return self.degree * n

    def _lambda_max(self, A: CSRMatrix) -> float:
        key = id(A)
        if key not in self._lmax_cache:
            rng = np.random.default_rng(self.seed)
            diag = A.diagonal()
            v = rng.standard_normal(A.n_rows)
            lam = 1.0
            for _ in range(self.power_iterations):
                w = A.matvec(v) / diag
                lam = float(np.linalg.norm(w))
                if lam == 0.0:
                    break
                v = w / lam
            # small safety margin so the polynomial covers lambda_max
            self._lmax_cache[key] = 1.1 * lam
        return self._lmax_cache[key]

    def smooth(self, A: CSRMatrix, x: np.ndarray,
               b: np.ndarray) -> np.ndarray:
        """One degree-``k`` Chebyshev application."""
        diag = A.diagonal()
        lmax = self._lambda_max(A)
        lmin = lmax / self.eig_ratio
        theta = 0.5 * (lmax + lmin)
        delta = 0.5 * (lmax - lmin)
        x = np.array(x, dtype=np.float64)
        sigma = theta / delta
        # standard three-term Chebyshev recurrence (Saad, Alg. 12.1) on
        # the Jacobi-preconditioned system
        r = residual(A, x, b) / diag
        p = r / theta
        x = x + p
        rho_old = 1.0 / sigma
        for _ in range(self.degree - 1):
            r = residual(A, x, b) / diag
            rho = 1.0 / (2.0 * sigma - rho_old)
            p = (2.0 * rho / delta) * r + rho * rho_old * p
            x = x + p
            rho_old = rho
        return x


class RedBlackGaussSeidelSmoother(Smoother):
    """Red-black Gauss-Seidel: two half-sweeps of independent sets.

    The standard parallel GS smoother on bipartite (5-point) grids: all
    "red" rows relax simultaneously, then all "black" rows.  Falls back
    to a general greedy coloring for non-bipartite patterns, caching the
    color classes per operator.
    """

    name = "red-black-gauss-seidel"

    def __init__(self, n_sweeps: int = 1):
        if n_sweeps < 1:
            raise ValueError("n_sweeps must be at least 1")
        self.n_sweeps = n_sweeps
        self._classes_cache: dict[int, list[np.ndarray]] = {}

    def relaxations(self, n: int) -> int:
        """Relaxation budget on an ``n``-row level."""
        return self.n_sweeps * n

    def _classes(self, A: CSRMatrix) -> list[np.ndarray]:
        key = id(A)
        if key not in self._classes_cache:
            from repro.partition.coloring import (
                color_classes,
                greedy_coloring,
            )

            self._classes_cache[key] = color_classes(greedy_coloring(A))
        return self._classes_cache[key]

    def smooth(self, A: CSRMatrix, x: np.ndarray,
               b: np.ndarray) -> np.ndarray:
        """``n_sweeps`` color-ordered GS sweeps."""
        out = np.array(x, dtype=np.float64)
        diag = A.diagonal()
        r = np.empty(A.n_rows)
        for _ in range(self.n_sweeps):
            for cls in self._classes(A):
                residual(A, out, b, out=r)
                out[cls] += r[cls] / diag[cls]
        return out
