"""Aggregation pass over JSONL run traces (``repro trace`` backend.

Turns the event stream :class:`repro.trace.RunTracer` records into the
communication pictures the paper argues with: per-process / per-edge
message matrices (who sent what to whom, by category), per-process relax
and receive counts, deadlock-repair and ghost-update totals, and a
per-phase wall-clock breakdown of where step time actually went.

The trace footer carries the run's :class:`MessageStats` totals, and
:meth:`TraceSummary.reconciles` checks the event-derived counts against
them *exactly* — the trace is recorded at the very sites that charge the
stats, so any mismatch is a bug, not noise.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = [
    "TraceSummary",
    "format_trace_summary",
    "read_trace_events",
    "summarize_trace",
]


def read_trace_events(path):
    """Yield the JSON event objects of one JSONL trace file, in order."""
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield json.loads(line)


@dataclass
class TraceSummary:
    """Everything the aggregation pass derives from one trace.

    ``send_matrix`` / ``bytes_matrix`` are dense ``(P, P)`` arrays
    indexed ``[src, dst]``; ``send_by_category`` splits the message
    matrix per category (the Table 3 axes, but per edge).
    """

    method: str = "?"
    n_procs: int = 0
    n_steps: int = 0
    send_matrix: np.ndarray = field(
        default_factory=lambda: np.zeros((0, 0), dtype=np.int64))
    bytes_matrix: np.ndarray = field(
        default_factory=lambda: np.zeros((0, 0), dtype=np.int64))
    send_by_category: dict[str, np.ndarray] = field(default_factory=dict)
    relax_counts: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64))
    recv_counts: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64))
    repair_matrix: np.ndarray = field(
        default_factory=lambda: np.zeros((0, 0), dtype=np.int64))
    ghost_updates: int = 0
    #: injected-fault / repair-retry totals keyed like
    #: :attr:`repro.faults.FaultRuntime.injected` ("drop:solve", "stall",
    #: "retry", ...)
    fault_counts: dict[str, int] = field(default_factory=dict)
    #: phase name -> [spans, total seconds]
    phase_times: dict[str, list] = field(default_factory=dict)
    #: persistent setup-cache consultations (DESIGN.md §5.10)
    setup_cache_hits: int = 0
    setup_cache_misses: int = 0
    #: per-level multigrid smoothing totals (DESIGN.md §5.16), one dict
    #: per ``mg_level`` event in hierarchy order (finest first)
    level_stats: list[dict] = field(default_factory=list)
    #: the MessageStats footer the run recorded, if present
    recorded_stats: dict | None = None

    # ------------------------------------------------------------------
    @property
    def total_messages(self) -> int:
        return int(self.send_matrix.sum())

    @property
    def total_bytes(self) -> int:
        return int(self.bytes_matrix.sum())

    def category_messages(self) -> dict[str, int]:
        """Total messages per category (the Table 3 split)."""
        return {cat: int(m.sum())
                for cat, m in sorted(self.send_by_category.items())}

    def communication_cost(self) -> float:
        """Messages / P — must equal the stats' Table 2 metric."""
        return self.total_messages / max(self.n_procs, 1)

    def reconciles(self) -> bool:
        """Do the event-derived counts equal the recorded stats footer
        *exactly* (messages, bytes, receives, per-category splits, and —
        under a fault plan — per-kind injected-fault totals)?  On a
        multigrid trace the per-level rows must additionally sum to the
        footer totals by equality."""
        if self.recorded_stats is None:
            return False
        rs = self.recorded_stats
        cat = {k: v for k, v in self.category_messages().items() if v}
        # receive and fault totals appeared with the fault plane (PR 5);
        # older traces lack the footer keys and skip those two checks
        recv_ok = ("total_recvs" not in rs
                   or int(self.recv_counts.sum()) == rs["total_recvs"])
        fault_ok = (self.fault_counts
                    == {k: v for k, v in (rs.get("faults") or {}).items()
                        if v})
        return (self.total_messages == rs["total_msgs"]
                and self.total_bytes == rs["total_bytes"]
                and recv_ok and fault_ok and self.levels_reconcile()
                and cat == {k: v for k, v in rs["cat_msgs"].items() if v})

    def levels_reconcile(self) -> bool:
        """On a multigrid trace, do the per-level rows sum to the footer
        totals (messages, bytes, receives) by equality?  Vacuously true
        for single-level traces (no ``mg_level`` events)."""
        if not self.level_stats:
            return True
        if self.recorded_stats is None:
            return False
        rs = self.recorded_stats
        return (sum(r["msgs"] for r in self.level_stats)
                == rs["total_msgs"]
                and sum(r["bytes"] for r in self.level_stats)
                == rs["total_bytes"]
                and sum(r["recvs"] for r in self.level_stats)
                == rs.get("total_recvs", 0))

    def top_edges(self, k: int = 5) -> list[tuple[int, int, int]]:
        """The ``k`` busiest directed edges as ``(src, dst, messages)``."""
        flat = self.send_matrix.ravel()
        if flat.size == 0:
            return []
        order = np.argsort(flat, kind="stable")[::-1][:k]
        P = self.n_procs
        return [(int(i) // P, int(i) % P, int(flat[i]))
                for i in order if flat[i] > 0]

    def phase_rows(self) -> list[dict]:
        """Phase-time breakdown rows (for ``format_table`` / CSV)."""
        total = sum(t for _, t in self.phase_times.values()) or 1.0
        return [{"phase": name, "spans": int(n),
                 "seconds": t, "share": t / total}
                for name, (n, t) in self.phase_times.items()]


def summarize_trace(path) -> TraceSummary:
    """Run the aggregation pass over one JSONL trace file."""
    s = TraceSummary()
    events = (read_trace_events(path) if isinstance(path, (str, Path))
              else iter(path))
    pending: list[dict] = []
    for ev in events:
        kind = ev["ev"]
        if kind == "meta":
            s.method = ev.get("method", "?")
            n = int(ev.get("n_procs", 0))
            if n > s.n_procs:
                _grow(s, n)
            continue
        if kind == "stats":
            s.recorded_stats = ev
            continue
        if kind == "phase":
            rec = s.phase_times.setdefault(ev["name"], [0, 0.0])
            rec[0] += 1
            rec[1] += float(ev["t1"]) - float(ev["t0"])
            continue
        if kind == "setup_cache":
            if ev.get("hit"):
                s.setup_cache_hits += 1
            else:
                s.setup_cache_misses += 1
            continue
        if kind == "mg_level":
            s.level_stats.append(ev)
            continue
        if kind == "step":
            s.n_steps = max(s.n_steps, int(ev["step"]))
            continue
        pending.append(ev)
    for ev in pending:        # counted after P is known from the meta line
        kind = ev["ev"]
        if kind == "send":
            s.send_matrix[ev["src"], ev["dst"]] += 1
            s.bytes_matrix[ev["src"], ev["dst"]] += int(ev.get("nb", 0))
            cat = ev.get("cat", "?")
            if cat not in s.send_by_category:
                s.send_by_category[cat] = np.zeros_like(s.send_matrix)
            s.send_by_category[cat][ev["src"], ev["dst"]] += 1
        elif kind == "recv":
            s.recv_counts[ev["dst"]] += 1
        elif kind == "relax":
            s.relax_counts[ev["p"]] += 1
        elif kind == "repair":
            s.repair_matrix[ev["src"], ev["dst"]] += 1
        elif kind == "ghost":
            s.ghost_updates += 1
        elif kind == "fault":
            cat = ev.get("cat") or ""
            key = f"{ev['kind']}:{cat}" if cat else ev["kind"]
            s.fault_counts[key] = s.fault_counts.get(key, 0) + 1
        elif kind == "retry":
            s.fault_counts["retry"] = s.fault_counts.get("retry", 0) + 1
    return s


def _grow(s: TraceSummary, n: int) -> None:
    s.n_procs = n
    s.send_matrix = np.zeros((n, n), dtype=np.int64)
    s.bytes_matrix = np.zeros((n, n), dtype=np.int64)
    s.repair_matrix = np.zeros((n, n), dtype=np.int64)
    s.relax_counts = np.zeros(n, dtype=np.int64)
    s.recv_counts = np.zeros(n, dtype=np.int64)
    s.send_by_category = {cat: np.zeros((n, n), dtype=np.int64)
                          for cat in s.send_by_category}


def format_trace_summary(s: TraceSummary) -> str:
    """The ``repro trace`` report: run line, phase breakdown, comm
    totals, reconciliation verdict, busiest edges."""
    from repro.analysis.tables import format_table

    lines = [f"{s.method}: P={s.n_procs} steps={s.n_steps} "
             f"msgs={s.total_messages} ({s.communication_cost():.2f}/proc) "
             f"bytes={s.total_bytes}"]
    cats = s.category_messages()
    if cats:
        lines.append("  by category: " + "  ".join(
            f"{cat}={n}" for cat, n in cats.items()))
    lines.append(f"  relaxations={int(s.relax_counts.sum())} "
                 f"receives={int(s.recv_counts.sum())} "
                 f"ghost_updates={s.ghost_updates} "
                 f"deadlock_repairs={int(s.repair_matrix.sum())}")
    if s.fault_counts:
        lines.append("  injected faults: " + "  ".join(
            f"{k}={v}" for k, v in sorted(s.fault_counts.items())))
    if s.setup_cache_hits or s.setup_cache_misses:
        lines.append(f"  setup cache: {s.setup_cache_hits} hit(s), "
                     f"{s.setup_cache_misses} miss(es)")
    if s.level_stats:
        lines.append("  levels (finest first):")
        for r in s.level_stats:
            lines.append(
                f"    L{r['level']}: {r['n']}x{r['n']} P={r['n_parts']} "
                f"msgs={r['msgs']} bytes={r['bytes']} recvs={r['recvs']} "
                f"relaxations={r['relaxations']} "
                f"nnz_dropped={r['nnz_dropped']}")
        lines.append("  level sums match footer: "
                     + ("yes" if s.levels_reconcile() else "NO"))
    if s.recorded_stats is not None:
        lines.append("  reconciles with MessageStats: "
                     + ("yes" if s.reconciles() else "NO — trace/stats "
                        "counts disagree"))
    if s.phase_times:
        lines.append("")
        lines.append(format_table(s.phase_rows(), title="phase times",
                                  digits=4))
    edges = s.top_edges()
    if edges:
        lines.append("")
        lines.append("busiest edges: " + "  ".join(
            f"{src}->{dst}:{n}" for src, dst, n in edges))
    return "\n".join(lines)
