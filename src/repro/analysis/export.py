"""Export experiment rows/histories to CSV and JSON.

The SC17 artifact writes post-processing-friendly text files
(``-format_out``); these helpers give the experiment drivers the same
capability so regenerated tables/figures can feed external plotting.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro.analysis.history import ConvergenceHistory

__all__ = ["history_to_rows", "rows_to_csv", "rows_to_json"]


def _plain(value: Any):
    """JSON/CSV-safe scalar."""
    if value is None:
        return None
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    return value


def rows_to_csv(rows: Sequence[dict], path: str | Path,
                columns: Sequence[str] | None = None) -> Path:
    """Write experiment rows to CSV (``None`` cells stay empty)."""
    path = Path(path)
    if not rows:
        path.write_text("")
        return path
    cols = list(columns) if columns is not None else list(rows[0].keys())
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=cols, extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow({c: _plain(row.get(c)) for c in cols})
    return path


def rows_to_json(rows: Sequence[dict], path: str | Path) -> Path:
    """Write experiment rows to pretty-printed JSON."""
    path = Path(path)
    payload = [{k: _plain(v) for k, v in row.items()} for row in rows]
    path.write_text(json.dumps(payload, indent=2))
    return path


def history_to_rows(history: ConvergenceHistory,
                    label: str | None = None) -> list[dict]:
    """Flatten a convergence history into per-sample rows."""
    cols = history.as_arrays()
    out = []
    for k in range(len(history)):
        row = {name: _plain(arr[k]) for name, arr in cols.items()}
        if label is not None:
            row["label"] = label
        out.append(row)
    return out
