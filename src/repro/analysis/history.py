"""Convergence histories and target-extraction (the paper's data reduction).

Every solver records a :class:`ConvergenceHistory`: one sample per parallel
step (or per relaxation for the scalar sequential methods) carrying the
global residual norm plus the cumulative work/communication coordinates the
paper plots against (relaxations, parallel steps, communication cost,
simulated wall-clock).

Table 2 extracts "cost to reach ``‖r‖₂ = 0.1``" by *linear interpolation on
log10(‖r‖₂)* between the bracketing samples — implemented verbatim in
:meth:`ConvergenceHistory.cost_to_reach`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ConvergenceHistory", "interp_log_residual"]


def interp_log_residual(xs: np.ndarray, norms: np.ndarray,
                        target: float) -> float | None:
    """x-coordinate where the residual-norm curve first crosses ``target``.

    Linear interpolation on ``log10(norm)`` (the paper's extraction for
    Table 2).  Returns ``None`` if the curve never reaches the target —
    the paper's ``†``.
    """
    xs = np.asarray(xs, dtype=np.float64)
    norms = np.asarray(norms, dtype=np.float64)
    if xs.shape != norms.shape or xs.ndim != 1:
        raise ValueError("xs and norms must be equal-length 1-D arrays")
    if target <= 0.0:
        raise ValueError("target must be positive")
    below = norms <= target
    if not below.any():
        return None
    k = int(np.argmax(below))          # first sample at/under target
    if k == 0:
        return float(xs[0])
    n0, n1 = norms[k - 1], norms[k]
    if n1 <= 0.0 or n0 <= 0.0:         # exact zero: step straight to it
        return float(xs[k])
    t = (np.log10(n0) - np.log10(target)) / (np.log10(n0) - np.log10(n1))
    return float(xs[k - 1] + t * (xs[k] - xs[k - 1]))


@dataclass
class ConvergenceHistory:
    """Per-sample convergence record.

    All lists are parallel; a sample is appended after every parallel step
    (index 0 is the initial state: zero cost, initial norm).
    """

    residual_norms: list[float] = field(default_factory=list)
    relaxations: list[int] = field(default_factory=list)
    parallel_steps: list[int] = field(default_factory=list)
    comm_costs: list[float] = field(default_factory=list)
    times: list[float] = field(default_factory=list)
    active_fractions: list[float] = field(default_factory=list)

    def append(self, norm: float, relaxations: int, parallel_steps: int,
               comm_cost: float = 0.0, time: float = 0.0,
               active_fraction: float = 0.0) -> None:
        """Record one sample (cumulative coordinates)."""
        self.residual_norms.append(float(norm))
        self.relaxations.append(int(relaxations))
        self.parallel_steps.append(int(parallel_steps))
        self.comm_costs.append(float(comm_cost))
        self.times.append(float(time))
        self.active_fractions.append(float(active_fraction))

    def __len__(self) -> int:
        return len(self.residual_norms)

    @property
    def final_norm(self) -> float:
        return self.residual_norms[-1]

    @property
    def initial_norm(self) -> float:
        return self.residual_norms[0]

    def as_arrays(self) -> dict[str, np.ndarray]:
        """All columns as numpy arrays."""
        return {
            "residual_norms": np.asarray(self.residual_norms),
            "relaxations": np.asarray(self.relaxations, dtype=np.int64),
            "parallel_steps": np.asarray(self.parallel_steps,
                                         dtype=np.int64),
            "comm_costs": np.asarray(self.comm_costs),
            "times": np.asarray(self.times),
            "active_fractions": np.asarray(self.active_fractions),
        }

    def cost_to_reach(self, target: float, axis: str = "times"
                      ) -> float | None:
        """Interpolated cost (on the given axis) to reach ``‖r‖ = target``.

        ``axis`` is one of ``times``, ``comm_costs``, ``parallel_steps``,
        ``relaxations``.  Returns ``None`` (the paper's ``†``) if the target
        is never reached.
        """
        cols = self.as_arrays()
        if axis not in cols or axis == "residual_norms":
            raise KeyError(f"unknown cost axis {axis!r}")
        return interp_log_residual(cols[axis].astype(np.float64),
                                   cols["residual_norms"], target)

    def mean_active_fraction(self) -> float:
        """Average of per-step active fractions (Table 2's last column);
        the initial sample (no step yet) is excluded."""
        if len(self.active_fractions) <= 1:
            return 0.0
        return float(np.mean(self.active_fractions[1:]))

    def diverged(self, factor: float = 1.0) -> bool:
        """True if the final norm exceeds ``factor`` × initial norm."""
        return self.final_norm > factor * self.initial_norm
