"""Plain-text table rendering for the experiment drivers and benches.

The experiment modules produce rows as dicts; this renders them in the
layout of the paper's tables (method-grouped columns, ``†`` for
not-reached entries).
"""

from __future__ import annotations

import numpy as np

from typing import Any, Sequence

__all__ = ["DAGGER", "format_table", "render_float"]

DAGGER = "†"


def render_float(value: Any, digits: int = 3) -> str:
    """Float → fixed-point string; ``None`` → the paper's ``†``.

    Strings pass through untouched (callers pre-format scientific
    notation themselves).
    """
    if value is None:
        return DAGGER
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, (int, np.integer)):
        return str(value)
    try:
        return f"{float(value):.{digits}f}"
    except (TypeError, ValueError):
        return str(value)


def format_table(rows: Sequence[dict], columns: Sequence[str] | None = None,
                 title: str = "", digits: int = 3) -> str:
    """Render rows of dicts as an aligned plain-text table.

    ``columns`` fixes the order (default: keys of the first row).  ``None``
    cells render as ``†``, matching the paper's tables.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    rendered = [[render_float(row.get(c), digits=digits) for c in cols]
                for row in rows]
    widths = [max(len(c), *(len(r[j]) for r in rendered))
              for j, c in enumerate(cols)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(w) for c, w in zip(cols, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for r in rendered:
        lines.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)
