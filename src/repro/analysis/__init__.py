"""Convergence analysis and reporting utilities."""

from repro.analysis.export import history_to_rows, rows_to_csv, rows_to_json
from repro.analysis.history import ConvergenceHistory, interp_log_residual
from repro.analysis.tables import format_table, render_float

__all__ = [
    "ConvergenceHistory",
    "history_to_rows",
    "rows_to_csv",
    "rows_to_json",
    "format_table",
    "interp_log_residual",
    "render_float",
]
