"""Convergence analysis and reporting utilities."""

from repro.analysis.export import history_to_rows, rows_to_csv, rows_to_json
from repro.analysis.history import ConvergenceHistory, interp_log_residual
from repro.analysis.tables import format_table, render_float
from repro.analysis.traceagg import (
    TraceSummary,
    format_trace_summary,
    read_trace_events,
    summarize_trace,
)

__all__ = [
    "ConvergenceHistory",
    "TraceSummary",
    "format_trace_summary",
    "history_to_rows",
    "read_trace_events",
    "rows_to_csv",
    "rows_to_json",
    "format_table",
    "interp_log_residual",
    "render_float",
    "summarize_trace",
]
