"""Figure 5: scalar Distributed Southwell vs the Figure 2 methods.

Same problem and protocol as Figure 2, adding scalar Distributed
Southwell.  Expected shape: DS closely matches Parallel Southwell at low
accuracy (the Southwell "sweet spot", norm ≈ 0.6), relaxes more rows per
parallel step, and degrades slightly at higher accuracy.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.history import ConvergenceHistory
from repro.core.scalar import (
    ScalarDistributedSouthwell,
    ScalarParallelSouthwell,
    sequential_southwell,
)
from repro.matrices.fem import fem_poisson_2d
from repro.solvers.scalar import multicolor_gs_trace

__all__ = ["run_fig5"]


def run_fig5(fem_rows: int = 3081, n_sweeps: int = 3, seed: int = 0
             ) -> dict[str, ConvergenceHistory]:
    """Run SW, Par SW, MC GS and Dist SW; returns label → history."""
    prob = fem_poisson_2d(target_rows=fem_rows, seed=seed)
    A = prob.matrix
    n = A.n_rows
    rng = np.random.default_rng(seed + 1)
    b = rng.uniform(-1.0, 1.0, n)
    b /= np.linalg.norm(b)
    x0 = np.zeros(n)
    budget = n_sweeps * n

    return {
        "SW": sequential_southwell(A, x0, b, budget),
        "Par SW": ScalarParallelSouthwell(A).run(x0, b,
                                                 max_relaxations=budget),
        "MC GS": multicolor_gs_trace(A, x0, b, n_sweeps),
        "Dist SW": ScalarDistributedSouthwell(A).run(x0, b,
                                                     max_relaxations=budget),
    }
