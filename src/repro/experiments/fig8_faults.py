"""Figure 8 extension: resilience under message loss and delay.

The paper's Section 4.5 delay study (its Figure 8 axis is process
count) asks how the methods behave when the network misbehaves; this
sweep extends that question along two fault axes on the 2D Poisson
problem, DS vs PS vs BJ:

- **drop probability** — every solve/residual message is dropped i.i.d.
  with probability ``p ∈ drop_sweep``;
- **epoch delay** — messages are delivered 1..``max_delay`` epochs late
  with probability ``p ∈ delay_sweep`` (object plane only — the delay
  path is the legacy ``delay_probability`` study under the seeded fault
  plane).

Expected shape: BJ shrugs loss off (its updates are deltas and the
self-healing cumulative payloads resynchronize); DS's repair/retry
hardening keeps it converging at 20% loss at a modest extra-repair
cost; PS — whose relaxation criterion needs *exact* neighbor norms —
detects and reports deadlock rather than hanging (the ``degraded``
column), which is the motivating contrast for DS's bounded-staleness
design.
"""

from __future__ import annotations

import numpy as np

from repro.api import RunConfig, solve
from repro.experiments.runners import METHOD_LABELS, METHODS
from repro.faults import FaultPlan
from repro.matrices.poisson import poisson_2d
from repro.sparsela import symmetric_unit_diagonal_scale

__all__ = ["run_fig8_faults"]


def _poisson(grid_dim: int):
    return symmetric_unit_diagonal_scale(poisson_2d(grid_dim)).matrix


def run_fig8_faults(grid_dim: int = 64, n_procs: int = 64,
                    drop_sweep: tuple[float, ...] = (0.0, 0.05, 0.1, 0.2),
                    delay_sweep: tuple[float, ...] = (0.1, 0.3),
                    max_delay: int = 3, max_steps: int = 100,
                    target_norm: float = 0.1,
                    seed: int = 0, plan_seed: int = 0) -> list[dict]:
    """One row per (fault axis, probability, method).

    Columns: final residual norm, parallel steps to ``target_norm``
    (``None`` = never reached, the paper's ``†``), messages/process,
    repair messages sent, injected-fault total, and whether the run
    ended by *reporting* an unrecoverable deadlock (``degraded``) —
    never by hanging.
    """
    A = _poisson(grid_dim)
    rows = []
    axes = ([("drop", p) for p in drop_sweep]
            + [("delay", p) for p in delay_sweep])
    for axis, p in axes:
        if p == 0.0:
            plan = None
        elif axis == "drop":
            plan = FaultPlan.uniform(drop=p, seed=plan_seed)
        else:
            plan = FaultPlan.uniform(delay=p, max_delay=max_delay,
                                     seed=plan_seed)
        for method in METHODS:
            # lockstep by construction — steps_to_target counts parallel
            # steps; the event-driven analog lives in ``fig8_async``
            cfg = RunConfig(n_parts=n_procs, max_steps=max_steps,
                            seed=seed, faults=plan, runtime="flat")
            res = solve(A, method=method, config=cfg)
            inj = res.faults_injected or {}
            rows.append({
                "axis": axis,
                "p": p,
                "method": METHOD_LABELS[method],
                "final_norm": res.final_norm,
                "steps_to_target": res.history.cost_to_reach(
                    target_norm, axis="parallel_steps"),
                "comm_cost": res.comm_cost,
                "repairs": res.repairs,
                "faults_injected": int(np.sum(list(inj.values()))) if inj
                else 0,
                "degraded": res.degraded,
            })
    return rows
