"""Figure 8: strong scaling — time to ``‖r‖₂ = 0.1`` vs process count.

Simulated wall-clock to the target as the process count sweeps (the paper
sweeps 32 → 8192; the default reproduction sweeps 4 → 256), for six
problems.  ``None`` entries are the paper's missing points (target not
reached in 50 steps, usually BJ divergence).

Expected shape: BJ is fastest where it converges but drops out at larger
P; DS is consistently faster than PS; curves flatten or rise at large P
as communication dominates shrinking subdomains.
"""

from __future__ import annotations

from repro.experiments.runners import METHOD_LABELS, METHODS, run_method
from repro.matrices.suite import load_problem

__all__ = ["FIG8_DEFAULT_NAMES", "run_fig8"]

FIG8_DEFAULT_NAMES = ("Flan_1565", "ldoor", "StocF-1465", "inline_1",
                      "bone010", "Hook_1498")


def run_fig8(proc_sweep: tuple[int, ...] = (4, 8, 16, 32, 64, 128, 256),
             size_scale: float = 1.0, max_steps: int = 50,
             target_norm: float = 0.1, seed: int = 0,
             names: tuple[str, ...] = FIG8_DEFAULT_NAMES) -> list[dict]:
    """Rows of (matrix, P, time_BJ, time_PS, time_DS)."""
    rows = []
    for name in names:
        load_problem(name, size_scale=size_scale, seed=seed)
        for P in proc_sweep:
            row: dict = {"matrix": name, "P": P}
            for method in METHODS:
                res = run_method(name, method, P, size_scale, max_steps,
                                 seed)
                row[f"time_{METHOD_LABELS[method]}"] = (
                    res.history.cost_to_reach(target_norm, axis="times"))
            rows.append(row)
    return rows
