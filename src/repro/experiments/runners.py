"""Shared run machinery for the experiment drivers.

The heavy artifacts (partitions, block systems, 50-step method runs) are
cached in-process so Tables 2, 3 and 4 — which the paper derives from the
same runs — are computed once, and repeated bench invocations are cheap.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from functools import lru_cache

from repro import config as _config
from repro.api import RunConfig, SolveResult, solve
from repro.core.blockdata import BlockSystem
from repro.core.distributed_southwell_block import DistributedSouthwell
from repro.core.parallel_southwell_block import ParallelSouthwell
from repro.matrices.suite import load_problem
from repro.setupcache import get_setup
from repro.solvers.block_jacobi import BlockJacobi
from repro.trace import NULL_TRACER, RunTracer

__all__ = ["METHOD_LABELS", "METHODS", "clear_run_caches",
           "get_block_system", "run_method", "suite_runs"]

#: method registry in the paper's column order: BJ, PS, DS
METHODS = ("block-jacobi", "parallel-southwell", "distributed-southwell")
METHOD_LABELS = {"block-jacobi": "BJ", "parallel-southwell": "PS",
                 "distributed-southwell": "DS"}
_CLASSES = {"block-jacobi": BlockJacobi,
            "parallel-southwell": ParallelSouthwell,
            "distributed-southwell": DistributedSouthwell}


#: in-process setup LRU: deliberately small — a block system for a big
#: suite matrix holds the permuted matrix, every diagonal block and
#: coupling block plus factorizations, so 64 entries (the old
#: ``lru_cache`` bound) could pin gigabytes.  Cross-invocation reuse is
#: the persistent setup cache's job (``REPRO_SETUP_CACHE``), not this
#: dict's.
_SETUP_LRU: OrderedDict = OrderedDict()
_SETUP_LRU_MAX = 8


def _problem_and_system(name: str, n_procs: int, size_scale: float = 1.0,
                        seed: int = 0, tracer=NULL_TRACER):
    """The ``(problem, block system)`` pair every run derives from.

    One cache entry serves all three methods *and* both the problem
    metadata and the partitioned system — the single ``load_problem``
    call site for the run machinery.  Misses go through the setup plane
    (:mod:`repro.setupcache`): setup phases land in ``tracer`` and the
    persistent cache is consulted when enabled.
    """
    key = (name, n_procs, size_scale, seed)
    hit = _SETUP_LRU.get(key)
    if hit is not None:
        _SETUP_LRU.move_to_end(key)
        return hit
    prob = load_problem(name, size_scale=size_scale, seed=seed)
    _, system = get_setup(prob.matrix, n_procs, seed=seed, tracer=tracer)
    _SETUP_LRU[key] = (prob, system)
    while len(_SETUP_LRU) > _SETUP_LRU_MAX:
        _SETUP_LRU.popitem(last=False)
    return prob, system


def get_block_system(name: str, n_procs: int, size_scale: float = 1.0,
                     seed: int = 0) -> BlockSystem:
    """Partition + block system for one suite problem (cached)."""
    return _problem_and_system(name, n_procs, size_scale, seed)[1]


def clear_run_caches(keep_setup: bool = False) -> None:
    """Drop the in-process run caches (results, setup pairs, problems).

    Called by the CLI after a run and by sweep workers after each task
    so long-lived processes don't accumulate block systems and results.
    ``keep_setup`` retains the (small, bounded) setup LRU — sweep
    workers use it so consecutive tasks on the same problem still share
    one partition while completed ``SolveResult``\\ s, which the parent
    process already holds, are released.
    """
    _run_method_cached.cache_clear()
    if not keep_setup:
        _SETUP_LRU.clear()
        load_problem.cache_clear()


def run_method(name: str, method: str, n_procs: int, size_scale: float = 1.0,
               max_steps: int = 50, seed: int = 0) -> SolveResult:
    """One cached 50-step run of one method on one suite problem.

    The block system is shared across methods so all three run on
    identical data (the paper's comparison discipline).  With
    ``REPRO_TRACE`` set to a directory, each (uncached) run writes its
    own trace file there, named after the task parameters; the tracer is
    live during setup too, so setup phases and setup-cache hits/misses
    appear in the trace (``repro trace FILE`` reports them).

    The cache key includes the effective ``REPRO_FAULTS`` plan spec, so
    faulted and faultless runs of the same task never share a result.
    """
    return _run_method_cached(name, method, n_procs, size_scale,
                              max_steps, seed, _config.faults_spec())


@lru_cache(maxsize=512)
def _run_method_cached(name: str, method: str, n_procs: int,
                       size_scale: float, max_steps: int, seed: int,
                       faults_spec: str | None) -> SolveResult:
    tracer = RunTracer() if _config.trace_active() else None
    prob, system = _problem_and_system(name, n_procs, size_scale, seed,
                                       tracer=tracer or NULL_TRACER)
    runner = _CLASSES[method](system, seed=seed, tracer=tracer)
    x0, b = prob.initial_state(seed=seed)
    # The figure experiments are lockstep by construction (their x-axes
    # count parallel steps); under ``REPRO_RUNTIME=async`` fall back to
    # the flat plane — the event-driven analog lives in ``fig8_async``.
    from repro.runtime import runtime_mode

    lockstep = "flat" if runtime_mode() == "async" else None
    res = solve(prob.matrix, b=b, method=runner, x0=x0,
                config=RunConfig(max_steps=max_steps, runtime=lockstep))
    trace_dir = _config.trace_dir()
    if tracer is not None and trace_dir is not None:
        fname = (f"{name}-{METHOD_LABELS[method]}-P{n_procs}"
                 f"-x{size_scale:g}-s{seed}.trace.jsonl")
        res.trace_path = str(tracer.save_jsonl(trace_dir / fname))
    return res


# ``run_method`` was lru_cache-wrapped before the faults-spec key was
# added; keep its cache-management surface for existing callers.
run_method.cache_clear = _run_method_cached.cache_clear
run_method.cache_info = _run_method_cached.cache_info


@dataclass(frozen=True)
class SuiteRun:
    """All three methods' results for one problem."""

    name: str
    n: int
    results: dict  # method -> SolveResult


def suite_runs(names: tuple[str, ...], n_procs: int, size_scale: float = 1.0,
               max_steps: int = 50, seed: int = 0,
               workers: int | None = None) -> list[SuiteRun]:
    """Run (or fetch) BJ/PS/DS on every named problem.

    ``workers`` > 1 farms the (problem, method) grid out to the
    process-pool sweep runner (:mod:`repro.experiments.parallel`), with
    its on-disk result cache; ``None`` reads ``REPRO_WORKERS`` (default
    0 = serial, in-process ``lru_cache`` only).
    """
    if workers is None:
        workers = _config.workers()
    if workers > 1:
        # lazy import: parallel imports this module for its worker body
        from repro.experiments.parallel import SweepTask, run_sweep

        tasks = [SweepTask(name, m, n_procs, size_scale, max_steps, seed)
                 for name in names for m in METHODS]
        flat = run_sweep(tasks, workers=workers)
        out = []
        for i, name in enumerate(names):
            prob, _ = _problem_and_system(name, n_procs, size_scale, seed)
            results = {m: flat[i * len(METHODS) + j]
                       for j, m in enumerate(METHODS)}
            out.append(SuiteRun(name=name, n=prob.n, results=results))
        return out
    out = []
    for name in names:
        prob, _ = _problem_and_system(name, n_procs, size_scale, seed)
        results = {m: run_method(name, m, n_procs, size_scale, max_steps,
                                 seed) for m in METHODS}
        out.append(SuiteRun(name=name, n=prob.n, results=results))
    return out
