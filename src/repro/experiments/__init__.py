"""Experiment drivers: one module per paper table/figure.

Each ``run_*`` function regenerates the data behind one table or figure of
the paper and returns plain rows/series; the benches in ``benchmarks/``
call these, print the paper-style table, and assert the expected shape.
See DESIGN.md for the experiment index.
"""

from repro.experiments.config import SCALES, ExperimentScale, get_scale
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import FIG7_DEFAULT_NAMES, run_fig7
from repro.experiments.fig8 import FIG8_DEFAULT_NAMES, run_fig8
from repro.experiments.fig8_async import run_fig8_async
from repro.experiments.fig8_faults import run_fig8_faults
from repro.experiments.fig9 import run_fig9
from repro.experiments.runners import (
    METHOD_LABELS,
    METHODS,
    get_block_system,
    run_method,
    suite_runs,
)
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4

__all__ = [
    "FIG7_DEFAULT_NAMES",
    "FIG8_DEFAULT_NAMES",
    "METHOD_LABELS",
    "METHODS",
    "SCALES",
    "ExperimentScale",
    "get_block_system",
    "get_scale",
    "run_fig2",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig8_async",
    "run_fig8_faults",
    "run_fig9",
    "run_method",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "suite_runs",
]
