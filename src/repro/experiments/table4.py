"""Table 4: per-parallel-step costs over the full 50-step run.

Mean simulated wall-clock and mean communication cost per parallel step
for BJ, PS and DS.  The paper motivates this view by multigrid smoothing
and preconditioning, which take only a few steps — so cost *per step*
matters as much as cost-to-target.

Expected shape: DS < PS < BJ in both time and messages per step.
"""

from __future__ import annotations

from repro.experiments.runners import METHOD_LABELS, METHODS, suite_runs
from repro.matrices.suite import SUITE_NAMES

__all__ = ["run_table4"]


def run_table4(n_procs: int = 256, size_scale: float = 1.0,
               max_steps: int = 50, seed: int = 0,
               names: tuple[str, ...] = SUITE_NAMES) -> list[dict]:
    """One row per matrix: mean per-step time and comm for each method."""
    rows = []
    for run in suite_runs(names, n_procs, size_scale, max_steps, seed):
        row: dict = {"matrix": run.name}
        for method in METHODS:
            res = run.results[method]
            label = METHOD_LABELS[method]
            steps = max(1, res.parallel_steps)
            row[f"time_{label}"] = res.simulated_time / steps
            row[f"comm_{label}"] = res.comm_cost / steps
        rows.append(row)
    return rows
