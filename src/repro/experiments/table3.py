"""Table 3: communication breakdown for PS and DS.

Splits each method's communication cost into "solve comm" — boundary
updates after local solves — and "res comm" — explicit residual(-norm)
update messages.  As in the paper, the split is taken *at the Table 2
target crossing* (the per-category sums there add up exactly to Table 2's
communication-cost column); rows where a method misses the target fall
back to the full-run totals.

Expected shape: PS's res comm dominates its total (the criterion needs
exact neighbor norms); DS's res comm (deadlock-avoidance messages only)
is several times smaller, while the solve comm of the two methods is
comparable (DS slightly higher, since inexact estimates let more
processes relax).
"""

from __future__ import annotations

from repro.experiments.runners import suite_runs
from repro.matrices.suite import SUITE_NAMES

__all__ = ["run_table3"]


def run_table3(n_procs: int = 256, size_scale: float = 1.0,
               max_steps: int = 50, target_norm: float = 0.1,
               seed: int = 0,
               names: tuple[str, ...] = SUITE_NAMES) -> list[dict]:
    """One row per matrix: solve/res comm for PS and DS at the target."""
    rows = []
    for run in suite_runs(names, n_procs, size_scale, max_steps, seed):
        row: dict = {"matrix": run.name}
        for method, label in (("parallel-southwell", "PS"),
                              ("distributed-southwell", "DS")):
            res = run.results[method]
            split = res.comm_breakdown_at(target_norm)
            if split is None:
                split = (res.solve_comm, res.residual_comm)
            row[f"solve_comm_{label}"] = split[0]
            row[f"res_comm_{label}"] = split[1]
        rows.append(row)
    return rows
