"""Table 2: BJ vs PS vs DS reducing ``‖r‖₂`` to 0.1.

For every suite matrix and method: simulated wall-clock, communication
cost (messages / P), parallel steps, relaxations / n, and active-process
fraction at the interpolated target crossing; ``None`` (rendered ``†``)
where the method does not reach the target within the step cap.  Costs at
the crossing are extracted by linear interpolation on ``log10(‖r‖₂)``, as
the paper specifies.

Expected shape: DS reaches the target everywhere with roughly a third to
two thirds of PS's communication and fewer parallel steps; PS needs fewer
relaxations but more messages; BJ reaches the target on only a few
problems (and is fastest there).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.runners import METHOD_LABELS, METHODS, suite_runs
from repro.matrices.suite import SUITE_NAMES

__all__ = ["run_table2"]


def run_table2(n_procs: int = 256, size_scale: float = 1.0,
               max_steps: int = 50, target_norm: float = 0.1,
               seed: int = 0,
               names: tuple[str, ...] = SUITE_NAMES) -> list[dict]:
    """One row per matrix with per-method target-crossing costs."""
    rows = []
    for run in suite_runs(names, n_procs, size_scale, max_steps, seed):
        row: dict = {"matrix": run.name}
        for method in METHODS:
            res = run.results[method]
            h = res.history
            label = METHOD_LABELS[method]
            time_at = h.cost_to_reach(target_norm, axis="times")
            reached = time_at is not None
            row[f"time_{label}"] = time_at
            row[f"comm_{label}"] = (
                h.cost_to_reach(target_norm, axis="comm_costs")
                if reached else None)
            row[f"steps_{label}"] = (
                h.cost_to_reach(target_norm, axis="parallel_steps")
                if reached else None)
            relax_at = (h.cost_to_reach(target_norm, axis="relaxations")
                        if reached else None)
            row[f"relax_per_n_{label}"] = (
                relax_at / run.n if relax_at is not None else None)
            if reached:
                # mean active fraction over the steps up to the crossing
                k = int(np.ceil(row[f"steps_{label}"]))
                fr = h.active_fractions[1:k + 1]
                row[f"active_{label}"] = float(np.mean(fr)) if fr else None
            else:
                row[f"active_{label}"] = None
        rows.append(row)
    return rows
