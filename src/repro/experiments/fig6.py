"""Figure 6: multigrid smoothing — GS vs Distributed Southwell smoothers.

Relative residual norm after 9 V-cycles on the 2D Poisson equation, grid
dimensions 15 → 255, for three smoother configurations: Gauss-Seidel
(1 sweep), Distributed Southwell at half Gauss-Seidel's relaxation budget
("1/2 sweep"), and at the same budget ("1 sweep").  Expected shape:
grid-size-independent convergence in all three cases, with DS (1 sweep)
beating GS per relaxation.
"""

from __future__ import annotations

from repro.multigrid import (
    DistributedSouthwellSmoother,
    GaussSeidelSmoother,
    vcycle_experiment_run,
)

__all__ = ["run_fig6"]


def run_fig6(grid_dims: tuple[int, ...] = (15, 31, 63, 127, 255),
             n_cycles: int = 9, seed: int = 0) -> list[dict]:
    """One row per grid dimension with the three smoother results."""
    rows = []
    for dim in grid_dims:
        rows.append({
            "grid_dim": dim,
            "GS, 1 sweep": vcycle_experiment_run(
                dim, lambda: GaussSeidelSmoother(1), n_cycles=n_cycles,
                seed=seed),
            "Dist SW, 1/2 sweep": vcycle_experiment_run(
                dim, lambda: DistributedSouthwellSmoother(0.5, seed=seed),
                n_cycles=n_cycles, seed=seed),
            "Dist SW, 1 sweep": vcycle_experiment_run(
                dim, lambda: DistributedSouthwellSmoother(1.0, seed=seed),
                n_cycles=n_cycles, seed=seed),
        })
    return rows
