"""Figure 6: multigrid smoothing — GS vs Distributed Southwell smoothers.

Relative residual norm after 9 V-cycles on the 2D Poisson equation, grid
dimensions 15 → 255, for three smoother configurations: Gauss-Seidel
(1 sweep), Distributed Southwell at half Gauss-Seidel's relaxation budget
("1/2 sweep"), and at the same budget ("1 sweep").  Expected shape:
grid-size-independent convergence in all three cases, with DS (1 sweep)
beating GS per relaxation.

Runs on :class:`~repro.multigrid.mg_exec.MultigridExecutor` (the
``solve(method="mg")`` engine), whose V-cycle is bit-identical to the
deprecated ``vcycle_experiment_run`` it replaced here.
"""

from __future__ import annotations

import numpy as np

from repro.matrices.poisson import poisson_2d
from repro.multigrid import MultigridExecutor, make_smoother

__all__ = ["run_fig6"]


def _rel_resid(fine_dim: int, smoother_name: str, budget: float,
               n_cycles: int, seed: int) -> float:
    """Figure 6 protocol for one grid size: ``n_cycles`` V-cycles from
    ``x0 = 0`` with a seeded random RHS in ``[-1, 1]``; returns the
    relative residual norm ``‖r_N‖/‖r_0‖``."""
    h = 1.0 / (fine_dim + 1)
    A = poisson_2d(fine_dim).scale(1.0 / h ** 2)
    rng = np.random.default_rng(seed)
    b = rng.uniform(-1.0, 1.0, fine_dim * fine_dim)
    mg = MultigridExecutor(
        A, make_smoother(smoother_name, budget=budget, seed=seed))
    hist = mg.run(b, n_cycles=n_cycles)
    return hist.final_norm / hist.initial_norm


def run_fig6(grid_dims: tuple[int, ...] = (15, 31, 63, 127, 255),
             n_cycles: int = 9, seed: int = 0) -> list[dict]:
    """One row per grid dimension with the three smoother results."""
    rows = []
    for dim in grid_dims:
        rows.append({
            "grid_dim": dim,
            "GS, 1 sweep": _rel_resid(dim, "gs", 1.0, n_cycles, seed),
            "Dist SW, 1/2 sweep": _rel_resid(dim, "scalar-ds", 0.5,
                                             n_cycles, seed),
            "Dist SW, 1 sweep": _rel_resid(dim, "scalar-ds", 1.0,
                                           n_cycles, seed),
        })
    return rows
