"""Figure 9: residual norm after 50 parallel steps vs process count.

The robustness view: how much does each method's 50-step residual degrade
as subdomains shrink?  Values above 1 mean the method diverged (the
initial norm is 1).

Expected shape: BJ's residual blows up with increasing P on the hard
problems; PS and DS degrade only mildly — the paper's core argument for
Distributed Southwell as a Block Jacobi replacement at scale.
"""

from __future__ import annotations

from repro.experiments.fig8 import FIG8_DEFAULT_NAMES
from repro.experiments.runners import METHOD_LABELS, METHODS, run_method

__all__ = ["run_fig9"]


def run_fig9(proc_sweep: tuple[int, ...] = (4, 8, 16, 32, 64, 128, 256),
             size_scale: float = 1.0, max_steps: int = 50, seed: int = 0,
             names: tuple[str, ...] = FIG8_DEFAULT_NAMES) -> list[dict]:
    """Rows of (matrix, P, norm_BJ, norm_PS, norm_DS) after ``max_steps``."""
    rows = []
    for name in names:
        for P in proc_sweep:
            row: dict = {"matrix": name, "P": P}
            for method in METHODS:
                res = run_method(name, method, P, size_scale, max_steps,
                                 seed)
                row[f"norm_{METHOD_LABELS[method]}"] = res.final_norm
            rows.append(row)
    return rows
