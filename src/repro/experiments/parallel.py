"""Process-pool sweep runner with an on-disk result cache.

The paper's artifact farms its 14-matrix sweeps out to a cluster; the
reproduction's equivalent is a local process pool.  A *sweep task* is one
``run_method`` invocation — ``(problem, method, P, scale, steps, seed)`` —
and tasks are independent, so a sweep is embarrassingly parallel.

Two layers make repeated sweeps cheap and safe:

- **on-disk cache**: each task's :class:`~repro.api.SolveResult` is
  pickled under a key that includes a digest of the ``repro`` source tree
  (plus the active kernel backend and runtime mode), so results are
  reused across processes *and* invocations but never survive a code
  change that could alter them;
- **graceful degradation**: sandboxes and restricted environments often
  forbid forking — if the pool cannot be built the sweep silently runs
  inline, same results, one process.

The pool itself is :class:`repro.runtime.pool.ForkTaskPool` — the same
persistent forked workers the shm execution plane uses (DESIGN.md
§5.12): the loaded package and config ride through the fork, so a
worker costs one ``fork()`` instead of a fresh interpreter, a re-import
and a knob replay.

Workers default to serial (``workers=0``); opt in per call or with the
``REPRO_WORKERS`` environment variable (``scripts/reproduce_all.py
--workers N`` wires it through).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path

from repro import config as _config

__all__ = [
    "SweepTask",
    "code_digest",
    "default_cache_dir",
    "run_sweep",
    "task_key",
]


@dataclass(frozen=True)
class SweepTask:
    """One ``run_method`` invocation, hashable and picklable."""

    problem: str
    method: str
    n_procs: int
    size_scale: float = 1.0
    max_steps: int = 50
    seed: int = 0


# ----------------------------------------------------------------------
# cache keys
# ----------------------------------------------------------------------
@lru_cache(maxsize=1)
def code_digest() -> str:
    """Digest of the ``repro`` package source (cache-invalidation token).

    Hashes every ``.py`` file under the package root in sorted relative-
    path order, path and contents both, so *any* source change — however
    remote from the solvers — retires all cached sweep results.  Cheap
    insurance: a stale numeric result is far more expensive than a rerun.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    h = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        h.update(str(path.relative_to(root)).encode())
        h.update(b"\0")
        h.update(path.read_bytes())
    return h.hexdigest()


def task_key(task: SweepTask) -> str:
    """Stable cache key for one task.

    Includes everything that can change the result: the task parameters,
    the source digest, and the kernel-backend / runtime-mode / trace
    knobs (all planes are equivalence-tested and tracing is
    zero-behavior-change, but those are test invariants, not assumptions
    the cache should bake in — and a traced run carries a ``trace_path``
    an untraced cache hit would not).  The runtime knob enters through
    :func:`repro.runtime.flatplane.runtime_mode` rather than the raw
    environment variable, so programmatic overrides (``use_runtime`` /
    ``RunConfig(runtime=...)`` in effect around the sweep) key the cache
    exactly like ``REPRO_RUNTIME`` does.
    """
    from repro.runtime.flatplane import runtime_mode

    parts = (
        "repro.sweep/v1",
        task.problem,
        task.method,
        str(task.n_procs),
        repr(float(task.size_scale)),
        str(task.max_steps),
        str(task.seed),
        code_digest(),
        _config.backend() or "",
        runtime_mode(),
        _config.trace_spec() or "",
        _config.faults_spec() or "",
    )
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()


def default_cache_dir() -> Path:
    """``REPRO_SWEEP_CACHE`` if set, else ``~/.cache/repro-southwell``."""
    return _config.sweep_cache()


# ----------------------------------------------------------------------
# cache I/O
# ----------------------------------------------------------------------
def _cache_load(cache: Path, key: str):
    path = cache / f"{key}.pkl"
    try:
        with open(path, "rb") as fh:
            return pickle.load(fh)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
            ImportError):
        return None


def _cache_store(cache: Path, key: str, result) -> None:
    """Atomic write (tmp + rename) so concurrent sweeps never read a
    torn pickle; failures are silent — the cache is an optimisation."""
    try:
        cache.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=cache, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, cache / f"{key}.pkl")
        except BaseException:
            os.unlink(tmp)
            raise
    except OSError:
        pass


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
#: set in :func:`_worker_init`: this process is a sweep-pool worker
_in_worker = False


def _run_task(task: SweepTask):
    """Execute one task in the current process (worker or inline)."""
    from repro.experiments.runners import clear_run_caches, run_method

    try:
        return run_method(task.problem, task.method, task.n_procs,
                          task.size_scale, task.max_steps, task.seed)
    finally:
        if _in_worker:  # pragma: no cover - exercised in spawned procs
            # the parent holds the returned result and the disk caches
            # hold everything reusable; keep only the bounded setup LRU
            # so consecutive tasks on one problem share a partition
            clear_run_caches(keep_setup=True)


def _worker_init(w: int) -> None:  # pragma: no cover - runs in children
    """Forked workers inherit the loaded package and every config knob;
    all that changes is the in-worker flag driving per-task cache trims."""
    global _in_worker
    _in_worker = True


def run_sweep(tasks, workers: int | None = None,
              cache_dir: Path | str | None = None,
              use_cache: bool = True) -> list:
    """Run every task, in task order, returning their ``SolveResult``\\ s.

    ``workers=None`` reads ``REPRO_WORKERS`` (default 0); values < 2 run
    inline.  Cache hits never touch the pool.  If the pool cannot be
    created or dies (sandboxed environments), the remaining tasks run
    inline — a sweep degrades, it does not fail.
    """
    tasks = [t if isinstance(t, SweepTask) else SweepTask(*t)
             for t in tasks]
    if workers is None:
        workers = _config.workers()
    cache = Path(cache_dir) if cache_dir is not None else default_cache_dir()

    results: list = [None] * len(tasks)
    todo: list[int] = []
    keys = [task_key(t) if use_cache else "" for t in tasks]
    for i, t in enumerate(tasks):
        hit = _cache_load(cache, keys[i]) if use_cache else None
        if hit is not None:
            results[i] = hit
        else:
            todo.append(i)

    computed = list(todo)
    if todo and workers > 1:
        todo = _run_pool(tasks, todo, results, workers)
    for i in todo:                      # inline: remainder / fallback
        results[i] = _run_task(tasks[i])
    if use_cache:
        for i in computed:
            _cache_store(cache, keys[i], results[i])
    return results


def _run_pool(tasks, todo, results, workers) -> list[int]:
    """Try the fork pool for ``todo``; return indices still unrun."""
    from repro.runtime.pool import ForkTaskPool, ShmUnavailable

    done: set[int] = set()
    try:
        with ForkTaskPool(min(workers, len(todo)), _run_task,
                          init=_worker_init) as pool:
            for i, out in pool.map_indexed({i: tasks[i] for i in todo}):
                results[i] = out
                done.add(i)
        return []
    except (OSError, ImportError, PermissionError, RuntimeError,
            ShmUnavailable):
        # no forking in this environment, or a worker died mid-sweep:
        # degrade inline for whatever is still missing
        return [i for i in todo if i not in done]
