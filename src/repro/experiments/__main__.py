"""Command-line experiment runner: ``python -m repro.experiments <exp>``.

Regenerates one paper table/figure, prints it, and optionally exports the
raw rows::

    python -m repro.experiments table2 --scale small
    python -m repro.experiments fig6 --csv fig6.csv
    python -m repro.experiments all --scale small
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.export import rows_to_csv, rows_to_json
from repro.analysis.tables import format_table
from repro.experiments import (
    get_scale,
    run_fig2,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig8_async,
    run_fig8_faults,
    run_fig9,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
)

__all__ = ["main"]


def _hist_rows(out: dict) -> list[dict]:
    rows = []
    for label, hist in out.items():
        rows.append({
            "method": label,
            "final_norm": hist.final_norm,
            "relaxations": hist.relaxations[-1],
            "parallel_steps": hist.parallel_steps[-1],
            "relax_to_0.6": hist.cost_to_reach(0.6, axis="relaxations"),
        })
    return rows


def _run(name: str, scale) -> list[dict]:
    if name == "fig2":
        return _hist_rows(run_fig2(fem_rows=scale.fem_rows, seed=scale.seed))
    if name == "fig5":
        return _hist_rows(run_fig5(fem_rows=scale.fem_rows, seed=scale.seed))
    if name == "fig6":
        return run_fig6(grid_dims=scale.grid_dims, seed=scale.seed)
    if name == "table1":
        return run_table1(size_scale=scale.size_scale)
    if name == "table2":
        return run_table2(n_procs=scale.n_procs,
                          size_scale=scale.size_scale,
                          max_steps=scale.max_steps,
                          target_norm=scale.target_norm, seed=scale.seed)
    if name == "table3":
        return run_table3(n_procs=scale.n_procs,
                          size_scale=scale.size_scale,
                          max_steps=scale.max_steps, seed=scale.seed)
    if name == "table4":
        return run_table4(n_procs=scale.n_procs,
                          size_scale=scale.size_scale,
                          max_steps=scale.max_steps, seed=scale.seed)
    if name == "fig7":
        out = run_fig7(n_procs=scale.n_procs,
                       size_scale=scale.size_scale,
                       max_steps=scale.max_steps, seed=scale.seed,
                       names=scale.fig7_names)
        rows = []
        for matrix, series in out.items():
            for method, cols in series.items():
                n = cols["residual_norms"]
                rows.append({"matrix": matrix, "method": method,
                             "min_norm": float(n.min()),
                             "final_norm": float(n[-1]),
                             "final_comm": float(cols["comm_costs"][-1])})
        return rows
    if name == "fig8":
        return run_fig8(proc_sweep=scale.proc_sweep,
                        size_scale=scale.size_scale,
                        max_steps=scale.max_steps,
                        target_norm=scale.target_norm, seed=scale.seed,
                        names=scale.scaling_names)
    if name == "fig8_faults":
        small = scale.name == "small"
        return run_fig8_faults(grid_dim=32 if small else 64,
                               n_procs=16 if small else 64,
                               max_steps=scale.max_steps,
                               target_norm=scale.target_norm,
                               seed=scale.seed)
    if name == "fig8_async":
        small = scale.name == "small"
        return run_fig8_async(grid_dim=32 if small else 64,
                              n_procs=16 if small else 64,
                              max_steps=scale.max_steps,
                              target_norm=scale.target_norm,
                              seed=scale.seed)
    if name == "fig9":
        return run_fig9(proc_sweep=scale.proc_sweep,
                        size_scale=scale.size_scale,
                        max_steps=scale.max_steps, seed=scale.seed,
                        names=scale.scaling_names)
    raise KeyError(name)


EXPERIMENTS = ("fig2", "fig5", "fig6", "table1", "table2", "table3",
               "table4", "fig7", "fig8", "fig8_faults", "fig8_async",
               "fig9")


def main(argv: list[str] | None = None) -> int:
    """Entry point: regenerate the chosen experiment(s); 0 on success."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate one of the paper's tables/figures.")
    parser.add_argument("experiment", choices=EXPERIMENTS + ("all",))
    parser.add_argument("--scale", default="paper",
                        choices=("paper", "small"))
    parser.add_argument("--csv", default=None,
                        help="also write the rows to this CSV file")
    parser.add_argument("--json", default=None,
                        help="also write the rows to this JSON file")
    args = parser.parse_args(argv)
    scale = get_scale(args.scale)

    names = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    for name in names:
        rows = _run(name, scale)
        print(format_table(rows, title=f"{name} ({scale.name} scale)",
                           digits=4))
        print()
        if args.csv and len(names) == 1:
            print(f"wrote {rows_to_csv(rows, args.csv)}")
        if args.json and len(names) == 1:
            print(f"wrote {rows_to_json(rows, args.json)}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
