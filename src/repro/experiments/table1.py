"""Table 1: the test suite — paper sizes next to the synthetic analogs."""

from __future__ import annotations

from repro.matrices.suite import suite_table

__all__ = ["run_table1"]


def run_table1(size_scale: float = 1.0) -> list[dict]:
    """One row per suite member: paper (nnz, n) and analog (nnz, n)."""
    return suite_table(size_scale=size_scale)
