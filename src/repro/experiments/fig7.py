"""Figure 7: convergence profiles on four problems with distinct BJ regimes.

Residual norm against three x-axes (simulated wall-clock, communication
cost, parallel step) for Geo_1438 and Hook_1498 (BJ reaches 0.1, then
diverges), bone010 (BJ never reaches 0.1), and af_5_k101 (BJ never
diverges — the only such case in the suite).
"""

from __future__ import annotations

from repro.experiments.runners import METHODS, suite_runs

__all__ = ["FIG7_DEFAULT_NAMES", "run_fig7"]

FIG7_DEFAULT_NAMES = ("Geo_1438", "Hook_1498", "bone010", "af_5_k101")


def run_fig7(n_procs: int = 256, size_scale: float = 1.0,
             max_steps: int = 50, seed: int = 0,
             names: tuple[str, ...] = FIG7_DEFAULT_NAMES) -> dict:
    """matrix → method → columns (norms + the three x-axes)."""
    out: dict = {}
    for run in suite_runs(names, n_procs, size_scale, max_steps, seed):
        per_method = {}
        for method in METHODS:
            h = run.results[method].history
            cols = h.as_arrays()
            per_method[method] = {
                "residual_norms": cols["residual_norms"],
                "times": cols["times"],
                "comm_costs": cols["comm_costs"],
                "parallel_steps": cols["parallel_steps"],
            }
        out[run.name] = per_method
    return out
