"""Experiment scales and shared defaults.

The paper's headline configuration is 8192 MPI processes on matrices of
0.4M-1.6M rows; the reproduction's default ("paper" scale) is 256 simulated
processes on the calibrated 4.5k-12k-row suite, which sits in the same
block-size regime (subdomains of ~20-50 rows) where Block Jacobi's
†-pattern reproduces.  The "small" scale exists for tests and CI smoke
runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SCALES", "ExperimentScale", "get_scale"]


@dataclass(frozen=True)
class ExperimentScale:
    """One named experiment configuration."""

    name: str
    n_procs: int                    # Table 2/3/4 process count
    size_scale: float               # multiplies the suite target rows
    max_steps: int                  # parallel-step cap (paper: 50)
    target_norm: float              # Table 2 target (paper: 0.1)
    seed: int = 0
    proc_sweep: tuple[int, ...] = (4, 8, 16, 32, 64, 128, 256)
    scaling_names: tuple[str, ...] = ("Flan_1565", "ldoor", "StocF-1465",
                                      "inline_1", "bone010", "Hook_1498")
    fig7_names: tuple[str, ...] = ("Geo_1438", "Hook_1498", "bone010",
                                   "af_5_k101")
    grid_dims: tuple[int, ...] = (15, 31, 63, 127, 255)
    fem_rows: int = 3081            # Figures 2/5 problem size


SCALES: dict[str, ExperimentScale] = {
    "paper": ExperimentScale(name="paper", n_procs=256, size_scale=1.0,
                             max_steps=50, target_norm=0.1),
    "small": ExperimentScale(name="small", n_procs=16, size_scale=0.08,
                             max_steps=30, target_norm=0.1,
                             proc_sweep=(4, 8, 16),
                             grid_dims=(15, 31, 63),
                             fem_rows=500),
}


def get_scale(name: str = "paper") -> ExperimentScale:
    """Look up a named scale (``'paper'`` or ``'small'``)."""
    if name not in SCALES:
        raise KeyError(f"unknown scale {name!r}; choices: {sorted(SCALES)}")
    return SCALES[name]
