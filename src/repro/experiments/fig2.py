"""Figure 2: scalar convergence comparison on the small FEM problem.

Gauss-Seidel, Sequential Southwell, Parallel Southwell, Multicolor
Gauss-Seidel and Jacobi on an irregular-mesh FEM Poisson problem
(3081 rows), three sweeps' worth of relaxations, residual norm vs number
of relaxations.  Expected shape (asserted by the bench): Sequential
Southwell reaches low accuracy (norm 0.6) in roughly half Gauss-Seidel's
relaxations; Parallel Southwell tracks Sequential Southwell; Jacobi is
slowest per relaxation.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.history import ConvergenceHistory
from repro.core.scalar import ScalarParallelSouthwell, sequential_southwell
from repro.matrices.fem import fem_poisson_2d
from repro.solvers.scalar import (
    gauss_seidel_trace,
    jacobi_trace,
    multicolor_gs_trace,
)

__all__ = ["run_fig2"]


def run_fig2(fem_rows: int = 3081, n_sweeps: int = 3, seed: int = 0
             ) -> dict[str, ConvergenceHistory]:
    """Run all five methods; returns label → history.

    The paper's setup: random uniform zero-mean right-hand side scaled to
    ``‖b‖₂ = 1``, zero initial guess, unit-diagonal scaled matrix.
    """
    prob = fem_poisson_2d(target_rows=fem_rows, seed=seed)
    A = prob.matrix
    n = A.n_rows
    rng = np.random.default_rng(seed + 1)
    b = rng.uniform(-1.0, 1.0, n)
    b /= np.linalg.norm(b)
    x0 = np.zeros(n)
    budget = n_sweeps * n

    record_every = max(1, n // 200)
    return {
        "GS": gauss_seidel_trace(A, x0, b, n_sweeps,
                                 record_every=record_every),
        "SW": sequential_southwell(A, x0, b, budget),
        "Par SW": ScalarParallelSouthwell(A).run(x0, b,
                                                 max_relaxations=budget),
        "MC GS": multicolor_gs_trace(A, x0, b, n_sweeps),
        "Jacobi": jacobi_trace(A, x0, b, n_sweeps),
    }
