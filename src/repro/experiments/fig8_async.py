"""Figure 8 analog in the event-driven runtime: simulated time, not steps.

The lockstep fault sweep (:mod:`repro.experiments.fig8_faults`) counts
*parallel steps* to a residual target — every process marches in step,
so a straggler costs nothing and a dropped message only delays healing
by whole epochs.  This sweep re-asks the paper's Section 4.5 question
under ``runtime="async"`` (DESIGN.md §5.14), where each rank owns a
virtual clock priced by the cost model and the x-axis becomes
**simulated seconds to the target**:

- **message drops** — every solve/residual message is dropped i.i.d.
  with probability ``p ∈ drop_sweep`` (seeded :class:`FaultPlan`);
- **stragglers** — a fixed subset of ranks computes at
  ``straggler_factor`` speed (0.5 = the paper's "2× slower" regime),
  so their neighborhoods run ahead on stale estimates.

Expected shape — the paper's low-communication claim restated in the
event model: DS's local Γ̃ estimates tolerate both staleness sources
and it reaches the target in bounded simulated time; PS, whose
criterion needs *exact* neighbor norms, loses explicit residual
updates to the drops and trails DS or never reaches the target
(``time_to_target = None``); BJ relaxes unconditionally and burns far
more communication for its time.
"""

from __future__ import annotations

import numpy as np

from repro.api import AsyncConfig, RunConfig, solve
from repro.experiments.runners import METHOD_LABELS, METHODS
from repro.faults import FaultPlan
from repro.matrices.poisson import poisson_2d
from repro.sparsela import symmetric_unit_diagonal_scale

__all__ = ["default_stragglers", "run_fig8_async"]


def default_stragglers(n_procs: int, count: int = 4) -> tuple[int, ...]:
    """Evenly spaced straggler ranks — deterministic, partition-agnostic."""
    count = max(1, min(count, n_procs))
    step = max(1, n_procs // count)
    return tuple(range(0, n_procs, step))[:count]


def run_fig8_async(grid_dim: int = 64, n_procs: int = 64,
                   drop_sweep: tuple[float, ...] = (0.0, 0.1, 0.2),
                   straggler_factor: float = 0.5,
                   stragglers: tuple[int, ...] | None = None,
                   max_steps: int = 100, target_norm: float = 0.1,
                   seed: int = 0, plan_seed: int = 7) -> list[dict]:
    """One row per (drop probability, method), stragglers always on.

    Columns: final residual norm, *simulated seconds* to ``target_norm``
    (``None`` = never reached, the paper's ``†``), total virtual time,
    communication cost, repair messages, injected-fault total, and the
    ``degraded`` deadlock report flag.  Every run is bit-deterministic
    for fixed arguments (the §5.14 guarantee), so rows regenerate
    identically.
    """
    A = symmetric_unit_diagonal_scale(poisson_2d(grid_dim)).matrix
    if stragglers is None:
        stragglers = default_stragglers(n_procs)
    acfg = AsyncConfig(speed_factors=tuple(
        (r, straggler_factor) for r in stragglers))
    rows = []
    for p in drop_sweep:
        plan = (FaultPlan.uniform(drop=p, seed=plan_seed)
                if p > 0.0 else None)
        for method in METHODS:
            cfg = RunConfig(n_parts=n_procs, max_steps=max_steps,
                            seed=seed, faults=plan, runtime="async",
                            async_config=acfg)
            res = solve(A, method=method, config=cfg)
            inj = res.faults_injected or {}
            rows.append({
                "drop": p,
                "method": METHOD_LABELS[method],
                "final_norm": res.final_norm,
                "time_to_target": res.history.cost_to_reach(
                    target_norm, axis="times"),
                "virtual_time": res.virtual_time,
                "comm_cost": res.comm_cost,
                "repairs": res.repairs,
                "faults_injected": int(np.sum(list(inj.values()))) if inj
                else 0,
                "degraded": res.degraded,
            })
    return rows
