"""Command-line driver mirroring the SC17 artifact's ``DMEM_Southwell``.

The artifact binary is driven as::

    srun -N 32 -n 1024 ./DMEM_Southwell -x_zeros -mat_file ecology2.mtx.bin
        -sweep_max 20 -loc_solver gs -solver sos_sds

This module reproduces that interface over the simulated runtime::

    python -m repro -n 64 -x_zeros -mat_file matrix.mtx -sweep_max 20
        -loc_solver gs -solver sos_sds

Differences from the artifact, by necessity: ``-n`` selects the number of
*simulated* processes (there is no ``srun``); matrices load from Matrix
Market text or this package's ``.bin`` format; the default generated
problem is a 5-point Laplacian on a 100×100 grid (the artifact defaults
to 1000×1000, far beyond a laptop-scale simulation).  Solver names accept
both the artifact's (``sos_sds``, ``sos_ps``, ``sj``) and descriptive
(``ds``, ``ps``, ``bj``) spellings.

Runtime additions (not in the artifact): ``--runtime async`` runs the
event-driven engine (with ``--async-latency`` / ``--async-speed-factors``
for link latency and per-rank stragglers, and ``--async-scheduler`` to
pick the scalar oracle or the batched event-horizon engine).
``-solver mg`` (alias ``--method mg``) runs the communication-aware
multigrid V-cycle with ``--mg-smoother`` / ``--mg-drop-tol``; it needs a
square ``2^k - 1`` grid (``-grid_dim 31``, 63, 127, ...).

Observability additions (not in the artifact): ``--trace PATH`` records
the run's event trace (JSONL, or Chrome ``trace_event`` for ``.json`` /
``.chrome``), ``--json`` prints the result as one JSON document, and two
subcommands — ``python -m repro trace FILE`` summarizes a recorded trace
and ``python -m repro config`` prints every ``REPRO_*`` knob with its
effective value and source.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro import config as repro_config
from repro.api import RunConfig, solve
from repro.matrices.poisson import poisson_2d
from repro.sparsela import (
    read_binary,
    read_matrix_market,
    symmetric_unit_diagonal_scale,
)

__all__ = ["main"]

_SOLVER_ALIASES = {
    "sos_sds": "distributed-southwell",
    "sos_ps": "parallel-southwell",
    "sj": "block-jacobi",
    "ds": "distributed-southwell",
    "ps": "parallel-southwell",
    "bj": "block-jacobi",
    "distributed-southwell": "distributed-southwell",
    "parallel-southwell": "parallel-southwell",
    "block-jacobi": "block-jacobi",
    "mg": "mg",
    "multigrid": "mg",
}


def build_parser() -> argparse.ArgumentParser:
    """The DMEM_Southwell-flavoured argument parser."""
    parser = argparse.ArgumentParser(
        prog="dmem-southwell",
        description="Distributed Southwell / Parallel Southwell / Block "
                    "Jacobi over a simulated one-sided-MPI runtime.")
    parser.add_argument("-n", "--num-procs", type=int, default=32,
                        help="number of simulated MPI processes "
                             "(the artifact's srun -n)")
    parser.add_argument("-mat_file", default=None,
                        help="matrix file (.mtx Matrix Market or .bin)")
    parser.add_argument("-grid_dim", type=int, default=100,
                        help="side of the generated 5-point Laplacian when "
                             "no -mat_file is given")
    parser.add_argument("-sweep_max", type=int, default=20,
                        help="number of parallel steps (artifact default 20)")
    parser.add_argument("-solver", "--method", dest="solver",
                        default="sos_sds",
                        choices=sorted(_SOLVER_ALIASES),
                        help="sos_sds=Distributed Southwell, "
                             "sos_ps=Parallel Southwell, sj=Block Jacobi; "
                             "mg=communication-aware multigrid V-cycle "
                             "(needs a 2^k-1 -grid_dim, e.g. 31 or 63)")
    parser.add_argument("-loc_solver", default="gs",
                        choices=("gs", "direct"),
                        help="local subdomain solver")
    parser.add_argument("-x_zeros", action="store_true",
                        help="x0 = 0 and random b (default: random x0, "
                             "b = 0); either way ‖r0‖₂ is scaled to 1")
    parser.add_argument("-target", type=float, default=None,
                        help="optional residual-norm target to report")
    parser.add_argument("-seed", type=int, default=0,
                        help="random seed")
    parser.add_argument("-format_out", action="store_true",
                        help="machine-readable output (one metric per line)")
    parser.add_argument("--runtime", default=None,
                        choices=repro_config.VALID_RUNTIME_MODES,
                        help="execution plane (overrides REPRO_RUNTIME); "
                             "'async' runs the event-driven engine")
    parser.add_argument("--async-latency", type=float, default=None,
                        dest="async_latency", metavar="SECONDS",
                        help="simulated network latency under --runtime "
                             "async (overrides REPRO_ASYNC_LATENCY)")
    parser.add_argument("--async-speed-factors", default=None,
                        dest="async_speed_factors", metavar="SPEC",
                        help="per-rank straggler spec 'rank:factor,...' "
                             "under --runtime async (overrides "
                             "REPRO_ASYNC_SPEED_FACTORS)")
    parser.add_argument("--mg-smoother", default=None, dest="mg_smoother",
                        choices=repro_config.VALID_MG_SMOOTHERS,
                        help="V-cycle smoother under -solver mg: block "
                             "'ds'/'ps'/'bj' (real runners at the equal-"
                             "relaxation budget), 'gs', or the paper's "
                             "'scalar-ds'/'scalar-ps' (overrides "
                             "REPRO_MG_SMOOTHER)")
    parser.add_argument("--mg-drop-tol", type=float, default=None,
                        dest="mg_drop_tol", metavar="TOL",
                        help="AMG sparsification threshold for Galerkin "
                             "coarse operators under -solver mg; implies "
                             "the Galerkin hierarchy (overrides "
                             "REPRO_MG_DROP_TOL)")
    parser.add_argument("--async-scheduler", default=None,
                        dest="async_scheduler",
                        choices=repro_config.VALID_ASYNC_SCHEDULERS,
                        help="event-loop engine under --runtime async: "
                             "'scalar' (heap oracle) or 'batched' "
                             "(vectorized event-horizon macro-turns, "
                             "bit-identical results; overrides "
                             "REPRO_ASYNC_SCHEDULER)")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="record the run's event trace to PATH (JSONL; "
                             ".json/.chrome suffix writes Chrome "
                             "trace_event format)")
    parser.add_argument("--faults", default=None, metavar="PATH",
                        help="inject faults from a FaultPlan JSON file "
                             "(also settable via REPRO_FAULTS)")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero (DegradedRunError) when a "
                             "faulted run degrades instead of converging")
    parser.add_argument("--json", action="store_true", dest="json_out",
                        help="print the full result as one JSON document")
    return parser


def load_matrix(args) :
    """Load or generate the (unit-diagonal scaled) test matrix."""
    if args.mat_file:
        if args.mat_file.endswith(".bin"):
            A = read_binary(args.mat_file)
        else:
            A = read_matrix_market(args.mat_file)
    else:
        A = poisson_2d(args.grid_dim)
    return symmetric_unit_diagonal_scale(A).matrix


def _trace_command(argv: list[str]) -> int:
    """``repro trace FILE [...]``: summarize recorded trace files."""
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Summarize a recorded run trace: per-phase times, "
                    "per-edge message counts, MessageStats reconciliation.")
    parser.add_argument("files", nargs="+", metavar="FILE",
                        help="JSONL trace file(s) written by --trace / "
                             "REPRO_TRACE")
    args = parser.parse_args(argv)
    from repro.analysis import format_trace_summary, summarize_trace

    for i, path in enumerate(args.files):
        if i:
            print()
        if len(args.files) > 1:
            print(f"== {path}")
        print(format_trace_summary(summarize_trace(path)))
    return 0


def _config_command(argv: list[str]) -> int:
    """``repro config``: print every knob's effective value and source."""
    argparse.ArgumentParser(
        prog="repro config",
        description="Show the REPRO_* configuration knobs.").parse_args(argv)
    print(repro_config.describe())
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point: load/generate, solve, report (0 on success)."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "trace":
        return _trace_command(argv[1:])
    if argv and argv[0] == "config":
        return _config_command(argv[1:])
    args = build_parser().parse_args(argv)
    t_setup = time.perf_counter()
    A = load_matrix(args)
    rng = np.random.default_rng(args.seed)
    if args.x_zeros:
        x0 = np.zeros(A.n_rows)
        b = rng.uniform(-1.0, 1.0, A.n_rows)
        b /= np.linalg.norm(b)
    else:
        x0 = rng.uniform(-1.0, 1.0, A.n_rows)
        b = np.zeros(A.n_rows)
        x0 /= np.linalg.norm(A.matvec(x0))
    method = _SOLVER_ALIASES[args.solver]
    setup_time = time.perf_counter() - t_setup

    t_solve = time.perf_counter()
    plan = None
    if args.faults is not None:
        from repro.faults import FaultPlan

        plan = FaultPlan.from_file(args.faults)
    async_cfg = None
    if (args.async_latency is not None
            or args.async_speed_factors is not None
            or args.async_scheduler is not None):
        from repro.api import AsyncConfig

        sf = None
        if args.async_speed_factors is not None:
            sf = repro_config.parse_speed_factors(
                args.async_speed_factors) or None
        async_cfg = AsyncConfig(latency=args.async_latency, speed_factors=sf,
                                scheduler=args.async_scheduler)
    mg_cfg = None
    if (method == "mg" or args.mg_smoother is not None
            or args.mg_drop_tol is not None):
        from repro.api import MultigridConfig

        # the CLI unit-diagonal-scales whatever it loads, so the coarse
        # operators must be formed variationally from that scaled fine
        # operator — the geometric rediscretized hierarchy would be
        # dimensionally inconsistent with it
        mg_cfg = MultigridConfig(smoother=args.mg_smoother,
                                 drop_tol=args.mg_drop_tol,
                                 hierarchy="galerkin")
    cfg = RunConfig(n_parts=args.num_procs, max_steps=args.sweep_max,
                    local_solver=args.loc_solver, seed=args.seed,
                    trace=args.trace, faults=plan, strict=args.strict,
                    runtime=args.runtime, async_config=async_cfg,
                    mg=mg_cfg)
    result = solve(A, b, method=method, x0=x0, config=cfg)
    solve_time = time.perf_counter() - t_solve

    if args.json_out:
        doc = result.to_dict()
        doc["setup_wallclock"] = setup_time
        doc["solve_wallclock"] = solve_time
        print(json.dumps(doc, indent=2))
    elif args.format_out:
        print(f"solver {method}")
        print(f"n {A.n_rows}")
        print(f"nnz {A.nnz}")
        print(f"procs {args.num_procs}")
        print(f"parallel_steps {result.parallel_steps}")
        print(f"residual_norm {result.final_norm:.16e}")
        print(f"comm_cost {result.comm_cost:.6f}")
        print(f"solve_comm {result.solve_comm:.6f}")
        print(f"res_comm {result.residual_comm:.6f}")
        print(f"relaxations_per_n {result.relaxations / A.n_rows:.6f}")
        print(f"simulated_time {result.simulated_time:.9f}")
        if result.virtual_time is not None:
            print(f"virtual_time {result.virtual_time:.9f}")
        print(f"setup_wallclock {setup_time:.3f}")
        print(f"solve_wallclock {solve_time:.3f}")
        if result.faults_injected is not None:
            print(f"faults_injected "
                  f"{sum(result.faults_injected.values())}")
            print(f"repairs {result.repairs}")
            print(f"degraded {int(result.degraded)}")
        if args.target is not None:
            steps = result.history.cost_to_reach(args.target,
                                                 axis="parallel_steps")
            print(f"steps_to_target "
                  f"{'nan' if steps is None else f'{steps:.3f}'}")
    else:
        print(f"matrix: n={A.n_rows:,} nnz={A.nnz:,} "
              f"({args.mat_file or f'{args.grid_dim}x{args.grid_dim} Laplace'})")
        print(f"setup: {setup_time:.2f} s wall-clock")
        print(result.summary())
        print(f"solve: {solve_time:.2f} s wall-clock "
              f"({result.parallel_steps} parallel steps)")
        if args.target is not None:
            steps = result.history.cost_to_reach(args.target,
                                                 axis="parallel_steps")
            state = f"{steps:.2f} steps" if steps is not None else "† (never)"
            print(f"‖r‖₂ ≤ {args.target}: {state}")
        if result.faults_injected is not None:
            inj = "  ".join(f"{k}={v}" for k, v in
                            sorted(result.faults_injected.items()))
            print(f"faults: {inj or 'none'} (repairs={result.repairs})")
            if result.degraded:
                print(f"DEGRADED: {result.degraded_reason}")
        if result.trace_path:
            print(f"trace written to {result.trace_path} "
                  f"(summarize with: python -m repro trace "
                  f"{result.trace_path})")
    # release the in-process setup/run caches: one-shot invocations are
    # about to exit anyway, but programmatic main(argv) loops (tests,
    # notebooks) must not accumulate block systems across calls
    from repro.experiments.runners import clear_run_caches

    clear_run_caches()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
