"""Command-line driver mirroring the SC17 artifact's ``DMEM_Southwell``.

The artifact binary is driven as::

    srun -N 32 -n 1024 ./DMEM_Southwell -x_zeros -mat_file ecology2.mtx.bin
        -sweep_max 20 -loc_solver gs -solver sos_sds

This module reproduces that interface over the simulated runtime::

    python -m repro -n 64 -x_zeros -mat_file matrix.mtx -sweep_max 20
        -loc_solver gs -solver sos_sds

Differences from the artifact, by necessity: ``-n`` selects the number of
*simulated* processes (there is no ``srun``); matrices load from Matrix
Market text or this package's ``.bin`` format; the default generated
problem is a 5-point Laplacian on a 100×100 grid (the artifact defaults
to 1000×1000, far beyond a laptop-scale simulation).  Solver names accept
both the artifact's (``sos_sds``, ``sos_ps``, ``sj``) and descriptive
(``ds``, ``ps``, ``bj``) spellings.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.api import run_block_method
from repro.matrices.poisson import poisson_2d
from repro.sparsela import (
    read_binary,
    read_matrix_market,
    symmetric_unit_diagonal_scale,
)

__all__ = ["main"]

_SOLVER_ALIASES = {
    "sos_sds": "distributed-southwell",
    "sos_ps": "parallel-southwell",
    "sj": "block-jacobi",
    "ds": "distributed-southwell",
    "ps": "parallel-southwell",
    "bj": "block-jacobi",
    "distributed-southwell": "distributed-southwell",
    "parallel-southwell": "parallel-southwell",
    "block-jacobi": "block-jacobi",
}


def build_parser() -> argparse.ArgumentParser:
    """The DMEM_Southwell-flavoured argument parser."""
    parser = argparse.ArgumentParser(
        prog="dmem-southwell",
        description="Distributed Southwell / Parallel Southwell / Block "
                    "Jacobi over a simulated one-sided-MPI runtime.")
    parser.add_argument("-n", "--num-procs", type=int, default=32,
                        help="number of simulated MPI processes "
                             "(the artifact's srun -n)")
    parser.add_argument("-mat_file", default=None,
                        help="matrix file (.mtx Matrix Market or .bin)")
    parser.add_argument("-grid_dim", type=int, default=100,
                        help="side of the generated 5-point Laplacian when "
                             "no -mat_file is given")
    parser.add_argument("-sweep_max", type=int, default=20,
                        help="number of parallel steps (artifact default 20)")
    parser.add_argument("-solver", default="sos_sds",
                        choices=sorted(_SOLVER_ALIASES),
                        help="sos_sds=Distributed Southwell, "
                             "sos_ps=Parallel Southwell, sj=Block Jacobi")
    parser.add_argument("-loc_solver", default="gs",
                        choices=("gs", "direct"),
                        help="local subdomain solver")
    parser.add_argument("-x_zeros", action="store_true",
                        help="x0 = 0 and random b (default: random x0, "
                             "b = 0); either way ‖r0‖₂ is scaled to 1")
    parser.add_argument("-target", type=float, default=None,
                        help="optional residual-norm target to report")
    parser.add_argument("-seed", type=int, default=0,
                        help="random seed")
    parser.add_argument("-format_out", action="store_true",
                        help="machine-readable output (one metric per line)")
    return parser


def load_matrix(args) :
    """Load or generate the (unit-diagonal scaled) test matrix."""
    if args.mat_file:
        if args.mat_file.endswith(".bin"):
            A = read_binary(args.mat_file)
        else:
            A = read_matrix_market(args.mat_file)
    else:
        A = poisson_2d(args.grid_dim)
    return symmetric_unit_diagonal_scale(A).matrix


def main(argv: list[str] | None = None) -> int:
    """Entry point: load/generate, solve, report (0 on success)."""
    args = build_parser().parse_args(argv)
    t_setup = time.perf_counter()
    A = load_matrix(args)
    rng = np.random.default_rng(args.seed)
    if args.x_zeros:
        x0 = np.zeros(A.n_rows)
        b = rng.uniform(-1.0, 1.0, A.n_rows)
        b /= np.linalg.norm(b)
    else:
        x0 = rng.uniform(-1.0, 1.0, A.n_rows)
        b = np.zeros(A.n_rows)
        x0 /= np.linalg.norm(A.matvec(x0))
    method = _SOLVER_ALIASES[args.solver]
    setup_time = time.perf_counter() - t_setup

    t_solve = time.perf_counter()
    result = run_block_method(method, A, args.num_procs, x0=x0, b=b,
                              max_steps=args.sweep_max,
                              local_solver=args.loc_solver, seed=args.seed)
    solve_time = time.perf_counter() - t_solve

    if args.format_out:
        print(f"solver {method}")
        print(f"n {A.n_rows}")
        print(f"nnz {A.nnz}")
        print(f"procs {args.num_procs}")
        print(f"parallel_steps {result.parallel_steps}")
        print(f"residual_norm {result.final_norm:.16e}")
        print(f"comm_cost {result.comm_cost:.6f}")
        print(f"solve_comm {result.solve_comm:.6f}")
        print(f"res_comm {result.residual_comm:.6f}")
        print(f"relaxations_per_n {result.relaxations / A.n_rows:.6f}")
        print(f"simulated_time {result.simulated_time:.9f}")
        print(f"setup_wallclock {setup_time:.3f}")
        print(f"solve_wallclock {solve_time:.3f}")
        if args.target is not None:
            steps = result.history.cost_to_reach(args.target,
                                                 axis="parallel_steps")
            print(f"steps_to_target "
                  f"{'nan' if steps is None else f'{steps:.3f}'}")
    else:
        print(f"matrix: n={A.n_rows:,} nnz={A.nnz:,} "
              f"({args.mat_file or f'{args.grid_dim}x{args.grid_dim} Laplace'})")
        print(f"setup: {setup_time:.2f} s wall-clock")
        print(result.summary())
        print(f"solve: {solve_time:.2f} s wall-clock "
              f"({result.parallel_steps} parallel steps)")
        if args.target is not None:
            steps = result.history.cost_to_reach(args.target,
                                                 axis="parallel_steps")
            state = f"{steps:.2f} steps" if steps is not None else "† (never)"
            print(f"‖r‖₂ ≤ {args.target}: {state}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
