"""Parallel Southwell, block/distributed form (Algorithm 2).

Process ``p`` relaxes when its block residual norm is maximal among its
neighborhood ``{Γ_p, ‖r_p‖}``.  Correctness of the criterion requires every
process to know its neighbors' norms *exactly*, which costs the paper's
"explicit residual updates": whenever ``‖r_p‖`` changes without ``p``
relaxing (a neighbor's update landed on its boundary), ``p`` must push the
new norm to all neighbors in a separate message (Alg 2, lines 19-21).
Relaxing processes avoid that message by piggy-backing the new norm onto
the solve update (line 10).

Note this is the *deadlock-free* variant defined in Section 2.3/2.4 of the
paper — not the earlier ICCS'16 scheme, which the paper reports deadlocks
on every test problem.  Table 3 shows these explicit updates dominate PS's
communication; removing most of them is Distributed Southwell's whole
point.
"""

from __future__ import annotations

import numpy as np

from repro.core.block_base import BlockMethodBase
from repro.runtime import CATEGORY_RESIDUAL, CATEGORY_SOLVE

__all__ = ["ParallelSouthwell"]


def _sq(x) -> float:
    """Squared scalar via plain multiply (bit-stable across code paths)."""
    v = float(x)
    return v * v


class ParallelSouthwell(BlockMethodBase):
    """Algorithm 2 over the simulated RMA runtime.

    Ablation knob: ``piggyback=False`` disables appending the new residual
    norm to relax-update messages (Alg 2 line 10), so relaxing processes
    must send their norm as a *separate* message — counting exactly what
    the piggy-backing optimisation saves.
    """

    name = "parallel-southwell"

    def __init__(self, *args, piggyback: bool = True, **kwargs):
        super().__init__(*args, **kwargs)
        self.piggyback = piggyback

    def setup(self, x0, b, permuted: bool = False) -> None:
        super().setup(x0, b, permuted=permuted)
        sysm = self.system
        P = sysm.n_parts
        # Γ_p: exact neighbor norms (squared — the criterion compares
        # squares so no square roots are needed in the hot loop).  One
        # shared squared array so Γ entries and broadcast records start
        # bit-identical.  Γ lives as one flat slab along the neighbor
        # offsets (per-rank lists are views into it) so the decision phase
        # is a single segment-max.
        norms_sq = self.norms * self.norms
        off = self._nbr_off
        self._gamma_flat = norms_sq[self._nbr_flat]
        self.gamma_sq: list[np.ndarray] = [
            self._gamma_flat[off[p]:off[p + 1]] for p in range(P)]
        self._nbr_pos: list[dict[int, int]] = [
            {int(q): i for i, q in enumerate(sysm.neighbors_of(p))}
            for p in range(P)]
        # the norm each process last told its neighbors (squared); explicit
        # updates fire whenever the actual norm departs from this
        self._broadcast_sq = norms_sq.copy()

    # ------------------------------------------------------------------
    # flat-buffer plane hooks (DESIGN.md §5.8)
    # ------------------------------------------------------------------
    def _flat_supported(self) -> bool:
        # the piggyback ablation sends two messages per edge per epoch,
        # which breaks the one-message-per-(edge, slot) mailbox contract
        return self.piggyback

    def _flat_message_nbytes(self, n_vals: int, n_z: int
                             ) -> tuple[int, int]:
        # solve = {vals, own_norm_sq}; residual = {own_norm_sq}
        return 24 + 8 * n_vals, 24

    def step(self) -> int:
        if self._use_flat:
            return self._step_flat()
        sysm = self.system
        P = sysm.n_parts
        trc = self.tracer
        tracing = trc.enabled

        # ---- phase 1: criterion + relax + put updates (lines 8-10)
        if tracing:
            trc.phase_begin("relax")
        relaxed = self._mask_stalled(
            self._wins_vector(self.norms * self.norms, self._gamma_flat))
        for p in np.flatnonzero(relaxed):
            p = int(p)
            deltas = self.relax(p)
            new_sq = _sq(self.norms[p])
            self._broadcast_sq[p] = new_sq
            for q, vals in deltas.items():
                vals = self._outgoing_vals(p, q, vals)
                if self.piggyback:
                    self.engine.put(p, q, CATEGORY_SOLVE,
                                    {"vals": vals, "own_norm_sq": new_sq})
                else:
                    # ablation: the norm travels as its own message
                    self.engine.put(p, q, CATEGORY_SOLVE, {"vals": vals,
                                    "own_norm_sq": None})
                    self.engine.put(p, q, CATEGORY_RESIDUAL,
                                    {"own_norm_sq": new_sq})
        self.engine.close_epoch()
        if tracing:
            trc.phase_end("relax")
            trc.phase_begin("apply")

        # ---- phase 2: read updates; explicit residual update if our norm
        # changed without us having told anyone (lines 11-21)
        for p in range(P):
            changed = False
            for msg in self.engine.drain(p):
                pos = self._nbr_pos[p][msg.src]
                if msg.category == CATEGORY_SOLVE:
                    changed = self._apply_update(p, msg) or changed
                    if msg.payload["own_norm_sq"] is None:
                        continue    # piggyback ablation: norm comes apart
                self.gamma_sq[p][pos] = msg.payload["own_norm_sq"]
            if changed:
                self.refresh_norm(p)
            new_sq = _sq(self.norms[p])
            if new_sq != self._broadcast_sq[p]:
                self._broadcast_sq[p] = new_sq
                for q in sysm.neighbors_of(p):
                    self.engine.put(p, int(q), CATEGORY_RESIDUAL,
                                    {"own_norm_sq": new_sq})
        self.engine.close_epoch()
        if tracing:
            trc.phase_end("apply")
            trc.phase_begin("finalize")

        # ---- phase 3: read the explicit residual updates (lines 23-28)
        for p in range(P):
            changed = False
            for msg in self.engine.drain(p):
                pos = self._nbr_pos[p][msg.src]
                if msg.category == CATEGORY_SOLVE:  # delayed solve update
                    changed = self._apply_update(p, msg) or changed
                    if msg.payload["own_norm_sq"] is None:
                        continue
                self.gamma_sq[p][pos] = msg.payload["own_norm_sq"]
            if changed:
                self.refresh_norm(p)
        if tracing:
            trc.phase_end("finalize")
        self.engine.close_step()
        return int(relaxed.sum())

    # ------------------------------------------------------------------
    def _step_flat(self) -> int:
        """Same three phases over the preallocated flat-buffer plane.

        Bit-for-bit and byte-for-byte equivalent to :meth:`step` (see
        DESIGN.md §5.8): relax deltas land directly in the edge mailboxes,
        only ranks with mail run the read phases, and the decision and the
        broadcast-divergence check are single vector operations.
        """
        self._shm_ensure()  # re-homes arrays — must precede the locals
        plane = self.engine.flat
        norm_hdr = plane.norm
        gflat = self._gamma_flat
        slabpos = self._sid_slabpos
        trc = self.tracer
        tracing = trc.enabled

        # ---- phase 1: criterion + relax + put updates (lines 8-10)
        if tracing:
            trc.phase_begin("relax")
        relaxed = self._mask_stalled(
            self._wins_vector(self.norms * self.norms, gflat))
        winners = np.flatnonzero(relaxed)
        self._flat_relax_phase(relaxed)     # deltas land in plane.vals
        if winners.size:
            # the piggybacked norms, line-10 puts and broadcast records
            # for every winner at once (vector square ≡ per-rank _sq:
            # same IEEE multiplies; slab order = ascending-sender put
            # order)
            nsq = self.norms * self.norms
            self._broadcast_sq[winners] = nsq[winners]
            wmask = relaxed[self._slab_owner]
            plane.put_epoch(self._slab_solve_sids[wmask],
                            nsq[self._slab_owner[wmask]], 0.0, winners,
                            self._nbr_counts[winners],
                            self._solve_nbytes_arr[winners],
                            CATEGORY_SOLVE)
        self.engine.close_epoch()
        if tracing:
            trc.phase_end("relax")
            trc.phase_begin("apply")

        # ---- phase 2: read updates; explicit residual update if our norm
        # changed without us having told anyone (lines 11-21)
        self._apply_flat_epoch()        # all mail is solve messages
        arr = plane.last_delivered
        if arr.size:
            # every receiver's Γ record in one header scatter (positions
            # unique — one solve message per edge per epoch)
            gflat[slabpos[arr]] = norm_hdr[arr]
        new_sq_vec = self.norms * self.norms
        diverged = new_sq_vec != self._broadcast_sq
        upd = np.flatnonzero(diverged)
        if upd.size:
            self._broadcast_sq[upd] = new_sq_vec[upd]
            umask = diverged[self._slab_owner]
            plane.put_epoch(self._slab_res_sids[umask],
                            new_sq_vec[self._slab_owner[umask]], 0.0, upd,
                            self._nbr_counts[upd],
                            self._res_nbytes_arr[upd], CATEGORY_RESIDUAL)
        self.engine.close_epoch()
        if tracing:
            trc.phase_end("apply")
            trc.phase_begin("finalize")

        # ---- phase 3: read the explicit residual updates (lines 23-28)
        plane.drain_all()               # charge receives; headers below
        arr = plane.last_delivered
        if arr.size:
            gflat[slabpos[arr]] = norm_hdr[arr]
        if tracing:
            trc.phase_end("finalize")
        self._flat_close_step()
        return int(relaxed.sum())

    # ------------------------------------------------------------------
    # event-driven async plane hooks (DESIGN.md §5.14)
    # ------------------------------------------------------------------
    def _async_decide(self, p: int) -> bool:
        # the PS criterion needs *exact* neighbor norms; under async
        # timing the Γ records lag in-flight updates, so the guarantee
        # degrades to best-effort — exactly the fragility the paper's
        # DS design removes
        off = self._nbr_off
        return self.wins_neighborhood(
            p, _sq(self.norms[p]), self._gamma_flat[off[p]:off[p + 1]])

    def _async_decide_batch(self, ranks: np.ndarray) -> np.ndarray:
        # the scalar hook is wins_neighborhood verbatim, so the
        # segment-max vectorization applies windowed to the batch
        return self._wins_window(ranks, self._gamma_flat)

    def _async_repair_mask(self, ranks: np.ndarray,
                           win: np.ndarray) -> np.ndarray:
        # lines 19-21 fire iff the norm moved since the last broadcast;
        # winners re-broadcast in _async_send before repair runs, so
        # their hook would early-return with no side effects
        return ~win & (self.norms[ranks] * self.norms[ranks]
                       != self._broadcast_sq[ranks])

    def _async_send(self, p: int, aplane, turn: int) -> None:
        off = self._nbr_off
        new_sq = _sq(self.norms[p])
        self._broadcast_sq[p] = new_sq
        sids = self._slab_solve_sids[off[p]:off[p + 1]]
        kept = aplane.send(p, sids, new_sq, 0.0,
                           int(self._solve_nbytes_arr[p]), CATEGORY_SOLVE)
        self._async_capture_vals(aplane, kept)

    def _async_on_deliver(self, p: int, sids, fates, aplane) -> None:
        slabpos = self._sid_slabpos_list
        g = self._gamma_flat
        wn = aplane.wire_norm
        for s in (sids if isinstance(sids, list) else sids.tolist()):
            g[slabpos[s]] = wn[s]

    def _async_on_deliver_batch(self, ranks, sids, counts,
                                aplane) -> None:
        # the scalar hook is a per-slot header scatter in stamp order;
        # duplicate slab positions resolve to the last write either way
        sp = self._sid_slabpos[sids]
        self._gamma_flat[sp] = aplane.wire_norm[sids]

    def _async_repair(self, p: int, aplane, turn: int) -> int:
        # explicit residual update (Alg 2 lines 19-21): our norm changed
        # without us telling anyone — broadcast it to every neighbor
        new_sq = _sq(self.norms[p])
        if new_sq == self._broadcast_sq[p]:
            return 0
        self._broadcast_sq[p] = new_sq
        off = self._nbr_off
        sids = self._slab_res_sids[off[p]:off[p + 1]]
        if sids.size == 0:
            return 0
        aplane.send(p, sids, new_sq, 0.0,
                    int(self._res_nbytes_arr[p]), CATEGORY_RESIDUAL)
        return int(sids.size)

    # ------------------------------------------------------------------
    def _deadlock_diagnosis(self) -> str:
        own_slab = (self.norms * self.norms)[self._slab_owner]
        stale = int(np.count_nonzero((own_slab > 0.0)
                                     & (self._gamma_flat >= own_slab)))
        return (f"{super()._deadlock_diagnosis()}; {stale} neighbor "
                f"records hold a Γ norm at or above the owner's true "
                f"norm — Parallel Southwell's criterion needs exact "
                f"explicit residual updates, so a lost update leaves "
                f"every process deferring to a believed-larger neighbor")
