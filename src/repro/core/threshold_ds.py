"""Variable-threshold Distributed Southwell (extension experiment).

The paper's Section 5 points to the asynchronous variable-threshold
method of de Jager & Bradley [8] — suppress messages whose update is too
small to matter — as "a possibility for further reducing communication
cost".  This variant grafts that idea onto Algorithm 3:

A relaxing process compares each neighbor update's norm against
``threshold × ‖r_p‖`` and, instead of sending a negligible delta,
*accumulates* it.  Accumulated deltas are flushed as soon as their sum
crosses the threshold (or the next significant update goes out), so no
update is ever lost — only batched.  Receivers are oblivious: payloads
look exactly like Algorithm 3's.

The trade-off measured by the bench: fewer solve messages per step, at
the cost of neighbors working with slightly staler boundary data (and
therefore somewhat slower convergence per step).
"""

from __future__ import annotations

import numpy as np

from repro.core.distributed_southwell_block import DistributedSouthwell

__all__ = ["ThresholdedDistributedSouthwell"]


class ThresholdedDistributedSouthwell(DistributedSouthwell):
    """Algorithm 3 with relative-threshold update suppression.

    Parameters
    ----------
    threshold:
        Relative suppression level: an update with
        ``‖Δr_q‖₂ ≤ threshold * ‖r_p‖₂`` is held back and accumulated.
        ``0`` reproduces plain Distributed Southwell exactly.
    """

    name = "thresholded-distributed-southwell"

    def __init__(self, *args, threshold: float = 0.05, **kwargs):
        super().__init__(*args, **kwargs)
        if threshold < 0.0:
            raise ValueError("threshold must be non-negative")
        self.threshold = threshold
        self.suppressed_sends = 0

    def setup(self, x0, b, permuted: bool = False) -> None:
        super().setup(x0, b, permuted=permuted)
        # pending unsent deltas, keyed (p, q), aligned with beta[(q, p)]
        self._pending: dict[tuple[int, int], np.ndarray] = {}
        self.suppressed_sends = 0

    def _flat_supported(self) -> bool:
        # send suppression batches deltas across steps, which breaks the
        # flat plane's everything-consumed-within-the-step contract
        return False

    def _emit_solve_update(self, p: int, q: int, vals: np.ndarray,
                           new_sq: float) -> None:
        key = (p, q)
        if key in self._pending:
            vals = vals + self._pending.pop(key)
        cutoff = self.threshold * float(np.sqrt(new_sq))
        if float(np.linalg.norm(vals)) <= cutoff:
            # negligible: batch it for later instead of paying a message.
            # ``vals`` may be the relax send buffer, which is reused next
            # step — pending state must own its storage.
            self._pending[key] = np.array(vals)
            self.suppressed_sends += 1
            return
        super()._emit_solve_update(p, q, vals, new_sq)

    def flush_pending(self) -> int:
        """Force-send every accumulated delta (end-of-run consistency).

        Returns the number of flush messages; after the next epoch close
        and read, residual bookkeeping is exact again.
        """
        count = 0
        for (p, q), vals in sorted(self._pending.items()):
            super()._emit_solve_update(p, q, vals,
                                       float(self.norms[p]) ** 2)
            count += 1
        self._pending.clear()
        if count:
            self.engine.close_epoch()
            for p in range(self.system.n_parts):
                msgs = self.engine.drain(p)
                changed = False
                for msg in msgs:
                    if "vals" in msg.payload:
                        changed = self._apply_update(p, msg) or changed
                if changed:
                    self.refresh_norm(p)
                for msg in msgs:
                    pos = self._nbr_pos[p][msg.src]
                    self.ghost[p][msg.src] = msg.payload["z"].copy()
                    self.gamma_sq[p][pos] = msg.payload["own_norm_sq"]
        return count

    def run(self, x0, b, max_steps: int = 50, target_norm=None,
            stop_at_target: bool = False):
        hist = super().run(x0, b, max_steps=max_steps,
                           target_norm=target_norm,
                           stop_at_target=stop_at_target)
        self.flush_pending()
        return hist
