"""Southwell-adjacent adaptive relaxation methods (the paper's Section 5).

Three related-work methods the paper positions itself against:

- :func:`sequential_adaptive_relaxation` — Rüde's active-set scheme
  [13, 14]: keep a small active set, relax its largest-residual row, keep
  the update only if it changed the solution significantly, and add the
  row's neighbors to the set when it did.
- :class:`SimultaneousAdaptiveRelaxation` — Rüde's threshold scheme:
  relax *every* row with ``|r_i| > θ`` simultaneously.  Like Jacobi, this
  is not guaranteed to converge for all SPD matrices (adjacent rows relax
  together) — a property the tests demonstrate — whereas Multicolor GS
  and Parallel Southwell relax independent sets and are safe.
- :func:`greedy_multiplicative_schwarz` — Griebel & Oswald's greedy
  multiplicative Schwarz [10]: the *block* sequential Southwell, solving
  the subdomain with the largest residual norm, one subdomain at a time.

These run in shared memory (no message accounting): they are convergence
baselines, not distributed algorithms.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.analysis.history import ConvergenceHistory
from repro.core.blockdata import BlockSystem
from repro.sparsela import CSRMatrix

__all__ = [
    "SimultaneousAdaptiveRelaxation",
    "greedy_multiplicative_schwarz",
    "sequential_adaptive_relaxation",
]


def sequential_adaptive_relaxation(A: CSRMatrix, x0: np.ndarray,
                                   b: np.ndarray, n_relaxations: int,
                                   tolerance: float = 1e-3,
                                   initial_active: np.ndarray | None = None
                                   ) -> ConvergenceHistory:
    """Rüde's sequential adaptive relaxation.

    Parameters
    ----------
    tolerance:
        A preliminary relaxation whose ``|dx|`` falls at or below
        ``tolerance * ‖x‖_∞`` is discarded and its row leaves the active
        set; otherwise the update is kept and the row's neighbors join
        the set.
    initial_active:
        Starting active set (default: every row — the safe choice when
        nothing is known about the residual distribution).

    Returns a per-kept-relaxation history.  Terminates early when the
    active set empties.
    """
    x = np.array(x0, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    r = b - A.matvec(x)
    At = A.transpose()
    diag = A.diagonal()
    if np.any(diag == 0.0):
        raise ValueError("zero diagonal entry")

    active = (np.arange(A.n_rows) if initial_active is None
              else np.asarray(initial_active, dtype=np.int64))
    in_set = np.zeros(A.n_rows, dtype=bool)
    in_set[active] = True
    # max-heap on |r_i| with lazy invalidation
    heap = [(-abs(r[i]), int(i)) for i in active]
    heapq.heapify(heap)

    hist = ConvergenceHistory()
    norm_sq = float(r @ r)
    hist.append(norm=np.sqrt(max(norm_sq, 0.0)), relaxations=0,
                parallel_steps=0)
    kept = 0
    while kept < n_relaxations and heap:
        negr, i = heapq.heappop(heap)
        if not in_set[i] or -negr != abs(r[i]):
            if in_set[i]:       # stale priority: reinsert fresh
                heapq.heappush(heap, (-abs(r[i]), i))
            continue
        dx = r[i] / diag[i]
        scale = max(1.0, float(np.max(np.abs(x))))
        if abs(dx) <= tolerance * scale:
            in_set[i] = False   # insignificant: discard, deactivate
            continue
        x[i] += dx
        cols, vals = At.row(i)
        old = r[cols]
        new = old - vals * dx
        norm_sq += float(new @ new - old @ old)
        r[cols] = new
        kept += 1
        for c in cols:
            c = int(c)
            if not in_set[c]:
                in_set[c] = True
            heapq.heappush(heap, (-abs(r[c]), c))
        hist.append(norm=np.sqrt(max(norm_sq, 0.0)), relaxations=kept,
                    parallel_steps=kept)
    return hist


class SimultaneousAdaptiveRelaxation:
    """Rüde's threshold scheme: relax every row with ``|r_i| > θ`` at once.

    ``theta_factor`` sets the threshold per step as a fraction of the
    current maximum residual magnitude (``θ = factor * max|r|``), the
    usual self-scaling choice.  Unlike Parallel Southwell the relax set
    is *not* independent, so convergence is not guaranteed for all SPD
    matrices (Section 5 of the paper).
    """

    name = "simultaneous-adaptive"

    def __init__(self, A: CSRMatrix, theta_factor: float = 0.5):
        if not 0.0 <= theta_factor < 1.0:
            raise ValueError("theta_factor must be in [0, 1)")
        self.A = A
        self.diag = A.diagonal()
        if np.any(self.diag == 0.0):
            raise ValueError("zero diagonal entry")
        self.theta_factor = theta_factor
        self.x: np.ndarray | None = None
        self.r: np.ndarray | None = None
        self.total_relaxations = 0

    def setup(self, x0: np.ndarray, b: np.ndarray) -> None:
        """Initialise the iterate and residual."""
        self.x = np.array(x0, dtype=np.float64)
        self.r = np.asarray(b, dtype=np.float64) - self.A.matvec(self.x)
        self.total_relaxations = 0

    def step(self) -> int:
        """One parallel step; returns the number of rows relaxed."""
        absr = np.abs(self.r)
        theta = self.theta_factor * float(absr.max())
        mask = absr > theta
        n_relaxed = int(mask.sum())
        if n_relaxed == 0:
            return 0
        dx = np.where(mask, self.r / self.diag, 0.0)
        self.r = self.r - self.A.matvec(dx)
        self.x += dx
        self.total_relaxations += n_relaxed
        return n_relaxed

    def run(self, x0: np.ndarray, b: np.ndarray,
            max_steps: int) -> ConvergenceHistory:
        """Run up to ``max_steps`` threshold-relaxation steps."""
        self.setup(x0, b)
        hist = ConvergenceHistory()
        hist.append(norm=float(np.linalg.norm(self.r)), relaxations=0,
                    parallel_steps=0)
        for k in range(1, max_steps + 1):
            n_relaxed = self.step()
            if n_relaxed == 0:
                break
            hist.append(norm=float(np.linalg.norm(self.r)),
                        relaxations=self.total_relaxations,
                        parallel_steps=k,
                        active_fraction=n_relaxed / self.A.n_rows)
        return hist


def greedy_multiplicative_schwarz(system: BlockSystem, x0: np.ndarray,
                                  b: np.ndarray, n_solves: int,
                                  permuted: bool = False
                                  ) -> ConvergenceHistory:
    """Griebel & Oswald's greedy multiplicative Schwarz.

    Repeatedly solves the subdomain with the largest residual norm — the
    block form of Sequential Southwell.  Uses the block system's local
    solvers (exact solves give the classical method; Gauss-Seidel sweeps
    give its inexact variant).  Returns a per-solve history.
    """
    n = system.n
    x = np.asarray(x0, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if not permuted:
        x = x[system.perm]
        b = b[system.perm]
    x = x.copy()
    r = b - system.A.matvec(x)
    P = system.n_parts
    blocks = [r[system.rows_slice(p)] for p in range(P)]
    norms_sq = np.array([float(blk @ blk) for blk in blocks])

    hist = ConvergenceHistory()
    hist.append(norm=float(np.sqrt(norms_sq.sum())), relaxations=0,
                parallel_steps=0)
    relaxations = 0
    for k in range(1, n_solves + 1):
        p = int(np.argmax(norms_sq))
        if norms_sq[p] <= 0.0:
            break
        relaxations += system.size_of(p)
        sl = system.rows_slice(p)
        dx = system.local_solvers[p].apply(r[sl])
        x[sl] += dx
        r[sl] -= system.diag_blocks[p].matvec(dx)
        norms_sq[p] = float(r[sl] @ r[sl])
        for q in system.neighbors_of(p):
            q = int(q)
            rows = system.beta[(q, p)] + system.part.offsets[q]
            r[rows] -= system.couplings[(p, q)].matvec(dx)
            rq = r[system.rows_slice(q)]
            norms_sq[q] = float(rq @ rq)
        hist.append(norm=float(np.sqrt(max(norms_sq.sum(), 0.0))),
                    relaxations=relaxations,
                    parallel_steps=k)
    return hist
