"""Distributed Southwell, block form (Algorithm 3 — the paper's contribution).

The premise: neighbors' residual norms "do not need to be known exactly" —
they only gate the relax decision.  Each process ``p`` therefore keeps

- ``ghost[q]`` (the paper's ``z_q``): a copy of neighbor ``q``'s residual
  *at the boundary rows coupled to p* (``β_qp``).  When ``p`` relaxes it
  knows its exact contribution ``-A_qp Δx_p`` to those entries, so it can
  update both the ghost and its norm estimate with **zero communication**;
- ``Γ_p`` (here ``gamma_sq``): squared norm *estimates* for each neighbor,
  adjusted through the ghost layer (``est² ← est² − ‖z_old‖² + ‖z_new‖²``);
- ``Γ̃_p`` (here ``tilde_sq``): what each neighbor currently believes
  ``‖r_p‖`` is.  Exactly trackable because only ``p``'s own messages and
  the neighbor's receipt of them ever change that belief.

Deadlock avoidance (lines 27-30): whenever ``‖r_p‖ < ‖r̃_q‖`` — neighbor
``q`` *over*-estimates ``p``, so ``q`` might defer to ``p`` forever while
``p`` defers to someone else — ``p`` sends ``q`` one explicit residual
message.  These are the only explicit residual messages DS ever sends,
versus PS's every-change broadcast; that is the entire communication win.

Estimates can drift only through two-hop relaxations (a neighbor of a
neighbor relaxing), and the drift is bounded by the residual sizes, so it
shrinks as the iteration converges (Section 3).
"""

from __future__ import annotations

import numpy as np

from repro.core.block_base import BlockMethodBase
from repro.faults import FATE_STALE
from repro.runtime import CATEGORY_RESIDUAL, CATEGORY_SOLVE
from repro.runtime.flatplane import multi_arange

_EMPTY_FATES = np.empty(0, dtype=np.int64)

__all__ = ["DistributedSouthwell"]


def _sq(x) -> float:
    """Squared scalar via plain multiply.

    Used on every path that feeds the Γ/Γ̃ bookkeeping so all sides
    compute bit-identical values (``x ** 2`` takes different code paths
    for numpy scalars and arrays and can differ in the last ulp, which
    would break the exact Γ̃ mirror invariant).
    """
    v = float(x)
    return v * v


class DistributedSouthwell(BlockMethodBase):
    """Algorithm 3 over the simulated RMA runtime.

    Ablation knobs (both default to the paper's algorithm):

    ``deadlock_avoidance=False``
        drops the explicit residual messages (lines 27-30).  This is the
        broken ICCS'16-style scheme: estimates can get stuck above every
        actual norm and the iteration stalls — the failure mode the paper
        exists to fix (a test demonstrates the stall).
    ``ghost_estimation=False``
        drops the local ghost-layer estimate updates (line 15); neighbor
        norms then only refresh when messages arrive, so estimates are
        staler and more deadlock-repair traffic is needed.
    """

    name = "distributed-southwell"

    def __init__(self, *args, deadlock_avoidance: bool = True,
                 ghost_estimation: bool = True, **kwargs):
        super().__init__(*args, **kwargs)
        self.deadlock_avoidance = deadlock_avoidance
        self.ghost_estimation = ghost_estimation

    def setup(self, x0, b, permuted: bool = False) -> None:
        super().setup(x0, b, permuted=permuted)
        sysm = self.system
        P = sysm.n_parts
        self._nbr_pos: list[dict[int, int]] = [
            {int(q): i for i, q in enumerate(sysm.neighbors_of(p))}
            for p in range(P)]
        # Γ (line 5), Γ̃ (line 6) — exact at startup.  One shared squared-
        # norm array so both sides of the Γ̃ mirror start bit-identical
        # (scalar and array ``**`` can differ in the last ulp).  Both live
        # as one flat slab along the neighbor offsets (the per-rank lists
        # are views into it), so the decision phase and the deadlock scan
        # are single vector operations.
        norms_sq = self.norms * self.norms
        off = self._nbr_off
        self._gamma_flat = norms_sq[self._nbr_flat]
        self._tilde_flat = norms_sq[self._slab_owner]
        self.gamma_sq: list[np.ndarray] = [
            self._gamma_flat[off[p]:off[p + 1]] for p in range(P)]
        self.tilde_sq: list[np.ndarray] = [
            self._tilde_flat[off[p]:off[p + 1]] for p in range(P)]
        # ghost layers z_q (lines 7-9): p's copy of q's residual at β_qp
        self.ghost: list[dict[int, np.ndarray]] = []
        for p in range(P):
            layers: dict[int, np.ndarray] = {}
            for q in sysm.neighbors_of(p):
                q = int(q)
                rows = sysm.beta[(q, p)]
                layers[q] = self.r_blocks[q][rows].copy()
            self.ghost.append(layers)
        if self._use_flat:
            # flat-plane iteration plans.  The ghost layers move into one
            # contiguous per-rank slab in neighbor order — the layout
            # mirrors the sender's mailbox delta slab (same per-edge
            # lengths, same order), so the phase-1 ghost update is a
            # single vector add; per-layer views keep ``self.ghost``
            # usable and give the per-neighbor contribution dots.
            plane = self.engine.flat
            zoff = plane.z_off
            voff = plane.vals_off
            # the ghost storage moves into one global flat array laid out
            # exactly parallel to the mailbox delta store: edge (p, q)'s
            # region holds ghost[p][q] (same length as the edge's vals
            # buffer by construction).  Rank p's layers are then one
            # contiguous slab mirroring its delta slab, so the phase-1
            # ghost update is a single vector add.
            self._ghost_flat = np.empty(int(voff[-1]))
            self._ghost_slab = []
            self._ghost_views = []
            self._ghost_flops = np.zeros(P)
            for p in range(P):
                eids = self._out_eids[p]
                nbrs = [int(q) for q in sysm.neighbors_of(p)]
                views = []
                for i, q in enumerate(nbrs):
                    eid = int(eids[i])
                    view = self._ghost_flat[voff[eid]:voff[eid + 1]]
                    view[:] = self.ghost[p][q]
                    self.ghost[p][q] = view
                    views.append(view)
                vlo = int(voff[eids[0]]) if eids.size else 0
                vhi = int(voff[eids[-1] + 1]) if eids.size else 0
                slab = self._ghost_flat[vlo:vhi]
                self._ghost_slab.append(slab)
                self._ghost_views.append(views)
                self._ghost_flops[p] = 4.0 * slab.size
            # z-payload → ghost permutation: edge (s, d)'s z region lands
            # in ghost[d][s], which lives at the *reverse* edge's region
            # of the ghost store.  With it, a whole epoch's ghost
            # overwrites (line 24 for every receiver) are one fancy copy.
            rev = np.array(
                [plane.edge_index[(int(plane.edge_dst[e]),
                                   int(plane.edge_src[e]))]
                 for e in range(plane.n_edges)], dtype=plane.idx_dtype)
            self._z2g = np.empty(int(zoff[-1]), dtype=plane.idx_dtype)
            for e in range(plane.n_edges):
                r = int(rev[e])
                self._z2g[zoff[e]:zoff[e + 1]] = np.arange(
                    voff[r], voff[r] + int(zoff[e + 1] - zoff[e]))
            # wire size of the residual message at every (owner,
            # neighbor) slab position — the deadlock scan sums its
            # per-sender byte charges by slab index
            self._slab_res_nbytes = self._flat_res_nbytes[self._slab_eids]
            # slab-shaped flag: positions we sent an explicit residual
            # update to this step (the phase-3 crossing settlement)
            self._res_mask = np.zeros(self._slab_owner.size, dtype=bool)
        # loss hardening (DESIGN.md §5.11): under a lossy plan the Γ̃
        # mirror breaks — a dropped message leaves the neighbor believing
        # an old norm, and the line-27 repair itself can be lost.  Every
        # (owner, neighbor) slab position therefore keeps a heartbeat:
        # when the edge has been silent ``resend_after`` steps, re-send
        # the residual-norm repair, at most ``retry_budget`` consecutive
        # times per edge (the budget quiesces a genuinely dead edge so
        # the degradation detector can fire instead of spinning forever).
        plan = self._active_plan
        self._stale_possible = (self._faults is not None
                                and (plan.solve.ghost_stale > 0
                                     or plan.residual.ghost_stale > 0))
        self._hardened = (self._faults is not None
                          and self.deadlock_avoidance and plan.lossy)
        if self._hardened:
            self._resend_after = plan.resend_after
            self._retry_budget = plan.retry_budget
            self._hb_last_sent = np.zeros(self._slab_owner.size,
                                          dtype=np.int64)
            self._hb_retry_used = np.zeros(self._slab_owner.size,
                                           dtype=np.int64)

    # ------------------------------------------------------------------
    # flat-buffer plane hooks (DESIGN.md §5.8)
    # ------------------------------------------------------------------
    def _flat_supported(self) -> bool:
        return True

    def _flat_ghost_rows(self, p: int, q: int) -> int:
        return self.system.beta[(p, q)].size

    def _flat_message_nbytes(self, n_vals: int, n_z: int
                             ) -> tuple[int, int]:
        # solve = {vals, z, own_norm_sq, your_est_sq};
        # residual = {z, own_norm_sq, your_est_sq}
        return 32 + 8 * (n_vals + n_z), 32 + 8 * n_z

    # ------------------------------------------------------------------
    def _boundary_values(self, p: int, q: int) -> np.ndarray:
        """``p``'s residual at its rows coupled to ``q`` (the z payload)."""
        return self.r_blocks[p][self.system.beta[(p, q)]].copy()

    def _ghost_estimate_update(self, p: int, q: int,
                               delta: np.ndarray) -> None:
        """Fold ``p``'s own contribution into its estimate of ``q``.

        ``est² ← est² − ‖z_old‖² + ‖z_new‖²``, clamped from below by the
        ghost contribution itself (float drift must not push the estimate
        of a full norm under the norm of the part we can see).
        """
        if self.tracer.enabled:
            self.tracer.ghost(p, q)
        pos = self._nbr_pos[p][q]
        z = self.ghost[p][q]
        old_contrib = float(z @ z)
        z += delta
        new_contrib = float(z @ z)
        est = self.gamma_sq[p][pos] - old_contrib + new_contrib
        self.gamma_sq[p][pos] = max(est, new_contrib)
        self.engine.charge_flops(p, 4.0 * z.size)

    def _emit_solve_update(self, p: int, q: int, vals: np.ndarray,
                           new_sq: float) -> None:
        """Send one relax update to ``q`` (Alg 3 lines 16-17).

        Split out as a hook so communication-reducing variants (e.g. the
        variable-threshold method) can intercept the send.
        """
        # line 16: q will learn our norm from this message
        self.tilde_sq[p][self._nbr_pos[p][q]] = new_sq
        self._solve_sent[p].add(q)
        # line 17: updates, z_p, ‖r_p‖, ‖r_q‖-estimate — 1 message
        # (under a lossy plan the vals are the cumulative per-edge sum)
        self.engine.put(p, q, CATEGORY_SOLVE, {
            "vals": self._outgoing_vals(p, q, vals),
            "z": self._boundary_values(p, q),
            "own_norm_sq": new_sq,
            "your_est_sq": float(self.gamma_sq[p][self._nbr_pos[p][q]]),
        })

    # ------------------------------------------------------------------
    def step(self) -> int:
        if self._use_flat:
            return self._step_flat()
        sysm = self.system
        P = sysm.n_parts
        trc = self.tracer
        tracing = trc.enabled

        # norm each relaxing process piggybacks this step (needed again in
        # phase 2 to settle Γ̃ after crossing messages)
        phase1_norm_sq = np.zeros(P)
        # neighbors each process sent an explicit residual update to this
        # step (phase-3 crossing settlement)
        res_sent: list[set[int]] = [set() for _ in range(P)]
        # neighbors each relaxer actually messaged this step (variants may
        # suppress sends, so the Γ̃ settlement must track real sends)
        self._solve_sent: list[set[int]] = [set() for _ in range(P)]

        # ---- phase 1: criterion on *estimates*, relax, put (lines 12-19)
        if tracing:
            trc.phase_begin("relax")
        relaxed = self._mask_stalled(
            self._wins_vector(self.norms * self.norms, self._gamma_flat))
        hardened = self._hardened
        step_no = self.steps_taken + 1
        off = self._nbr_off
        for p in np.flatnonzero(relaxed):
            p = int(p)
            deltas = self.relax(p)
            new_sq = _sq(self.norms[p])
            phase1_norm_sq[p] = new_sq
            for q, vals in deltas.items():
                # line 15: update ghost + estimate locally, no messages
                if self.ghost_estimation:
                    self._ghost_estimate_update(p, q, vals)
                self._emit_solve_update(p, q, vals, new_sq)
            if hardened:
                # a solve send restarts the edge's heartbeat
                for q in self._solve_sent[p]:
                    i = off[p] + self._nbr_pos[p][q]
                    self._hb_last_sent[i] = step_no
                    self._hb_retry_used[i] = 0
        self.engine.close_epoch()
        if tracing:
            trc.phase_end("relax")
            trc.phase_begin("apply")

        # ---- phase 2: read, correct, deadlock-check (lines 20-31)
        for p in range(P):
            msgs = self.engine.drain(p)
            changed = False
            for msg in msgs:
                # solve messages carry boundary deltas; explicit residual
                # messages do not (under delay injection either category
                # can arrive in either read phase)
                if "vals" in msg.payload:
                    changed = self._apply_update(p, msg) or changed
            if changed:
                self.refresh_norm(p)
            for msg in msgs:
                pos = self._nbr_pos[p][msg.src]
                # lines 24-25: overwrite ghost, Γ and Γ̃ from the payload
                # (a ghost-stale fate models a torn one-sided read: the
                # z payload is not applied, the headers still land)
                if not msg.fate & FATE_STALE:
                    self.ghost[p][msg.src] = msg.payload["z"].copy()
                self.gamma_sq[p][pos] = msg.payload["own_norm_sq"]
                self.tilde_sq[p][pos] = msg.payload["your_est_sq"]
            if relaxed[p]:
                # crossing-message settlement: a neighbor's your_est was
                # composed before our solve message landed there, but every
                # *recipient* ends this phase holding our piggybacked norm —
                # so Γ̃ must record the phase-1 value we broadcast
                # (line 16's promise), not the stale crossing estimate
                for q in self._solve_sent[p]:
                    self.tilde_sq[p][self._nbr_pos[p][q]] = \
                        phase1_norm_sq[p]

            # lines 27-30: deadlock avoidance; under a lossy plan every
            # silent edge also fires a heartbeat re-send (timed out and
            # retry budget left) — the repair message itself can be lost
            own_sq = _sq(self.norms[p])
            over = (self.tilde_sq[p] > own_sq if self.deadlock_avoidance
                    else np.zeros(self.tilde_sq[p].size, dtype=bool))
            fire = over
            if hardened:
                last = self._hb_last_sent[off[p]:off[p + 1]]
                used = self._hb_retry_used[off[p]:off[p + 1]]
                fire = over | ((step_no - last >= self._resend_after)
                               & (used < self._retry_budget))
            if np.any(fire):
                nbrs = sysm.neighbors_of(p)
                for pos in np.flatnonzero(fire):
                    q = int(nbrs[pos])
                    self.tilde_sq[p][pos] = own_sq  # line 28
                    res_sent[p].add(q)
                    if tracing:
                        trc.repair(p, q)
                    self.engine.put(p, q, CATEGORY_RESIDUAL, {
                        "z": self._boundary_values(p, q),
                        "own_norm_sq": own_sq,
                        "your_est_sq": float(self.gamma_sq[p][pos]),
                    })
                self.repairs_sent += int(fire.sum())
                if hardened:
                    retry_only = fire & ~over
                    used[fire] = np.where(over[fire], 0, used[fire] + 1)
                    last[fire] = step_no
                    n_retry = int(retry_only.sum())
                    if n_retry:
                        self._faults.count_retries(n_retry)
                        if tracing:
                            for pos in np.flatnonzero(retry_only):
                                trc.retry(p, int(nbrs[pos]))
        self.engine.close_epoch()
        if tracing:
            trc.phase_end("apply")
            trc.phase_begin("finalize")

        # ---- phase 3: read explicit residual messages (lines 32-38)
        for p in range(P):
            msgs = self.engine.drain(p)
            changed = False
            for msg in msgs:
                if "vals" in msg.payload:       # delayed solve update
                    changed = self._apply_update(p, msg) or changed
            if changed:
                self.refresh_norm(p)
            for msg in msgs:
                pos = self._nbr_pos[p][msg.src]
                if not msg.fate & FATE_STALE:
                    self.ghost[p][msg.src] = msg.payload["z"].copy()
                self.gamma_sq[p][pos] = msg.payload["own_norm_sq"]
                # crossing settlement: if we also sent this neighbor an
                # explicit update, its your_est was composed before our
                # message landed — the neighbor's final belief about us is
                # the norm we sent (our line-28 value), so keep that
                if msg.src not in res_sent[p]:
                    self.tilde_sq[p][pos] = msg.payload["your_est_sq"]
        if tracing:
            trc.phase_end("finalize")
        self.engine.close_step()
        return int(relaxed.sum())

    # ------------------------------------------------------------------
    def _relax_one_flat(self, p: int) -> None:
        """DS's relax-phase body, identical on the driver and on a shm
        worker: relax, then line 15 — update ghosts + estimates locally,
        no messages.  The slab add applies every neighbor's delta at
        once (ghost slab and delta slab share layout); the contribution
        dots stay per neighbor — same values in the same order as the
        object path's per-edge updates (scalar arithmetic runs on python
        floats: same IEEE doubles, less interpreter overhead).  Under a
        lossy plan the ghost update consumes the raw deltas first; the
        wire payload is the cumulative per-edge sum."""
        self._relax_send(p)             # raw deltas land in plane.vals
        if self.ghost_estimation:
            if self.tracer.enabled:
                self.tracer.ghosts(p, self.system.neighbors_of(p))
            views = self._ghost_views[p]
            olds = [float(z @ z) for z in views]
            self._ghost_slab[p] += self._vals_slab[p]
            gseg = self.gamma_sq[p]
            gl = gseg.tolist()
            for i in range(len(views)):
                z = views[i]
                new_c = float(z @ z)
                est = gl[i] - olds[i] + new_c
                gl[i] = new_c if new_c > est else est
            gseg[:] = gl
            self._flops[p] += self._ghost_flops[p]
        if self._lossy:
            self._lossy_finalize_send(p)

    def _shm_trace_relax(self, relaxed) -> None:
        # mirror of the worker-side per-winner events, in loop order:
        # relax(p) (inside _relax_send) then ghosts(p, ...) per winner
        if not self.ghost_estimation:
            super()._shm_trace_relax(relaxed)
            return
        trc = self.tracer
        for p in np.flatnonzero(relaxed).tolist():
            trc.relax(p)
            trc.ghosts(p, self.system.neighbors_of(p))

    def _shm_movables_extra(self):
        # workers write Γ (the line-15 estimate update) and the ghost
        # store; Γ̃ and the headers stay driver-side
        return [self._gamma_flat, self._ghost_flat]

    def _shm_rehome_extra(self, arena) -> None:
        sysm = self.system
        P = sysm.n_parts
        off = self._nbr_off
        plane = self.engine.flat
        voff = plane.vals_off
        self._gamma_flat = arena.move(self._gamma_flat)
        self.gamma_sq = [self._gamma_flat[off[p]:off[p + 1]]
                         for p in range(P)]
        ghost = arena.move(self._ghost_flat)
        self._ghost_flat = ghost
        self._ghost_slab = []
        self._ghost_views = []
        for p in range(P):
            eids = self._out_eids[p]
            views = []
            for i, q in enumerate(int(q) for q in sysm.neighbors_of(p)):
                eid = int(eids[i])
                view = ghost[int(voff[eid]):int(voff[eid + 1])]
                self.ghost[p][q] = view
                views.append(view)
            vlo = int(voff[eids[0]]) if eids.size else 0
            vhi = int(voff[eids[-1] + 1]) if eids.size else 0
            self._ghost_slab.append(ghost[vlo:vhi])
            self._ghost_views.append(views)

    # ------------------------------------------------------------------
    def _step_flat(self) -> int:
        """Same three phases over the preallocated flat-buffer plane.

        Bit-for-bit and byte-for-byte equivalent to :meth:`step`: the
        relax deltas are written straight into the edge mailboxes (the
        workspaces alias them), headers are stamped in the same order the
        object path composes payloads, and only ranks with mail run the
        read phases.  The decision, the Γ̃ crossing settlement and the
        deadlock scan are single vector operations over the neighbor slab.
        """
        self._shm_ensure()  # re-homes arrays — must precede the locals
        plane = self.engine.flat
        norm_hdr = plane.norm
        est_hdr = plane.est
        gflat = self._gamma_flat
        tflat = self._tilde_flat
        zoff = plane.z_off
        z2g = self._z2g
        ghost = self._ghost_flat
        slabpos = self._sid_slabpos
        res_mask = self._res_mask
        res_mask[:] = False
        trc = self.tracer
        tracing = trc.enabled

        # ---- phase 1: criterion on *estimates*, relax, put (lines 12-19)
        if tracing:
            trc.phase_begin("relax")
        relaxed = self._mask_stalled(
            self._wins_vector(self.norms * self.norms, gflat))
        winners = np.flatnonzero(relaxed)
        hardened = self._hardened
        step_no = self.steps_taken + 1
        self._flat_relax_phase(relaxed)  # deltas + line 15, per winner
        # the norms every relaxer piggybacks this step (read again by the
        # Γ̃ crossing settlement after phase-2 applies change norms);
        # only the relaxed entries are ever read
        phase1_norm_sq = self.norms * self.norms
        if winners.size:
            # every winner's outgoing z payloads in one gather out of the
            # global residual store (each winner's own block is final
            # once the loop ends, so gathering after it reads the same
            # values the per-winner gathers did).  Line 16 (Γ̃ ← our new
            # norm at every neighbor) is subsumed by the phase-2 crossing
            # settlement, which rewrites exactly those slab positions
            # with exactly this value before any read.
            idx = multi_arange(self._zspan_lo[winners],
                               self._zspan_hi[winners])
            plane.zsolve_flat[idx] = self._r_flat[self._zsrc_grows[idx]]
            # line 17: updates, z_p, ‖r_p‖, ‖r_q‖-estimates — one grouped
            # put for the whole epoch (slab order = ascending-sender put
            # order; vector square ≡ per-rank _sq: same IEEE multiplies)
            wmask = relaxed[self._slab_owner]
            plane.put_epoch(self._slab_solve_sids[wmask],
                            phase1_norm_sq[self._slab_owner[wmask]],
                            gflat[wmask], winners,
                            self._nbr_counts[winners],
                            self._solve_nbytes_arr[winners],
                            CATEGORY_SOLVE)
            if hardened:
                # a solve send restarts the edge's heartbeat
                self._hb_last_sent[wmask] = step_no
                self._hb_retry_used[wmask] = 0
        self.engine.close_epoch()
        if tracing:
            trc.phase_end("relax")
            trc.phase_begin("apply")

        # ---- phase 2: read, correct, deadlock-check (lines 20-31)
        self._apply_flat_epoch()        # all mail is solve messages
        arr = plane.last_delivered
        if arr.size:
            # lines 24-25 for every receiver at once: ghost overwrites as
            # one permuted copy of the epoch's z payloads, Γ and Γ̃ as one
            # header scatter (positions unique — one solve message per
            # edge per epoch, so duplicate deliveries rewrite the same
            # value; applies above never read them).  Ghost-stale fated
            # messages skip the z overwrite, headers still land.
            zarr = arr
            if self._stale_possible:
                zarr = arr[(plane.last_fates & FATE_STALE) == 0]
            eids = zarr >> 1
            idx = multi_arange(zoff[eids], zoff[eids + 1])
            ghost[z2g[idx]] = plane.zsolve_flat[idx]
            gpos = slabpos[arr]
            gflat[gpos] = norm_hdr[arr]
            tflat[gpos] = est_hdr[arr]
        # crossing-message settlement (see step()): every relaxer sent all
        # its neighbors its phase-1 norm, so Γ̃ records that promise
        if relaxed.any():
            mask = relaxed[self._slab_owner]
            tflat[mask] = phase1_norm_sq[self._slab_owner[mask]]

        # lines 27-30: deadlock avoidance — one vector scan over the slab,
        # line-28 settlement as one scatter, every repair z payload in one
        # gather and every send in one grouped put (owners come out
        # ascending — the slab is owner-major — so the put order is the
        # object path's; the per-sender byte sums via reduceat are exact:
        # integer arithmetic)
        if self.deadlock_avoidance:
            own_sq_vec = self.norms * self.norms
            over = tflat > own_sq_vec[self._slab_owner]
            fire = over
            if hardened:
                # heartbeat re-sends for silent edges with budget left
                fire = over | ((step_no - self._hb_last_sent
                                >= self._resend_after)
                               & (self._hb_retry_used < self._retry_budget))
            over_idx = np.flatnonzero(fire)
            if over_idx.size:
                owners = self._slab_owner[over_idx]
                tflat[over_idx] = own_sq_vec[owners]    # line 28
                res_mask[over_idx] = True
                eids = self._slab_eids[over_idx]
                if tracing:
                    trc.repairs(owners, plane.edge_dst[eids])
                idx = multi_arange(zoff[eids], zoff[eids + 1])
                plane.zres_flat[idx] = self._r_flat[self._zsrc_grows[idx]]
                heads = np.flatnonzero(np.concatenate(
                    ([True], owners[1:] != owners[:-1])))
                counts = np.diff(np.append(heads, over_idx.size))
                plane.put_epoch(
                    self._slab_res_sids[over_idx], own_sq_vec[owners],
                    gflat[over_idx], owners[heads], counts,
                    np.add.reduceat(self._slab_res_nbytes[over_idx],
                                    heads),
                    CATEGORY_RESIDUAL)
                self.repairs_sent += int(over_idx.size)
                if hardened:
                    ov = over[over_idx]
                    used = self._hb_retry_used
                    used[over_idx] = np.where(ov, 0, used[over_idx] + 1)
                    self._hb_last_sent[over_idx] = step_no
                    ridx = over_idx[~ov]
                    if ridx.size:
                        self._faults.count_retries(ridx.size)
                        if tracing:
                            trc.retries(
                                self._slab_owner[ridx],
                                plane.edge_dst[self._slab_eids[ridx]])
        self.engine.close_epoch()
        if tracing:
            trc.phase_end("apply")
            trc.phase_begin("finalize")

        # ---- phase 3: read explicit residual messages (lines 32-38)
        plane.drain_all()               # charge receives; payloads below
        arr = plane.last_delivered
        if arr.size:
            zarr = arr
            if self._stale_possible:
                zarr = arr[(plane.last_fates & FATE_STALE) == 0]
            eids = zarr >> 1
            idx = multi_arange(zoff[eids], zoff[eids + 1])
            ghost[z2g[idx]] = plane.zres_flat[idx]
            gpos = slabpos[arr]
            gflat[gpos] = norm_hdr[arr]
            # crossing settlement: keep our line-28 value wherever we also
            # sent this neighbor an explicit update
            keep = ~res_mask[gpos]
            tflat[gpos[keep]] = est_hdr[arr[keep]]
        if tracing:
            trc.phase_end("finalize")
        self._flat_close_step()
        return int(relaxed.sum())

    # ------------------------------------------------------------------
    # event-driven async plane hooks (DESIGN.md §5.14)
    # ------------------------------------------------------------------
    def _async_decide(self, p: int) -> bool:
        # criterion on the Γ *estimates* (Alg 3 line 12) — under async
        # timing these go stale on their own, no injection needed.
        # Scalar scan of the (tiny) neighbor segment: same comparisons
        # as wins_neighborhood, which settles the rare exact tie.
        own_sq = _sq(self.norms[p])
        if own_sq <= 0.0:
            return False
        off = self._nbr_off
        lo, hi = int(off[p]), int(off[p + 1])
        g = self._gamma_flat
        m = -np.inf
        for i in range(lo, hi):
            v = g[i]
            if v > m:
                m = v
        if own_sq > m:
            return True
        if own_sq == m:
            return self.wins_neighborhood(p, own_sq, g[lo:hi])
        return False

    def _async_decide_batch(self, ranks: np.ndarray) -> np.ndarray:
        # the scalar hook's comparisons are exactly wins_neighborhood on
        # the Γ estimates, so the segment-max vectorization applies
        # verbatim — windowed to the batch, a few dozen ranks of the
        # slab per macro-turn
        return self._wins_window(ranks, self._gamma_flat)

    def _async_repair_mask(self, ranks: np.ndarray,
                           win: np.ndarray) -> np.ndarray:
        if not self.deadlock_avoidance:
            return np.zeros(ranks.size, dtype=bool)
        if self._hardened:
            # heartbeat bookkeeping is turn-indexed: always call
            return np.ones(ranks.size, dtype=bool)
        # unhardened line 27-30: fires iff any Γ̃ entry exceeds the own
        # norm.  Winners just broadcast (tilde slab == own norm), so the
        # scan is a provable no-op for them; for the rest a windowed
        # segment max decides without touching the per-rank python path.
        m = self._nbr_max_window(ranks, self._tilde_flat)
        return ~win & (m > self.norms[ranks] * self.norms[ranks])

    def _async_send(self, p: int, aplane, turn: int) -> None:
        off = self._nbr_off
        lo, hi = int(off[p]), int(off[p + 1])
        if hi == lo:
            return
        plane = self.engine.flat
        new_sq = _sq(self.norms[p])
        kept = aplane.send(p, self._slab_solve_sids[lo:hi], new_sq,
                           self._gamma_flat[lo:hi],
                           int(self._solve_nbytes_arr[p]), CATEGORY_SOLVE)
        # line 16: p told every neighbor its new norm (drops included —
        # the sender cannot know, which is exactly what repair heals)
        self._tilde_flat[lo:hi] = new_sq
        self._async_capture_vals(aplane, kept)
        if kept.size:
            zoff = plane.z_off
            zsolve = aplane.wire_zsolve
            r_flat = self._r_flat
            zsrc = self._zsrc_grows
            if kept.size <= 8:
                for sid in kept.tolist():
                    eid = sid >> 1
                    zlo = int(zoff[eid])
                    zhi = int(zoff[eid + 1])
                    zsolve[zlo:zhi] = r_flat[zsrc[zlo:zhi]]
            else:
                eids = kept >> 1
                zidx = multi_arange(zoff[eids], zoff[eids + 1])
                zsolve[zidx] = r_flat[zsrc[zidx]]
        if self._hardened:
            # a solve send restarts the edges' heartbeats
            self._hb_last_sent[lo:hi] = turn
            self._hb_retry_used[lo:hi] = 0

    def _async_on_deliver(self, p: int, sids, fates, aplane) -> None:
        # ``sids`` is a plain list on the fault-free hot path and an
        # ndarray (with per-slot fates) under a fault plan
        plane = self.engine.flat
        if isinstance(sids, list):
            slist = sids
            zlist = sids
        else:
            slist = sids.tolist()
            zlist = slist
            if self._stale_possible and fates.size:
                zlist = [s for s, f in zip(slist, fates.tolist())
                         if not (f & FATE_STALE)]
        if zlist:
            # ghost overwrites from the wire z payloads (lines 24/34);
            # solve and residual slots carry separate wire stores
            zoff = plane.z_off
            z2g = self._z2g
            ghost = self._ghost_flat
            if len(zlist) <= 8:
                # small fan-in: per-slot slices beat the kind-split +
                # multi_arange machinery on the every-turn path
                zsolve = aplane.wire_zsolve
                zres = aplane.wire_zres
                for sid in zlist:
                    eid = sid >> 1
                    lo = int(zoff[eid])
                    hi = int(zoff[eid + 1])
                    store = zres if sid & 1 else zsolve
                    ghost[z2g[lo:hi]] = store[lo:hi]
            else:
                zarr = np.array(zlist, dtype=np.int64)
                for store, arr in ((aplane.wire_zsolve,
                                    zarr[(zarr & 1) == 0]),
                                   (aplane.wire_zres,
                                    zarr[(zarr & 1) == 1])):
                    if arr.size:
                        eids = arr >> 1
                        idx = multi_arange(zoff[eids], zoff[eids + 1])
                        ghost[z2g[idx]] = store[idx]
        # header scatter (scalar loop: a handful of slots per delivery;
        # duplicate slab positions resolve to the last write, matching
        # fancy-assignment order)
        slabpos = self._sid_slabpos_list
        g = self._gamma_flat
        t = self._tilde_flat
        wn = aplane.wire_norm
        we = aplane.wire_est
        for s in slist:
            gp = slabpos[s]
            g[gp] = wn[s]
            t[gp] = we[s]

    def _async_on_deliver_batch(self, ranks, sids, counts,
                                aplane) -> None:
        if sids.size == 0:
            return
        if np.any(counts > 8):
            # rare large fan-in: the scalar hook's path selection
            # (stamp-order writes vs store-split) is per member —
            # replay it verbatim; members' segments are disjoint, so
            # order across members is free
            off0 = 0
            for k, c in enumerate(counts.tolist()):
                self._async_on_deliver(int(ranks[k]),
                                       sids[off0:off0 + c].tolist(),
                                       _EMPTY_FATES, aplane)
                off0 += c
            return
        plane = self.engine.flat
        zoff = plane.z_off
        eids = sids >> 1
        idx = multi_arange(zoff[eids], zoff[eids + 1])
        odd = np.repeat((sids & 1) == 1, zoff[eids + 1] - zoff[eids])
        # ghost overwrites in concatenated stamp order: duplicate ghost
        # positions (both kinds of one edge in one delivery) resolve to
        # the last write, exactly the per-slot loop's order
        self._ghost_flat[self._z2g[idx]] = np.where(
            odd, aplane.wire_zres[idx], aplane.wire_zsolve[idx])
        sp = self._sid_slabpos[sids]
        self._gamma_flat[sp] = aplane.wire_norm[sids]
        self._tilde_flat[sp] = aplane.wire_est[sids]

    def _async_repair(self, p: int, aplane, turn: int) -> int:
        if not self.deadlock_avoidance:
            return 0
        off = self._nbr_off
        lo, hi = int(off[p]), int(off[p + 1])
        if hi == lo:
            return 0
        own_sq = _sq(self.norms[p])
        tflat = self._tilde_flat
        if not self._hardened:
            # every-turn hot path: scalar scan of the tiny neighbor
            # segment decides "nothing to repair" without building any
            # intermediate arrays
            hit = False
            for i in range(lo, hi):
                if tflat[i] > own_sq:
                    hit = True
                    break
            if not hit:
                return 0
        tseg = tflat[lo:hi]
        over = tseg > own_sq
        fire = over
        if self._hardened:
            # heartbeat re-sends for silent edges with budget left
            fire = over | ((turn - self._hb_last_sent[lo:hi]
                            >= self._resend_after)
                           & (self._hb_retry_used[lo:hi]
                              < self._retry_budget))
        idx = np.flatnonzero(fire)
        if idx.size == 0:
            return 0
        tseg[idx] = own_sq              # line 28
        plane = self.engine.flat
        eids = self._slab_eids[lo:hi][idx]
        if self.tracer.enabled:
            self.tracer.repairs(np.full(idx.size, p, dtype=np.int64),
                                plane.edge_dst[eids])
        kept = aplane.send(p, self._slab_res_sids[lo:hi][idx], own_sq,
                           self._gamma_flat[lo:hi][idx],
                           int(self._slab_res_nbytes[lo:hi][idx].sum()),
                           CATEGORY_RESIDUAL)
        if kept.size:
            zoff = plane.z_off
            zres = aplane.wire_zres
            r_flat = self._r_flat
            zsrc = self._zsrc_grows
            if kept.size <= 8:
                for sid in kept.tolist():
                    keid = sid >> 1
                    zlo = int(zoff[keid])
                    zhi = int(zoff[keid + 1])
                    zres[zlo:zhi] = r_flat[zsrc[zlo:zhi]]
            else:
                keids = kept >> 1
                zidx = multi_arange(zoff[keids], zoff[keids + 1])
                zres[zidx] = r_flat[zsrc[zidx]]
        self.repairs_sent += int(idx.size)
        if self._hardened:
            ov = over[idx]
            gidx = lo + idx
            used = self._hb_retry_used
            used[gidx] = np.where(ov, 0, used[gidx] + 1)
            self._hb_last_sent[gidx] = turn
            ridx = idx[~ov]
            if ridx.size:
                self._faults.count_retries(ridx.size)
                if self.tracer.enabled:
                    self.tracer.retries(
                        np.full(ridx.size, p, dtype=np.int64),
                        plane.edge_dst[self._slab_eids[lo:hi][ridx]])
        return int(idx.size)

    # ------------------------------------------------------------------
    def _deadlock_diagnosis(self) -> str:
        own_slab = (self.norms * self.norms)[self._slab_owner]
        deferring = int(np.count_nonzero((own_slab > 0.0)
                                         & (self._gamma_flat >= own_slab)))
        parts = [super()._deadlock_diagnosis(),
                 f"{deferring} neighbor records hold a Γ estimate at or "
                 f"above the owner's true norm (stale beliefs from lost "
                 f"messages)"]
        if self._hardened:
            spent = int(np.count_nonzero(
                self._hb_retry_used >= self._retry_budget))
            parts.append(f"{spent} hardened edges exhausted their "
                         f"retry budget of {self._retry_budget}")
        return "; ".join(parts)
