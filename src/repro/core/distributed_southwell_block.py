"""Distributed Southwell, block form (Algorithm 3 — the paper's contribution).

The premise: neighbors' residual norms "do not need to be known exactly" —
they only gate the relax decision.  Each process ``p`` therefore keeps

- ``ghost[q]`` (the paper's ``z_q``): a copy of neighbor ``q``'s residual
  *at the boundary rows coupled to p* (``β_qp``).  When ``p`` relaxes it
  knows its exact contribution ``-A_qp Δx_p`` to those entries, so it can
  update both the ghost and its norm estimate with **zero communication**;
- ``Γ_p`` (here ``gamma_sq``): squared norm *estimates* for each neighbor,
  adjusted through the ghost layer (``est² ← est² − ‖z_old‖² + ‖z_new‖²``);
- ``Γ̃_p`` (here ``tilde_sq``): what each neighbor currently believes
  ``‖r_p‖`` is.  Exactly trackable because only ``p``'s own messages and
  the neighbor's receipt of them ever change that belief.

Deadlock avoidance (lines 27-30): whenever ``‖r_p‖ < ‖r̃_q‖`` — neighbor
``q`` *over*-estimates ``p``, so ``q`` might defer to ``p`` forever while
``p`` defers to someone else — ``p`` sends ``q`` one explicit residual
message.  These are the only explicit residual messages DS ever sends,
versus PS's every-change broadcast; that is the entire communication win.

Estimates can drift only through two-hop relaxations (a neighbor of a
neighbor relaxing), and the drift is bounded by the residual sizes, so it
shrinks as the iteration converges (Section 3).
"""

from __future__ import annotations

import numpy as np

from repro.core.block_base import BlockMethodBase
from repro.runtime import CATEGORY_RESIDUAL, CATEGORY_SOLVE

__all__ = ["DistributedSouthwell"]


def _sq(x) -> float:
    """Squared scalar via plain multiply.

    Used on every path that feeds the Γ/Γ̃ bookkeeping so all sides
    compute bit-identical values (``x ** 2`` takes different code paths
    for numpy scalars and arrays and can differ in the last ulp, which
    would break the exact Γ̃ mirror invariant).
    """
    v = float(x)
    return v * v


class DistributedSouthwell(BlockMethodBase):
    """Algorithm 3 over the simulated RMA runtime.

    Ablation knobs (both default to the paper's algorithm):

    ``deadlock_avoidance=False``
        drops the explicit residual messages (lines 27-30).  This is the
        broken ICCS'16-style scheme: estimates can get stuck above every
        actual norm and the iteration stalls — the failure mode the paper
        exists to fix (a test demonstrates the stall).
    ``ghost_estimation=False``
        drops the local ghost-layer estimate updates (line 15); neighbor
        norms then only refresh when messages arrive, so estimates are
        staler and more deadlock-repair traffic is needed.
    """

    name = "distributed-southwell"

    def __init__(self, *args, deadlock_avoidance: bool = True,
                 ghost_estimation: bool = True, **kwargs):
        super().__init__(*args, **kwargs)
        self.deadlock_avoidance = deadlock_avoidance
        self.ghost_estimation = ghost_estimation

    def setup(self, x0, b, permuted: bool = False) -> None:
        super().setup(x0, b, permuted=permuted)
        sysm = self.system
        P = sysm.n_parts
        self._nbr_pos: list[dict[int, int]] = [
            {int(q): i for i, q in enumerate(sysm.neighbors_of(p))}
            for p in range(P)]
        # Γ (line 5), Γ̃ (line 6) — exact at startup.  One shared squared-
        # norm array so both sides of the Γ̃ mirror start bit-identical
        # (scalar and array ``**`` can differ in the last ulp).
        norms_sq = self.norms * self.norms
        self.gamma_sq: list[np.ndarray] = [
            norms_sq[sysm.neighbors_of(p)].copy() for p in range(P)]
        self.tilde_sq: list[np.ndarray] = [
            np.full(sysm.neighbors_of(p).size, norms_sq[p])
            for p in range(P)]
        # ghost layers z_q (lines 7-9): p's copy of q's residual at β_qp
        self.ghost: list[dict[int, np.ndarray]] = []
        for p in range(P):
            layers: dict[int, np.ndarray] = {}
            for q in sysm.neighbors_of(p):
                q = int(q)
                rows = sysm.beta[(q, p)]
                layers[q] = self.r_blocks[q][rows].copy()
            self.ghost.append(layers)

    # ------------------------------------------------------------------
    def _boundary_values(self, p: int, q: int) -> np.ndarray:
        """``p``'s residual at its rows coupled to ``q`` (the z payload)."""
        return self.r_blocks[p][self.system.beta[(p, q)]].copy()

    def _ghost_estimate_update(self, p: int, q: int,
                               delta: np.ndarray) -> None:
        """Fold ``p``'s own contribution into its estimate of ``q``.

        ``est² ← est² − ‖z_old‖² + ‖z_new‖²``, clamped from below by the
        ghost contribution itself (float drift must not push the estimate
        of a full norm under the norm of the part we can see).
        """
        pos = self._nbr_pos[p][q]
        z = self.ghost[p][q]
        old_contrib = float(z @ z)
        z += delta
        new_contrib = float(z @ z)
        est = self.gamma_sq[p][pos] - old_contrib + new_contrib
        self.gamma_sq[p][pos] = max(est, new_contrib)
        self.engine.charge_flops(p, 4.0 * z.size)

    def _emit_solve_update(self, p: int, q: int, vals: np.ndarray,
                           new_sq: float) -> None:
        """Send one relax update to ``q`` (Alg 3 lines 16-17).

        Split out as a hook so communication-reducing variants (e.g. the
        variable-threshold method) can intercept the send.
        """
        # line 16: q will learn our norm from this message
        self.tilde_sq[p][self._nbr_pos[p][q]] = new_sq
        self._solve_sent[p].add(q)
        # line 17: updates, z_p, ‖r_p‖, ‖r_q‖-estimate — 1 message
        self.engine.put(p, q, CATEGORY_SOLVE, {
            "vals": vals,
            "z": self._boundary_values(p, q),
            "own_norm_sq": new_sq,
            "your_est_sq": float(self.gamma_sq[p][self._nbr_pos[p][q]]),
        })

    # ------------------------------------------------------------------
    def step(self) -> int:
        sysm = self.system
        P = sysm.n_parts
        relaxed = np.zeros(P, dtype=bool)

        # norm each relaxing process piggybacks this step (needed again in
        # phase 2 to settle Γ̃ after crossing messages)
        phase1_norm_sq = np.zeros(P)
        # neighbors each process sent an explicit residual update to this
        # step (phase-3 crossing settlement)
        res_sent: list[set[int]] = [set() for _ in range(P)]
        # neighbors each relaxer actually messaged this step (variants may
        # suppress sends, so the Γ̃ settlement must track real sends)
        self._solve_sent: list[set[int]] = [set() for _ in range(P)]

        # ---- phase 1: criterion on *estimates*, relax, put (lines 12-19)
        for p in range(P):
            if not self.wins_neighborhood(p, _sq(self.norms[p]),
                                          self.gamma_sq[p]):
                continue
            relaxed[p] = True
            deltas = self.relax(p)
            new_sq = _sq(self.norms[p])
            phase1_norm_sq[p] = new_sq
            for q, vals in deltas.items():
                # line 15: update ghost + estimate locally, no messages
                if self.ghost_estimation:
                    self._ghost_estimate_update(p, q, vals)
                self._emit_solve_update(p, q, vals, new_sq)
        self.engine.close_epoch()

        # ---- phase 2: read, correct, deadlock-check (lines 20-31)
        for p in range(P):
            msgs = self.engine.drain(p)
            changed = False
            for msg in msgs:
                # solve messages carry boundary deltas; explicit residual
                # messages do not (under delay injection either category
                # can arrive in either read phase)
                if "vals" in msg.payload:
                    self.apply_delta(p, msg.src, msg.payload["vals"])
                    changed = True
            if changed:
                self.refresh_norm(p)
            for msg in msgs:
                pos = self._nbr_pos[p][msg.src]
                # lines 24-25: overwrite ghost, Γ and Γ̃ from the payload
                self.ghost[p][msg.src] = msg.payload["z"].copy()
                self.gamma_sq[p][pos] = msg.payload["own_norm_sq"]
                self.tilde_sq[p][pos] = msg.payload["your_est_sq"]
            if relaxed[p]:
                # crossing-message settlement: a neighbor's your_est was
                # composed before our solve message landed there, but every
                # *recipient* ends this phase holding our piggybacked norm —
                # so Γ̃ must record the phase-1 value we broadcast
                # (line 16's promise), not the stale crossing estimate
                for q in self._solve_sent[p]:
                    self.tilde_sq[p][self._nbr_pos[p][q]] = \
                        phase1_norm_sq[p]

            # lines 27-30: deadlock avoidance
            own_sq = _sq(self.norms[p])
            over = (self.tilde_sq[p] > own_sq if self.deadlock_avoidance
                    else np.zeros(self.tilde_sq[p].size, dtype=bool))
            if np.any(over):
                nbrs = sysm.neighbors_of(p)
                for pos in np.flatnonzero(over):
                    q = int(nbrs[pos])
                    self.tilde_sq[p][pos] = own_sq  # line 28
                    res_sent[p].add(q)
                    self.engine.put(p, q, CATEGORY_RESIDUAL, {
                        "z": self._boundary_values(p, q),
                        "own_norm_sq": own_sq,
                        "your_est_sq": float(self.gamma_sq[p][pos]),
                    })
        self.engine.close_epoch()

        # ---- phase 3: read explicit residual messages (lines 32-38)
        for p in range(P):
            msgs = self.engine.drain(p)
            changed = False
            for msg in msgs:
                if "vals" in msg.payload:       # delayed solve update
                    self.apply_delta(p, msg.src, msg.payload["vals"])
                    changed = True
            if changed:
                self.refresh_norm(p)
            for msg in msgs:
                pos = self._nbr_pos[p][msg.src]
                self.ghost[p][msg.src] = msg.payload["z"].copy()
                self.gamma_sq[p][pos] = msg.payload["own_norm_sq"]
                # crossing settlement: if we also sent this neighbor an
                # explicit update, its your_est was composed before our
                # message landed — the neighbor's final belief about us is
                # the norm we sent (our line-28 value), so keep that
                if msg.src not in res_sent[p]:
                    self.tilde_sq[p][pos] = msg.payload["your_est_sq"]
        self.engine.close_step()
        return int(relaxed.sum())
