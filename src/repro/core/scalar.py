"""Scalar (one row per process) forms of the Southwell family.

These are the methods of the paper's Figures 2 and 5, and the multigrid
smoother of Figure 6 (all "in scalar form, i.e., subdomain size of 1"):

- :func:`sequential_southwell` — the classic greedy method: relax the row
  with the largest ``|r_i|`` (≡ Gauss-Southwell under the paper's unit-
  diagonal scaling), one row per step;
- :class:`ScalarParallelSouthwell` — relax row ``i`` when ``|r_i|`` is
  maximal in its neighborhood (exact neighbor residuals);
- :class:`ScalarDistributedSouthwell` — the same decision made on *ghost
  estimates*: each directed edge ``i→j`` carries ``z[i→j]``, row ``i``'s
  running copy of ``r_j``, updated locally when ``i`` relaxes and
  overwritten when ``j``'s messages arrive; deadlock is broken with
  explicit residual messages exactly as in the block Algorithm 3.

Everything is vectorised over edges, so a 65k-row grid (Figure 6's 255²)
steps in milliseconds.  Message counting matches the block methods'
categories (solve vs explicit-residual).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.history import ConvergenceHistory
from repro.sparsela import CSRMatrix
from repro.sparsela.kernels import residual

__all__ = [
    "EdgeStructure",
    "ScalarDistributedSouthwell",
    "ScalarParallelSouthwell",
    "sequential_southwell",
]


@dataclass
class EdgeStructure:
    """Directed off-diagonal edge layout shared by the scalar methods.

    Edge ``e`` runs ``src[e] → dst[e]`` and carries
    ``coupling[e] = A[dst, src]`` — the coefficient with which a relaxation
    of ``src`` perturbs ``dst``'s residual.  ``rev[e]`` is the index of the
    opposite edge (requires structural symmetry, which the paper's
    symmetrically scaled SPD matrices always have).
    """

    n: int
    src: np.ndarray
    dst: np.ndarray
    coupling: np.ndarray
    rev: np.ndarray
    indptr: np.ndarray          # CSR-style: edges from i are indptr[i]:indptr[i+1]
    diag: np.ndarray

    @classmethod
    def from_matrix(cls, A: CSRMatrix) -> "EdgeStructure":
        if A.n_rows != A.n_cols:
            raise ValueError("scalar methods need a square matrix")
        n = A.n_rows
        At = A.transpose()
        rows = At._expanded_row_ids()
        off = rows != At.indices
        src = rows[off]
        dst = At.indices[off]
        coupling = At.data[off]
        counts = np.bincount(src, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        keys = src * n + dst
        rev_keys = dst * n + src
        order = np.argsort(keys)
        pos = np.searchsorted(keys[order], rev_keys)
        if (pos >= keys.size).any() or np.any(
                keys[order][np.minimum(pos, keys.size - 1)] != rev_keys):
            raise ValueError("matrix pattern is not structurally symmetric")
        rev = order[pos]
        diag = A.diagonal()
        if np.any(diag == 0.0):
            raise ValueError("zero diagonal entry")
        return cls(n=n, src=src, dst=dst, coupling=coupling, rev=rev,
                   indptr=indptr, diag=diag)

    @property
    def n_edges(self) -> int:
        return int(self.src.size)

    def row_max(self, edge_vals: np.ndarray) -> np.ndarray:
        """Per-source maximum of an edge array (−inf for isolated rows)."""
        out = np.full(self.n, -np.inf)
        np.maximum.at(out, self.src, edge_vals)
        return out

    def row_min_dst_attaining(self, edge_vals: np.ndarray,
                              row_maxes: np.ndarray) -> np.ndarray:
        """Per-source minimum destination index among max-attaining edges."""
        out = np.full(self.n, self.n, dtype=np.int64)
        attain = edge_vals == row_maxes[self.src]
        np.minimum.at(out, self.src[attain], self.dst[attain])
        return out


def _southwell_winners(edges: EdgeStructure, absr: np.ndarray,
                       est: np.ndarray) -> np.ndarray:
    """Rows winning the (Parallel) Southwell criterion on estimates ``est``.

    ``est[e]`` is ``src[e]``'s belief about ``|r_dst|``.  Ties break to the
    lower row index, so two coupled rows never tie-win together.
    """
    row_max = edges.row_max(est)
    win = absr > row_max
    tie = (absr == row_max) & ~win & (absr > 0.0)
    if np.any(tie):
        min_dst = edges.row_min_dst_attaining(est, row_max)
        tie &= np.arange(edges.n) < min_dst
        win |= tie
    # isolated rows (no neighbors): relax whenever nonzero
    win &= absr > 0.0
    return win


def sequential_southwell(A: CSRMatrix, x0: np.ndarray, b: np.ndarray,
                         n_relaxations: int) -> ConvergenceHistory:
    """Sequential (Gauss-)Southwell with a per-relaxation residual trace.

    Each step relaxes the row with the largest ``|r_i|`` (the paper's
    convention under unit-diagonal scaling) and updates only the coupled
    residuals; the norm is maintained incrementally so the trace is
    ``O(nnz/n)`` per relaxation.
    """
    x = np.array(x0, dtype=np.float64)
    r = residual(A, x, b)
    At = A.transpose()
    diag = A.diagonal()
    if np.any(diag == 0.0):
        raise ValueError("zero diagonal entry")
    hist = ConvergenceHistory()
    norm_sq = float(r @ r)
    hist.append(norm=np.sqrt(max(norm_sq, 0.0)), relaxations=0,
                parallel_steps=0)
    for k in range(n_relaxations):
        i = int(np.argmax(np.abs(r)))
        if r[i] == 0.0:
            break
        dx = r[i] / diag[i]
        x[i] += dx
        cols, vals = At.row(i)      # column i of A
        old = r[cols]
        new = old - vals * dx
        norm_sq += float(new @ new - old @ old)
        r[cols] = new
        hist.append(norm=np.sqrt(max(norm_sq, 0.0)), relaxations=k + 1,
                    parallel_steps=k + 1)
    return hist


@dataclass
class ScalarStepInfo:
    """What one scalar parallel step did."""

    n_relaxed: int
    solve_messages: int
    residual_messages: int


class ScalarParallelSouthwell:
    """Scalar Parallel Southwell with exact neighbor residuals.

    Mathematically the shared-memory method of Section 2.3; message counts
    (if wanted) follow the block Algorithm 2 accounting: a relaxing row
    sends one solve message per neighbor, and a row whose residual changed
    without relaxing sends one explicit residual message per neighbor.
    """

    name = "parallel-southwell-scalar"

    def __init__(self, A: CSRMatrix):
        self.A = A
        self.edges = EdgeStructure.from_matrix(A)
        self.x: np.ndarray | None = None
        self.r: np.ndarray | None = None
        self.solve_messages = 0
        self.residual_messages = 0
        self.total_relaxations = 0

    def setup(self, x0: np.ndarray, b: np.ndarray) -> None:
        """Initialise iterate, residual and message counters."""
        self.x = np.array(x0, dtype=np.float64)
        self.r = residual(self.A, self.x, b)
        self.solve_messages = 0
        self.residual_messages = 0
        self.total_relaxations = 0

    def winners(self) -> np.ndarray:
        """Rows that will relax next step (boolean mask)."""
        absr = np.abs(self.r)
        est = absr[self.edges.dst]      # exact neighbor residuals
        return _southwell_winners(self.edges, absr, est)

    def step(self, relax_mask: np.ndarray | None = None) -> ScalarStepInfo:
        """One parallel step; optionally restrict the relax set (multigrid
        budget truncation passes a sub-mask of ``winners()``)."""
        edges = self.edges
        win = self.winners() if relax_mask is None else relax_mask
        n_relaxed = int(win.sum())
        if n_relaxed == 0:
            return ScalarStepInfo(0, 0, 0)
        dx = np.where(win, self.r / edges.diag, 0.0)
        r_old = self.r
        self.r = r_old - self.A.matvec(dx)
        self.x += dx
        self.total_relaxations += n_relaxed
        solve_msgs = int(np.count_nonzero(win[edges.src]))
        # rows whose residual changed without relaxing broadcast their new
        # residual to every neighbor (Alg 2 lines 19-21)
        changed = (self.r != r_old) & ~win
        res_msgs = int(np.count_nonzero(changed[edges.src]))
        self.solve_messages += solve_msgs
        self.residual_messages += res_msgs
        return ScalarStepInfo(n_relaxed, solve_msgs, res_msgs)

    def run(self, x0: np.ndarray, b: np.ndarray,
            max_relaxations: int | None = None,
            max_steps: int | None = None,
            exact_relaxations: bool = False,
            seed: int = 0) -> ConvergenceHistory:
        """Run until a relaxation budget or step count is exhausted.

        With ``exact_relaxations`` the final step relaxes a random subset
        of the selected rows so the total hits ``max_relaxations`` exactly
        (the paper's Figure 6 protocol).
        """
        if max_relaxations is None and max_steps is None:
            raise ValueError("need max_relaxations and/or max_steps")
        self.setup(x0, b)
        hist = ConvergenceHistory()
        hist.append(norm=float(np.linalg.norm(self.r)), relaxations=0,
                    parallel_steps=0)
        rng = np.random.default_rng(seed)
        steps = 0
        while True:
            if max_steps is not None and steps >= max_steps:
                break
            if (max_relaxations is not None
                    and self.total_relaxations >= max_relaxations):
                break
            mask = self.winners()
            remaining = (np.inf if max_relaxations is None
                         else max_relaxations - self.total_relaxations)
            if exact_relaxations and mask.sum() > remaining:
                chosen = rng.choice(np.flatnonzero(mask),
                                    size=int(remaining), replace=False)
                mask = np.zeros_like(mask)
                mask[chosen] = True
            info = self.step(mask)
            if info.n_relaxed == 0:
                break
            steps += 1
            hist.append(norm=float(np.linalg.norm(self.r)),
                        relaxations=self.total_relaxations,
                        parallel_steps=steps,
                        comm_cost=(self.solve_messages
                                   + self.residual_messages) / self.edges.n,
                        active_fraction=info.n_relaxed / self.edges.n)
        return hist


class ScalarDistributedSouthwell:
    """Scalar Distributed Southwell (Algorithm 3 with subdomain size 1).

    State per directed edge ``i→j``: ``z[i→j]``, row ``i``'s running copy
    of ``r_j``.  In scalar form the ghost layer covers the neighbor's whole
    residual, so the norm estimate is exactly ``|z|``.  The Γ̃ mirror is
    read off the reverse edge (its exact-tracking invariant makes the two
    identical at step boundaries; the block implementation maintains the
    mirror explicitly and tests assert the invariant).
    """

    name = "distributed-southwell-scalar"

    def __init__(self, A: CSRMatrix):
        self.A = A
        self.edges = EdgeStructure.from_matrix(A)
        self.x: np.ndarray | None = None
        self.r: np.ndarray | None = None
        self.z: np.ndarray | None = None
        self.solve_messages = 0
        self.residual_messages = 0
        self.total_relaxations = 0

    def setup(self, x0: np.ndarray, b: np.ndarray) -> None:
        """Initialise iterate, residual, ghosts and counters."""
        self.x = np.array(x0, dtype=np.float64)
        self.r = residual(self.A, self.x, b)
        # ghost starts exact (Alg 3 lines 7-9)
        self.z = self.r[self.edges.dst].copy()
        self.solve_messages = 0
        self.residual_messages = 0
        self.total_relaxations = 0

    def winners(self) -> np.ndarray:
        """Rows whose |r| beats every *estimated* neighbor residual."""
        absr = np.abs(self.r)
        return _southwell_winners(self.edges, absr, np.abs(self.z))

    def step(self, relax_mask: np.ndarray | None = None) -> ScalarStepInfo:
        """One parallel step (optionally with a restricted relax set)."""
        edges = self.edges
        win = self.winners() if relax_mask is None else relax_mask
        n_relaxed = int(win.sum())
        dx = np.where(win, self.r / edges.diag, 0.0) if n_relaxed else None

        if n_relaxed:
            # phase 1 — relaxers update their ghosts locally (line 15):
            # z[i→j] += -A[j,i] dx_i for relaxing i
            from_win = win[edges.src]
            self.z[from_win] -= (edges.coupling[from_win]
                                 * dx[edges.src[from_win]])
            # apply all updates (every delta is delivered this step)
            self.r = self.r - self.A.matvec(dx)
            self.x += dx
            self.total_relaxations += n_relaxed
            # phase 2 — receivers overwrite their ghost of each relaxed
            # sender with the sender's piggybacked residual, which at send
            # time was exactly 0 (a scalar relaxation zeroes its residual)
            to_win = win[edges.dst]
            self.z[to_win] = 0.0
            self.solve_messages += int(from_win.sum())

        # phase 2 deadlock avoidance (lines 27-30): row i = dst[e] checks
        # the estimate its neighbor src... every directed edge j→i carries
        # j's belief about i; if it exceeds |r_i|, i refreshes it
        over = np.abs(self.z) > np.abs(self.r)[edges.dst]
        n_res = int(np.count_nonzero(over))
        if n_res:
            self.z[over] = self.r[edges.dst[over]]
            self.residual_messages += n_res
        return ScalarStepInfo(n_relaxed, 0 if not n_relaxed else
                              int(win[edges.src].sum()), n_res)

    def run(self, x0: np.ndarray, b: np.ndarray,
            max_relaxations: int | None = None,
            max_steps: int | None = None,
            exact_relaxations: bool = False,
            seed: int = 0) -> ConvergenceHistory:
        """Same driver contract as :class:`ScalarParallelSouthwell`."""
        if max_relaxations is None and max_steps is None:
            raise ValueError("need max_relaxations and/or max_steps")
        self.setup(x0, b)
        hist = ConvergenceHistory()
        hist.append(norm=float(np.linalg.norm(self.r)), relaxations=0,
                    parallel_steps=0)
        rng = np.random.default_rng(seed)
        steps = 0
        stalled = 0
        while True:
            if max_steps is not None and steps >= max_steps:
                break
            if (max_relaxations is not None
                    and self.total_relaxations >= max_relaxations):
                break
            mask = self.winners()
            remaining = (np.inf if max_relaxations is None
                         else max_relaxations - self.total_relaxations)
            if exact_relaxations and mask.sum() > remaining:
                chosen = rng.choice(np.flatnonzero(mask),
                                    size=int(remaining), replace=False)
                mask = np.zeros_like(mask)
                mask[chosen] = True
            info = self.step(mask)
            steps += 1
            if info.n_relaxed == 0:
                # a pure deadlock-repair step; estimates were refreshed, so
                # winners can appear next step — but give up if even that
                # produces nothing (converged or truly stuck)
                stalled += 1
                if info.residual_messages == 0 or stalled > 2:
                    break
                continue
            stalled = 0
            hist.append(norm=float(np.linalg.norm(self.r)),
                        relaxations=self.total_relaxations,
                        parallel_steps=steps,
                        comm_cost=(self.solve_messages
                                   + self.residual_messages) / self.edges.n,
                        active_fraction=info.n_relaxed / self.edges.n)
        return hist
