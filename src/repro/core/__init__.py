"""The Southwell method family — the paper's contribution and its lineage.

- :func:`sequential_southwell` — the classic greedy method (Section 2.2);
- :class:`ScalarParallelSouthwell` / :class:`ScalarDistributedSouthwell` —
  one row per process (Figures 2/5/6);
- :class:`ParallelSouthwell` — block Algorithm 2 over the simulated
  distributed runtime;
- :class:`DistributedSouthwell` — block Algorithm 3, the paper's new
  method: ghost-layer norm estimation plus just-in-time deadlock-avoidance
  messages;
- :class:`BlockSystem` / :func:`build_block_system` — the per-process data
  layout shared by all block methods (including Block Jacobi in
  :mod:`repro.solvers`).
"""

from repro.core.async_jacobi import AsyncBlockJacobi
from repro.core.async_southwell import AsyncDistributedSouthwell
from repro.core.adaptive import (
    SimultaneousAdaptiveRelaxation,
    greedy_multiplicative_schwarz,
    sequential_adaptive_relaxation,
)
from repro.core.block_base import BlockMethodBase
from repro.core.blockdata import BlockSystem, build_block_system
from repro.core.distributed_southwell_block import DistributedSouthwell
from repro.core.parallel_southwell_block import ParallelSouthwell
from repro.core.scalar import (
    EdgeStructure,
    ScalarDistributedSouthwell,
    ScalarParallelSouthwell,
    sequential_southwell,
)
from repro.core.threshold_ds import ThresholdedDistributedSouthwell

__all__ = [
    "AsyncBlockJacobi",
    "AsyncDistributedSouthwell",
    "BlockMethodBase",
    "BlockSystem",
    "DistributedSouthwell",
    "EdgeStructure",
    "ParallelSouthwell",
    "ScalarDistributedSouthwell",
    "ScalarParallelSouthwell",
    "SimultaneousAdaptiveRelaxation",
    "ThresholdedDistributedSouthwell",
    "build_block_system",
    "greedy_multiplicative_schwarz",
    "sequential_adaptive_relaxation",
    "sequential_southwell",
]
