"""Local subdomain solvers (the per-process relaxation kernel).

When a process relaxes, it approximately solves its diagonal block against
the current local residual: ``dx = M_p^{-1} r_p``.  The paper's experiments
all use one forward Gauss-Seidel sweep (``-loc_solver gs``); the artifact
also offers a PARDISO direct solve, which we mirror with SuperLU.

Both solvers pre-factorize at setup so an ``apply`` is a single compiled
triangular solve (the hot loop of every experiment).
"""

from __future__ import annotations

import numpy as np

from repro.sparsela import CSRMatrix

__all__ = ["DirectLocal", "GaussSeidelLocal", "LocalSolver",
           "make_local_solver"]


class LocalSolver:
    """Interface: ``apply(r) -> dx`` with a per-apply flop estimate."""

    #: estimated flops per apply (cost-model input)
    flops: float
    #: optional bound callable equivalent to :meth:`apply` with any python
    #: wrapper layers peeled off (hot-loop dispatch target)
    apply_fast = None

    def apply(self, r: np.ndarray) -> np.ndarray:  # pragma: no cover
        """Approximate solve: ``dx`` with ``A_pp dx ~= r``."""
        raise NotImplementedError


class GaussSeidelLocal(LocalSolver):
    """``n_sweeps`` forward Gauss-Seidel sweeps on the diagonal block.

    One sweep is ``dx = (L+D)^{-1} r``; further sweeps re-form the local
    residual ``r - A_pp dx`` and accumulate.  The ``L+D`` factor is
    pre-factorized once (SuperLU, natural ordering keeps it triangular) so
    each sweep is one compiled solve.
    """

    def __init__(self, App: CSRMatrix, n_sweeps: int = 1):
        import scipy.sparse.linalg as spla

        if n_sweeps < 1:
            raise ValueError("n_sweeps must be at least 1")
        if App.n_rows != App.n_cols:
            raise ValueError("diagonal block must be square")
        if App.has_zero_diagonal:
            raise ValueError("zero diagonal entry in local block")
        self.n_sweeps = n_sweeps
        self.n = App.n_rows
        # kept for multi-sweep applies *and* as the pickle seed (the
        # SuperLU factor cannot cross process/disk boundaries); it is the
        # caller's diag block, so this is a reference, not a copy
        self._App = App
        # the matrix-level cached L+D factor, shared with the sweep kernels
        LD = App.ld_factor().to_scipy().tocsc()
        self._factor = spla.splu(LD, permc_spec="NATURAL",
                                 options={"SymmetricMode": False})
        # multi-sweep local residual workspace (no per-apply allocation)
        self._ws = np.empty(App.n_rows) if n_sweeps > 1 else None
        self.flops = float(n_sweeps * (2 * App.nnz + App.n_rows))
        # one sweep is exactly one triangular solve
        self.apply_fast = self._factor.solve if n_sweeps == 1 else self.apply

    def apply(self, r: np.ndarray) -> np.ndarray:
        """``n_sweeps`` GS sweeps against the residual ``r``."""
        dx = self._factor.solve(r)
        for _ in range(self.n_sweeps - 1):
            ws = self._ws
            self._App.matvec(dx, out=ws)
            np.subtract(r, ws, out=ws)
            dx += self._factor.solve(ws)
        return dx

    def __reduce__(self):
        # the SuperLU factor is not picklable: serialize the block and
        # the sweep count, re-factorize on load (setup cache, sweep pool)
        return (GaussSeidelLocal, (self._App, self.n_sweeps))


class DirectLocal(LocalSolver):
    """Exact local solve ``dx = A_pp^{-1} r`` (PARDISO stand-in: SuperLU)."""

    def __init__(self, App: CSRMatrix):
        import scipy.sparse.linalg as spla

        if App.n_rows != App.n_cols:
            raise ValueError("diagonal block must be square")
        self.n = App.n_rows
        self._App = App
        self._factor = spla.splu(App.to_scipy().tocsc())
        fact_nnz = self._factor.L.nnz + self._factor.U.nnz
        self.flops = float(2 * fact_nnz)
        self.apply_fast = self._factor.solve

    def apply(self, r: np.ndarray) -> np.ndarray:
        """Exact solve against the residual ``r``."""
        return self._factor.solve(r)

    def __reduce__(self):
        # see GaussSeidelLocal.__reduce__: re-factorize on load
        return (DirectLocal, (self._App,))


def make_local_solver(kind: str, App: CSRMatrix,
                      n_sweeps: int = 1) -> LocalSolver:
    """Factory keyed by the artifact's ``-loc_solver`` names.

    ``'gs'`` → :class:`GaussSeidelLocal` (default everywhere in the paper);
    ``'direct'`` → :class:`DirectLocal`.
    """
    if kind == "gs":
        return GaussSeidelLocal(App, n_sweeps=n_sweeps)
    if kind == "direct":
        return DirectLocal(App)
    raise ValueError(f"unknown local solver {kind!r} (use 'gs' or 'direct')")
