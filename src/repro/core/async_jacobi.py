"""Asynchronous Block Jacobi (chaotic relaxation) on the event engine.

The classic asynchronous iteration (Chazan-Miranker): every process
relaxes its own block against whatever boundary data has arrived, with no
synchronisation at all.  Convergence requires ``ρ(|M⁻¹N|) < 1`` — a
strictly stronger condition than synchronous Jacobi's — so on the suite's
hard matrices it diverges just like (or worse than) its lockstep parent,
while on M-matrices it converges and tolerates stragglers perfectly.

Included as the natural asynchronous baseline next to
:class:`~repro.core.async_southwell.AsyncDistributedSouthwell`.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.history import ConvergenceHistory
from repro.core.blockdata import BlockSystem
from repro.runtime import CATEGORY_SOLVE, CostModel
from repro.runtime.async_engine import AsyncEngine
from repro.runtime.costmodel import CORI_LIKE

__all__ = ["AsyncBlockJacobi"]


class AsyncBlockJacobi:
    """Chaotic block relaxation: relax, send, read, repeat — no barriers.

    ``relax_interval`` spaces a process's relaxations in simulated time
    (a process that has received nothing new still waits at least this
    long before re-relaxing, so stale data is not re-amplified in a tight
    spin loop).
    """

    name = "async-block-jacobi"

    def __init__(self, system: BlockSystem,
                 cost_model: CostModel = CORI_LIKE,
                 network_latency: float = 5.0e-6,
                 relax_interval: float = 2.0e-6,
                 speed_factors: np.ndarray | None = None):
        if relax_interval <= 0:
            raise ValueError("relax_interval must be positive")
        self.system = system
        self.engine = AsyncEngine(system.n_parts, cost_model=cost_model,
                                  network_latency=network_latency,
                                  speed_factors=speed_factors)
        self.relax_interval = relax_interval
        self.total_relaxations = 0
        self.history = ConvergenceHistory()

    def setup(self, x0: np.ndarray, b: np.ndarray) -> None:
        """Initialise per-process state from original-numbering data."""
        sysm = self.system
        x0 = np.asarray(x0, dtype=np.float64)[sysm.perm]
        b = np.asarray(b, dtype=np.float64)[sysm.perm]
        P = sysm.n_parts
        self.x_blocks = [x0[sysm.rows_slice(p)].copy() for p in range(P)]
        self.r_blocks = sysm.initial_residual(x0, b)
        self.norms = np.array([np.linalg.norm(r) for r in self.r_blocks])
        self.total_relaxations = 0
        self.history = ConvergenceHistory()
        self.history.append(norm=self.global_norm(), relaxations=0,
                            parallel_steps=0)

    def global_norm(self) -> float:
        """Exact global residual norm (simulation-level diagnostic)."""
        return float(np.sqrt(np.sum(self.norms ** 2)))

    def _turn(self, p: int) -> None:
        sysm = self.system
        # read everything delivered
        changed = False
        for msg in self.engine.read(p):
            rows = sysm.beta[(p, msg.src)]
            self.r_blocks[p][rows] += msg.payload["vals"]
            self.engine.charge_compute(p, float(rows.size))
            changed = True
        if changed:
            self.norms[p] = np.linalg.norm(self.r_blocks[p])
            self.engine.charge_compute(p, 2.0 * self.r_blocks[p].size)
        # relax unconditionally (the Jacobi way)
        solver = sysm.local_solvers[p]
        dx = solver.apply(self.r_blocks[p])
        self.engine.charge_compute(p, solver.flops)
        App = sysm.diag_blocks[p]
        self.r_blocks[p] -= App.matvec(dx)
        self.engine.charge_compute(p, 2.0 * App.nnz)
        self.x_blocks[p] += dx
        self.norms[p] = np.linalg.norm(self.r_blocks[p])
        self.total_relaxations += self.r_blocks[p].size
        for q in sysm.neighbors_of(p):
            q = int(q)
            block = sysm.couplings[(p, q)]
            vals = -block.matvec(dx)
            self.engine.charge_compute(p, 2.0 * block.nnz)
            self.engine.put(p, q, CATEGORY_SOLVE, {"vals": vals})
        self.engine.charge_idle(p, self.relax_interval)

    def run(self, x0: np.ndarray, b: np.ndarray,
            max_time: float | None = None,
            max_turns: int | None = None,
            target_norm: float | None = None,
            record_every: int = 256) -> ConvergenceHistory:
        """Event loop (same contract as the async Southwell driver)."""
        if max_time is None and max_turns is None:
            raise ValueError("need max_time and/or max_turns")
        self.setup(x0, b)
        turns = 0
        while True:
            if max_turns is not None and turns >= max_turns:
                break
            if max_time is not None and self.engine.elapsed >= max_time:
                break
            p = self.engine.next_process()
            self._turn(p)
            self.engine.reschedule(p)
            turns += 1
            if turns % record_every == 0:
                norm = self.global_norm()
                self.history.append(
                    norm=norm, relaxations=self.total_relaxations,
                    parallel_steps=turns,
                    comm_cost=self.engine.stats.communication_cost(),
                    time=self.engine.elapsed)
                if target_norm is not None and norm <= target_norm:
                    break
                if norm > 1e8:       # diverged hard: stop burning cycles
                    break
        self.history.append(norm=self.global_norm(),
                            relaxations=self.total_relaxations,
                            parallel_steps=turns,
                            comm_cost=self.engine.stats.communication_cost(),
                            time=self.engine.elapsed)
        return self.history

    def solution(self) -> np.ndarray:
        """Assembled solution in original row numbering."""
        n = self.system.n
        x_perm = np.empty(n)
        for p in range(self.system.n_parts):
            x_perm[self.system.rows_slice(p)] = self.x_blocks[p]
        x = np.empty(n)
        x[self.system.perm] = x_perm
        return x
