"""Event-driven executor: drives a block method over the async plane.

``solve(..., runtime="async")`` routes here.  The executor owns the
generic turn machinery — smallest-clock scheduling, payload delivery,
norm refresh, compute pricing, idle waits, history sampling — and
defers the protocol to the method's ``_async_*`` hooks
(:class:`~repro.core.block_base.BlockMethodBase`): the relax decision,
the outgoing message headers/payloads, and repair traffic.

One *turn* = one rank waking at its clock and doing everything it can:

1. deliver every in-flight message stamped at or before its clock and
   apply the solve deltas (cumulative payloads, ``received − applied``);
2. if the method's criterion fires (and the rank is not inside a
   fault-plan stall window), relax and publish the updates;
3. run the method's repair pass (DS line 27-30 deadlock avoidance /
   heartbeats, PS explicit residual updates);
4. if nothing happened, sleep until the next poll or the earliest
   pending message, whichever is sooner.

Compute is charged to the rank's virtual clock *before* its sends are
stamped, so delivery times reflect the work that produced the message;
fault-plan slowdown windows divide the rank's speed for the charge, and
stall windows suppress relaxation without stopping delivery (one-sided
progress does not need the target's CPU).  The solve payloads always
travel in cumulative form on this plane — async slots have RMA
latest-wins overwrite semantics, so a superseded message must be
harmless even without a fault plan.

Determinism: turn order is a pure function of the clocks (ties to the
lower rank) and every clock increment is a pure function of the cost
model, the seeded fate streams and the method's arithmetic — a fixed
(matrix, partition, seed, config) reproduces bit-identical results.
"""

from __future__ import annotations

import math

import numpy as np

from repro import config as _config
from repro.runtime.asyncplane import AsyncFlatPlane
from repro.runtime.flatplane import multi_arange

__all__ = ["AsyncExecutor", "AsyncUnsupportedError"]

_EMPTY = np.zeros(0, dtype=np.int64)


class AsyncUnsupportedError(RuntimeError):
    """The configuration cannot run on the event-driven plane."""


class AsyncExecutor:
    """Drive one ``BlockMethodBase`` instance in simulated time.

    Parameters
    ----------
    runner:
        A block method instance (DS / PS / BJ).  ``setup`` must not have
        been bypassed — the executor calls it itself.
    latency:
        One-way network latency (simulated seconds); ``None`` resolves
        through :func:`repro.config.async_latency` (env, then default).
    poll_interval:
        How long an idle rank sleeps before re-checking its mailbox.
    speed_factors:
        Per-rank compute-speed multipliers: an ``(P,)`` array, a
        ``"rank:factor,..."`` spec string, or an iterable of
        ``(rank, factor)`` pairs; ``None`` resolves through
        :func:`repro.config.async_speed_factors`.
    record_every:
        History/stats sampling cadence in turns.
    """

    def __init__(self, runner, *, latency: float | None = None,
                 poll_interval: float = 2.0e-6,
                 speed_factors=None, record_every: int = 64) -> None:
        if poll_interval <= 0.0:
            raise ValueError("poll_interval must be positive")
        if record_every < 1:
            raise ValueError("record_every must be at least 1")
        self.runner = runner
        self.latency = _config.async_latency(latency)
        self.poll_interval = float(poll_interval)
        self.speed_factors = speed_factors
        self.record_every = int(record_every)
        self.aplane: AsyncFlatPlane | None = None
        self.turns = 0

    # ------------------------------------------------------------------
    def _base_speed(self, P: int) -> np.ndarray | None:
        """Resolve ``speed_factors`` into a per-rank array (or None)."""
        spec = self.speed_factors
        if spec is None:
            spec = _config.async_speed_factors()
        if spec is None:
            return None
        if isinstance(spec, np.ndarray):
            arr = np.asarray(spec, dtype=np.float64)
            if arr.shape != (P,):
                raise ValueError("speed_factors array must have one "
                                 "entry per process")
            return arr
        if isinstance(spec, str):
            spec = _config.parse_speed_factors(spec)
        base = np.ones(P)
        for rank, factor in spec:
            rank = int(rank)
            if not 0 <= rank < P:
                raise ValueError(f"speed factor rank {rank} out of "
                                 f"range for {P} processes")
            base[rank] = float(factor)
        if np.any(base <= 0.0):
            raise ValueError("speed factors must be positive")
        return base

    # ------------------------------------------------------------------
    def _deliver_apply(self, p: int) -> bool:
        """Deliver ``p``'s ready mail; apply deltas, refresh the norm."""
        runner = self.runner
        aplane = self.aplane
        sids = aplane.deliver(p)
        if not sids:
            return False
        flops = self._c_flops
        solve_eids = [s >> 1 for s in sids if not (s & 1)]
        if solve_eids:
            voff = self._c_voff
            recv_flops = 0.0
            r_flat = self._c_r_flat
            grows = self._c_grows
            wire = aplane.wire_vals
            applied = self._c_applied
            edge_flops = self._c_edge_flops
            if len(solve_eids) <= 8:
                # small fan-in: per-edge slices beat multi_arange +
                # np.add.at by a wide margin (rows are unique within
                # one edge, so a direct fancy += is exact)
                for eid in solve_eids:
                    lo = int(voff[eid])
                    hi = int(voff[eid + 1])
                    w = wire[lo:hi]
                    r_flat[grows[lo:hi]] += w - applied[lo:hi]
                    applied[lo:hi] = w
                    recv_flops += float(edge_flops[eid])
            else:
                eids = np.array(solve_eids, dtype=np.int64)
                idx = multi_arange(voff[eids], voff[eids + 1])
                np.add.at(r_flat, grows[idx], wire[idx] - applied[idx])
                applied[idx] = wire[idx]
                recv_flops = float(edge_flops[eids].sum())
            flops[p] += 2.0 * recv_flops
        r_p = self._c_r_blocks[p]
        self._c_norms[p] = math.sqrt(np.dot(r_p, r_p))
        flops[p] += 2.0 * r_p.size      # the refresh_norm charge
        fr = runner._faults
        if fr is not None and fr.message_faults:
            # the fault paths (stale masking) index with ndarrays
            arr = np.asarray(sids, dtype=np.int64)
            runner._async_on_deliver(p, arr, aplane.wire_fate[arr],
                                     aplane)
        else:
            runner._async_on_deliver(p, sids, _EMPTY, aplane)
        return True

    def _force_lossy(self) -> None:
        """Cumulative solve payloads even without a fault plan (async
        slots have latest-wins overwrite semantics, so a superseded
        in-flight message must apply as a no-op)."""
        runner = self.runner
        if runner._lossy:
            return
        plane = runner.engine.flat
        runner._lossy = True
        runner._dedupe_dups = False
        runner._cum_flat = np.zeros_like(plane.vals_flat)
        runner._applied_flat = np.zeros_like(plane.vals_flat)
        runner._cum_slab = runner._rank_slabs(runner._cum_flat)

    # ------------------------------------------------------------------
    def prepare(self, x0: np.ndarray, b: np.ndarray) -> None:
        """Run method setup and build the event plane, clocks at zero.

        ``run`` calls this itself when it has not been called; exposing
        it separately lets callers front-load the one-time setup cost
        (slab construction, local factorizations, plane allocation)
        before entering the event loop — e.g. to time or profile the
        steady-state engine on its own.
        """
        runner = self.runner
        runner.setup(x0, b)
        if not runner._use_flat:
            raise AsyncUnsupportedError(
                "the async runtime needs the flat message plane: "
                "object-plane-only configurations (delay-rate fault "
                "plans, legacy delay injection, methods outside the "
                "flat contract) cannot run asynchronously")
        self._force_lossy()
        P = runner.system.n_parts
        self.aplane = AsyncFlatPlane(
            runner.engine.flat, runner.engine.stats,
            cost_model=runner.engine.cost_model,
            latency=self.latency,
            speed_factors=self._base_speed(P),
            tracer=runner.tracer, faults=runner._faults)
        # cache the stable hot-path arrays (fixed after _force_lossy) so
        # the delivery loop skips the attribute chases
        self._c_voff = runner.engine.flat.vals_off
        self._c_flops = runner._flops
        self._c_r_flat = runner._r_flat
        self._c_grows = runner._grows_flat
        self._c_applied = runner._applied_flat
        self._c_edge_flops = runner._edge_recv_flops
        self._c_r_blocks = runner.r_blocks
        self._c_norms = runner.norms
        self._prepared = True

    def run(self, x0: np.ndarray | None = None,
            b: np.ndarray | None = None, max_steps: int = 50,
            target_norm: float | None = None,
            stop_at_target: bool = False,
            max_turns: int | None = None,
            max_time: float | None = None):
        """Run the method event-driven; returns its ConvergenceHistory.

        ``max_steps`` converts to a turn budget (``max_steps × P × 8``)
        when ``max_turns`` is not given, so lockstep and async calls
        take comparable budget arguments; ``max_time`` bounds simulated
        seconds instead.  ``x0``/``b`` may be omitted when ``prepare``
        was already called.
        """
        runner = self.runner
        if not getattr(self, "_prepared", False):
            if x0 is None or b is None:
                raise ValueError("run() needs x0 and b unless "
                                 "prepare() was called first")
            self.prepare(x0, b)
        self._prepared = False      # one event loop per prepare
        P = runner.system.n_parts
        if max_turns is None:
            max_turns = int(max_steps) * P * 8
        stats = runner.engine.stats
        fr = runner._faults
        aplane = self.aplane
        trc = runner.tracer
        tracing = trc.enabled
        if tracing:
            trc.begin_run(runner.name, P)
        stalling = fr is not None and bool(fr._stall_by_rank)
        slowing = fr is not None and bool(fr._slow_by_rank)
        patience = (runner._active_plan.deadlock_patience * P
                    if runner._active_plan is not None else None)
        flops = runner._flops
        clocks = aplane.clocks
        next_at = aplane._next_at
        poll = self.poll_interval
        turn_of = [0] * P
        # a rank is *clean* when its last evaluation produced no relax
        # and no repair: until something is delivered to it, both hooks
        # are pure functions of unchanged state, so re-running them is
        # provably a no-op and the turn can go straight to the idle
        # path.  Heartbeat retries and stall/slowdown windows depend on
        # the turn counter, so the shortcut only arms without a fault
        # runtime.
        clean = bytearray(P)
        skippable = fr is None
        turns = 0
        idle_streak = 0
        win_active = 0
        win_turns = 0
        last_closed = 0.0
        dirty = False

        def sample() -> float:
            nonlocal last_closed, win_active, win_turns, dirty
            stats.close_step(time=aplane.elapsed - last_closed)
            last_closed = aplane.elapsed
            norm = runner.global_norm()
            runner.history.append(
                norm=norm,
                relaxations=runner.total_relaxations,
                parallel_steps=turns,
                comm_cost=stats.communication_cost(),
                time=stats.elapsed_time(),
                active_fraction=win_active / max(1, win_turns))
            win_active = 0
            win_turns = 0
            dirty = False
            return norm

        n_pending = aplane.n_pending
        parked = aplane.parked
        while turns < max_turns:
            if not aplane._heap:
                # every rank is parked with an empty mailbox: no future
                # event can occur (nothing in flight, nothing to do)
                break
            p = aplane.next_process()
            if max_time is not None and clocks[p] >= max_time:
                aplane.reschedule(p)
                break
            turn_of[p] = t_p = turn_of[p] + 1
            delivered = (next_at[p] <= clocks[p]
                         and self._deliver_apply(p))
            if skippable and clean[p] and not delivered:
                # nothing arrived since the last no-op evaluation
                acted = False
            else:
                f0 = flops[p]
                slowdown = fr.rank_slowdown(p, t_p) if slowing else 1.0
                acted = delivered
                if delivered:
                    aplane.advance_compute(p, float(flops[p] - f0),
                                           slowdown)
                    f0 = flops[p]
                stalled = stalling and fr.rank_stalled(p, t_p)
                relaxed = False
                if not stalled and runner._async_decide(p):
                    runner._relax_one_flat(p)
                    aplane.advance_compute(p, float(flops[p] - f0),
                                           slowdown)
                    f0 = flops[p]
                    runner._async_send(p, aplane, t_p)
                    acted = relaxed = True
                if not stalled and runner._async_repair(p, aplane, t_p):
                    acted = True
                if flops[p] != f0:
                    aplane.advance_compute(p, float(flops[p] - f0),
                                           slowdown)
                clean[p] = not relaxed
            if acted:
                idle_streak = 0
                win_active += 1
                aplane.reschedule(p)
            else:
                idle_streak += 1
                if skippable and clean[p] and not n_pending[p]:
                    # park: clean with an empty mailbox — the rank will
                    # provably no-op every poll until something arrives,
                    # so leave the heap and let the next inbound send
                    # wake it at the message's stamp (asyncplane.send)
                    parked[p] = 1
                else:
                    wake = clocks[p] + poll
                    if next_at[p] < wake:
                        # the bound says a message may land before the
                        # poll horizon — pay the exact scan
                        wake = min(wake, aplane.earliest_pending(p))
                    aplane.advance_idle(p, wake - clocks[p])
                    aplane.reschedule(p)
            turns += 1
            win_turns += 1
            dirty = True
            if turns % self.record_every == 0:
                norm = sample()
                if (stop_at_target and target_norm is not None
                        and norm <= target_norm):
                    break
            if (patience is not None and idle_streak >= patience
                    and aplane.in_flight == 0
                    and runner.global_norm() > (target_norm or 0.0)):
                # graceful degradation (DESIGN.md §5.11): every rank
                # idled a full patience round with nothing in flight —
                # no future event can change any state
                runner.degraded = True
                runner.degraded_reason = runner._deadlock_diagnosis()
                break

        # drain: jump each rank with pending mail to its earliest stamp
        # so nothing sent is left unapplied (keeps the final norms a
        # pure function of the event sequence)
        while aplane.in_flight:
            progressed = False
            for p in range(P):
                nxt = aplane.earliest_pending(p)
                if np.isfinite(nxt):
                    if nxt > clocks[p]:
                        aplane.advance_idle(p, float(nxt - clocks[p]))
                    if self._deliver_apply(p):
                        progressed = True
                        dirty = True
            if not progressed:      # pragma: no cover - defensive
                break
        if dirty:
            sample()
        runner.steps_taken = turns
        self.turns = turns
        if tracing:
            trc.end_run(stats, faults=fr.summary() if fr is not None
                        else None)
        return runner.history
