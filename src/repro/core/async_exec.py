"""Event-driven executor: drives a block method over the async plane.

``solve(..., runtime="async")`` routes here.  The executor owns the
generic turn machinery — smallest-clock scheduling, payload delivery,
norm refresh, compute pricing, idle waits, history sampling — and
defers the protocol to the method's ``_async_*`` hooks
(:class:`~repro.core.block_base.BlockMethodBase`): the relax decision,
the outgoing message headers/payloads, and repair traffic.

One *turn* = one rank waking at its clock and doing everything it can:

1. deliver every in-flight message stamped at or before its clock and
   apply the solve deltas (cumulative payloads, ``received − applied``);
2. if the method's criterion fires (and the rank is not inside a
   fault-plan stall window), relax and publish the updates;
3. run the method's repair pass (DS line 27-30 deadlock avoidance /
   heartbeats, PS explicit residual updates);
4. if nothing happened, sleep until the next poll or the earliest
   pending message, whichever is sooner.

Compute is charged to the rank's virtual clock *before* its sends are
stamped, so delivery times reflect the work that produced the message;
fault-plan slowdown windows divide the rank's speed for the charge, and
stall windows suppress relaxation without stopping delivery (one-sided
progress does not need the target's CPU).  The solve payloads always
travel in cumulative form on this plane — async slots have RMA
latest-wins overwrite semantics, so a superseded message must be
harmless even without a fault plan.

Determinism: turn order is a pure function of the clocks (ties to the
lower rank) and every clock increment is a pure function of the cost
model, the seeded fate streams and the method's arithmetic — a fixed
(matrix, partition, seed, config) reproduces bit-identical results.
"""

from __future__ import annotations

import math

import numpy as np

from repro import config as _config
from repro.runtime.asyncplane import AsyncFlatPlane
from repro.runtime.flatplane import multi_arange

__all__ = ["AsyncExecutor", "AsyncUnsupportedError"]

_EMPTY = np.zeros(0, dtype=np.int64)


class AsyncUnsupportedError(RuntimeError):
    """The configuration cannot run on the event-driven plane."""


class AsyncExecutor:
    """Drive one ``BlockMethodBase`` instance in simulated time.

    Parameters
    ----------
    runner:
        A block method instance (DS / PS / BJ).  ``setup`` must not have
        been bypassed — the executor calls it itself.
    latency:
        One-way network latency (simulated seconds); ``None`` resolves
        through :func:`repro.config.async_latency` (env, then default).
    poll_interval:
        How long an idle rank sleeps before re-checking its mailbox.
    speed_factors:
        Per-rank compute-speed multipliers: an ``(P,)`` array, a
        ``"rank:factor,..."`` spec string, or an iterable of
        ``(rank, factor)`` pairs; ``None`` resolves through
        :func:`repro.config.async_speed_factors`.
    record_every:
        History/stats sampling cadence in turns.
    scheduler:
        ``"scalar"`` (one rank per turn off the heap — the oracle) or
        ``"batched"`` (event-horizon macro-turns, DESIGN.md §5.15);
        ``None`` resolves through :func:`repro.config.async_scheduler`.
        Both produce bit-identical results; batched configurations the
        horizon analysis cannot cover (zero latency/alpha costs, a
        neighborless rank, active tracing) fall back to scalar.
    """

    def __init__(self, runner, *, latency: float | None = None,
                 poll_interval: float = 2.0e-6,
                 speed_factors=None, record_every: int = 64,
                 scheduler: str | None = None) -> None:
        if poll_interval <= 0.0:
            raise ValueError("poll_interval must be positive")
        if record_every < 1:
            raise ValueError("record_every must be at least 1")
        self.runner = runner
        self.latency = _config.async_latency(latency)
        self.poll_interval = float(poll_interval)
        self.speed_factors = speed_factors
        self.record_every = int(record_every)
        self.scheduler = _config.async_scheduler(scheduler)
        self.aplane: AsyncFlatPlane | None = None
        self.turns = 0

    # ------------------------------------------------------------------
    def _base_speed(self, P: int) -> np.ndarray | None:
        """Resolve ``speed_factors`` into a per-rank array (or None)."""
        spec = self.speed_factors
        if spec is None:
            spec = _config.async_speed_factors()
        if spec is None:
            return None
        if isinstance(spec, np.ndarray):
            arr = np.asarray(spec, dtype=np.float64)
            if arr.shape != (P,):
                raise ValueError("speed_factors array must have one "
                                 "entry per process")
            return arr
        if isinstance(spec, str):
            spec = _config.parse_speed_factors(spec)
        base = np.ones(P)
        for rank, factor in spec:
            rank = int(rank)
            if not 0 <= rank < P:
                raise ValueError(f"speed factor rank {rank} out of "
                                 f"range for {P} processes")
            base[rank] = float(factor)
        if np.any(base <= 0.0):
            raise ValueError("speed factors must be positive")
        return base

    # ------------------------------------------------------------------
    def _deliver_apply(self, p: int) -> bool:
        """Deliver ``p``'s ready mail; apply deltas, refresh the norm."""
        sids = self.aplane.deliver(p)
        if not sids:
            return False
        self._apply_payload(p, sids)
        return True

    def _apply_payload(self, p: int, sids: list[int]) -> None:
        """Apply delivered slots to ``p``'s residual and ghost state.

        ``sids`` must be :meth:`AsyncFlatPlane.deliver`'s ordering for
        one rank (stamp, then slot-id); the batched scheduler feeds it
        per-member slices of :meth:`AsyncFlatPlane.deliver_batch`'s
        output, which preserves exactly that order."""
        runner = self.runner
        aplane = self.aplane
        flops = self._c_flops
        solve_eids = [s >> 1 for s in sids if not (s & 1)]
        if solve_eids:
            voff = self._c_voff
            recv_flops = 0.0
            r_flat = self._c_r_flat
            grows = self._c_grows
            wire = aplane.wire_vals
            applied = self._c_applied
            edge_flops = self._c_edge_flops
            if len(solve_eids) <= 8:
                # small fan-in: per-edge slices beat multi_arange +
                # np.add.at by a wide margin (rows are unique within
                # one edge, so a direct fancy += is exact)
                for eid in solve_eids:
                    lo = int(voff[eid])
                    hi = int(voff[eid + 1])
                    w = wire[lo:hi]
                    r_flat[grows[lo:hi]] += w - applied[lo:hi]
                    applied[lo:hi] = w
                    recv_flops += float(edge_flops[eid])
            else:
                eids = np.array(solve_eids, dtype=np.int64)
                idx = multi_arange(voff[eids], voff[eids + 1])
                np.add.at(r_flat, grows[idx], wire[idx] - applied[idx])
                applied[idx] = wire[idx]
                recv_flops = float(edge_flops[eids].sum())
            flops[p] += 2.0 * recv_flops
        r_p = self._c_r_blocks[p]
        self._c_norms[p] = math.sqrt(np.dot(r_p, r_p))
        flops[p] += 2.0 * r_p.size      # the refresh_norm charge
        fr = runner._faults
        if fr is not None and fr.message_faults:
            # the fault paths (stale masking) index with ndarrays
            arr = np.asarray(sids, dtype=np.int64)
            runner._async_on_deliver(p, arr, aplane.wire_fate[arr],
                                     aplane)
        else:
            runner._async_on_deliver(p, sids, _EMPTY, aplane)

    def _apply_payload_batch(self, ranks: np.ndarray, sids: np.ndarray,
                             counts: np.ndarray) -> None:
        """Fault-free vectorized :meth:`_apply_payload` for a whole
        delivery batch: ``sids`` concatenated member-major (per member
        in stamp order), ``counts`` per member.

        Receiver state is rank-local and slot payload regions are
        disjoint, so the per-member loops collapse into concatenated
        scatters.  Accumulation order for duplicate residual rows is
        the member-major concatenation order — exactly the per-member
        order the scalar path applies — and the per-member flop charges
        replay the scalar path's two sequential adds (``reduceat`` is a
        left-to-right fold, matching the small-fan-in ``+=`` loop; big
        fan-ins re-sum with ``np.sum`` to match its pairwise order).
        """
        runner = self.runner
        aplane = self.aplane
        flops = self._c_flops
        solve_mask = (sids & 1) == 0
        if solve_mask.any():
            voff = self._c_voff
            wire = aplane.wire_vals
            applied = self._c_applied
            grows = self._c_grows
            eids = sids[solve_mask] >> 1
            mem = np.repeat(np.arange(ranks.size), counts)[solve_mask]
            idx = multi_arange(voff[eids], voff[eids + 1])
            w = wire[idx]
            np.add.at(self._c_r_flat, grows[idx], w - applied[idx])
            applied[idx] = w
            ef = self._c_edge_flops[eids]
            scount = np.bincount(mem, minlength=ranks.size)
            heads = np.cumsum(scount) - scount
            recv = np.zeros(ranks.size)
            ne = scount > 0
            recv[ne] = np.add.reduceat(ef, heads[ne])
            for k in np.flatnonzero(scount > 8).tolist():
                recv[k] = float(ef[heads[k]:heads[k] + scount[k]].sum())
            flops[ranks] += 2.0 * recv
        r_blocks = self._c_r_blocks
        norms = self._c_norms
        for p in ranks.tolist():
            r_p = r_blocks[p]
            norms[p] = math.sqrt(np.dot(r_p, r_p))
        flops[ranks] += 2.0 * self._c_bsizes[ranks]
        runner._async_on_deliver_batch(ranks, sids, counts, aplane)

    def _force_lossy(self) -> None:
        """Cumulative solve payloads even without a fault plan (async
        slots have latest-wins overwrite semantics, so a superseded
        in-flight message must apply as a no-op)."""
        runner = self.runner
        if runner._lossy:
            return
        plane = runner.engine.flat
        runner._lossy = True
        runner._dedupe_dups = False
        runner._cum_flat = np.zeros_like(plane.vals_flat)
        runner._applied_flat = np.zeros_like(plane.vals_flat)
        runner._cum_slab = runner._rank_slabs(runner._cum_flat)

    # ------------------------------------------------------------------
    def prepare(self, x0: np.ndarray, b: np.ndarray) -> None:
        """Run method setup and build the event plane, clocks at zero.

        ``run`` calls this itself when it has not been called; exposing
        it separately lets callers front-load the one-time setup cost
        (slab construction, local factorizations, plane allocation)
        before entering the event loop — e.g. to time or profile the
        steady-state engine on its own.
        """
        runner = self.runner
        runner.setup(x0, b)
        if not runner._use_flat:
            raise AsyncUnsupportedError(
                "the async runtime needs the flat message plane: "
                "object-plane-only configurations (delay-rate fault "
                "plans, legacy delay injection, methods outside the "
                "flat contract) cannot run asynchronously")
        self._force_lossy()
        P = runner.system.n_parts
        self.aplane = AsyncFlatPlane(
            runner.engine.flat, runner.engine.stats,
            cost_model=runner.engine.cost_model,
            latency=self.latency,
            speed_factors=self._base_speed(P),
            tracer=runner.tracer, faults=runner._faults)
        # cache the stable hot-path arrays (fixed after _force_lossy) so
        # the delivery loop skips the attribute chases
        self._c_voff = runner.engine.flat.vals_off
        self._c_flops = runner._flops
        self._c_r_flat = runner._r_flat
        self._c_grows = runner._grows_flat
        self._c_applied = runner._applied_flat
        self._c_edge_flops = runner._edge_recv_flops
        self._c_r_blocks = runner.r_blocks
        self._c_norms = runner.norms
        self._c_bsizes = np.array([rb.size for rb in runner.r_blocks],
                                  dtype=np.int64)
        self._prepared = True

    def run(self, x0: np.ndarray | None = None,
            b: np.ndarray | None = None, max_steps: int = 50,
            target_norm: float | None = None,
            stop_at_target: bool = False,
            max_turns: int | None = None,
            max_time: float | None = None):
        """Run the method event-driven; returns its ConvergenceHistory.

        ``max_steps`` converts to a turn budget (``max_steps × P × 8``)
        when ``max_turns`` is not given, so lockstep and async calls
        take comparable budget arguments; ``max_time`` bounds simulated
        seconds instead.  ``x0``/``b`` may be omitted when ``prepare``
        was already called.
        """
        runner = self.runner
        if not getattr(self, "_prepared", False):
            if x0 is None or b is None:
                raise ValueError("run() needs x0 and b unless "
                                 "prepare() was called first")
            self.prepare(x0, b)
        self._prepared = False      # one event loop per prepare
        P = runner.system.n_parts
        if max_turns is None:
            max_turns = int(max_steps) * P * 8
        if self._use_batched(P):
            return self._run_batched(target_norm, stop_at_target,
                                     max_turns, max_time)
        stats = runner.engine.stats
        fr = runner._faults
        aplane = self.aplane
        trc = runner.tracer
        tracing = trc.enabled
        if tracing:
            trc.begin_run(runner.name, P)
        stalling = fr is not None and bool(fr._stall_by_rank)
        slowing = fr is not None and bool(fr._slow_by_rank)
        patience = (runner._active_plan.deadlock_patience * P
                    if runner._active_plan is not None else None)
        flops = runner._flops
        clocks = aplane.clocks
        next_at = aplane._next_at
        poll = self.poll_interval
        turn_of = [0] * P
        # a rank is *clean* when its last evaluation produced no relax
        # and no repair: until something is delivered to it, both hooks
        # are pure functions of unchanged state, so re-running them is
        # provably a no-op and the turn can go straight to the idle
        # path.  Heartbeat retries and stall/slowdown windows depend on
        # the turn counter, so the shortcut only arms without a fault
        # runtime.
        clean = bytearray(P)
        skippable = fr is None
        turns = 0
        idle_streak = 0
        win_active = 0
        win_turns = 0
        last_closed = 0.0
        dirty = False

        def sample() -> float:
            nonlocal last_closed, win_active, win_turns, dirty
            stats.close_step(time=aplane.elapsed - last_closed)
            last_closed = aplane.elapsed
            norm = runner.global_norm()
            runner.history.append(
                norm=norm,
                relaxations=runner.total_relaxations,
                parallel_steps=turns,
                comm_cost=stats.communication_cost(),
                time=stats.elapsed_time(),
                active_fraction=win_active / max(1, win_turns))
            win_active = 0
            win_turns = 0
            dirty = False
            return norm

        n_pending = aplane.n_pending
        parked = aplane.parked
        while turns < max_turns:
            if not aplane._heap:
                # every rank is parked with an empty mailbox: no future
                # event can occur (nothing in flight, nothing to do)
                break
            p = aplane.next_process()
            if max_time is not None and clocks[p] >= max_time:
                aplane.reschedule(p)
                break
            turn_of[p] = t_p = turn_of[p] + 1
            delivered = (next_at[p] <= clocks[p]
                         and self._deliver_apply(p))
            if skippable and clean[p] and not delivered:
                # nothing arrived since the last no-op evaluation
                acted = False
            else:
                f0 = flops[p]
                slowdown = fr.rank_slowdown(p, t_p) if slowing else 1.0
                acted = delivered
                if delivered:
                    aplane.advance_compute(p, float(flops[p] - f0),
                                           slowdown)
                    f0 = flops[p]
                stalled = stalling and fr.rank_stalled(p, t_p)
                relaxed = False
                if not stalled and runner._async_decide(p):
                    runner._relax_one_flat(p)
                    aplane.advance_compute(p, float(flops[p] - f0),
                                           slowdown)
                    f0 = flops[p]
                    runner._async_send(p, aplane, t_p)
                    acted = relaxed = True
                if not stalled and runner._async_repair(p, aplane, t_p):
                    acted = True
                if flops[p] != f0:
                    aplane.advance_compute(p, float(flops[p] - f0),
                                           slowdown)
                clean[p] = not relaxed
            if acted:
                idle_streak = 0
                win_active += 1
                aplane.reschedule(p)
            else:
                idle_streak += 1
                if skippable and clean[p] and not n_pending[p]:
                    # park: clean with an empty mailbox — the rank will
                    # provably no-op every poll until something arrives,
                    # so leave the heap and let the next inbound send
                    # wake it at the message's stamp (asyncplane.send)
                    parked[p] = 1
                else:
                    wake = clocks[p] + poll
                    if next_at[p] < wake:
                        # the bound says a message may land before the
                        # poll horizon — pay the exact scan
                        wake = min(wake, aplane.earliest_pending(p))
                    aplane.advance_idle(p, wake - clocks[p])
                    aplane.reschedule(p)
            turns += 1
            win_turns += 1
            dirty = True
            if turns % self.record_every == 0:
                norm = sample()
                if (stop_at_target and target_norm is not None
                        and norm <= target_norm):
                    break
            if (patience is not None and idle_streak >= patience
                    and aplane.in_flight == 0
                    and runner.global_norm() > (target_norm or 0.0)):
                # graceful degradation (DESIGN.md §5.11): every rank
                # idled a full patience round with nothing in flight —
                # no future event can change any state
                runner.degraded = True
                runner.degraded_reason = runner._deadlock_diagnosis()
                break

        # drain: jump each rank with pending mail to its earliest stamp
        # so nothing sent is left unapplied (keeps the final norms a
        # pure function of the event sequence)
        while aplane.in_flight:
            progressed = False
            for p in range(P):
                nxt = aplane.earliest_pending(p)
                if np.isfinite(nxt):
                    if nxt > clocks[p]:
                        aplane.advance_idle(p, float(nxt - clocks[p]))
                    if self._deliver_apply(p):
                        progressed = True
                        dirty = True
            if not progressed:      # pragma: no cover - defensive
                break
        if dirty:
            sample()
        runner.steps_taken = turns
        self.turns = turns
        if tracing:
            trc.end_run(stats, faults=fr.summary() if fr is not None
                        else None)
        return runner.history

    # ------------------------------------------------------------------
    # batched event-horizon scheduler (DESIGN.md §5.15)
    # ------------------------------------------------------------------
    def _use_batched(self, P: int) -> bool:
        """Whether the batched scheduler's horizon analysis covers this
        configuration (falls back to the scalar oracle otherwise)."""
        if self.scheduler != "batched" or P <= 1:
            return False
        if self.runner.tracer.enabled:
            # results would be identical, but the trace event stream
            # interleaves by phase instead of by turn — stay scalar so
            # traced runs replay exactly
            return False
        aplane = self.aplane
        if not (aplane.latency > 0.0 and aplane._alpha > 0.0
                and aplane._alpha_recv > 0.0):
            # the lookahead window and the re-entry lower bounds both
            # collapse under zero-cost models: every batch degenerates
            # to one member, so the scalar loop is strictly faster
            return False
        src = np.asarray(self.runner.engine.flat.edge_src, dtype=np.int64)
        if int(np.bincount(src, minlength=P).min()) == 0:
            # a neighborless rank relaxes without a send charge, which
            # breaks the >= alpha re-entry bound the truncation rule
            # leans on
            return False
        return True

    def _run_batched(self, target_norm, stop_at_target, max_turns,
                     max_time):
        """Event-horizon macro-turns: run every rank whose turn provably
        precedes all in-window deliveries and re-entries, in four
        vectorized phases plus a scalar replay of the per-turn effects.

        Exactness argument (DESIGN.md §5.15): a macro-turn selects the
        non-parked ranks with ``clock < H = min_clock + latency`` in
        (clock, rank) heap order, then truncates at the first member
        whose turn the scalar oracle would NOT run next — i.e. the
        first whose clock is not strictly below every earlier member's
        re-entry lower bound (``alpha_recv`` above its clock when it
        delivers; the cheapest of a send charge, a poll wake and its
        earliest pending stamp otherwise), and the first holding a
        deliverable slot another candidate could restamp.  Within the
        surviving prefix the scalar engine would execute exactly these
        turns in exactly this order, every in-window send stamps at or
        beyond ``H`` (so phase-1 deliveries cannot miss or gain a
        message), and per-member state is rank-local — so delivering,
        deciding and relaxing as phases, then replaying clock charges
        and sends per member in turn order, reproduces the scalar
        state transition bit for bit.
        """
        runner = self.runner
        stats = runner.engine.stats
        fr = runner._faults
        aplane = self.aplane
        P = runner.system.n_parts
        stalling = fr is not None and bool(fr._stall_by_rank)
        slowing = fr is not None and bool(fr._slow_by_rank)
        batch_apply = fr is None or not fr.message_faults
        patience = (runner._active_plan.deadlock_patience * P
                    if runner._active_plan is not None else None)
        flops = runner._flops
        clocks = aplane.clocks
        next_at = aplane._next_at
        n_pending = aplane.n_pending
        parked = aplane.parked
        poll = self.poll_interval
        alpha = aplane._alpha
        alpha_recv = aplane._alpha_recv
        record_every = self.record_every
        turn_of = np.zeros(P, dtype=np.int64)
        clean = np.zeros(P, dtype=np.uint8)
        skippable = fr is None
        turns = 0
        # scheduler introspection (reported by scripts/bench_async.py):
        # macro-turn count per kind and turns committed by each
        n_macro = 0
        n_lad = 0
        lad_turns = 0
        idle_streak = 0
        win_active = 0
        win_turns = 0
        last_closed = 0.0
        dirty = False

        def sample() -> float:
            nonlocal last_closed, win_active, win_turns, dirty
            stats.close_step(time=aplane.elapsed - last_closed)
            last_closed = aplane.elapsed
            norm = runner.global_norm()
            runner.history.append(
                norm=norm,
                relaxations=runner.total_relaxations,
                parallel_steps=turns,
                comm_cost=stats.communication_cost(),
                time=stats.elapsed_time(),
                active_fraction=win_active / max(1, win_turns))
            win_active = 0
            win_turns = 0
            dirty = False
            return norm

        idle_t = aplane.idle

        def light_replay(rr: np.ndarray, acted: np.ndarray,
                         streak: int) -> int:
            """Commit a run of light members (no sends, repairs or
            relaxes) in one chunk: flip them clean, park or advance the
            non-acted ones to their poll/pending wake exactly as the
            scalar else-branch does, and return the idle streak — the
            run's trailing non-acted count (or the carried streak plus
            the run when nothing acted)."""
            clean[rr] = 1
            quiet = rr[~acted]
            if quiet.size:
                if skippable:
                    can_park = n_pending[quiet] == 0
                    parked[quiet[can_park]] = 1
                    quiet = quiet[~can_park]
                if quiet.size:
                    wake = clocks[quiet] + poll
                    stale = next_at[quiet] < wake
                    if stale.any():
                        wake[stale] = np.minimum(
                            wake[stale],
                            aplane.earliest_pending_batch(quiet[stale]))
                    dt = wake - clocks[quiet]
                    pos_dt = dt > 0.0
                    if not pos_dt.all():
                        quiet = quiet[pos_dt]
                        dt = dt[pos_dt]
                    clocks[quiet] += dt
                    idle_t[quiet] += dt
            if acted.any():
                return int(np.argmax(acted[::-1]))
            return streak + rr.size

        pos = np.full(P, P, dtype=np.int64)
        ins_off = aplane.ins_off
        ins_flat = aplane.ins_flat
        deliver_at = aplane.deliver_at
        sid_src = aplane.sid_src
        lad_on = (skippable and max_time is None and patience is None)
        # the mailbox layout is static topology, so the full-plane
        # gather scaffolding (offsets, segment heads, member-of-slot)
        # is precomputed once and reused whenever the member set is
        # every rank — the common case until ranks start parking
        all_counts = ins_off[1:] - ins_off[:-1]
        all_cum = np.cumsum(all_counts)
        all_heads = all_cum - all_counts
        all_mid = np.repeat(np.arange(P), all_counts)
        all_nonempty = all_counts > 0

        def ladder(cand: np.ndarray, cc: np.ndarray) -> int:
            """Commit a run of provably *pure* scalar turns — shortcut
            polls and parks of clean ranks with nothing deliverable —
            in vectorized chunks, sampling at every record boundary
            crossed, and return how many turns were committed.

            Every scalar turn strictly before the first hot turn (a
            dirty or deliverable rank's evaluation, in (clock, rank)
            heap order) is a poll or a park of a clean rank: no sends,
            deliveries, repairs or stat charges can occur in between,
            so each rank's poll trajectory is a pure function of its
            frozen earliest-pending stamp and the poll interval.  The
            trajectories are replayed with the scalar branch's own fp
            ops, merged in (clock, rank) order and cut at the bound —
            an exact scalar prefix.  Pure turns leave norms, flops and
            message state untouched, so a record boundary inside the
            run only needs the boundary-exact clocks, which the
            chunked commit maintains (DESIGN.md §5.15).
            """
            nonlocal turns, win_turns, idle_streak, dirty, stop
            nonlocal n_lad, lad_turns
            if cand.size == P:
                counts_all = all_counts
                t = deliver_at[ins_flat]
                nonempty = all_nonempty
                heads = all_heads
            else:
                counts_all = ins_off[cand + 1] - ins_off[cand]
                idx = multi_arange(ins_off[cand], ins_off[cand + 1])
                t = deliver_at[ins_flat[idx]]
                nonempty = counts_all > 0
                heads = np.cumsum(counts_all) - counts_all
            ep = np.full(cand.size, np.inf)
            if t.size:
                ep[nonempty] = np.minimum.reduceat(t, heads[nonempty])
            next_at[cand] = ep  # scan paid for: re-tighten the bounds
            pure = (clean[cand] != 0) & (ep > cc)
            bc, bq = np.inf, -1
            hot = ~pure
            if hot.any():
                hi = np.flatnonzero(hot)
                j = hi[int(np.argmin(cc[hot]))]  # ties: lowest rank
                bc, bq = float(cc[j]), int(cand[j])
            mem = cand[pure]
            if mem.size == 0:
                return 0
            mep = ep[pure]
            # slot lists are static topology: empty slots sit at stamp
            # inf, so "nothing pending" is an infinite earliest stamp —
            # those ranks park after one turn, exactly like the scalar
            # idle branch
            has = np.isfinite(mep)
            c = cc[pure].copy()
            i0 = idle_t[mem].copy()
            act = has.copy()
            # record layout: parks first, then poll rounds — flat index
            # grows with a member's round number, and per-round slices
            # carry the post-turn clock/idle so no full-width history
            # is kept
            keys = [cc[pure][~has]]
            whom = [np.flatnonzero(~has)]
            postc = [c[~has]]
            posti = [i0[~has]]
            budget = max_turns - turns
            nrec = int(whom[0].size)
            rbc, rbq = bc, bq   # running bound tightened by finishers
            while act.any() and nrec < budget:
                ai = np.flatnonzero(act)
                cp = c[ai]
                wake = cp + poll
                e = mep[ai]
                tighten = e < wake
                if tighten.any():
                    wake[tighten] = np.minimum(wake[tighten], e[tighten])
                dt = wake - cp
                live = dt > 0.0
                if not live.all():  # pragma: no cover - defensive
                    act[ai[~live]] = False
                    ai = ai[live]
                    if ai.size == 0:
                        break
                    cp = cp[live]
                    dt = dt[live]
                keys.append(cp)
                whom.append(ai)
                nrec += ai.size
                c[ai] += dt
                i0[ai] += dt
                postc.append(c[ai])
                posti.append(i0[ai])
                fin = mep[ai] <= c[ai]
                if fin.any():
                    # a finished trajectory's next turn is its delivery
                    # at (c, rank): tighten the running bound so later
                    # rounds stop recording keys that can never commit
                    fi = ai[fin]
                    k = int(np.argmin(c[fi]))
                    if (c[fi[k]] < rbc
                            or (c[fi[k]] == rbc
                                and int(mem[fi[k]]) < rbq)):
                        rbc, rbq = float(c[fi[k]]), int(mem[fi[k]])
                nc = c[ai]
                act[ai] = (~fin & ((nc < rbc)
                                   | ((nc == rbc) & (mem[ai] < rbq))))
            # every unrecorded turn of a pending rank — its next poll
            # or its delivery — lands at or beyond (c, rank); fold
            # those in as bound candidates so truncated trajectories
            # stay safe
            if has.any():
                hi = np.flatnonzero(has)
                j = hi[int(np.argmin(c[has]))]
                if c[j] < bc or (c[j] == bc and int(mem[j]) < bq):
                    bc, bq = float(c[j]), int(mem[j])
            key = np.concatenate(keys)
            who = np.concatenate(whom)
            pc = np.concatenate(postc)
            pi_ = np.concatenate(posti)
            rk = mem[who]
            adm = (key < bc) | ((key == bc) & (rk < bq))
            if not adm.any():
                return 0
            aidx = np.flatnonzero(adm)
            order = aidx[np.lexsort((rk[aidx], key[aidx]))]
            take = min(budget, order.size)
            n_lad += 1
            npark = int(whom[0].size)
            done = 0
            while done < take and not stop:
                step = min(take - done,
                           record_every - turns % record_every)
                sel = order[done:done + step]
                done += step
                ws = who[sel]
                so = np.argsort(ws, kind="stable")
                wg = ws[so]
                fg = sel[so]
                last = np.flatnonzero(np.r_[wg[1:] != wg[:-1], True])
                u = wg[last]
                lf = fg[last]
                pollm = lf >= npark
                if pollm.any():
                    # a member's largest committed flat index is its
                    # latest poll: records are round-major and commits
                    # are per-member key prefixes
                    clocks[mem[u[pollm]]] = pc[lf[pollm]]
                    idle_t[mem[u[pollm]]] = pi_[lf[pollm]]
                if not pollm.all():
                    parked[mem[u[~pollm]]] = 1
                turn_of[mem[u]] += np.diff(np.r_[-1, last])
                turns += step
                win_turns += step
                idle_streak += step
                lad_turns += step
                dirty = True
                if turns % record_every == 0:
                    norm = sample()
                    if (stop_at_target and target_norm is not None
                            and norm <= target_norm):
                        stop = True
            return done

        stop = False
        while turns < max_turns and not stop:
            # ---- phase 0: candidates, horizon, exact turn prefix
            cand = np.flatnonzero(parked == 0)
            if cand.size == 0:
                break               # all parked: no future event
            cc = clocks[cand]
            if lad_on:
                # the heap-min rank decides the mode: when it is clean
                # with nothing deliverable (next_at is a safe low
                # bound), the next scalar turns are a pure poll stretch
                j = int(np.argmin(cc))
                if clean[cand[j]] and next_at[cand[j]] > cc[j]:
                    if ladder(cand, cc):
                        continue
            min_c = cc.min()
            if max_time is not None and min_c >= max_time:
                break
            window = cc < min_c + self.latency
            cand = cand[window]
            cc = cc[window]
            order = np.lexsort((cand, cc))
            mem = cand[order]
            mc = cc[order]
            # cheap caps first — the sample boundary, turn budget and
            # patience bounds need no mailbox state, so the (single)
            # gather below only spans members that could actually run
            cap = min(mem.size, record_every - turns % record_every,
                      max_turns - turns)
            if patience is not None:
                # keep the scalar break turn reachable: near the
                # patience budget degrade to single-member macro-turns
                cap = max(1, min(cap, patience - idle_streak - 1))
            if cap < mem.size:
                mem = mem[:cap]
                mc = mc[:cap]
            # one mailbox snapshot for the whole member set: the
            # earliest-pending stamps, the restamp-hazard scan and the
            # delivery sweep all read from this single gather
            counts_all = ins_off[mem + 1] - ins_off[mem]
            idx = multi_arange(ins_off[mem], ins_off[mem + 1])
            slots = ins_flat[idx]
            t = deliver_at[slots]
            cum = np.cumsum(counts_all)
            heads = cum - counts_all
            mid = np.repeat(np.arange(mem.size), counts_all)
            nonempty = counts_all > 0
            ep = np.full(mem.size, np.inf)
            if t.size:
                ep[nonempty] = np.minimum.reduceat(t, heads[nonempty])
            next_at[mem] = ep  # scan paid for: re-tighten the bounds
            deliverable = ep <= mc
            ready_all = t <= mc[mid]
            n = mem.size
            if n > 1:
                # running re-entry lower bound; first member always
                # runs.  A deliverer's next turn is *exactly* its clock
                # plus the receive charge for every ready slot (the
                # same fp op the plane applies), a clean poller's is
                # exactly its computed wake, a parking member never
                # re-enters; only dirty members need the conservative
                # send-charge floor.
                rcnt = np.zeros(mem.size)
                if t.size:
                    rcnt[nonempty] = np.add.reduceat(
                        ready_all.astype(np.int64), heads[nonempty])
                wake = mc + poll
                tl = ep < wake
                if tl.any():
                    wake[tl] = np.minimum(wake[tl], ep[tl])
                if skippable:
                    # no fault plan: a clean non-deliverer provably
                    # no-ops, so its re-entry is exactly its computed
                    # wake — and with nothing pending it parks and
                    # never re-enters at all
                    no_pend = ~np.isfinite(ep)
                    if no_pend.any():
                        wake[no_pend] = np.inf
                    L = np.where(deliverable, mc + rcnt * alpha_recv,
                                 np.where(clean[mem] != 0, wake,
                                          np.minimum(mc + alpha, wake)))
                else:
                    # under a fault plan the clean shortcut is disabled:
                    # a clean rank still runs decide and may relax, so
                    # every non-deliverer gets the conservative
                    # send-charge floor (and no one parks)
                    L = np.where(deliverable, mc + rcnt * alpha_recv,
                                 np.minimum(mc + alpha, wake))
                ok = mc[1:] < np.minimum.accumulate(L)[:-1]
                if not ok.all():
                    n = 1 + int(np.argmin(ok))
            if max_time is not None:
                n = min(n, int(np.searchsorted(mc[:n], max_time)))
            end = int(cum[n - 1])
            ready = ready_all[:end]
            if n > 1 and deliverable[1:n].any():
                # restamp hazard: an earlier-ordered member's send can
                # overwrite a later member's deliverable slot before
                # that member's scalar turn — cut the batch there (the
                # first member is position 0: nothing precedes it, so it
                # can never be cut and progress is guaranteed)
                pos[mem[:n]] = np.arange(n, dtype=np.int64)
                hazard = ready & (pos[sid_src[slots[:end]]] < mid[:end])
                pos[mem[:n]] = P
                hit = np.flatnonzero(hazard)
                if hit.size:
                    cut = int(mid[hit[0]])
                    if cut > 0:
                        n = cut
                        end = int(cum[n - 1])
                        ready = ready[:end]
            ranks = mem[:n]
            rdel = deliverable[:n]

            # ---- phase 1: batched delivery + payload apply
            if rdel.any():
                sids, counts = aplane.deliver_scanned(
                    ranks, slots[:end], t[:end], mid[:end], ready,
                    counts_all[:n], heads[:n])
                didx = np.flatnonzero(rdel)
                if batch_apply:
                    self._apply_payload_batch(ranks[didx], sids,
                                              counts[didx])
                else:
                    # fault planes mask stale payloads per member —
                    # keep the scalar per-member apply there
                    off = 0
                    for k in didx.tolist():
                        c = int(counts[k])
                        self._apply_payload(int(ranks[k]),
                                            sids[off:off + c].tolist())
                        off += c

            # ---- phase 2: eligibility + batched relax decisions
            tps = turn_of[ranks] + 1
            turn_of[ranks] = tps
            if skippable:
                shortcut = (clean[ranks] != 0) & ~rdel
            else:
                shortcut = np.zeros(n, dtype=bool)
            if stalling:
                stalled = np.fromiter(
                    (fr.rank_stalled(int(p), int(t))
                     for p, t in zip(ranks, tps)), dtype=bool, count=n)
            else:
                stalled = np.zeros(n, dtype=bool)
            elig = ~(shortcut | stalled)
            win = np.zeros(n, dtype=bool)
            if elig.any():
                win[elig] = runner._async_decide_batch(ranks[elig])

            # ---- phase 3: relax every winner (rank-local state only)
            relax_df = np.zeros(n)
            widx = np.flatnonzero(win)
            for k in widx.tolist():
                p = int(ranks[k])
                f0 = flops[p]
                runner._relax_one_flat(p)
                relax_df[k] = float(flops[p] - f0)

            # ---- phase 4: replay clock charges, sends and repairs in
            # scalar turn order (sends must land in turn order: fate
            # streams, restamps and parked wakes all depend on it).
            # Only winners and repair candidates have cross-rank side
            # effects; the runs of "light" members between them — polls,
            # bare deliveries, shortcut turns — touch rank-local state
            # only, so each run is committed as one vectorized chunk at
            # its scalar-order position.
            repair = np.zeros(n, dtype=bool)
            if elig.any():
                repair[elig] = runner._async_repair_mask(ranks[elig],
                                                         win[elig])
            heavy = win | repair
            seg = 0
            for k in np.flatnonzero(heavy).tolist():
                if k > seg:
                    idle_streak = light_replay(ranks[seg:k],
                                               rdel[seg:k], idle_streak)
                seg = k + 1
                p = int(ranks[k])
                t_p = int(tps[k])
                slowdown = (fr.rank_slowdown(p, t_p)
                            if slowing else 1.0)
                acted = bool(rdel[k])
                relaxed = False
                if win[k]:
                    aplane.advance_compute(p, relax_df[k], slowdown)
                    f0 = flops[p]
                    runner._async_send(p, aplane, t_p)
                    acted = relaxed = True
                else:
                    f0 = flops[p]
                if repair[k] and runner._async_repair(p, aplane, t_p):
                    acted = True
                if flops[p] != f0:
                    aplane.advance_compute(p, float(flops[p] - f0),
                                           slowdown)
                clean[p] = not relaxed
                if acted:
                    idle_streak = 0
                    win_active += 1
                else:
                    idle_streak += 1
                    if skippable and clean[p] and not n_pending[p]:
                        parked[p] = 1
                    else:
                        wake = clocks[p] + poll
                        if next_at[p] < wake:
                            wake = min(wake, aplane.earliest_pending(p))
                        aplane.advance_idle(p, wake - clocks[p])
            if n > seg:
                idle_streak = light_replay(ranks[seg:n], rdel[seg:n],
                                           idle_streak)
            win_active += int(rdel[~heavy].sum())
            turns += n
            win_turns += n
            n_macro += 1
            dirty = True
            if turns % record_every == 0:
                # the sample cap pins record boundaries to batch ends,
                # so every phase's effects are committed here
                norm = sample()
                if (stop_at_target and target_norm is not None
                        and norm <= target_norm):
                    stop = True
            if (patience is not None and idle_streak >= patience
                    and aplane.in_flight == 0
                    and runner.global_norm() > (target_norm or 0.0)):
                runner.degraded = True
                runner.degraded_reason = runner._deadlock_diagnosis()
                break

        # drain + final sample: identical to the scalar epilogue
        while aplane.in_flight:
            progressed = False
            for p in range(P):
                nxt = aplane.earliest_pending(p)
                if np.isfinite(nxt):
                    if nxt > clocks[p]:
                        aplane.advance_idle(p, float(nxt - clocks[p]))
                    if self._deliver_apply(p):
                        progressed = True
                        dirty = True
            if not progressed:      # pragma: no cover - defensive
                break
        if dirty:
            sample()
        runner.steps_taken = turns
        self.turns = turns
        self.sched_stats = {"macro_turns": n_macro,
                            "ladder_turns": n_lad,
                            "ladder_committed": lad_turns,
                            "turns": turns}
        return runner.history
