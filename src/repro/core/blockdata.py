"""Distributed block data layout shared by Algorithms 1-3.

After partitioning, the matrix is symmetrically permuted so each process
``p`` owns the contiguous (permuted) rows ``offsets[p]:offsets[p+1]``
(the paper's ``δ`` arrays).  Each process stores:

- its diagonal block ``A_pp`` plus a pre-factorized local solver;
- for every neighbor ``q``, the coupling block
  ``B[(p, q)] = A[β_qp, rows_p]`` — the rows of ``q`` reachable from ``p``'s
  columns (this is "process p stores column i of A" from Section 3): with
  it, ``p`` computes the effect of its own relaxation on ``q``'s residual,
  ``Δr_q[β_qp] = -B @ Δx_p``, *without communication*;
- the boundary index lists ``β[(q, p)]`` (local rows of ``q`` coupled to
  ``p``), which double as the ghost-layer layout of Distributed Southwell.

Everything here is built once per (matrix, partition) pair and shared
read-only by all three distributed methods, so method comparisons run on
identical data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.partition import Partition
from repro.sparsela import COOMatrix, CSRMatrix
from repro.core.local_solvers import LocalSolver, make_local_solver

__all__ = ["BlockSystem", "build_block_system"]


@dataclass
class BlockSystem:
    """All per-process immutable data for one (matrix, partition) pair.

    Attributes
    ----------
    A:
        The permuted global matrix (rows grouped by owner).
    part:
        The partition (``offsets`` index into the permuted numbering).
    diag_blocks:
        ``diag_blocks[p] = A_pp``.
    local_solvers:
        Pre-factorized solver per process.
    couplings:
        ``couplings[(p, q)]`` = CSR of shape ``(len(beta[(q, p)]), m_p)``
        mapping ``Δx_p`` to the residual change on ``q``'s boundary rows.
    beta:
        ``beta[(q, p)]`` = local row indices of ``q`` coupled to ``p``
        (sorted).  ``couplings[(p, q)]`` rows align with ``beta[(q, p)]``.
    """

    A: CSRMatrix
    part: Partition
    diag_blocks: list[CSRMatrix]
    local_solvers: list[LocalSolver]
    couplings: dict[tuple[int, int], CSRMatrix]
    beta: dict[tuple[int, int], np.ndarray]
    perm: np.ndarray = field(default=None)  # original-row permutation used

    @property
    def n(self) -> int:
        return self.A.n_rows

    @property
    def n_parts(self) -> int:
        return self.part.n_parts

    def rows_slice(self, p: int) -> slice:
        """Permuted row range owned by ``p``."""
        return slice(int(self.part.offsets[p]), int(self.part.offsets[p + 1]))

    def size_of(self, p: int) -> int:
        """Number of rows owned by process ``p``."""
        return self.part.size_of(p)

    def neighbors_of(self, p: int) -> np.ndarray:
        """Sorted neighbor ranks of process ``p``."""
        return self.part.neighbors[p]

    def initial_residual(self, x: np.ndarray, b: np.ndarray
                         ) -> list[np.ndarray]:
        """Per-process residual blocks of ``b - A x`` (permuted numbering)."""
        r = b - self.A.matvec(x)
        return [r[self.rows_slice(p)].copy() for p in range(self.n_parts)]


def build_block_system(A: CSRMatrix, part: Partition,
                       local_solver: str = "gs",
                       n_sweeps: int = 1) -> BlockSystem:
    """Build the per-process data (one pass over the matrix).

    ``A`` is in *original* numbering; it is permuted here by ``part.perm``.
    The returned system's vectors (``x``, ``b``, residuals) live in the
    permuted numbering; use ``perm`` to map back.
    """
    Aperm = A.permute(part.perm)
    offsets = part.offsets
    P = part.n_parts
    owner = np.repeat(np.arange(P), np.diff(offsets))

    # ---- diagonal blocks & local solvers
    diag_blocks: list[CSRMatrix] = []
    local_solvers: list[LocalSolver] = []
    for p in range(P):
        rows = np.arange(offsets[p], offsets[p + 1])
        App = Aperm.extract_block(rows, rows)
        diag_blocks.append(App)
        local_solvers.append(make_local_solver(local_solver, App,
                                               n_sweeps=n_sweeps))

    # ---- off-block couplings, grouped by (row owner, col owner)
    rows_g = Aperm._expanded_row_ids()
    cols_g = Aperm.indices
    vals_g = Aperm.data
    po = owner[rows_g]
    qo = owner[cols_g]
    off = po != qo
    rows_o, cols_o, vals_o = rows_g[off], cols_g[off], vals_g[off]
    pr, pc = po[off], qo[off]

    order = np.lexsort((cols_o, rows_o, pc, pr))
    rows_o, cols_o, vals_o = rows_o[order], cols_o[order], vals_o[order]
    pr, pc = pr[order], pc[order]

    couplings: dict[tuple[int, int], CSRMatrix] = {}
    beta: dict[tuple[int, int], np.ndarray] = {}
    if rows_o.size:
        pair_key = pr * P + pc
        starts = np.flatnonzero(np.r_[True, pair_key[1:] != pair_key[:-1]])
        bounds = np.r_[starts, pair_key.size]
        for s, e in zip(bounds[:-1], bounds[1:]):
            q = int(pr[s])          # row owner (receiver of the delta)
            p = int(pc[s])          # column owner (the relaxing process)
            loc_rows = rows_o[s:e] - offsets[q]
            loc_cols = cols_o[s:e] - offsets[p]
            bq = np.unique(loc_rows)
            beta[(q, p)] = bq
            row_pos = np.searchsorted(bq, loc_rows)
            # the lexsort above ordered the group by (row, col) and CSR
            # coordinates are unique, so the sort/reduce pass is skipped
            block = COOMatrix(row_pos, loc_cols, vals_o[s:e],
                              (bq.size, int(offsets[p + 1] - offsets[p]))
                              ).to_csr(dedup=False)
            couplings[(p, q)] = block

    # every neighbor pair must have appeared (neighbor lists come from the
    # same matrix), so cross-check the topology
    for p in range(P):
        for q in part.neighbors[p]:
            if (p, int(q)) not in couplings:
                raise AssertionError(
                    f"neighbor topology inconsistent: ({p},{q}) missing")

    return BlockSystem(A=Aperm, part=part, diag_blocks=diag_blocks,
                       local_solvers=local_solvers, couplings=couplings,
                       beta=beta, perm=part.perm)
