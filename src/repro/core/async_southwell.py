"""Asynchronous Distributed Southwell over the discrete-event engine.

Each process loops independently (no barriers, as under Casper-progressed
one-sided MPI):

1. read whatever has been delivered; apply deltas, correct ghosts/Γ/Γ̃;
2. evaluate the Southwell criterion on the current estimates; if it wins,
   relax and put solve updates;
3. deadlock check: explicitly refresh any neighbor that over-estimates us;
4. if nothing happened, back off briefly (poll interval) so the scheduler
   hands the clock to someone else.

The Γ̃ mirror is no longer exact *in flight* (messages take wall-time to
land) — exactly the regime the deadlock-avoidance rule was built for: an
over-estimate is repaired whenever it is *observed*, so the iteration
keeps making progress under arbitrary skew.  Tests check convergence and
final residual exactness after a full drain; the bench compares time-to-
target against the lockstep engine with and without stragglers.
"""

from __future__ import annotations

import numpy as np

from repro import config as _config
from repro.analysis.history import ConvergenceHistory
from repro.core.blockdata import BlockSystem
from repro.runtime import CATEGORY_RESIDUAL, CATEGORY_SOLVE, CostModel
from repro.runtime.async_engine import AsyncEngine
from repro.runtime.costmodel import CORI_LIKE

__all__ = ["AsyncDistributedSouthwell"]


def _sq(x) -> float:
    v = float(x)
    return v * v


class AsyncDistributedSouthwell:
    """Algorithm 3 without lockstep: one loop body per scheduler turn.

    Parameters mirror :class:`DistributedSouthwell` plus:

    poll_interval:
        Clock advance charged when a turn does nothing (idle polling).
    speed_factors, network_latency:
        Forwarded to :class:`AsyncEngine` (straggler modelling).  When
        left as ``None`` both resolve through :mod:`repro.config`
        (``REPRO_ASYNC_LATENCY`` / ``REPRO_ASYNC_SPEED_FACTORS``), the
        same precedence the ``solve()`` front door uses.
    """

    name = "async-distributed-southwell"

    def __init__(self, system: BlockSystem,
                 cost_model: CostModel = CORI_LIKE,
                 network_latency: float | None = None,
                 poll_interval: float = 2.0e-6,
                 speed_factors: np.ndarray | None = None):
        if poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        self.system = system
        if speed_factors is None:
            pairs = _config.async_speed_factors()
            if pairs:
                speed_factors = np.ones(system.n_parts)
                for rank, factor in pairs:
                    if rank >= system.n_parts:
                        raise ValueError(
                            f"speed-factor rank {rank} out of range for "
                            f"{system.n_parts} processes")
                    speed_factors[rank] = factor
        self.engine = AsyncEngine(
            system.n_parts, cost_model=cost_model,
            network_latency=_config.async_latency(network_latency),
            speed_factors=speed_factors)
        self.poll_interval = poll_interval
        self.total_relaxations = 0
        self.history = ConvergenceHistory()

    # ------------------------------------------------------------------
    def setup(self, x0: np.ndarray, b: np.ndarray) -> None:
        """Initialise per-process state from original-numbering data."""
        sysm = self.system
        n = sysm.n
        x0 = np.asarray(x0, dtype=np.float64)[sysm.perm]
        b = np.asarray(b, dtype=np.float64)[sysm.perm]
        if x0.shape != (n,):
            raise ValueError("x0 must match the matrix size")
        P = sysm.n_parts
        self.x_blocks = [x0[sysm.rows_slice(p)].copy() for p in range(P)]
        self.r_blocks = sysm.initial_residual(x0, b)
        self.norms = np.array([np.linalg.norm(r) for r in self.r_blocks])
        norms_sq = self.norms * self.norms
        self._nbr_pos = [{int(q): i
                          for i, q in enumerate(sysm.neighbors_of(p))}
                         for p in range(P)]
        self.gamma_sq = [norms_sq[sysm.neighbors_of(p)].copy()
                         for p in range(P)]
        self.tilde_sq = [np.full(sysm.neighbors_of(p).size, norms_sq[p])
                         for p in range(P)]
        self.ghost = []
        for p in range(P):
            layers = {}
            for q in sysm.neighbors_of(p):
                q = int(q)
                layers[q] = self.r_blocks[q][sysm.beta[(q, p)]].copy()
            self.ghost.append(layers)
        self.total_relaxations = 0
        self._last_closed = 0.0
        self.history = ConvergenceHistory()
        self.history.append(norm=self.global_norm(), relaxations=0,
                            parallel_steps=0)

    def _close_stats_step(self) -> None:
        """Close a :class:`MessageStats` accounting step at the current
        simulated time, so per-step message/flop curves and
        ``elapsed_time()`` stay reconciled with the event clocks."""
        now = self.engine.elapsed
        self.engine.stats.close_step(time=max(0.0, now - self._last_closed))
        self._last_closed = now

    def global_norm(self) -> float:
        """Exact global residual norm (simulation-level diagnostic)."""
        return float(np.sqrt(np.sum(self.norms ** 2)))

    # ------------------------------------------------------------------
    def _receive(self, p: int) -> bool:
        """Read delivered messages; returns True if anything arrived."""
        msgs = self.engine.read(p)
        if not msgs:
            return False
        changed = False
        for msg in msgs:
            if "vals" in msg.payload:
                rows = self.system.beta[(p, msg.src)]
                self.r_blocks[p][rows] += msg.payload["vals"]
                self.engine.charge_compute(p, float(rows.size))
                changed = True
        if changed:
            self.norms[p] = np.linalg.norm(self.r_blocks[p])
            self.engine.charge_compute(p, 2.0 * self.r_blocks[p].size)
        for msg in msgs:
            pos = self._nbr_pos[p][msg.src]
            self.ghost[p][msg.src] = msg.payload["z"].copy()
            self.gamma_sq[p][pos] = msg.payload["own_norm_sq"]
            self.tilde_sq[p][pos] = msg.payload["your_est_sq"]
        return True

    def _wins(self, p: int) -> bool:
        own = _sq(self.norms[p])
        if own <= 0.0:
            return False
        g = self.gamma_sq[p]
        if g.size == 0:
            return True
        m = float(g.max())
        if own > m:
            return True
        if own == m:
            nbrs = self.system.neighbors_of(p)
            return p < int(nbrs[g == m].min())
        return False

    def _relax_and_send(self, p: int) -> None:
        sysm = self.system
        solver = sysm.local_solvers[p]
        r_p = self.r_blocks[p]
        dx = solver.apply(r_p)
        self.engine.charge_compute(p, solver.flops)
        App = sysm.diag_blocks[p]
        r_p -= App.matvec(dx)
        self.engine.charge_compute(p, 2.0 * App.nnz)
        self.x_blocks[p] += dx
        self.norms[p] = np.linalg.norm(r_p)
        self.total_relaxations += r_p.size
        new_sq = _sq(self.norms[p])
        for q in sysm.neighbors_of(p):
            q = int(q)
            block = sysm.couplings[(p, q)]
            vals = -block.matvec(dx)
            self.engine.charge_compute(p, 2.0 * block.nnz)
            pos = self._nbr_pos[p][q]
            z = self.ghost[p][q]
            old_c = float(z @ z)
            z += vals
            new_c = float(z @ z)
            self.gamma_sq[p][pos] = max(
                self.gamma_sq[p][pos] - old_c + new_c, new_c)
            self.tilde_sq[p][pos] = new_sq
            self.engine.put(p, q, CATEGORY_SOLVE, {
                "vals": vals,
                "z": self.r_blocks[p][sysm.beta[(p, q)]].copy(),
                "own_norm_sq": new_sq,
                "your_est_sq": float(self.gamma_sq[p][pos]),
            })

    def _deadlock_check(self, p: int) -> bool:
        own_sq = _sq(self.norms[p])
        over = self.tilde_sq[p] > own_sq
        if not np.any(over):
            return False
        nbrs = self.system.neighbors_of(p)
        for pos in np.flatnonzero(over):
            q = int(nbrs[pos])
            self.tilde_sq[p][pos] = own_sq
            self.engine.put(p, q, CATEGORY_RESIDUAL, {
                "z": self.r_blocks[p][self.system.beta[(p, q)]].copy(),
                "own_norm_sq": own_sq,
                "your_est_sq": float(self.gamma_sq[p][pos]),
            })
        return True

    # ------------------------------------------------------------------
    def run(self, x0: np.ndarray, b: np.ndarray,
            max_time: float | None = None,
            max_turns: int | None = None,
            target_norm: float | None = None,
            record_every: int = 256) -> ConvergenceHistory:
        """Event loop until a simulated-time / turn budget or the target.

        ``record_every`` controls the history sampling cadence (in
        scheduler turns).
        """
        if max_time is None and max_turns is None:
            raise ValueError("need max_time and/or max_turns")
        self.setup(x0, b)
        turns = 0
        while True:
            if max_turns is not None and turns >= max_turns:
                break
            if max_time is not None and self.engine.elapsed >= max_time:
                break
            p = self.engine.next_process()
            got = self._receive(p)
            acted = got
            if self._wins(p):
                self._relax_and_send(p)
                acted = True
            if self._deadlock_check(p):
                acted = True
            if not acted:
                # idle: skip ahead to the next delivery if it is sooner
                # than a poll interval away, else poll
                nxt = self.engine.earliest_pending(p)
                wake = self.engine.clocks[p] + self.poll_interval
                if nxt is not None and nxt > self.engine.clocks[p]:
                    wake = min(wake, nxt)
                self.engine.charge_idle(
                    p, float(wake) - float(self.engine.clocks[p]))
            self.engine.reschedule(p)
            turns += 1
            if turns % record_every == 0:
                norm = self.global_norm()
                self._close_stats_step()
                self.history.append(
                    norm=norm, relaxations=self.total_relaxations,
                    parallel_steps=turns,
                    comm_cost=self.engine.stats.communication_cost(),
                    time=self.engine.elapsed)
                if target_norm is not None and norm <= target_norm:
                    break
        self._close_stats_step()
        self.history.append(norm=self.global_norm(),
                            relaxations=self.total_relaxations,
                            parallel_steps=turns,
                            comm_cost=self.engine.stats.communication_cost(),
                            time=self.engine.elapsed)
        return self.history

    # ------------------------------------------------------------------
    def drain(self) -> None:
        """Deliver and apply all in-flight traffic (post-run consistency):
        jump every clock past every stamp and read once more."""
        horizon = self.engine.elapsed
        for p in range(self.system.n_parts):
            nxt = self.engine.earliest_pending(p)
            while nxt is not None:
                horizon = max(horizon, nxt)
                self.engine.charge_idle(
                    p, max(0.0, horizon - float(self.engine.clocks[p])))
                self._receive(p)
                nxt = self.engine.earliest_pending(p)

    def solution(self) -> np.ndarray:
        """Assembled solution in original row numbering."""
        n = self.system.n
        x_perm = np.empty(n)
        for p in range(self.system.n_parts):
            x_perm[self.system.rows_slice(p)] = self.x_blocks[p]
        x = np.empty(n)
        x[self.system.perm] = x_perm
        return x

    def residual_vector(self) -> np.ndarray:
        """Assembled residual in original row numbering."""
        n = self.system.n
        r_perm = np.empty(n)
        for p in range(self.system.n_parts):
            r_perm[self.system.rows_slice(p)] = self.r_blocks[p]
        r = np.empty(n)
        r[self.system.perm] = r_perm
        return r
