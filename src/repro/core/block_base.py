"""Shared machinery for the distributed block methods (Algorithms 1-3).

A *parallel step* of any of the three methods is a fixed sequence of phases
with an RMA epoch between them (Section 2.4 / 3 of the paper):

1. decide + relax + put solve updates,
2. drain windows, apply updates, possibly put residual messages,
3. drain windows, refresh residual-norm bookkeeping.

:class:`BlockMethodBase` owns the mutable solver state (per-process ``x_p``,
``r_p``, exact block norms), the relaxation primitive (local solve +
neighbor-delta computation, with flop accounting), the run loop, and the
history recording; subclasses implement :meth:`step` with their phase logic.

Invariant maintained by the messaging discipline: at the end of every
parallel step, each ``r_p`` equals the owner's exact block of
``b - A x`` for the current global ``x`` — verified directly by the tests.

Two message planes (DESIGN.md §5.8): the *object* plane (dict payloads,
:class:`~repro.runtime.message.Message` objects — needed whenever delay
injection lets a message outlive its step) and the preallocated
*flat-buffer* plane for the paper's synchronous-epoch runs.  The base
class owns the shared flat machinery: the concatenated neighbor slab
(``_nbr_flat`` + ``_nbr_off`` offsets) that turns the per-rank
``wins_neighborhood`` scan into one segment-max (:meth:`_wins_vector`),
and the per-edge mailbox setup that points the relax workspaces straight
at the mailbox buffers.  Eligibility is decided per :meth:`setup` from
the runtime mode (``REPRO_RUNTIME``), the delay setting, and the
subclass's :meth:`_flat_supported` hook; both paths are bit-for-bit and
byte-for-byte equivalent (pinned by ``tests/test_runtime_fastpath.py``).
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.history import ConvergenceHistory
from repro.core.blockdata import BlockSystem
from repro.faults import FaultPlan, FaultRuntime
from repro.runtime import (CATEGORY_SOLVE, CORI_LIKE, CostModel,
                           ParallelEngine, runtime_mode)
from repro.runtime.flatplane import _INT32_LIMIT, multi_arange
from repro.runtime.pool import CMD_APPLY, CMD_RELAX
from repro.sparsela.backend import get_backend
from repro.sparsela.csr import CSRMatrix
from repro.trace import NULL_TRACER, tracer_from_config

__all__ = ["BlockMethodBase"]


class BlockMethodBase:
    """State and primitives common to Block Jacobi, PS and DS.

    Parameters
    ----------
    system:
        Immutable per-process data (blocks, couplings, local solvers).
    cost_model:
        Pricing for the simulated wall-clock.
    delay_probability, seed:
        Staleness injection for the runtime (0 = paper behaviour).
    faults:
        Optional :class:`~repro.faults.FaultPlan` (DESIGN.md §5.11): a
        frozen, seeded schedule of message drops / duplications /
        reorderings / delays, per-process stalls and slowdowns.  A null
        plan (all rates zero, no schedules) compiles to disabled
        machinery and is bit-identical to ``faults=None``.
    """

    name = "block-method"

    def __init__(self, system: BlockSystem, cost_model: CostModel = CORI_LIKE,
                 delay_probability: float = 0.0, seed: int = 0,
                 speed_factors=None, tracer=None,
                 faults: FaultPlan | None = None):
        self.system = system
        self.tracer = tracer if tracer is not None else tracer_from_config()
        self.engine = ParallelEngine(system.n_parts, cost_model=cost_model,
                                     delay_probability=delay_probability,
                                     seed=seed, speed_factors=speed_factors,
                                     tracer=self.tracer)
        self.fault_plan = faults
        self._legacy_delay = delay_probability
        self._active_plan: FaultPlan | None = None
        self._faults: FaultRuntime | None = None
        self._lossy = False
        #: graceful-degradation outcome of the last run (DESIGN.md §5.11):
        #: True when the run wedged (no active process, nothing in flight,
        #: residual above target) and stopped instead of spinning
        self.degraded = False
        self.degraded_reason: str | None = None
        #: explicit residual repair messages sent (DS lines 27-30 plus
        #: any loss-hardening re-sends)
        self.repairs_sent = 0
        P = system.n_parts
        self.x_blocks: list[np.ndarray] = [np.zeros(0)] * P
        self.r_blocks: list[np.ndarray] = [np.zeros(0)] * P
        self.norms = np.zeros(P)
        self.total_relaxations = 0
        self.steps_taken = 0
        self.history = ConvergenceHistory()
        self._initialized = False
        #: optional hook applied to every step's relax decision *after*
        #: fault stalls: ``mask -> mask`` over the per-process boolean
        #: decision vector.  Installed by the multigrid block smoothers
        #: to truncate a step's winners to the remaining relaxation
        #: budget (DESIGN.md §5.16); ``None`` (the default) is a no-op.
        #: Deliberately NOT reset by :meth:`setup` — it belongs to the
        #: adapter that owns this runner, not to one run.
        self._relax_filter = None
        # Preallocated hot-path workspaces: the diagonal-block matvec
        # output per process, one send buffer per coupling (the outgoing
        # Δr message), and one gather buffer per boundary list (receive
        # side).  With synchronous epochs (delay_probability == 0) every
        # solve message is consumed within the step that produced it, so
        # the send buffers can be reused and a parallel step performs no
        # per-neighbor allocation; with staleness injection a message may
        # outlive the step, so each delta is a fresh array instead.
        self._reuse_delta_buffers = (delay_probability == 0.0)
        self._ws_Ax = [np.empty(system.size_of(p)) for p in range(P)]
        self._ws_delta_own = {pq: np.empty(block.n_rows)
                              for pq, block in system.couplings.items()}
        self._ws_delta = self._ws_delta_own
        self._ws_gather = {qp: np.empty(rows.size)
                           for qp, rows in system.beta.items()}
        # concatenated neighbor slab: neighbors_of(p) for every p laid out
        # back to back, with offsets — the decision phase and the deadlock
        # scan become single segment operations over it
        counts = np.array([system.neighbors_of(p).size for p in range(P)],
                          dtype=np.int64)
        self._nbr_off = np.zeros(P + 1, dtype=np.int64)
        np.cumsum(counts, out=self._nbr_off[1:])
        self._nbr_flat = (np.concatenate(
            [system.neighbors_of(p) for p in range(P)]).astype(np.int64)
            if int(counts.sum()) else np.zeros(0, dtype=np.int64))
        self._slab_owner = np.repeat(np.arange(P, dtype=np.int64), counts)
        self._nbr_nonempty = counts > 0
        self._use_flat = False
        #: shared-memory execution plane (DESIGN.md §5.12): built lazily
        #: at the first step of a run when the runtime mode is ``shm``
        self._shm = None
        self._want_shm = False
        #: sticky "this run forked shm workers" marker — outlives the
        #: plane's teardown so RSS accounting knows to fold in
        #: ``RUSAGE_CHILDREN`` (the workers' pages are theirs, not ours)
        self._shm_was_active = False

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def setup(self, x0: np.ndarray, b: np.ndarray,
              permuted: bool = False) -> None:
        """Initialise state from an initial guess and right-hand side.

        ``x0``/``b`` are in original row numbering unless ``permuted``.
        Subclasses extend this with their estimate structures.
        """
        sysm = self.system
        n = sysm.n
        x0 = np.asarray(x0, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        if x0.shape != (n,) or b.shape != (n,):
            raise ValueError("x0 and b must match the matrix size")
        if not permuted:
            x0 = x0[sysm.perm]
            b = b[sysm.perm]
        self._b_perm = b.copy()
        P = sysm.n_parts
        self.x_blocks = [x0[sysm.rows_slice(p)].copy() for p in range(P)]
        self.r_blocks = sysm.initial_residual(x0, b)
        self.norms = np.array([np.linalg.norm(r) for r in self.r_blocks])
        self.total_relaxations = 0
        self.steps_taken = 0
        self.history = ConvergenceHistory()
        self.history.append(norm=self.global_norm(), relaxations=0,
                            parallel_steps=0, comm_cost=0.0, time=0.0,
                            active_fraction=0.0)
        # compile the fault plan (a null plan compiles to nothing at all —
        # the bit-identity contract) and attach it to the window system
        # before either plane is configured
        plan = self.fault_plan
        if plan is not None and plan.is_null:
            plan = None
        self._active_plan = plan
        self._faults = (FaultRuntime(plan, P, tracer=self.tracer)
                        if plan is not None else None)
        self._lossy = plan is not None and plan.lossy
        self.degraded = False
        self.degraded_reason = None
        self.repairs_sent = 0
        self.engine.windows.faults = self._faults
        # fault-plan delays, like legacy delay injection, let a message
        # outlive its epoch: per-message storage, no buffer reuse
        self._reuse_delta_buffers = (
            self._legacy_delay == 0.0
            and (plan is None or not plan.requires_object_plane))
        self._shm_close()       # a previous run's worker pool, if any
        mode = runtime_mode()
        self._use_flat = (self._reuse_delta_buffers
                          and mode != "object"
                          and self._flat_supported())
        self._want_shm = self._use_flat and mode == "shm"
        if self._use_flat:
            self._configure_flat_plane()
        else:
            self._ws_delta = self._ws_delta_own
            self.engine.windows.flat = None
        if self._lossy:
            self._init_lossy_state()
        self._initialized = True

    # ------------------------------------------------------------------
    # flat-buffer message plane (DESIGN.md §5.8)
    # ------------------------------------------------------------------
    def _flat_supported(self) -> bool:
        """Can this method drive the flat-buffer plane?

        Overridden by subclasses: False whenever a messaging hook changes
        the one-solve-plus-one-residual-per-edge-per-epoch contract (the
        thresholded variant's send suppression, the PS piggyback
        ablation's double sends).
        """
        return False

    def _flat_ghost_rows(self, p: int, q: int) -> int:
        """Ghost (``z``) payload length on edge ``(p, q)``; 0 = no ghosts."""
        return 0

    def _flat_message_nbytes(self, n_vals: int, n_z: int
                             ) -> tuple[int, int]:
        """Wire sizes ``(solve, residual)`` of this method's messages on an
        edge with the given buffer lengths — must equal ``payload_nbytes``
        on the equivalent dict payloads so both planes charge identical
        bytes."""
        raise NotImplementedError  # pragma: no cover

    def _configure_flat_plane(self) -> None:
        """Attach preallocated per-edge mailboxes and point the outgoing
        delta workspaces at them (a relax then writes the wire payload in
        place — no copy, no allocation)."""
        sysm = self.system
        keys = sorted(sysm.couplings)
        edges = [(p, q, sysm.couplings[(p, q)].n_rows,
                  self._flat_ghost_rows(p, q)) for p, q in keys]
        eid_map = self.engine.configure_flat(edges)
        plane = self.engine.flat
        self._flat_eid = eid_map
        # index plans follow the plane's dtype (the int32 fast path of
        # the million-row campaign); row indices get it only when the
        # global row count also fits
        idt = plane.idx_dtype
        # header-row slab indices (Γ/Γ̃ scatter plans) ride the same
        # dtype: every value is bounded by the slab length, which fits
        # whenever the plane's offsets do
        self._nbr_off = self._nbr_off.astype(idt, copy=False)
        self._nbr_flat = self._nbr_flat.astype(idt, copy=False)
        self._slab_owner = self._slab_owner.astype(idt, copy=False)
        self._out_eids = [
            np.array([eid_map[(p, int(q))] for q in sysm.neighbors_of(p)],
                     dtype=idt)
            for p in range(sysm.n_parts)]
        E = plane.n_edges
        self._flat_solve_nbytes = np.zeros(E, dtype=np.int64)
        self._flat_res_nbytes = np.zeros(E, dtype=np.int64)
        for key, eid in eid_map.items():
            s, r = self._flat_message_nbytes(plane.vals[eid].size,
                                             plane.zbuf[2 * eid].size)
            self._flat_solve_nbytes[eid] = s
            self._flat_res_nbytes[eid] = r
        # per-slot wire sizes, so batched puts can trace exact bytes
        plane.sid_nbytes[0::2] = self._flat_solve_nbytes
        plane.sid_nbytes[1::2] = self._flat_res_nbytes
        self._ws_delta = {key: plane.vals[eid]
                          for key, eid in eid_map.items()}
        P = sysm.n_parts
        # receive plan: one contiguous residual backing store (r_blocks
        # become views into it) plus, parallel to the mailbox backing
        # store, each delta entry's *global* destination row — a whole
        # epoch's solve updates then apply as one in-place scatter-add
        # (:meth:`_apply_flat_epoch`).  Also the sender's position in each
        # receiver's neighbor list (the Γ slab scatter index).
        sizes = np.array([sysm.size_of(p) for p in range(P)],
                         dtype=np.int64)
        rstart = np.zeros(P + 1, dtype=np.int64)
        np.cumsum(sizes, out=rstart[1:])
        self._block_sizes = sizes
        self._rstart = rstart
        row_idt = (np.int32 if (idt is np.int32
                                and int(rstart[-1]) <= _INT32_LIMIT)
                   else np.int64)
        self._r_flat = np.concatenate(self.r_blocks)
        self.r_blocks = [self._r_flat[rstart[p]:rstart[p + 1]]
                         for p in range(P)]
        self._grows_flat = np.empty(int(plane.vals_off[-1]),
                                    dtype=row_idt)
        self._edge_recv_flops = (
            plane.vals_off[1:] - plane.vals_off[:-1]).astype(np.float64)
        pos_of = [{int(q): i for i, q in enumerate(sysm.neighbors_of(p))}
                  for p in range(P)]
        self._eid_pos = np.zeros(E, dtype=idt)
        for eid in range(E):
            s = int(plane.edge_src[eid])
            d = int(plane.edge_dst[eid])
            self._grows_flat[plane.vals_off[eid]:plane.vals_off[eid + 1]] \
                = rstart[d] + sysm.beta[(d, s)]
            self._eid_pos[eid] = pos_of[d][s]
        # per slot-id, the receiver's Γ-slab position of the sender — one
        # fancy scatter updates every receiver's records for a whole epoch
        self._sid_slabpos = np.repeat(
            self._nbr_off[plane.edge_dst] + self._eid_pos,
            2).astype(idt, copy=False)
        # python mirror for the async per-slot header scatter, where
        # scalar list reads beat ndarray indexing
        self._sid_slabpos_list = self._sid_slabpos.tolist()
        # slab-aligned send plans: each (owner, neighbor) position's edge
        # and slot-ids, plus per-rank fan-out shapes — the phase loops
        # batch a whole epoch's sends into one put_epoch call (the slab
        # is owner-major with neighbors ascending, which is exactly the
        # per-put order of the object path)
        self._slab_eids = (np.concatenate(self._out_eids)
                           if self._slab_owner.size
                           else np.zeros(0, dtype=idt))
        self._slab_solve_sids = 2 * self._slab_eids
        self._slab_res_sids = 2 * self._slab_eids + 1
        self._nbr_counts = np.diff(self._nbr_off)
        self._all_ranks = np.arange(P, dtype=np.int64)
        self._solve_nbytes_arr = np.array(
            [int(self._flat_solve_nbytes[self._out_eids[p]].sum())
             for p in range(P)], dtype=np.int64)
        self._res_nbytes_arr = np.array(
            [int(self._flat_res_nbytes[self._out_eids[p]].sum())
             for p in range(P)], dtype=np.int64)
        # z-payload gather plan: each z entry's source row as a global
        # residual-store index, plus per-rank z spans (out-edges are
        # contiguous) — any set of outgoing z payloads fills with one
        # fancy copy out of the residual store
        zoff = plane.z_off
        self._zsrc_grows = np.empty(int(zoff[-1]), dtype=row_idt)
        # ghost-scatter span bounds index the z store, so they fit in
        # the plane dtype by construction
        self._zspan_lo = np.zeros(P, dtype=idt)
        self._zspan_hi = np.zeros(P, dtype=idt)
        if self._zsrc_grows.size:       # methods that ship z payloads
            for eid in range(E):
                s = int(plane.edge_src[eid])
                d = int(plane.edge_dst[eid])
                self._zsrc_grows[zoff[eid]:zoff[eid + 1]] = (
                    rstart[s] + sysm.beta[(s, d)])
        for p in range(P):
            eids = self._out_eids[p]
            if eids.size:
                self._zspan_lo[p] = zoff[eids[0]]
                self._zspan_hi[p] = zoff[eids[-1] + 1]
        # relaxation plans: the open step's per-process flop counters
        # (+= on the view is exactly engine.charge_flops) and per-block
        # matvec plans with the kernel dispatch hoisted out of the loop.
        # Flat-path only: the object plane stays the seed implementation.
        self._flops = self.engine.stats._step_flops
        bk = get_backend()
        self._mv_diag = [bk.matvec_plan(sysm.diag_blocks[p])
                         for p in range(P)]
        self._diag_flops = [2.0 * sysm.diag_blocks[p].nnz for p in range(P)]
        # fan-out plan: each rank's coupling blocks stacked vertically
        # (neighbor order) into one CSR whose matvec writes the whole
        # fan-out of deltas straight into the rank's mailbox slab — one
        # kernel call per relax instead of one per neighbor.  Each CSR row
        # is an independent dot, so stacking is bit-identical to the
        # per-block products it replaces.
        self._mv_fanout = []
        for p in range(P):
            nbrs = sysm.neighbors_of(p)
            if nbrs.size == 0:
                self._mv_fanout.append(None)
                continue
            blocks = [sysm.couplings[(p, int(q))] for q in nbrs]
            rows = sum(b.n_rows for b in blocks)
            indptr = np.empty(rows + 1, dtype=np.int64)
            indptr[0] = 0
            r0 = nnz0 = 0
            for blk in blocks:
                indptr[r0 + 1:r0 + 1 + blk.n_rows] = blk.indptr[1:] + nnz0
                r0 += blk.n_rows
                nnz0 += blk.nnz
            stacked = CSRMatrix(indptr,
                                np.concatenate([b.indices for b in blocks]),
                                np.concatenate([b.data for b in blocks]),
                                (rows, sysm.size_of(p)))
            self._mv_fanout.append(bk.matvec_plan(stacked))
        # fused hot-path bindings: the local solve with any python wrapper
        # peeled off, and every relax flop charge folded into one per-rank
        # constant — each term is an integer-valued float, so the batched
        # add is exactly the object path's per-charge sum
        self._solver_call = [
            getattr(sysm.local_solvers[p], "apply_fast", None)
            or sysm.local_solvers[p].apply for p in range(P)]
        self._relax_flops = [
            sysm.local_solvers[p].flops + self._diag_flops[p]
            + 2.0 * sysm.size_of(p)
            + sum(2.0 * sysm.couplings[(p, int(q))].nnz
                  for q in sysm.neighbors_of(p))
            for p in range(P)]
        # per-sender contiguous delta slab over the mailbox backing store
        # (edges sorted by (src, dst) make a rank's fan-out one region)
        for p in range(P):
            eids = self._out_eids[p]
            if eids.size and int(eids[-1] - eids[0]) != eids.size - 1:
                raise RuntimeError(
                    "flat plane expects each rank's out-edges contiguous")
        self._vals_slab = self._rank_slabs(plane.vals_flat)

    def _rank_slabs(self, store: np.ndarray) -> list[np.ndarray]:
        """Per-rank contiguous views of a vals-shaped backing store."""
        voff = self.engine.flat.vals_off
        slabs = []
        for p in range(self.system.n_parts):
            eids = self._out_eids[p]
            lo = int(voff[eids[0]]) if eids.size else 0
            hi = int(voff[eids[-1] + 1]) if eids.size else 0
            slabs.append(store[lo:hi])
        return slabs

    # ------------------------------------------------------------------
    # fault plane (DESIGN.md §5.11)
    # ------------------------------------------------------------------
    def _init_lossy_state(self) -> None:
        """Allocate the cumulative self-healing solve-payload state.

        Under a lossy plan (drops or duplicates possible) a plain delta
        message is unsafe: a lost delta corrupts the receiver's residual
        forever, a doubled one applies twice.  Instead each sender ships
        the *running sum* of its deltas per edge and each receiver
        applies ``received − applied_so_far`` — any later message on the
        edge heals every earlier loss, and replays apply zero.  Both
        planes compute the delta into a workspace first and then
        scatter-add it, so they stay bit-identical.
        """
        sysm = self.system
        plan = self._active_plan
        self._dedupe_dups = (plan.solve.duplicate > 0.0
                             or plan.residual.duplicate > 0.0)
        if self._use_flat:
            plane = self.engine.flat
            self._cum_flat = np.zeros_like(plane.vals_flat)
            self._applied_flat = np.zeros_like(plane.vals_flat)
            self._cum_slab = self._rank_slabs(self._cum_flat)
        else:
            self._cum_sent = {pq: np.zeros(block.n_rows)
                              for pq, block in sysm.couplings.items()}
            self._cum_applied = {qp: np.zeros(rows.size)
                                 for qp, rows in sysm.beta.items()}
            self._ws_gather2 = {qp: np.empty(rows.size)
                                for qp, rows in sysm.beta.items()}
            self._last_seq = {qp: -1 for qp in sysm.beta}

    def _outgoing_vals(self, p: int, q: int,
                       delta: np.ndarray) -> np.ndarray:
        """The solve payload for edge ``(p, q)``: the delta itself, or
        under a lossy plan the cumulative per-edge sum (a fresh copy —
        the running sum keeps mutating while the message is in flight).
        """
        if not self._lossy:
            return delta
        cum = self._cum_sent[(p, q)]
        cum += delta
        return cum.copy()

    def _lossy_finalize_send(self, p: int) -> None:
        """Flat-path counterpart of :meth:`_outgoing_vals`: swap the
        just-relaxed raw delta slab for the running per-edge sum (the
        wire payload under a lossy plan).  Callers invoke it *after* any
        use of the raw deltas — the DS ghost update needs them — with
        the same ``cum + delta`` add order as the object path."""
        cs = self._cum_slab[p]
        cs += self._vals_slab[p]
        self._vals_slab[p][:] = cs

    def _apply_update(self, p: int, msg) -> bool:
        """Apply one solve message's boundary values to ``r_p``; returns
        whether anything changed (a replayed or out-of-date cumulative
        message applies nothing)."""
        vals = msg.payload["vals"]
        if not self._lossy:
            self.apply_delta(p, msg.src, vals)
            return True
        key = (p, msg.src)
        if msg.seq <= self._last_seq[key]:
            return False                # duplicate or out-of-order replay
        self._last_seq[key] = msg.seq
        applied = self._cum_applied[key]
        ws = self._ws_gather2[key]
        np.subtract(vals, applied, out=ws)      # the still-missing delta
        rows = self.system.beta[key]
        r_p = self.r_blocks[p]
        g = self._ws_gather[key]
        np.take(r_p, rows, out=g)
        g += ws
        r_p[rows] = g
        applied[:] = vals
        self.engine.charge_flops(p, 2.0 * rows.size)
        return True

    def _mask_stalled(self, relaxed: np.ndarray) -> np.ndarray:
        """Clear the relax decision of every rank stalled this step.

        Stalls suppress compute only: a stalled rank still drains its
        window and answers in the later phases (one-sided progress does
        not need the target's CPU)."""
        fr = self._faults
        if fr is not None:
            mask = fr.stall_mask(self.steps_taken + 1)
            if mask is not None:
                relaxed = relaxed & ~mask
        if self._relax_filter is not None:
            relaxed = self._relax_filter(relaxed)
        return relaxed

    def _deadlock_diagnosis(self) -> str:
        """One-line explanation reported when a faulted run degrades.

        Subclasses refine it with their belief state (what each process
        thinks its neighbors' norms are)."""
        return (f"no active process and nothing in flight for "
                f"{self._active_plan.deadlock_patience} consecutive steps "
                f"with global residual norm {self.global_norm():.3e} "
                f"still above target after {self.steps_taken} steps")

    def _apply_flat_epoch(self) -> None:
        """Apply every solve delta the last epoch close delivered and
        refresh the receivers' exact block norms.

        Flat-plane read-phase helper: with synchronous epochs every
        message drained in a solve read phase is a solve update, so the
        per-message category check of the object path is statically true.
        The whole epoch applies as one scatter-add over the global
        residual store — ``np.add.at`` is unbuffered (index pairs apply
        sequentially in index order), so with the indices laid out in put
        order each residual entry sees its updates in exactly the object
        path's per-message sequence; different receivers' blocks are
        disjoint.  Charges match :meth:`apply_delta` +
        :meth:`refresh_norm` exactly (integer-valued terms, any
        grouping).

        Under a lossy fault plan the payloads are cumulative: adjacent
        duplicate deliveries (the only same-epoch repeats the single-slot
        mailboxes can produce) collapse to one, and each edge applies
        ``received − applied_so_far`` — the same delta, in the same
        order, as the object path's :meth:`_apply_update`.
        """
        plane = self.engine.flat
        if self._shm is not None:
            self._shm_apply_epoch(plane)
            return
        mail = plane.mail_ranks
        plane.drain_all()
        flops = self._flops
        arr = plane.last_delivered
        if arr.size:
            voff = plane.vals_off
            if self._lossy:
                if self._dedupe_dups and arr.size > 1:
                    keep = np.empty(arr.size, dtype=bool)
                    keep[0] = True
                    np.not_equal(arr[1:], arr[:-1], out=keep[1:])
                    arr = arr[keep]
                eids = arr >> 1
                idx = multi_arange(voff[eids], voff[eids + 1])
                np.add.at(self._r_flat, self._grows_flat[idx],
                          plane.vals_flat[idx] - self._applied_flat[idx])
                self._applied_flat[idx] = plane.vals_flat[idx]
                np.add.at(flops, plane.edge_dst[eids],
                          2.0 * self._edge_recv_flops[eids])
            else:
                eids = arr >> 1
                idx = multi_arange(voff[eids], voff[eids + 1])
                np.add.at(self._r_flat, self._grows_flat[idx],
                          plane.vals_flat[idx])
                np.add.at(flops, plane.edge_dst[eids],
                          self._edge_recv_flops[eids])
        for p in mail:
            r_p = self.r_blocks[p]
            self.norms[p] = math.sqrt(np.dot(r_p, r_p))
            flops[p] += 2.0 * r_p.size  # the refresh_norm charge

    # ------------------------------------------------------------------
    # event-driven async plane hooks (DESIGN.md §5.14)
    #
    # The AsyncExecutor drives one rank at a time in simulated-time
    # order; there are no epochs, so the lockstep step() phases decompose
    # into per-rank hooks.  The executor owns the generic work (deliver
    # solve payload deltas, refresh the norm, charge compute); these
    # hooks supply the method-specific protocol.  Base implementations
    # are Block Jacobi's (relax whenever the local residual is nonzero,
    # headerless solve messages, no repair traffic).
    # ------------------------------------------------------------------
    def _async_decide(self, p: int) -> bool:
        """Whether ``p`` relaxes on its async turn."""
        return float(self.norms[p]) > 0.0

    def _async_decide_batch(self, ranks: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`_async_decide` over a rank subset.

        Must be elementwise bit-identical to calling the scalar hook per
        rank — the batched event-horizon scheduler (DESIGN.md §5.15)
        relies on it; methods overriding one must override both.  The
        base implementation vectorizes the base criterion and falls back
        to the scalar hook for subclasses that only overrode that.
        """
        if type(self)._async_decide is BlockMethodBase._async_decide:
            return self.norms[ranks] > 0.0
        return np.fromiter((self._async_decide(int(p)) for p in ranks),
                           dtype=bool, count=ranks.size)

    def _async_repair_mask(self, ranks: np.ndarray,
                           win: np.ndarray) -> np.ndarray:
        """Which of ``ranks`` (with relax decisions ``win``) need their
        :meth:`_async_repair` hook *called* this turn.

        ``False`` entries must be provable no-ops: the call would return
        0 **and** leave no side effects, so the batched scheduler may
        skip it outright.  When in doubt return ``True`` — a spurious
        call is merely slower, a spurious skip diverges from the scalar
        oracle.
        """
        if type(self)._async_repair is BlockMethodBase._async_repair:
            return np.zeros(ranks.size, dtype=bool)
        return np.ones(ranks.size, dtype=bool)

    def _async_send(self, p: int, aplane, turn: int) -> None:
        """Publish ``p``'s post-relax updates onto the async plane."""
        off = self._nbr_off
        sids = self._slab_solve_sids[off[p]:off[p + 1]]
        kept = aplane.send(p, sids, 0.0, 0.0,
                           int(self._solve_nbytes_arr[p]), CATEGORY_SOLVE)
        self._async_capture_vals(aplane, kept)

    def _async_capture_vals(self, aplane, sids: np.ndarray) -> None:
        """Snapshot the ``vals`` regions of freshly stamped solve slots
        into the wire store (fates landed first — see
        :meth:`AsyncFlatPlane.send`)."""
        if sids.size == 0:
            return
        plane = self.engine.flat
        voff = plane.vals_off
        wire = aplane.wire_vals
        vals = plane.vals_flat
        if sids.size <= 8:
            # small fan-out: contiguous slice copies beat multi_arange
            for sid in sids.tolist():
                eid = sid >> 1
                lo = int(voff[eid])
                hi = int(voff[eid + 1])
                wire[lo:hi] = vals[lo:hi]
        else:
            eids = sids >> 1
            idx = multi_arange(voff[eids], voff[eids + 1])
            wire[idx] = vals[idx]

    def _async_on_deliver(self, p: int, sids: np.ndarray,
                          fates: np.ndarray, aplane) -> None:
        """Method-specific handling of freshly delivered slots (header
        scatters, ghost overwrites); the executor has already applied the
        solve payload deltas to ``r_p``."""

    def _async_on_deliver_batch(self, ranks: np.ndarray,
                                sids: np.ndarray, counts: np.ndarray,
                                aplane) -> None:
        """Fault-free batched counterpart of :meth:`_async_on_deliver`:
        ``sids`` concatenated member-major (stamp order per member),
        ``counts`` per member.  Receiver slab/ghost segments are
        rank-local, so overrides may scatter all members at once as
        long as each member's internal write order is preserved."""

    def _async_repair(self, p: int, aplane, turn: int) -> int:
        """Method-specific repair traffic; returns messages sent."""
        return 0

    # ------------------------------------------------------------------
    # shared-memory execution plane (DESIGN.md §5.12)
    # ------------------------------------------------------------------
    def _relax_one_flat(self, p: int) -> None:
        """One rank's complete relax-phase body on the flat plane.

        The single-process flat step runs it per winner; the shm plane's
        workers run it for their owned winners.  Subclasses extend it
        with their per-winner post-relax work (DS's line-15 ghost
        update, BJ's damping)."""
        self._relax_send(p)
        if self._lossy:
            self._lossy_finalize_send(p)

    def _flat_relax_phase(self, relaxed: np.ndarray) -> None:
        """Run the relax phase for every winner in ``relaxed`` — on the
        worker pool when the shm plane is live, inline otherwise."""
        if self._shm_ensure():
            if relaxed.any():
                self._shm_relax_epoch(relaxed)
            return
        for p in np.flatnonzero(relaxed).tolist():
            self._relax_one_flat(p)

    def _shm_relax_epoch(self, relaxed: np.ndarray) -> None:
        if self.tracer.enabled:
            self._shm_trace_relax(relaxed)
        self._shm.relax_epoch(relaxed)
        # the workers' own counters never cross the fork; the total is
        # deterministic (each winner relaxes its whole block)
        self.total_relaxations += int(self._block_sizes[relaxed].sum())

    def _shm_trace_relax(self, relaxed: np.ndarray) -> None:
        """Replicate the per-winner trace events the workers would have
        emitted (they run with a null tracer), in the sequential winner
        loop's rank order.  Subclasses mirror their extra events."""
        trc = self.tracer
        for p in np.flatnonzero(relaxed).tolist():
            trc.relax(p)

    def _shm_apply_epoch(self, plane) -> None:
        """Worker-parallel :meth:`_apply_flat_epoch`: the driver drains
        (receive charges and trace events stay driver-side), publishes
        the delivered slot-ids and the mailed-ranks mask, and each
        worker scatter-adds the deltas of the receivers it owns."""
        shm = self._shm
        mail = plane.mail_ranks
        plane.drain_all()
        arr = plane.last_delivered
        if self._lossy and self._dedupe_dups and arr.size > 1:
            # collapse adjacent duplicate deliveries into a copy for the
            # shm sid buffer only — ``last_delivered`` itself is read
            # again (with ``last_fates`` alignment) by the DS header pass
            keep = np.empty(arr.size, dtype=bool)
            keep[0] = True
            np.not_equal(arr[1:], arr[:-1], out=keep[1:])
            arr = arr[keep]
        if arr.size == 0 and not mail:
            return          # nothing delivered, no norms to refresh
        shm.mail[:] = False
        if mail:
            shm.mail[mail] = True
        shm.apply_epoch(arr)

    def _shm_apply_range(self, lo: int, hi: int) -> None:
        """One worker's share of :meth:`_apply_flat_epoch`: the epoch's
        deliveries whose receiver it owns — subsetting keeps each
        receiver's put order, and receivers' row blocks are disjoint, so
        the partitioned scatter-add is bit-identical to the sequential
        one — plus the norm refresh of its owned mailed ranks."""
        plane = self.engine.flat
        shm = self._shm
        flops = self._flops
        arr = shm.delivered_sids()
        eids = arr >> 1
        if eids.size:
            dst = plane.edge_dst[eids]
            eids = eids[(dst >= lo) & (dst < hi)]
        if eids.size:
            voff = plane.vals_off
            idx = multi_arange(voff[eids], voff[eids + 1])
            if self._lossy:
                np.add.at(self._r_flat, self._grows_flat[idx],
                          plane.vals_flat[idx] - self._applied_flat[idx])
                self._applied_flat[idx] = plane.vals_flat[idx]
                np.add.at(flops, plane.edge_dst[eids],
                          2.0 * self._edge_recv_flops[eids])
            else:
                np.add.at(self._r_flat, self._grows_flat[idx],
                          plane.vals_flat[idx])
                np.add.at(flops, plane.edge_dst[eids],
                          self._edge_recv_flops[eids])
        mailed = shm.mail
        for p in range(lo, hi):
            if mailed[p]:
                r_p = self.r_blocks[p]
                self.norms[p] = math.sqrt(np.dot(r_p, r_p))
                flops[p] += 2.0 * r_p.size  # the refresh_norm charge

    def _shm_exec(self, w: int, cmd: int, lo: int, hi: int) -> None:
        """Worker-side command dispatch (runs inside the forked pool)."""
        if cmd == CMD_RELAX:
            winners = self._shm.winners
            for p in range(lo, hi):
                if winners[p]:
                    self._relax_one_flat(p)
        elif cmd == CMD_APPLY:
            self._shm_apply_range(lo, hi)
        else:   # pragma: no cover - protocol invariant
            raise RuntimeError(f"unknown shm command {cmd}")

    def _shm_worker_init(self, w: int) -> None:
        """Runs in each worker right after the fork: workers must not
        emit trace events — the driver replicates them deterministically
        (:meth:`_shm_trace_relax`) so trace files stay identical."""
        self.tracer = NULL_TRACER
        self.engine.flat.tracer = NULL_TRACER

    def _shm_ensure(self) -> bool:
        """The shm execution plane, started lazily at the first step.

        Deferring the fork past the subclass's full :meth:`setup` lets
        the workers inherit every immutable plan copy-on-write with zero
        pickling.  One attempt per setup: on failure the run continues
        on the plain flat path, reporting ``degraded_reason``."""
        if self._shm is not None:
            return True
        if not self._want_shm:
            return False
        self._want_shm = False
        self._shm_start()
        return self._shm is not None

    def _shm_start(self) -> None:
        from repro import config as _config
        from repro.runtime.shmplane import ShmExecutionPlane, ShmUnavailable

        plane = self.engine.flat
        shm = None
        try:
            movables = self._shm_movables()
            extra = (sum(int(a.nbytes) for a in movables)
                     + int(self._r_flat.nbytes)     # the x store
                     + 64 * (len(movables) + 3))
            # demand-driven sid capacity: a fault-free epoch delivers at
            # most one payload per directed edge (2E slots); lossy plans
            # can duplicate fates, so keep the 4E ceiling only then
            sid_cap = (4 if self._lossy else 2) * plane.n_edges + 8
            shm = ShmExecutionPlane(
                self.system.n_parts, self._block_sizes,
                _config.shm_workers(), extra_nbytes=extra,
                sid_capacity=sid_cap)
            self._shm = shm
            self._shm_rehome(shm.arena)
            self._flops = shm.flops
            shm.start(self._shm_exec, init=self._shm_worker_init)
            self._shm_was_active = True
        except ShmUnavailable:
            from repro.runtime.shmplane import PRIVATE_ARENA
            if self._shm is not None:
                # move any re-homed state off the segment before it is
                # unmapped, then fall back to the plain flat path
                self._shm_rehome(PRIVATE_ARENA)
            self._shm = None
            self._flops = self.engine.stats._step_flops
            if shm is not None:
                shm.close()
            self.degraded_reason = "shm-unavailable"

    def _shm_movables(self) -> list[np.ndarray]:
        """Mutable arrays both sides touch — re-homed into the arena."""
        arrs = [self._r_flat, self.norms, self.engine.flat.vals_flat]
        if self._lossy:
            arrs += [self._cum_flat, self._applied_flat]
        arrs += self._shm_movables_extra()
        return arrs

    def _shm_movables_extra(self) -> list[np.ndarray]:
        """Subclass hook: extra mutable arrays the workers touch."""
        return []

    def _shm_rehome(self, arena) -> None:
        """Move the mutable run state into the shared arena and rebuild
        every view over it (the fork happens after this, so both sides
        address the same pages)."""
        plane = self.engine.flat
        P = self.system.n_parts
        rs = self._rstart
        self._r_flat = arena.move(self._r_flat)
        self.r_blocks = [self._r_flat[rs[p]:rs[p + 1]] for p in range(P)]
        x_flat = arena.take(int(rs[-1]), np.float64)
        for p in range(P):
            x_flat[rs[p]:rs[p + 1]] = self.x_blocks[p]
        self._x_flat = x_flat
        self.x_blocks = [x_flat[rs[p]:rs[p + 1]] for p in range(P)]
        self.norms = arena.move(self.norms)
        plane.vals_flat = arena.move(plane.vals_flat)
        voff = plane.vals_off
        plane.vals = [plane.vals_flat[voff[e]:voff[e + 1]]
                      for e in range(plane.n_edges)]
        self._ws_delta = {key: plane.vals[eid]
                          for key, eid in self._flat_eid.items()}
        self._vals_slab = self._rank_slabs(plane.vals_flat)
        if self._lossy:
            self._cum_flat = arena.move(self._cum_flat)
            self._applied_flat = arena.move(self._applied_flat)
            self._cum_slab = self._rank_slabs(self._cum_flat)
        self._shm_rehome_extra(arena)

    def _shm_rehome_extra(self, arena) -> None:
        """Subclass hook: re-home method-specific mutable state."""

    def _flat_close_step(self) -> None:
        """Step close for the flat paths: fold the workers' per-rank
        flop charges into the open step before the engine prices it
        (exact — the charge streams are disjoint per rank and every
        term is an integer-valued float)."""
        if self._shm is not None:
            self._shm.fold_flops(self.engine.stats._step_flops)
        self.engine.close_step()

    def _shm_close(self) -> None:
        """Tear down the worker pool (idempotent — :meth:`run` calls it
        in a ``finally`` so a raising step never leaks processes)."""
        shm = self._shm
        self._shm = None
        self._want_shm = False
        if shm is not None:
            from repro.runtime.shmplane import PRIVATE_ARENA
            # copy the mutable state back into private memory first:
            # releasing the segment unmaps its pages, and post-run reads
            # (``solution()``, norms, the residual store) go through the
            # views the rehome rebuilds
            self._shm_rehome(PRIVATE_ARENA)
            shm.close()
            if self._use_flat:
                self._flops = self.engine.stats._step_flops

    # ------------------------------------------------------------------
    # primitives
    # ------------------------------------------------------------------
    def relax(self, p: int, damping: float = 1.0) -> dict[int, np.ndarray]:
        """Relax process ``p``'s equations against its current residual.

        Applies the local solver (scaled by ``damping``), updates ``x_p``,
        ``r_p`` and the exact block norm, charges flops, and returns the
        per-neighbor residual deltas ``{q: Δr_q[β_qp]}`` ready to be sent.
        """
        sysm = self.system
        solver = sysm.local_solvers[p]
        if self.tracer.enabled:
            self.tracer.relax(p)
        r_p = self.r_blocks[p]
        dx = solver.apply(r_p)
        if damping != 1.0:
            dx *= damping               # dx is fresh from the solver
        self.engine.charge_flops(p, solver.flops)
        App = sysm.diag_blocks[p]
        ws = self._ws_Ax[p]
        App.matvec(dx, out=ws)
        r_p -= ws
        self.engine.charge_flops(p, 2.0 * App.nnz)
        self.x_blocks[p] += dx
        self.norms[p] = np.linalg.norm(r_p)
        self.engine.charge_flops(p, 2.0 * r_p.size)
        self.total_relaxations += r_p.size
        deltas: dict[int, np.ndarray] = {}
        for q in sysm.neighbors_of(p):
            q = int(q)
            block = sysm.couplings[(p, q)]
            if self._reuse_delta_buffers:
                buf = self._ws_delta[(p, q)]
            else:
                buf = np.empty(block.n_rows)
            block.matvec(dx, out=buf)
            np.negative(buf, out=buf)
            deltas[q] = buf
            self.engine.charge_flops(p, 2.0 * block.nnz)
        return deltas

    def _relax_send(self, p: int, damping: float = 1.0) -> None:
        """Flat-path :meth:`relax`: deltas land straight in the mailboxes
        (the plan buffers alias them), no deltas dict, dispatch hoisted.

        Bit-identical to :meth:`relax`: same kernels on the same inputs,
        ``sqrt(x·x)`` is exactly ``np.linalg.norm(x)`` for a contiguous
        float64 vector (numpy computes the 2-norm that way; the
        equivalence tests pin it), and the one fused flop charge equals
        the per-term charges because every term is an integer-valued
        float below 2**53.
        """
        if self.tracer.enabled:
            self.tracer.relax(p)
        r_p = self.r_blocks[p]
        dx = self._solver_call[p](r_p)
        if damping != 1.0:
            dx *= damping               # dx is fresh from the solver
        ws = self._ws_Ax[p]
        self._mv_diag[p](dx, ws)
        r_p -= ws
        self.x_blocks[p] += dx
        self.norms[p] = math.sqrt(np.dot(r_p, r_p))
        self._flops[p] += self._relax_flops[p]
        self.total_relaxations += r_p.size
        mv = self._mv_fanout[p]
        if mv is not None:
            # A (−dx) is bit-exactly −(A dx): negation is sign-symmetric
            # through IEEE multiply/add, so negating the input once
            # replaces one np.negative per coupling.  ws is free again
            # after the diagonal update above.
            ndx = np.negative(dx, out=ws)
            mv(ndx, self._vals_slab[p])

    def apply_delta(self, p: int, src: int, vals: np.ndarray) -> None:
        """Apply a received boundary update from ``src`` to ``r_p``.

        Runs through the preallocated gather workspace: take the boundary
        rows, add the delta, scatter back — no temporary arrays.
        """
        rows = self.system.beta[(p, src)]
        r_p = self.r_blocks[p]
        ws = self._ws_gather[(p, src)]
        np.take(r_p, rows, out=ws)
        ws += vals
        r_p[rows] = ws
        self.engine.charge_flops(p, float(rows.size))

    def refresh_norm(self, p: int) -> None:
        """Recompute the exact block norm of ``p`` (charged as flops)."""
        self.norms[p] = np.linalg.norm(self.r_blocks[p])
        self.engine.charge_flops(p, 2.0 * self.r_blocks[p].size)

    def global_norm(self) -> float:
        """Exact global residual norm (diagnostic; no communication)."""
        return float(np.sqrt(np.sum(self.norms ** 2)))

    def wins_neighborhood(self, p: int, own_sq: float,
                          nbr_sq: np.ndarray) -> bool:
        """The Parallel Southwell criterion with a deterministic tie-break.

        ``p`` relaxes iff its squared norm is strictly the largest in its
        neighborhood; exact ties go to the lower rank so two adjacent
        processes never both claim a tie.
        """
        if own_sq <= 0.0:
            return False
        nbrs = self.system.neighbors_of(p)
        if nbrs.size == 0:
            return True
        m = float(nbr_sq.max()) if nbr_sq.size else -np.inf
        if own_sq > m:
            return True
        if own_sq == m:
            ties = nbrs[nbr_sq == m]
            return p < int(ties.min())
        return False

    def _wins_vector(self, own_sq: np.ndarray,
                     gamma_flat: np.ndarray) -> np.ndarray:
        """All ranks' relax decisions in one segment-max over the slab.

        ``own_sq`` is every rank's squared norm; ``gamma_flat`` holds the
        per-rank neighbor-norm arrays concatenated along ``_nbr_off``.
        Bit-identical to calling :meth:`wins_neighborhood` per rank (the
        rare exact-tie segments are settled by that very method).
        """
        pos = own_sq > 0.0
        wins = ~self._nbr_nonempty & pos
        if gamma_flat.size:
            off = self._nbr_off
            m = np.full(own_sq.size, -np.inf)
            m[self._nbr_nonempty] = np.maximum.reduceat(
                gamma_flat, off[:-1][self._nbr_nonempty])
            wins |= pos & (own_sq > m)
            for p in np.flatnonzero(pos & self._nbr_nonempty
                                    & (own_sq == m)):
                p = int(p)
                wins[p] = self.wins_neighborhood(
                    p, float(own_sq[p]), gamma_flat[off[p]:off[p + 1]])
        return wins

    def _wins_window(self, ranks: np.ndarray,
                     gamma_flat: np.ndarray) -> np.ndarray:
        """Relax decisions for just ``ranks``: a windowed gather +
        segment-max over their neighborhoods, bit-identical to
        ``_wins_vector(...)[ranks]`` at O(batch degree) instead of
        O(total edges) cost — the batched async scheduler decides a
        few dozen ranks per macro-turn, so scanning the whole slab
        every call would dominate the macro-turn.
        """
        own = self.norms[ranks]
        own_sq = own * own
        off = self._nbr_off
        counts = off[ranks + 1] - off[ranks]
        wins = (counts == 0) & (own_sq > 0.0)
        ne = counts > 0
        if ne.any() and gamma_flat.size:
            sel = ranks[ne]
            g = gamma_flat[multi_arange(off[sel], off[sel + 1])]
            cne = counts[ne]
            m = np.maximum.reduceat(g, np.cumsum(cne) - cne)
            sub_sq = own_sq[ne]
            pos = sub_sq > 0.0
            w = pos & (sub_sq > m)
            ties = np.flatnonzero(pos & (sub_sq == m))
            for k in ties.tolist():
                p = int(sel[k])
                w[k] = self.wins_neighborhood(
                    p, float(sub_sq[k]), gamma_flat[off[p]:off[p + 1]])
            wins[ne] = w
        return wins

    def _nbr_max_window(self, ranks: np.ndarray,
                        flat: np.ndarray) -> np.ndarray:
        """Per-rank neighborhood maximum of a slab-flat array for just
        ``ranks`` (``-inf`` for isolated ranks) — the windowed
        counterpart of the full segment-max in ``_wins_vector``."""
        off = self._nbr_off
        counts = off[ranks + 1] - off[ranks]
        m = np.full(ranks.size, -np.inf)
        ne = counts > 0
        if ne.any() and flat.size:
            sel = ranks[ne]
            v = flat[multi_arange(off[sel], off[sel + 1])]
            cne = counts[ne]
            m[ne] = np.maximum.reduceat(v, np.cumsum(cne) - cne)
        return m

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def step(self) -> int:
        """One parallel step; returns the number of active processes."""
        raise NotImplementedError  # pragma: no cover

    def run(self, x0: np.ndarray, b: np.ndarray, max_steps: int = 50,
            target_norm: float | None = None,
            stop_at_target: bool = False) -> ConvergenceHistory:
        """Run up to ``max_steps`` parallel steps.

        The paper's methodology runs a fixed number of steps and extracts
        target crossings afterwards by interpolation; ``stop_at_target``
        enables early exit for interactive use instead.
        """
        self.setup(x0, b)
        trc = self.tracer
        tracing = trc.enabled
        if tracing:
            trc.begin_run(self.name, self.system.n_parts)
        fr = self._faults
        quiet = 0
        try:
            for _ in range(max_steps):
                if tracing:
                    trc.step_begin(self.steps_taken + 1)
                msgs_before = self.engine.stats.total_messages
                active = self.step()
                self.steps_taken += 1
                if tracing:
                    trc.step_end(active)
                self.history.append(
                    norm=self.global_norm(),
                    relaxations=self.total_relaxations,
                    parallel_steps=self.steps_taken,
                    comm_cost=self.engine.stats.communication_cost(),
                    time=self.engine.stats.elapsed_time(),
                    active_fraction=active / self.system.n_parts)
                if (stop_at_target and target_norm is not None
                        and self.global_norm() <= target_norm):
                    break
                if fr is not None:
                    # graceful degradation (DESIGN.md §5.11): a fully
                    # quiet step — nobody relaxed, nothing was sent,
                    # nothing is in flight — cannot change any state, so
                    # ``patience`` of them in a row with the residual
                    # still up means the run is wedged; report the
                    # deadlock instead of spinning
                    if (active == 0
                            and self.engine.stats.total_messages
                            == msgs_before
                            and self.engine.windows.in_flight == 0
                            and self.global_norm() > (target_norm or 0.0)):
                        quiet += 1
                        if quiet >= self._active_plan.deadlock_patience:
                            self.degraded = True
                            self.degraded_reason = \
                                self._deadlock_diagnosis()
                            break
                    else:
                        quiet = 0
        finally:
            # the worker pool never outlives its run (the re-homed state
            # stays readable: the shared mapping survives live views)
            self._shm_close()
        if tracing:
            trc.end_run(self.engine.stats,
                        faults=fr.summary() if fr is not None else None)
        return self.history

    # ------------------------------------------------------------------
    # solution access
    # ------------------------------------------------------------------
    def solution(self) -> np.ndarray:
        """Assembled solution vector in *original* row numbering."""
        n = self.system.n
        x_perm = np.empty(n)
        for p in range(self.system.n_parts):
            x_perm[self.system.rows_slice(p)] = self.x_blocks[p]
        x = np.empty(n)
        x[self.system.perm] = x_perm
        return x

    def residual_vector(self) -> np.ndarray:
        """Assembled residual vector in original numbering (diagnostic)."""
        n = self.system.n
        r_perm = np.empty(n)
        for p in range(self.system.n_parts):
            r_perm[self.system.rows_slice(p)] = self.r_blocks[p]
        r = np.empty(n)
        r[self.system.perm] = r_perm
        return r
