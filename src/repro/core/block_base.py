"""Shared machinery for the distributed block methods (Algorithms 1-3).

A *parallel step* of any of the three methods is a fixed sequence of phases
with an RMA epoch between them (Section 2.4 / 3 of the paper):

1. decide + relax + put solve updates,
2. drain windows, apply updates, possibly put residual messages,
3. drain windows, refresh residual-norm bookkeeping.

:class:`BlockMethodBase` owns the mutable solver state (per-process ``x_p``,
``r_p``, exact block norms), the relaxation primitive (local solve +
neighbor-delta computation, with flop accounting), the run loop, and the
history recording; subclasses implement :meth:`step` with their phase logic.

Invariant maintained by the messaging discipline: at the end of every
parallel step, each ``r_p`` equals the owner's exact block of
``b - A x`` for the current global ``x`` — verified directly by the tests.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.history import ConvergenceHistory
from repro.core.blockdata import BlockSystem
from repro.runtime import CORI_LIKE, CostModel, ParallelEngine

__all__ = ["BlockMethodBase"]


class BlockMethodBase:
    """State and primitives common to Block Jacobi, PS and DS.

    Parameters
    ----------
    system:
        Immutable per-process data (blocks, couplings, local solvers).
    cost_model:
        Pricing for the simulated wall-clock.
    delay_probability, seed:
        Staleness injection for the runtime (0 = paper behaviour).
    """

    name = "block-method"

    def __init__(self, system: BlockSystem, cost_model: CostModel = CORI_LIKE,
                 delay_probability: float = 0.0, seed: int = 0,
                 speed_factors=None):
        self.system = system
        self.engine = ParallelEngine(system.n_parts, cost_model=cost_model,
                                     delay_probability=delay_probability,
                                     seed=seed, speed_factors=speed_factors)
        P = system.n_parts
        self.x_blocks: list[np.ndarray] = [np.zeros(0)] * P
        self.r_blocks: list[np.ndarray] = [np.zeros(0)] * P
        self.norms = np.zeros(P)
        self.total_relaxations = 0
        self.steps_taken = 0
        self.history = ConvergenceHistory()
        self._initialized = False
        # Preallocated hot-path workspaces: the diagonal-block matvec
        # output per process, one send buffer per coupling (the outgoing
        # Δr message), and one gather buffer per boundary list (receive
        # side).  With synchronous epochs (delay_probability == 0) every
        # solve message is consumed within the step that produced it, so
        # the send buffers can be reused and a parallel step performs no
        # per-neighbor allocation; with staleness injection a message may
        # outlive the step, so each delta is a fresh array instead.
        self._reuse_delta_buffers = (delay_probability == 0.0)
        self._ws_Ax = [np.empty(system.size_of(p)) for p in range(P)]
        self._ws_delta = {pq: np.empty(block.n_rows)
                          for pq, block in system.couplings.items()}
        self._ws_gather = {qp: np.empty(rows.size)
                           for qp, rows in system.beta.items()}

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def setup(self, x0: np.ndarray, b: np.ndarray,
              permuted: bool = False) -> None:
        """Initialise state from an initial guess and right-hand side.

        ``x0``/``b`` are in original row numbering unless ``permuted``.
        Subclasses extend this with their estimate structures.
        """
        sysm = self.system
        n = sysm.n
        x0 = np.asarray(x0, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        if x0.shape != (n,) or b.shape != (n,):
            raise ValueError("x0 and b must match the matrix size")
        if not permuted:
            x0 = x0[sysm.perm]
            b = b[sysm.perm]
        self._b_perm = b.copy()
        P = sysm.n_parts
        self.x_blocks = [x0[sysm.rows_slice(p)].copy() for p in range(P)]
        self.r_blocks = sysm.initial_residual(x0, b)
        self.norms = np.array([np.linalg.norm(r) for r in self.r_blocks])
        self.total_relaxations = 0
        self.steps_taken = 0
        self.history = ConvergenceHistory()
        self.history.append(norm=self.global_norm(), relaxations=0,
                            parallel_steps=0, comm_cost=0.0, time=0.0,
                            active_fraction=0.0)
        self._initialized = True

    # ------------------------------------------------------------------
    # primitives
    # ------------------------------------------------------------------
    def relax(self, p: int, damping: float = 1.0) -> dict[int, np.ndarray]:
        """Relax process ``p``'s equations against its current residual.

        Applies the local solver (scaled by ``damping``), updates ``x_p``,
        ``r_p`` and the exact block norm, charges flops, and returns the
        per-neighbor residual deltas ``{q: Δr_q[β_qp]}`` ready to be sent.
        """
        sysm = self.system
        solver = sysm.local_solvers[p]
        r_p = self.r_blocks[p]
        dx = solver.apply(r_p)
        if damping != 1.0:
            dx *= damping               # dx is fresh from the solver
        self.engine.charge_flops(p, solver.flops)
        App = sysm.diag_blocks[p]
        ws = self._ws_Ax[p]
        App.matvec(dx, out=ws)
        r_p -= ws
        self.engine.charge_flops(p, 2.0 * App.nnz)
        self.x_blocks[p] += dx
        self.norms[p] = np.linalg.norm(r_p)
        self.engine.charge_flops(p, 2.0 * r_p.size)
        self.total_relaxations += r_p.size
        deltas: dict[int, np.ndarray] = {}
        for q in sysm.neighbors_of(p):
            q = int(q)
            block = sysm.couplings[(p, q)]
            if self._reuse_delta_buffers:
                buf = self._ws_delta[(p, q)]
            else:
                buf = np.empty(block.n_rows)
            block.matvec(dx, out=buf)
            np.negative(buf, out=buf)
            deltas[q] = buf
            self.engine.charge_flops(p, 2.0 * block.nnz)
        return deltas

    def apply_delta(self, p: int, src: int, vals: np.ndarray) -> None:
        """Apply a received boundary update from ``src`` to ``r_p``.

        Runs through the preallocated gather workspace: take the boundary
        rows, add the delta, scatter back — no temporary arrays.
        """
        rows = self.system.beta[(p, src)]
        r_p = self.r_blocks[p]
        ws = self._ws_gather[(p, src)]
        np.take(r_p, rows, out=ws)
        ws += vals
        r_p[rows] = ws
        self.engine.charge_flops(p, float(rows.size))

    def refresh_norm(self, p: int) -> None:
        """Recompute the exact block norm of ``p`` (charged as flops)."""
        self.norms[p] = np.linalg.norm(self.r_blocks[p])
        self.engine.charge_flops(p, 2.0 * self.r_blocks[p].size)

    def global_norm(self) -> float:
        """Exact global residual norm (diagnostic; no communication)."""
        return float(np.sqrt(np.sum(self.norms ** 2)))

    def wins_neighborhood(self, p: int, own_sq: float,
                          nbr_sq: np.ndarray) -> bool:
        """The Parallel Southwell criterion with a deterministic tie-break.

        ``p`` relaxes iff its squared norm is strictly the largest in its
        neighborhood; exact ties go to the lower rank so two adjacent
        processes never both claim a tie.
        """
        if own_sq <= 0.0:
            return False
        nbrs = self.system.neighbors_of(p)
        if nbrs.size == 0:
            return True
        m = float(nbr_sq.max()) if nbr_sq.size else -np.inf
        if own_sq > m:
            return True
        if own_sq == m:
            ties = nbrs[nbr_sq == m]
            return p < int(ties.min())
        return False

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def step(self) -> int:
        """One parallel step; returns the number of active processes."""
        raise NotImplementedError  # pragma: no cover

    def run(self, x0: np.ndarray, b: np.ndarray, max_steps: int = 50,
            target_norm: float | None = None,
            stop_at_target: bool = False) -> ConvergenceHistory:
        """Run up to ``max_steps`` parallel steps.

        The paper's methodology runs a fixed number of steps and extracts
        target crossings afterwards by interpolation; ``stop_at_target``
        enables early exit for interactive use instead.
        """
        self.setup(x0, b)
        for _ in range(max_steps):
            active = self.step()
            self.steps_taken += 1
            self.history.append(
                norm=self.global_norm(),
                relaxations=self.total_relaxations,
                parallel_steps=self.steps_taken,
                comm_cost=self.engine.stats.communication_cost(),
                time=self.engine.stats.elapsed_time(),
                active_fraction=active / self.system.n_parts)
            if (stop_at_target and target_norm is not None
                    and self.global_norm() <= target_norm):
                break
        return self.history

    # ------------------------------------------------------------------
    # solution access
    # ------------------------------------------------------------------
    def solution(self) -> np.ndarray:
        """Assembled solution vector in *original* row numbering."""
        n = self.system.n
        x_perm = np.empty(n)
        for p in range(self.system.n_parts):
            x_perm[self.system.rows_slice(p)] = self.x_blocks[p]
        x = np.empty(n)
        x[self.system.perm] = x_perm
        return x

    def residual_vector(self) -> np.ndarray:
        """Assembled residual vector in original numbering (diagnostic)."""
        n = self.system.n
        r_perm = np.empty(n)
        for p in range(self.system.n_parts):
            r_perm[self.system.rows_slice(p)] = self.r_blocks[p]
        r = np.empty(n)
        r[self.system.perm] = r_perm
        return r
