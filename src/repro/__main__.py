"""``python -m repro`` — the DMEM_Southwell-style command line."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
