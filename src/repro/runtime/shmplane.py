"""Shared-memory execution plane for the flat-buffer runtime.

``REPRO_RUNTIME=shm`` / ``RunConfig(runtime="shm")`` keeps the flat
plane's exact message semantics but executes the per-rank phase work on
W forked worker processes (DESIGN.md §5.12).  The division of labour:

- **workers** (each owning a contiguous rank range, balanced by rows)
  run the heavy per-rank kernels: the relax fan-out (local solve +
  matvecs + mailbox-slab writes, plus DS's ghost-estimate update and the
  lossy cumulative-payload finalize) and the epoch apply (scatter-add of
  the delivered payloads into the residual store + exact norm refresh);
- the **driver** keeps every cheap vectorized control step: the win
  decision, ``put_epoch`` header stamping and stats charges, fault-fate
  draws, epoch delivery, ghost/Γ/Γ̃ header scatters, the deadlock scan
  and repairs, trace emission, and the cost-model step close.

Bit-identity with the single-process flat plane holds because the
per-rank arithmetic is byte-for-byte the same code operating on the same
values, worker rank ranges partition the ranks (every array row is
written by exactly one process), and a pipe barrier separates every
phase, so each side always reads state the other finished writing.

State sharing: the pool is built lazily at the *first* step, after the
method's full :meth:`setup` — the mutable hot arrays (residual store,
``x`` blocks, norms, mailbox slabs, ghost/Γ slabs, lossy cumulative
state) are re-homed into one ``multiprocessing.shared_memory`` segment,
then the workers fork and inherit everything else (solve plans, CSR
matvec plans, topology) copy-on-write with zero pickling.  Flop charges
are the one accounting stream workers generate: they accumulate into a
per-rank shared array (each rank touched only by its owner) that the
driver folds into ``MessageStats`` before pricing the step — adding the
per-rank totals into the zeroed step array is bit-exact against the
sequential charges, so ``MessageStats`` stays byte-identical and trace
aggregation reconciliation stays an equality check.
"""

from __future__ import annotations

import numpy as np

from repro import config as _config
from repro.runtime.pool import (
    CMD_APPLY,
    CMD_RELAX,
    ForkWorkers,
    ShmUnavailable,
    rank_bounds,
)

__all__ = ["PRIVATE_ARENA", "ShmArena", "ShmArenaOverflow",
           "ShmExecutionPlane", "ShmUnavailable"]

_ALIGN = 64


def _aligned(nbytes: int) -> int:
    return (int(nbytes) + _ALIGN - 1) // _ALIGN * _ALIGN


class ShmArenaOverflow(ShmUnavailable):
    """A bump allocation did not fit the shared segment.

    Subclasses :class:`ShmUnavailable` so the runtime's graceful
    flat-plane degradation still catches it, but carries the sizing
    facts (requested / used / capacity bytes and a suggested
    ``REPRO_SHM_MB`` value) so an operator who *wants* the shm plane at
    this problem size knows exactly which knob to turn.
    """

    def __init__(self, requested_nbytes: int, used_nbytes: int,
                 capacity_nbytes: int) -> None:
        self.requested_nbytes = int(requested_nbytes)
        self.used_nbytes = int(used_nbytes)
        self.capacity_nbytes = int(capacity_nbytes)
        need = self.used_nbytes + self.requested_nbytes
        # suggest a floor with ~25% headroom, rounded up to whole MB
        self.suggested_mb = max(1, -(-(need + need // 4) // (1 << 20)))
        free = self.capacity_nbytes - self.used_nbytes
        super().__init__(
            f"shared-memory arena overflow: requested "
            f"{self.requested_nbytes} B but only {free} B of "
            f"{self.capacity_nbytes} B remain "
            f"({self.used_nbytes} B already allocated); set "
            f"REPRO_SHM_MB={self.suggested_mb} to enlarge the segment")


class ShmArena:
    """Bump allocator over one ``multiprocessing.shared_memory`` segment.

    ``take`` returns a fresh shared ndarray; ``move`` re-homes an
    existing private array (copying its contents) so every view rebuilt
    on top of it is process-shared from then on.
    """

    def __init__(self, nbytes: int) -> None:
        try:
            from multiprocessing import shared_memory
        except ImportError as exc:  # pragma: no cover - stdlib present
            raise ShmUnavailable("multiprocessing.shared_memory "
                                 "unavailable") from exc
        try:
            self.seg = shared_memory.SharedMemory(create=True,
                                                  size=max(int(nbytes), 16))
        except (OSError, PermissionError, ValueError) as exc:
            raise ShmUnavailable(
                f"cannot allocate shared memory: {exc}") from exc
        self._off = 0

    def take(self, shape, dtype) -> np.ndarray:
        """Allocate a zeroed shared ndarray from the segment."""
        dtype = np.dtype(dtype)
        n = int(np.prod(shape)) if not np.isscalar(shape) else int(shape)
        nbytes = n * dtype.itemsize
        if self._off + nbytes > self.seg.size:
            raise ShmArenaOverflow(requested_nbytes=nbytes,
                                   used_nbytes=self._off,
                                   capacity_nbytes=self.seg.size)
        arr = np.ndarray(shape, dtype=dtype, buffer=self.seg.buf,
                         offset=self._off)
        self._off += _aligned(nbytes)
        arr[...] = 0
        return arr

    def move(self, arr: np.ndarray) -> np.ndarray:
        """Re-home ``arr`` into the segment, copying its contents."""
        out = self.take(arr.shape, arr.dtype)
        out[...] = arr
        return out

    def release(self) -> None:
        """Unmap and unlink the segment.

        Closing unmaps the pages even while numpy views on them exist
        (the views keep only an object reference, not a buffer export),
        so the owner MUST move state back out — re-run the rehome
        against :data:`PRIVATE_ARENA` — before calling this.
        """
        try:
            self.seg.close()
        except BufferError:     # pragma: no cover - belt and braces
            pass
        try:
            self.seg.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover
            pass


class _PrivateArena:
    """The :class:`ShmArena` allocation interface over ordinary private
    memory — re-running a method's rehome against it copies the mutable
    state back *out* of a shared segment, so the segment can be unmapped
    without leaving any view dangling."""

    @staticmethod
    def take(shape, dtype) -> np.ndarray:
        return np.zeros(shape, dtype=dtype)

    @staticmethod
    def move(arr: np.ndarray) -> np.ndarray:
        return arr.copy()


PRIVATE_ARENA = _PrivateArena()


class ShmExecutionPlane:
    """The worker pool plus its shared control plane, owned by a method.

    Built by :meth:`BlockMethodBase._shm_start` once per ``solve()``
    (every step of the run reuses the same workers — the amortization
    that makes W forks cheaper than per-step process churn).
    """

    def __init__(self, n_ranks: int, sizes: np.ndarray, n_workers: int,
                 extra_nbytes: int, sid_capacity: int) -> None:
        P = int(n_ranks)
        self.n_ranks = P
        self.n_workers = max(1, min(int(n_workers), P))
        self.bounds = rank_bounds(sizes, self.n_workers)
        control = (_aligned(8 * 4)              # meta: epoch, sid count, ...
                   + _aligned(P)                # winners mask (bool)
                   + _aligned(P)                # mailed-ranks mask (bool)
                   + _aligned(8 * sid_capacity)  # delivered slot-ids
                   + _aligned(8 * P))           # per-rank worker flops
        # demand-driven: the caller's rehome estimate plus the control
        # plane, raised to the REPRO_SHM_MB floor when one is set
        need = _aligned(extra_nbytes) + control
        self.arena = ShmArena(max(need, _config.shm_mb() << 20))
        #: [0] = barrier epoch (driver increments, workers cross-check),
        #: [1] = delivered sid count for the pending apply command
        self.meta = self.arena.take(4, np.int64)
        self.winners = self.arena.take(P, np.bool_)
        #: ranks with mail this epoch (norm-refresh set — under a lossy
        #: plan it can exceed the delivered receivers: a rank whose only
        #: message was drop-fated still recomputes and charges its norm)
        self.mail = self.arena.take(P, np.bool_)
        self.sids = self.arena.take(sid_capacity, np.int64)
        self.flops = self.arena.take(P, np.float64)
        self.workers: ForkWorkers | None = None
        self.started = False

    # ------------------------------------------------------------------
    def start(self, target, init=None) -> None:
        """Fork the workers (call only after every array is re-homed).

        ``target(w, cmd, lo, hi)`` is the method's worker entry point; it
        inherits the method object — and through it every shared view —
        via the fork.
        """
        bounds = self.bounds
        meta = self.meta
        epochs = [0] * self.n_workers

        def _run(w: int, cmd: int) -> None:
            epochs[w] += 1
            if int(meta[0]) != epochs[w]:   # pragma: no cover - invariant
                raise RuntimeError(
                    f"shm barrier skew: driver epoch {int(meta[0])}, "
                    f"worker {w} epoch {epochs[w]}")
            lo, hi = bounds[w]
            target(w, cmd, lo, hi)

        self.workers = ForkWorkers(self.n_workers, _run, init=init)
        self.started = True

    # ------------------------------------------------------------------
    # epoch commands (each is a full barrier)
    # ------------------------------------------------------------------
    def _dispatch(self, cmd: int) -> None:
        self.meta[0] += 1
        self.workers.dispatch(cmd)

    def relax_epoch(self, relaxed: np.ndarray) -> None:
        """Run the relax phase for every rank in ``relaxed`` worker-side."""
        self.winners[:] = relaxed
        self._dispatch(CMD_RELAX)

    def apply_epoch(self, sids: np.ndarray) -> None:
        """Scatter-apply the epoch's delivered slot-ids worker-side."""
        n = int(sids.size)
        self.meta[1] = n
        if n:
            self.sids[:n] = sids
        self._dispatch(CMD_APPLY)

    def delivered_sids(self) -> np.ndarray:
        """Worker-side view of the pending apply command's slot-ids."""
        return self.sids[:int(self.meta[1])]

    # ------------------------------------------------------------------
    def fold_flops(self, step_flops: np.ndarray) -> None:
        """Reduce the workers' per-rank flop charges into the open step.

        The step array is all zeros on the flat path outside the worker
        commands, and each rank's shared total accumulated in the same
        order the sequential path would have used, so ``0 + total`` is
        bit-exact against the sequential charges.
        """
        step_flops += self.flops
        self.flops[:] = 0.0

    def close(self) -> None:
        """Terminate the workers and unlink the shared segment.

        The owner must have moved its own state back out of the arena
        first (see :meth:`ShmArena.release`); the control arrays are
        dropped here for the same reason.
        """
        if self.workers is not None:
            self.workers.close()
            self.workers = None
        self.meta = self.winners = self.mail = None
        self.sids = self.flops = None
        if self.arena is not None:
            self.arena.release()
            self.arena = None


def resolve_workers(explicit: int | None = None) -> int:
    """Worker count for the shm plane (``REPRO_WORKERS`` reuse)."""
    return _config.shm_workers(explicit)
