"""Alpha-beta-gamma machine model converting counted events to seconds.

The paper reports wall-clock time on Cori Phase I (Haswell, Aries).  The
simulator counts messages, bytes and floating-point work exactly; this model
maps those counts to a simulated time so time-shaped results (Tables 2/4,
Figures 7/8) can be reproduced *in shape*.  Defaults are Cori-flavoured:
~2 microseconds per message latency, ~6 GB/s effective per-process
bandwidth, ~4 Gflop/s effective per-core scalar sparse throughput.

Per parallel step the model charges the *maximum* over processes of

    flops_p * gamma + msgs_p * alpha + bytes_p * beta

(the lockstep step ends when the slowest process finishes), which is how
Block Jacobi's every-process-active steps end up slower than Distributed
Southwell's sparse steps even though BJ does more useful work per step.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CostModel", "CORI_LIKE", "ZERO_COST"]


@dataclass(frozen=True)
class CostModel:
    """Machine coefficients (LogP-flavoured).

    Attributes
    ----------
    alpha:
        Seconds per *sent* message (origin-side latency/overhead).
    alpha_recv:
        Seconds per *received* message (target-side completion and
        processing overhead — reading the window, applying the update).
        One-sided MPI moves the transfer off the target, but the paper's
        algorithms still read and process every arrived message, so a
        process drowning in arrivals (Block Jacobi: one per neighbor per
        step) pays for it.
    beta:
        Seconds per byte (inverse bandwidth, origin side).
    gamma:
        Seconds per flop (inverse effective compute rate).
    """

    alpha: float = 2.0e-6
    alpha_recv: float = 2.0e-6
    beta: float = 1.6e-10
    gamma: float = 2.5e-10

    def __post_init__(self) -> None:
        if min(self.alpha, self.alpha_recv, self.beta, self.gamma) < 0:
            raise ValueError("cost coefficients must be non-negative")

    def process_time(self, flops: float, msgs: float, nbytes: float,
                     recvs: float = 0.0) -> float:
        """Time charged to one process for one step."""
        return (flops * self.gamma + msgs * self.alpha
                + recvs * self.alpha_recv + nbytes * self.beta)

    def step_time(self, flops: np.ndarray, msgs: np.ndarray,
                  nbytes: np.ndarray,
                  recvs: np.ndarray | None = None,
                  speed_factors: np.ndarray | None = None) -> float:
        """Lockstep step time: the slowest process's time.

        ``speed_factors`` scales each process's *compute* rate (< 1 =
        slower); wire costs are unaffected.  Used for straggler studies.
        """
        if len(flops) == 0:
            return 0.0
        compute = np.asarray(flops, dtype=np.float64) * self.gamma
        if speed_factors is not None:
            compute = compute / np.asarray(speed_factors, dtype=np.float64)
        per_proc = (compute
                    + np.asarray(msgs, dtype=np.float64) * self.alpha
                    + np.asarray(nbytes, dtype=np.float64) * self.beta)
        if recvs is not None:
            per_proc = per_proc + (np.asarray(recvs, dtype=np.float64)
                                   * self.alpha_recv)
        return float(per_proc.max())


#: Cori-Phase-I-flavoured default model.
CORI_LIKE = CostModel()

#: All-free model: simulated time degenerates to zero; counters still work.
ZERO_COST = CostModel(alpha=0.0, beta=0.0, gamma=0.0)
