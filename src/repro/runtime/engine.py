"""Lockstep parallel-step engine tying windows, stats and the cost model.

The distributed solvers (Algorithms 1-3) all share the same skeleton per
parallel step: some processes compute and put, an epoch closes, everyone
reads, possibly puts again, another epoch closes, everyone reads again.
:class:`ParallelEngine` provides that skeleton's primitives; the solver
classes in :mod:`repro.core` and :mod:`repro.solvers` drive it.
"""

from __future__ import annotations

from repro.runtime.costmodel import CORI_LIKE, CostModel
from repro.runtime.stats import MessageStats, StepSnapshot
from repro.runtime.window import WindowSystem
from repro.trace import NULL_TRACER

__all__ = ["ParallelEngine"]


class ParallelEngine:
    """Simulated machine: ``n_procs`` ranks, RMA windows, priced steps.

    Parameters
    ----------
    n_procs:
        Number of virtual processes ``P``.
    cost_model:
        Converts the step's counted events to simulated seconds.
    delay_probability, seed:
        Forwarded to :class:`WindowSystem` staleness injection (0 = the
        paper's synchronous-epoch behaviour).
    """

    def __init__(self, n_procs: int, cost_model: CostModel = CORI_LIKE,
                 delay_probability: float = 0.0, seed: int = 0,
                 speed_factors=None, tracer=None):
        self.n_procs = n_procs
        self.cost_model = cost_model
        self.speed_factors = speed_factors
        self.stats = MessageStats(n_procs)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.windows = WindowSystem(n_procs, stats=self.stats,
                                    delay_probability=delay_probability,
                                    seed=seed, tracer=self.tracer)

    # Convenience passthroughs -----------------------------------------
    def put(self, src: int, dst: int, category: str, payload,
            nbytes: int | None = None) -> None:
        """One one-sided write (buffered until the epoch closes)."""
        self.windows.put(src, dst, category, payload, nbytes=nbytes)

    def drain(self, p: int):
        """Read process ``p``'s window (after an epoch close)."""
        return self.windows.drain(p)

    def configure_flat(self, edges) -> dict[tuple[int, int], int]:
        """Attach the preallocated flat-buffer message plane."""
        return self.windows.configure_flat(edges)

    @property
    def flat(self):
        """The flat-buffer plane, if configured (else ``None``)."""
        return self.windows.flat

    def close_epoch(self) -> int:
        """Collective epoch completion: deliver all buffered puts."""
        return self.windows.close_epoch()

    def charge_flops(self, p: int, flops: float) -> None:
        """Account floating-point work to rank ``p`` this step."""
        self.stats.record_flops(p, flops)

    def close_step(self) -> StepSnapshot:
        """End the parallel step; price it with the cost model.

        A fault plan's slowdown windows (straggler injection) combine
        multiplicatively with the run's base ``speed_factors`` — cost
        model only, the numerics are untouched.
        """
        flops, msgs, nbytes, recvs = self.stats.current_step_arrays()
        sf = self.speed_factors
        fr = self.windows.faults
        if fr is not None:
            sf = fr.speed_factors(self.windows.step_index + 1, sf)
        t = self.cost_model.step_time(flops, msgs, nbytes, recvs,
                                      speed_factors=sf)
        self.windows.step_index += 1
        return self.stats.close_step(time=t)
