"""Optional mpi4py transport behind the edge-plane interface.

Everything else in this package *simulates* the paper's one-sided MPI
runtime so results are deterministic offline.  This module is the bridge
to the real thing: when ``mpi4py`` is installed and the process is
launched under ``mpiexec``, :class:`MpiEdgePlane` carries the same
per-edge payload slabs over nonblocking point-to-point pairs
(``Isend``/``Irecv`` into preallocated receive buffers — the standard
neighbor-exchange idiom), one exchange per epoch, so the paper's actual
multi-rank story can run on physical ranks.

The module always imports cleanly: ``mpi4py`` is only loaded inside
:func:`mpi_available` / the :class:`MpiEdgePlane` constructor, and the
constructor raises ``RuntimeError`` when the transport cannot start.
Nothing in the deterministic planes depends on this file — it is an
exit ramp, not a dependency.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MpiEdgePlane", "mpi_available"]


def mpi_available() -> bool:
    """True when ``mpi4py`` imports and an MPI world communicator exists."""
    try:
        from mpi4py import MPI
    except ImportError:
        return False
    try:
        return MPI.COMM_WORLD.Get_size() >= 1
    except Exception:  # pragma: no cover - broken MPI install
        return False


class MpiEdgePlane:
    """Neighbor exchange for one physical rank over real MPI.

    Mirrors the flat plane's mailbox layout from a single rank's view:
    the rank owns one send slab and one preallocated receive slab per
    neighbor edge, ``exchange()`` posts every ``Isend``/``Irecv`` pair
    and waits them all, and ``recv_slab(q)`` exposes the delivered
    payload with zero copies.  Message/byte accounting matches the
    simulator's charges: one message of ``16 + 8 * n`` bytes per posted
    send (header plus float64 payload).

    Parameters
    ----------
    neighbors : sequence of int
        The peer ranks this rank exchanges with, in deterministic
        (ascending) order — both sides must agree on the edge set.
    slab_sizes : sequence of int
        Payload length (float64 count) per neighbor edge, aligned with
        ``neighbors``.
    comm : optional
        An mpi4py communicator; defaults to ``MPI.COMM_WORLD``.
    """

    #: header bytes charged per message, matching the simulator
    HEADER_NBYTES = 16

    def __init__(self, neighbors, slab_sizes, comm=None) -> None:
        try:
            from mpi4py import MPI
        except ImportError as exc:
            raise RuntimeError(
                "MpiEdgePlane needs mpi4py; install it and launch under "
                "mpiexec, or use REPRO_RUNTIME=shm for single-node "
                "parallelism") from exc
        self._MPI = MPI
        self.comm = comm if comm is not None else MPI.COMM_WORLD
        self.rank = int(self.comm.Get_rank())
        self.n_ranks = int(self.comm.Get_size())
        self.neighbors = [int(q) for q in neighbors]
        if len(slab_sizes) != len(self.neighbors):
            raise ValueError("slab_sizes must align with neighbors")
        if any(q < 0 or q >= self.n_ranks for q in self.neighbors):
            raise RuntimeError(
                f"neighbor rank out of range for world size {self.n_ranks}"
                " — launch with enough ranks (mpiexec -n P)")
        #: preallocated per-neighbor buffers, reused every epoch —
        #: the Irecv targets never reallocate, as in the RMA windows
        self.send_bufs = [np.zeros(int(n), dtype=np.float64)
                          for n in slab_sizes]
        self.recv_bufs = [np.zeros(int(n), dtype=np.float64)
                          for n in slab_sizes]
        self.epoch = 0
        self.total_messages = 0
        self.total_bytes = 0

    # ------------------------------------------------------------------
    def send_slab(self, i: int) -> np.ndarray:
        """The ``i``-th neighbor's outgoing payload buffer (write here)."""
        return self.send_bufs[i]

    def recv_slab(self, i: int) -> np.ndarray:
        """The ``i``-th neighbor's delivered payload (valid after
        :meth:`exchange`)."""
        return self.recv_bufs[i]

    def exchange(self, active=None) -> int:
        """One neighbor-exchange epoch: post all sends and receives,
        wait for completion, charge the accounting.

        ``active`` optionally masks the edge list (aligned with
        ``neighbors``); inactive edges neither send nor receive this
        epoch — both sides must pass the same mask, as with the
        simulator's win decisions.  Returns the number of messages this
        rank sent.
        """
        MPI = self._MPI
        self.epoch += 1
        tag = self.epoch % 32768          # stay under MPI_TAG_UB floors
        sends = []
        recvs = []
        for i, q in enumerate(self.neighbors):
            if active is not None and not active[i]:
                continue
            sends.append(self.comm.Isend(self.send_bufs[i], dest=q,
                                         tag=tag))
            recvs.append(self.comm.Irecv(self.recv_bufs[i], source=q,
                                         tag=tag))
            self.total_messages += 1
            self.total_bytes += self.HEADER_NBYTES + self.send_bufs[i].nbytes
        MPI.Request.Waitall(recvs + sends)
        return len(sends)

    def barrier(self) -> None:
        """Collective barrier (epoch close)."""
        self.comm.Barrier()

    def allreduce_max(self, value: float) -> float:
        """Global max — the decision primitive DS/PS use for norms."""
        return float(self.comm.allreduce(float(value), op=self._MPI.MAX))
