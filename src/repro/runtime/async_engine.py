"""Discrete-event asynchronous execution (no lockstep, no epochs).

The paper's real implementation is one-sided MPI with Casper's
asynchronous progress: processes iterate at their own pace and puts land
whenever the network delivers them.  The lockstep engine models the
epoch-synchronised structure of Algorithms 1-3; this module models the
*asynchronous* regime:

- every virtual process has its own clock, advanced by the cost model as
  it computes and sends;
- a sent message is stamped ``sender_clock + alpha + latency`` and
  becomes readable only once the receiver's clock passes that stamp;
- the scheduler always runs the process with the smallest clock, so the
  interleaving is exactly what heterogeneous speeds + message latencies
  imply (deterministic for fixed parameters).

Used by :class:`repro.core.async_southwell.AsyncDistributedSouthwell`
and the async-vs-lockstep bench.  Per-process speed factors model
stragglers (a node running at half speed), which lockstep punishes and
asynchrony tolerates.
"""

from __future__ import annotations

import heapq
from typing import Any, Mapping

import numpy as np

from repro.runtime.costmodel import CORI_LIKE, CostModel
from repro.runtime.message import Message, payload_nbytes
from repro.runtime.stats import MessageStats

__all__ = ["AsyncEngine"]


class AsyncEngine:
    """Per-process clocks, timestamped mailboxes, smallest-clock scheduling.

    Parameters
    ----------
    n_procs:
        Number of virtual processes.
    cost_model:
        Prices compute (gamma), sends (alpha + beta·bytes) and receives
        (alpha_recv) onto the process clocks.
    network_latency:
        Extra wire time before a message becomes visible (seconds).
    speed_factors:
        Per-process compute-speed multipliers (< 1 = slower).  Default:
        all 1.0.  Only compute time scales; wire time does not.
    """

    def __init__(self, n_procs: int, cost_model: CostModel = CORI_LIKE,
                 network_latency: float = 5.0e-6,
                 speed_factors: np.ndarray | None = None):
        if n_procs < 1:
            raise ValueError("n_procs must be positive")
        if network_latency < 0:
            raise ValueError("network_latency must be non-negative")
        self.n_procs = n_procs
        self.cost_model = cost_model
        self.network_latency = network_latency
        if speed_factors is None:
            speed_factors = np.ones(n_procs)
        speed_factors = np.asarray(speed_factors, dtype=np.float64)
        if speed_factors.shape != (n_procs,) or np.any(speed_factors <= 0):
            raise ValueError("speed_factors must be positive, one per rank")
        self.speed = speed_factors
        self.stats = MessageStats(n_procs)
        self.clocks = np.zeros(n_procs)
        # per-receiver min-heap of (deliver_time, seq, Message)
        self._mailboxes: list[list] = [[] for _ in range(n_procs)]
        self._seq = 0
        # scheduler heap of (clock, rank); stale entries skipped lazily
        self._ready = [(0.0, p) for p in range(n_procs)]
        heapq.heapify(self._ready)

    # ------------------------------------------------------------------
    # time accounting
    # ------------------------------------------------------------------
    def charge_compute(self, p: int, flops: float) -> None:
        """Advance ``p``'s clock by scaled compute time."""
        self.stats.record_flops(p, flops)
        self.clocks[p] += flops * self.cost_model.gamma / self.speed[p]

    def charge_idle(self, p: int, seconds: float) -> None:
        """Advance ``p``'s clock with no work (poll/backoff time)."""
        if seconds < 0:
            raise ValueError("idle time must be non-negative")
        self.clocks[p] += seconds

    # ------------------------------------------------------------------
    # messaging
    # ------------------------------------------------------------------
    def put(self, src: int, dst: int, category: str,
            payload: Mapping[str, Any]) -> None:
        """Asynchronous one-sided write: charged to the sender's clock,
        visible to ``dst`` once its clock passes the delivery stamp."""
        if src == dst:
            raise ValueError("a process does not message itself")
        nbytes = payload_nbytes(payload)
        self.stats.record_message(src, category, nbytes)
        self.clocks[src] += (self.cost_model.alpha
                             + nbytes * self.cost_model.beta)
        deliver_at = self.clocks[src] + self.network_latency
        msg = Message(src=src, dst=dst, category=category, payload=payload,
                      nbytes=nbytes)
        self._seq += 1
        heapq.heappush(self._mailboxes[dst], (deliver_at, self._seq, msg))

    def read(self, p: int) -> list[Message]:
        """All messages delivered to ``p`` by its current clock.

        Each read message costs the receiver ``alpha_recv``.
        """
        out: list[Message] = []
        box = self._mailboxes[p]
        while box and box[0][0] <= self.clocks[p]:
            _, _, msg = heapq.heappop(box)
            out.append(msg)
            self.stats.record_receive(p)
            self.clocks[p] += self.cost_model.alpha_recv
        return out

    def pending_count(self, p: int) -> int:
        """Messages addressed to ``p`` not yet read (delivered or not)."""
        return len(self._mailboxes[p])

    def earliest_pending(self, p: int) -> float | None:
        """Delivery stamp of ``p``'s next unread message, if any."""
        return self._mailboxes[p][0][0] if self._mailboxes[p] else None

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def next_process(self) -> int:
        """The rank with the smallest clock (run it next)."""
        while True:
            clock, p = heapq.heappop(self._ready)
            if clock == self.clocks[p]:
                return p
            # stale: the clock advanced since this entry was queued

    def reschedule(self, p: int) -> None:
        """Re-queue ``p`` at its (advanced) clock."""
        heapq.heappush(self._ready, (float(self.clocks[p]), p))

    @property
    def elapsed(self) -> float:
        """Simulated wall-clock so far (the furthest clock)."""
        return float(self.clocks.max())
