"""Simulated one-sided memory windows (MPI-3 RMA substitute).

Each virtual process ``p`` owns a :class:`Window` — the region of its memory
remote processes write to with ``MPI_Put``.  The simulator mirrors the
paper's epoch discipline (``MPI_Win_post/start ... MPI_Put ...
complete/wait``): a ``put`` during an access epoch is *buffered* and only
becomes visible to the target after the collective epoch close
(:meth:`WindowSystem.close_epoch`), exactly like RMA separates transfer from
completion.  Reading drains the inbox in sender order.

An optional staleness injector delays individual deliveries by whole epochs
with a configurable probability, modelling asynchronous-progress jitter
(used by the robustness ablation, not by the paper's core experiments).

Two message planes share the epoch machinery: the object plane here (one
:class:`Message` per put — required for delay injection, where a message
outlives its epoch) and the preallocated flat-buffer plane
(:class:`repro.runtime.flatplane.FlatEdgePlane`, attached via
:meth:`WindowSystem.configure_flat`) used by the synchronous-epoch fast
path.  :meth:`WindowSystem.close_epoch` completes both.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Mapping

import numpy as np

from repro.runtime.flatplane import FlatEdgePlane
from repro.runtime.message import Message, payload_nbytes
from repro.runtime.stats import MessageStats
from repro.trace import NULL_TRACER

__all__ = ["Window", "WindowSystem"]


class Window:
    """Inbox of one process: delivered messages readable by the owner."""

    __slots__ = ("owner", "_inbox")

    def __init__(self, owner: int):
        self.owner = owner
        self._inbox: deque[Message] = deque()

    def deliver(self, msg: Message) -> None:
        """Make ``msg`` visible to the owner (epoch machinery only)."""
        self._inbox.append(msg)

    def drain(self) -> list[Message]:
        """Remove and return everything currently visible, FIFO."""
        out = list(self._inbox)
        self._inbox.clear()
        return out

    def peek_count(self) -> int:
        """Visible-but-unread message count."""
        return len(self._inbox)


class WindowSystem:
    """All windows plus the epoch/buffering machinery and accounting.

    Parameters
    ----------
    n_procs:
        Number of virtual processes.
    stats:
        Optional shared :class:`MessageStats`; a fresh one is created
        otherwise.
    delay_probability, seed:
        Staleness injection — each buffered message is independently held
        back for one extra epoch with this probability.  0 (default)
        reproduces the paper's synchronized-epoch behaviour.
    """

    def __init__(self, n_procs: int, stats: MessageStats | None = None,
                 delay_probability: float = 0.0, seed: int = 0,
                 tracer=None):
        if n_procs < 1:
            raise ValueError("n_procs must be positive")
        if not 0.0 <= delay_probability < 1.0:
            raise ValueError("delay_probability must be in [0, 1)")
        self.n_procs = n_procs
        self.stats = stats if stats is not None else MessageStats(n_procs)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.windows = [Window(p) for p in range(n_procs)]
        self._pending: list[Message] = []
        self._delayed: list[Message] = []
        self._delay_probability = delay_probability
        self._rng = np.random.default_rng(seed)
        self.step_index = 0
        #: optional preallocated flat-buffer plane (see configure_flat)
        self.flat: FlatEdgePlane | None = None
        #: optional compiled fault plan (:class:`repro.faults.FaultRuntime`),
        #: attached by the method's ``setup``; consulted at put time for
        #: per-message fates and at epoch close for delivery manipulation
        self.faults = None
        #: fault-delayed messages as ``[epochs_remaining, Message]`` pairs
        self._fault_delayed: list[list] = []

    def configure_flat(self, edges) -> dict[tuple[int, int], int]:
        """Attach a preallocated flat-buffer plane for a fixed topology.

        ``edges`` is an iterable of ``(src, dst, n_vals, n_z)``; returns
        the ``(src, dst) -> edge-id`` map.  Only valid with synchronous
        epochs — a delayed message needs per-message storage, which the
        flat plane deliberately does not have.
        """
        if self._delay_probability > 0.0:
            raise RuntimeError("the flat-buffer plane requires synchronous "
                               "epochs (delay_probability == 0)")
        if self.faults is not None and self.faults.plan.requires_object_plane:
            raise RuntimeError("a FaultPlan with delay > 0 requires the "
                               "object message plane")
        self.flat = FlatEdgePlane(self.n_procs, self.stats, edges,
                                  tracer=self.tracer)
        if self.faults is not None:
            self.faults.attach_flat(self.flat)
            self.flat.faults = self.faults
        return self.flat.edge_index

    # ------------------------------------------------------------------
    # origin side
    # ------------------------------------------------------------------
    def put(self, src: int, dst: int, category: str,
            payload: Mapping[str, Any], nbytes: int | None = None) -> None:
        """Buffer one one-sided write from ``src`` into ``dst``'s window.

        Counts as exactly one message.  Visible to ``dst`` only after the
        next :meth:`close_epoch`.
        """
        if not 0 <= dst < self.n_procs:
            raise IndexError(f"destination rank {dst} out of range")
        if src == dst:
            raise ValueError("a process does not message itself")
        size = payload_nbytes(payload) if nbytes is None else int(nbytes)
        fr = self.faults
        if fr is not None and fr.message_faults:
            from repro.faults import FATE_DROP

            fate, delay, seq = fr.fate(src, dst, category)
            msg = Message(src=src, dst=dst, category=category,
                          payload=payload, nbytes=size,
                          step=self.step_index, seq=seq, fate=fate)
            # the origin pays for every put — drops and delays included —
            # but a dropped message never reaches a window, so it is
            # never charged as a receive
            self.stats.record_message(src, category, size)
            if self.tracer.enabled:
                self.tracer.send(src, dst, category, size)
            if fate & FATE_DROP:
                return
            if delay:
                self._fault_delayed.append([delay + 1, msg])
            else:
                self._pending.append(msg)
            return
        msg = Message(src=src, dst=dst, category=category, payload=payload,
                      nbytes=size, step=self.step_index)
        self._pending.append(msg)
        self.stats.record_message(src, category, size)
        if self.tracer.enabled:
            self.tracer.send(src, dst, category, size)

    # ------------------------------------------------------------------
    # epoch control
    # ------------------------------------------------------------------
    def close_epoch(self) -> int:
        """Complete the access epoch: deliver buffered puts to their targets.

        Returns the number of messages delivered.  With staleness injection
        some messages are re-buffered for a later epoch instead.
        """
        to_deliver = self._delayed + self._pending
        self._pending = []
        self._delayed = []
        delivered = 0
        if self.flat is not None:
            delivered += self.flat.deliver_pending()
        if self._fault_delayed:
            # fault-plan delay: release messages whose hold-back expires
            # this epoch, ahead of this epoch's puts (they are older)
            due: list[Message] = []
            still: list[list] = []
            for item in self._fault_delayed:
                item[0] -= 1
                (due if item[0] <= 0 else still).append(item)
            self._fault_delayed = still
            to_deliver = [item[1] for item in due] + to_deliver
        if self.faults is not None and to_deliver:
            from repro.faults import FATE_DUP, FATE_REORDER

            # reordered messages go, stably, to the back of the epoch's
            # delivery batch (hence to the back of each destination's
            # batch); duplicates are delivered back to back
            front, back = [], []
            for msg in to_deliver:
                (back if msg.fate & FATE_REORDER else front).append(msg)
                if msg.fate & FATE_DUP:
                    (back if msg.fate & FATE_REORDER else front).append(msg)
            to_deliver = front + back
        for msg in to_deliver:
            if (self._delay_probability > 0.0
                    and self._rng.random() < self._delay_probability):
                self._delayed.append(msg)
                continue
            self.windows[msg.dst].deliver(msg)
            delivered += 1
        return delivered

    def flush_all(self) -> int:
        """Deliver everything, including delayed messages (end of run)."""
        prob = self._delay_probability
        self._delay_probability = 0.0
        if self._fault_delayed:
            self._pending = ([item[1] for item in self._fault_delayed]
                             + self._pending)
            self._fault_delayed = []
        try:
            return self.close_epoch()
        finally:
            self._delay_probability = prob

    # ------------------------------------------------------------------
    # target side
    # ------------------------------------------------------------------
    def drain(self, p: int) -> list[Message]:
        """Read and clear everything visible in process ``p``'s window.

        Each read message is charged to ``p`` as a receive (target-side
        processing overhead in the cost model).  The charging contract
        under staleness/fault injection: receives are charged only here,
        when a delivered message is actually read — a delayed message is
        charged in the epoch it is finally drained, a dropped message
        (which never reaches a window) is charged as a send but never as
        a receive, and a duplicated message is charged twice.  The flat
        plane charges identically, so per-step ``MessageStats`` are
        plane-independent even under a nonzero fault plan.
        """
        msgs = self.windows[p].drain()
        if msgs:
            self.stats.record_receives(p, len(msgs))
            if self.tracer.enabled:
                self.tracer.recv_msgs(p, msgs)
        return msgs

    @property
    def in_flight(self) -> int:
        """Messages buffered but not yet visible (both planes)."""
        flat = self.flat.in_flight if self.flat is not None else 0
        return (len(self._pending) + len(self._delayed)
                + len(self._fault_delayed) + flat)
