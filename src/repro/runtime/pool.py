"""Fork-based persistent worker pools (DESIGN.md §5.12).

Two consumers share this module:

- the ``shm`` runtime (:mod:`repro.runtime.shmplane`): W long-lived
  workers forked *after* a method's :meth:`setup`, so they inherit the
  immutable solve plans copy-on-write and operate on the shared-memory
  slabs with **zero per-step pickling** — :class:`ForkWorkers` provides
  the process lifecycle and the per-epoch barrier;
- the sweep runner (:mod:`repro.experiments.parallel`):
  :class:`ForkTaskPool` runs coarse pickled tasks over the same forked
  processes instead of a spawn-based ``ProcessPoolExecutor`` (spawned
  workers re-import the package per pool; forked ones inherit it).

Barrier choice: the driver wakes workers by writing one command byte
down a per-worker pipe and waits by reading one ack byte back.  The
pipe syscalls are full memory barriers on both sides, so every shared-
array write made before the wake is visible to the worker when its
``read`` returns (and vice versa for results before the ack) — the
correctness a userspace seqlock would need fences for, with blocking
waits instead of burning a core spinning.  A shared epoch counter is
still kept and checked each dispatch as a cheap protocol invariant.

Sandboxes routinely forbid forking (the case
``experiments/parallel.py`` has always degraded around): every
constructor failure surfaces as :class:`ShmUnavailable` so callers can
fall back to the single-process path instead of crashing.
"""

from __future__ import annotations

import atexit
import os
import pickle
import select
import struct
import sys

import numpy as np

__all__ = [
    "CMD_APPLY",
    "CMD_EXIT",
    "CMD_RELAX",
    "ForkTaskPool",
    "ForkWorkers",
    "ShmUnavailable",
    "rank_bounds",
    "shm_available",
]

#: command bytes on the wake pipes (0 is reserved: an EOF read returns
#: b"" and must not alias a live command)
CMD_EXIT = 1
CMD_RELAX = 2
CMD_APPLY = 3

_ACK_OK = b"\x01"
_ACK_ERR = b"\xff"


class ShmUnavailable(RuntimeError):
    """The environment forbids the fork/shared-memory machinery."""


def rank_bounds(sizes: np.ndarray, n_workers: int) -> list[tuple[int, int]]:
    """Split ranks ``0..P`` into ``n_workers`` contiguous ranges with
    approximately equal total rows (greedy cumulative split).

    Every worker gets a (possibly empty) range; the ranges partition
    ``range(P)`` exactly, which is what makes the workers' writes
    race-free — no rank is touched by two processes.
    """
    P = int(len(sizes))
    W = max(1, int(n_workers))
    cum = np.concatenate(([0], np.cumsum(np.asarray(sizes, dtype=np.int64))))
    total = int(cum[-1])
    bounds = []
    lo = 0
    for w in range(W):
        target = total * (w + 1) / W
        hi = int(np.searchsorted(cum, target, side="left"))
        hi = min(max(hi, lo), P)
        if w == W - 1:
            hi = P
        bounds.append((lo, hi))
        lo = hi
    return bounds


class ForkWorkers:
    """``n`` forked worker processes with pipe-barrier dispatch.

    ``target(w, cmd)`` runs in worker ``w`` for every dispatched command;
    the callable (and everything it closes over) is inherited through
    ``os.fork`` — nothing is pickled, which is the whole point.  An
    optional ``init(w)`` runs once in each child before serving (strip
    tracers, drop parent-only handles).
    """

    def __init__(self, n: int, target, init=None) -> None:
        if not hasattr(os, "fork"):
            raise ShmUnavailable("os.fork is not available on this platform")
        self.n = n
        self._cmd_w: list[int] = []
        self._ack_r: list[int] = []
        self._pids: list[int] = []
        self._closed = False
        self._epoch = 0
        try:
            for w in range(n):
                cmd_r, cmd_w = os.pipe()
                ack_r, ack_w = os.pipe()
                pid = os.fork()
                if pid == 0:                    # ---- child
                    status = 0
                    try:
                        os.close(cmd_w)
                        os.close(ack_r)
                        for fd in self._cmd_w + self._ack_r:
                            os.close(fd)
                        if init is not None:
                            init(w)
                        self._serve(w, target, cmd_r, ack_w)
                    except BaseException:       # pragma: no cover - child
                        status = 1
                        try:
                            import traceback
                            traceback.print_exc(file=sys.stderr)
                            os.write(ack_w, _ACK_ERR)
                        except OSError:
                            pass
                    finally:
                        # never run the parent's atexit/teardown in a child
                        os._exit(status)
                os.close(cmd_r)
                os.close(ack_w)
                self._cmd_w.append(cmd_w)
                self._ack_r.append(ack_r)
                self._pids.append(pid)
        except OSError as exc:
            self.close()
            raise ShmUnavailable(f"cannot fork workers: {exc}") from exc
        self._atexit = atexit.register(self.close)

    @staticmethod
    def _serve(w: int, target, cmd_r: int, ack_w: int) -> None:
        """Child main loop: block on the wake pipe, run, ack."""
        while True:
            b = os.read(cmd_r, 1)
            if not b or b[0] == CMD_EXIT:
                os.write(ack_w, _ACK_OK)
                return
            target(w, b[0])
            os.write(ack_w, _ACK_OK)

    # ------------------------------------------------------------------
    def dispatch(self, cmd: int) -> None:
        """Wake every worker with ``cmd`` and barrier on their acks."""
        if self._closed:
            raise RuntimeError("worker pool is closed")
        self._epoch += 1
        wake = bytes([cmd])
        for fd in self._cmd_w:
            os.write(fd, wake)
        for w, fd in enumerate(self._ack_r):
            b = os.read(fd, 1)
            if b != _ACK_OK:
                self.close()
                raise RuntimeError(
                    f"shm worker {w} failed (see stderr for its traceback)")

    @property
    def epoch(self) -> int:
        """Barriers completed so far (the shared-counter invariant the
        shm plane cross-checks each dispatch)."""
        return self._epoch

    def close(self) -> None:
        """Terminate the workers (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for fd in self._cmd_w:
            try:
                os.write(fd, bytes([CMD_EXIT]))
            except OSError:
                pass
        for fd in self._ack_r:      # the exit ack — keep the pipe open
            try:                    # until the child has written it
                os.read(fd, 1)
            except OSError:
                pass
        for fd in self._cmd_w + self._ack_r:
            try:
                os.close(fd)
            except OSError:
                pass
        for pid in self._pids:
            try:
                reaped, _status = os.waitpid(pid, os.WNOHANG)
                if reaped == 0:
                    # still draining the exit byte / pipe EOF; a healthy
                    # child exits promptly, so a blocking reap is safe
                    os.waitpid(pid, 0)
            except (ChildProcessError, ProcessLookupError, OSError):
                pass
        if getattr(self, "_atexit", None) is not None:
            atexit.unregister(self._atexit)
            self._atexit = None


# ----------------------------------------------------------------------
# coarse-grained task pool (sweep runner)
# ----------------------------------------------------------------------
_LEN = struct.Struct("<Q")


def _write_frame(fd: int, payload: bytes) -> None:
    data = _LEN.pack(len(payload)) + payload
    while data:
        n = os.write(fd, data)
        data = data[n:]


def _read_frame(fd: int) -> bytes | None:
    head = _read_exact(fd, _LEN.size)
    if head is None:
        return None
    (n,) = _LEN.unpack(head)
    return _read_exact(fd, n)


def _read_exact(fd: int, n: int) -> bytes | None:
    buf = b""
    while len(buf) < n:
        chunk = os.read(fd, n - len(buf))
        if not chunk:
            return None
        buf += chunk
    return buf


class _TaskError:
    """Pickled marker carrying a worker-side exception back."""

    def __init__(self, exc: BaseException) -> None:
        self.exc = exc


class ForkTaskPool:
    """Persistent forked workers running pickled ``(index, item)`` tasks.

    The sweep runner's replacement for its spawn-based pool: ``fn`` and
    the loaded package come along through the fork, so a worker costs one
    ``fork()`` instead of a fresh interpreter plus re-import.  Results
    stream back over pipes; :meth:`map_indexed` multiplexes over all
    workers with ``select`` so one slow task never blocks dispatch to an
    idle process.
    """

    def __init__(self, n: int, fn, init=None) -> None:
        if not hasattr(os, "fork"):
            raise ShmUnavailable("os.fork is not available on this platform")
        self.n = n
        self._task_w: list[int] = []
        self._res_r: list[int] = []
        self._pids: list[int] = []
        self._closed = False
        try:
            for w in range(n):
                task_r, task_w = os.pipe()
                res_r, res_w = os.pipe()
                pid = os.fork()
                if pid == 0:                    # ---- child
                    status = 0
                    try:
                        os.close(task_w)
                        os.close(res_r)
                        for fd in self._task_w + self._res_r:
                            os.close(fd)
                        if init is not None:
                            init(w)
                        self._serve(fn, task_r, res_w)
                    except BaseException:       # pragma: no cover - child
                        status = 1
                    finally:
                        os._exit(status)
                os.close(task_r)
                os.close(res_w)
                self._task_w.append(task_w)
                self._res_r.append(res_r)
                self._pids.append(pid)
        except OSError as exc:
            self.close()
            raise ShmUnavailable(f"cannot fork workers: {exc}") from exc
        self._atexit = atexit.register(self.close)

    @staticmethod
    def _serve(fn, task_r: int, res_w: int) -> None:
        while True:
            frame = _read_frame(task_r)
            if frame is None:
                return
            idx, item = pickle.loads(frame)
            try:
                out = fn(item)
            except BaseException as exc:        # ship the failure back
                out = _TaskError(exc)
            _write_frame(res_w, pickle.dumps((idx, out),
                                             protocol=pickle.HIGHEST_PROTOCOL))

    # ------------------------------------------------------------------
    def map_indexed(self, items: dict):
        """Run ``{index: item}``; yield ``(index, result)`` as they finish.

        A worker-side exception is re-raised here (after the pool is
        closed) so callers can degrade exactly like a died
        ``ProcessPoolExecutor``.
        """
        if self._closed:
            raise RuntimeError("task pool is closed")
        pending = list(items.items())
        busy: dict[int, bool] = {}
        idle = list(range(self.n))
        inflight = 0
        while pending or inflight:
            while pending and idle:
                w = idle.pop()
                idx, item = pending.pop(0)
                _write_frame(self._task_w[w], pickle.dumps(
                    (idx, item), protocol=pickle.HIGHEST_PROTOCOL))
                busy[self._res_r[w]] = True
                inflight += 1
            ready, _, _ = select.select(list(busy), [], [])
            for fd in ready:
                frame = _read_frame(fd)
                if frame is None:
                    self.close()
                    raise RuntimeError("sweep worker died")
                idx, out = pickle.loads(frame)
                if isinstance(out, _TaskError):
                    self.close()
                    raise out.exc
                del busy[fd]
                idle.append(self._res_r.index(fd))
                inflight -= 1
                yield idx, out

    def close(self) -> None:
        """Close the task pipes and reap every worker (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for fd in self._task_w + self._res_r:
            try:
                os.close(fd)
            except OSError:
                pass
        for pid in self._pids:
            try:
                os.waitpid(pid, 0)
            except (ChildProcessError, OSError):
                pass
        if getattr(self, "_atexit", None) is not None:
            atexit.unregister(self._atexit)
            self._atexit = None

    def __enter__(self) -> "ForkTaskPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# availability probe
# ----------------------------------------------------------------------
_available: bool | None = None


def shm_available() -> bool:
    """Can this environment run the shm execution plane at all?

    One cached end-to-end probe: allocate a small
    ``multiprocessing.shared_memory`` segment, fork a worker, round-trip
    one barrier.  Sandboxes that forbid ``/dev/shm`` or ``fork`` fail
    here instead of mid-solve.
    """
    global _available
    if _available is None:
        _available = _probe()
    return _available


def _probe() -> bool:
    try:
        from multiprocessing import shared_memory

        seg = shared_memory.SharedMemory(create=True, size=16)
        try:
            flag = np.ndarray((1,), dtype=np.int64, buffer=seg.buf)
            flag[0] = 0
            workers = ForkWorkers(
                1, lambda w, cmd: flag.__setitem__(0, 41 + cmd))
            try:
                workers.dispatch(CMD_RELAX)
                return int(flag[0]) == 41 + CMD_RELAX
            finally:
                workers.close()
        finally:
            flag = None  # release the exported memoryview before close
            try:
                seg.close()
            except BufferError:  # pragma: no cover
                pass
            seg.unlink()
    except (ShmUnavailable, OSError, PermissionError, RuntimeError,
            ImportError, ValueError):
        return False
