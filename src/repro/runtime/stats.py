"""Exact event accounting for the simulated runtime.

Tracks, per category and per process: message counts, byte counts, and
floating-point work, with per-parallel-step granularity (the engine closes a
step, snapshotting that step's per-process sums for the cost model and the
per-step tables).  All of the paper's communication metrics derive from
these counters:

- *communication cost* = total messages / number of processes (Table 2),
- *solve comm* / *res comm* split (Table 3),
- per-step means (Table 4).

The cumulative metrics (:attr:`MessageStats.total_messages`,
:meth:`MessageStats.communication_cost`, :meth:`MessageStats.elapsed_time`)
are O(1): :meth:`MessageStats.close_step` folds each closed step into
running totals instead of re-summing the snapshot list, so the per-step
history recording in ``BlockMethodBase.run`` costs O(1) per step rather
than O(steps) (the run loop used to be O(steps²) overall).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["MessageStats", "StepSnapshot"]


@dataclass
class StepSnapshot:
    """Per-process event sums for one closed parallel step."""

    msgs: np.ndarray
    nbytes: np.ndarray
    flops: np.ndarray
    recvs: np.ndarray
    category_msgs: dict[str, int] = field(default_factory=dict)
    time: float = 0.0

    @property
    def total_messages(self) -> int:
        return int(self.msgs.sum())


@dataclass
class MessageStats:
    """Cumulative + per-step counters for ``n_procs`` processes."""

    n_procs: int
    category_msgs: dict[str, int] = field(default_factory=dict)
    category_bytes: dict[str, int] = field(default_factory=dict)
    steps: list[StepSnapshot] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.n_procs < 1:
            raise ValueError("n_procs must be positive")
        self._step_msgs = np.zeros(self.n_procs, dtype=np.int64)
        self._step_bytes = np.zeros(self.n_procs, dtype=np.int64)
        self._step_flops = np.zeros(self.n_procs, dtype=np.float64)
        self._step_recvs = np.zeros(self.n_procs, dtype=np.int64)
        self._step_cat: dict[str, int] = {}
        # running totals over *closed* steps (kept in sync by close_step so
        # the cumulative metrics never re-walk the snapshot list)
        self._closed_msgs = 0
        self._closed_bytes = 0
        self._closed_recvs = 0
        self._closed_time = 0.0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_message(self, src: int, category: str, nbytes: int) -> None:
        """Count one message sent by ``src`` in the current step."""
        self._step_msgs[src] += 1
        self._step_bytes[src] += nbytes
        self.category_msgs[category] = self.category_msgs.get(category, 0) + 1
        self.category_bytes[category] = (
            self.category_bytes.get(category, 0) + nbytes)
        self._step_cat[category] = self._step_cat.get(category, 0) + 1

    def record_messages(self, src: int, category: str, count: int,
                        nbytes_total: int) -> None:
        """Count ``count`` messages from ``src`` in one batched charge.

        Integer arithmetic is exact, so this equals ``count`` calls to
        :meth:`record_message` totalling ``nbytes_total`` bytes (the flat
        message plane charges a whole neighbor fan-out at once).
        """
        self._step_msgs[src] += count
        self._step_bytes[src] += nbytes_total
        self.category_msgs[category] = (
            self.category_msgs.get(category, 0) + count)
        self.category_bytes[category] = (
            self.category_bytes.get(category, 0) + nbytes_total)
        self._step_cat[category] = self._step_cat.get(category, 0) + count

    def record_message_groups(self, srcs: np.ndarray, counts: np.ndarray,
                              nbytes: np.ndarray, category: str) -> None:
        """Count whole fan-outs from many senders in one grouped charge.

        ``srcs`` are *unique* sender ranks, sending ``counts[k]`` messages
        totalling ``nbytes[k]`` bytes each.  Integer arithmetic is exact,
        so this equals the per-sender :meth:`record_messages` calls.
        """
        self._step_msgs[srcs] += counts
        self._step_bytes[srcs] += nbytes
        total = int(counts.sum())
        tbytes = int(nbytes.sum())
        self.category_msgs[category] = (
            self.category_msgs.get(category, 0) + total)
        self.category_bytes[category] = (
            self.category_bytes.get(category, 0) + tbytes)
        self._step_cat[category] = self._step_cat.get(category, 0) + total

    def record_receive(self, dst: int) -> None:
        """Count one message read by ``dst`` in the current step."""
        self._step_recvs[dst] += 1

    def record_receives(self, dst: int, count: int) -> None:
        """Count ``count`` messages read by ``dst`` in one batched charge."""
        self._step_recvs[dst] += count

    def record_receive_groups(self, dsts: np.ndarray,
                              counts: np.ndarray) -> None:
        """Count reads by many (*unique*) readers in one grouped charge."""
        self._step_recvs[dsts] += counts

    def record_flops(self, p: int, flops: float) -> None:
        """Charge floating-point work to process ``p`` in the current step."""
        self._step_flops[p] += flops

    def current_step_arrays(self) -> tuple[np.ndarray, np.ndarray,
                                           np.ndarray, np.ndarray]:
        """Views of the open step's per-process ``(flops, msgs, bytes,
        recvs)``.

        Used by the engine to price the step before closing it; callers must
        not mutate the views.
        """
        return (self._step_flops, self._step_msgs, self._step_bytes,
                self._step_recvs)

    def close_step(self, time: float = 0.0) -> StepSnapshot:
        """End the current parallel step; returns (and stores) its snapshot."""
        snap = StepSnapshot(msgs=self._step_msgs.copy(),
                            nbytes=self._step_bytes.copy(),
                            flops=self._step_flops.copy(),
                            recvs=self._step_recvs.copy(),
                            category_msgs=dict(self._step_cat), time=time)
        self.steps.append(snap)
        self._closed_msgs += int(self._step_msgs.sum())
        self._closed_bytes += int(self._step_bytes.sum())
        self._closed_recvs += int(self._step_recvs.sum())
        self._closed_time += float(time)
        self._step_msgs[:] = 0
        self._step_bytes[:] = 0
        self._step_flops[:] = 0
        self._step_recvs[:] = 0
        self._step_cat = {}
        return snap

    # ------------------------------------------------------------------
    # paper metrics
    # ------------------------------------------------------------------
    @property
    def total_messages(self) -> int:
        """All messages in closed steps plus the open step (O(1))."""
        return self._closed_msgs + int(self._step_msgs.sum())

    @property
    def total_bytes(self) -> int:
        return self._closed_bytes + int(self._step_bytes.sum())

    @property
    def total_receives(self) -> int:
        """All reads in closed steps plus the open step (O(1)).

        Under a fault plan sends and receives diverge — dropped messages
        are charged at the origin but never read, duplicates are read
        twice — so trace reconciliation needs the receive total as its
        own equality check rather than inferring it from sends.
        """
        return self._closed_recvs + int(self._step_recvs.sum())

    def communication_cost(self) -> float:
        """The paper's Table 2 metric: total messages / P."""
        return self.total_messages / self.n_procs

    def category_cost(self, category: str) -> float:
        """Per-category messages / P (Table 3 rows)."""
        return self.category_msgs.get(category, 0) / self.n_procs

    def elapsed_time(self) -> float:
        """Sum of closed-step simulated times (O(1))."""
        return self._closed_time

    def cumulative_costs(self) -> np.ndarray:
        """Communication cost after each closed step (Figure 7 x-axis)."""
        per_step = np.array([s.total_messages for s in self.steps],
                            dtype=np.float64)
        return np.cumsum(per_step) / self.n_procs

    def cumulative_times(self) -> np.ndarray:
        """Simulated wall-clock after each closed step (Figure 7 x-axis)."""
        return np.cumsum([s.time for s in self.steps])

    def cumulative_category_costs(self, category: str) -> np.ndarray:
        """Per-category messages / P after each closed step.

        Table 3 reads this curve at the Table 2 target crossing to split
        the communication cost into solve comm and res comm.
        """
        per_step = np.array([s.category_msgs.get(category, 0)
                             for s in self.steps], dtype=np.float64)
        return np.cumsum(per_step) / self.n_procs
