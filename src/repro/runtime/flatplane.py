"""Flat-buffer message plane: preallocated per-edge mailboxes.

The object message plane (:mod:`repro.runtime.window`) builds a dict
payload and a :class:`~repro.runtime.message.Message` per put — exactly
right for the delay-injection ablations, where a message can outlive the
step that produced it, but pure interpreter churn for the paper's
synchronous-epoch runs, where every message is produced and consumed
within one parallel step.  At P in the hundreds (Figures 8-9) that churn
dominates the step cost.

This module is the allocation-free alternative.  The coupling topology is
fixed for a run, and per directed edge ``(p, q)`` at most one *solve* and
one *residual* message is in flight per epoch, so every possible message
gets its storage up front:

- per edge, a preallocated float64 ``vals`` buffer (the boundary residual
  delta, solve messages only) and one ``z`` buffer per slot (the ghost
  payload; length 0 for methods that do not ship ghosts);
- per (edge, slot), header scalars ``own_norm_sq`` and ``your_est_sq``
  stored in flat arrays;
- per edge, the wire size of each message kind, computed once at setup by
  the method (byte-identical to :func:`~repro.runtime.message
  .payload_nbytes` on the equivalent dict payload).

A ``put`` is then: write into the edge buffers, append one int to the
pending list, bump the counters.  No dicts, no ``Message`` objects, no
per-message allocation.  Epoch semantics are identical to the object
plane: a put becomes visible to its target only at the collective epoch
close, and targets drain in global put order (ascending sender rank for
the phase loops), so the two planes are byte-for-byte equivalent in the
stats and bit-for-bit equivalent in the numerics — the tier-1 equivalence
suite pins both.

Slot encoding: slot-id ``2 * edge + kind`` with kind 0 = solve, 1 =
residual; the slot *is* the message category, so no per-message tag is
stored.

The runtime mode knob (``REPRO_RUNTIME`` / :func:`set_runtime_mode` /
:func:`use_runtime`) selects which plane the block methods drive:
``auto``/``flat`` use this plane whenever a run is eligible (synchronous
epochs, no messaging-hook override); ``shm`` is the flat plane with its
mutable slabs re-homed into shared memory and the per-rank phase work
executed by a pool of forked worker processes (DESIGN.md §5.12;
bit-identical, falls back to ``flat`` where the OS forbids forking);
``object`` forces the legacy plane everywhere.  Delay injection always
uses the object plane — a delayed message needs storage that survives
the epoch.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from repro import config as _config
from repro.trace import NULL_TRACER

__all__ = [
    "SLOT_SOLVE",
    "SLOT_RESIDUAL",
    "FlatEdgePlane",
    "multi_arange",
    "runtime_mode",
    "set_runtime_mode",
    "use_runtime",
]

_EMPTY_SIDS = np.zeros(0, dtype=np.int64)

#: largest count representable on the int32 slab-index fast path
_INT32_LIMIT = int(np.iinfo(np.int32).max)


def multi_arange(starts: np.ndarray, stops: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(starts[k], stops[k])`` without a loop.

    The standard repeat/cumsum construction; used to expand per-edge
    buffer ranges into one flat index so a whole epoch's payload copies
    run as a single fancy assignment.  The result keeps the inputs'
    integer dtype, so the plane's int32 fast path flows through every
    derived index (the values are buffer positions, which fit whenever
    the offsets themselves do).
    """
    lens = stops - starts
    nonempty = lens > 0
    if not nonempty.all():
        starts, stops, lens = (starts[nonempty], stops[nonempty],
                               lens[nonempty])
    total = int(lens.sum())
    if total == 0:
        return _EMPTY_SIDS
    dtype = starts.dtype if starts.dtype.kind == "i" else np.int64
    steps = np.ones(total, dtype=dtype)
    steps[0] = starts[0]
    heads = np.cumsum(lens)[:-1]
    steps[heads] = starts[1:] - stops[:-1] + 1
    return np.cumsum(steps, dtype=dtype)

#: message-kind slots within one edge mailbox
SLOT_SOLVE = 0
SLOT_RESIDUAL = 1

_VALID_MODES = _config.VALID_RUNTIME_MODES
_mode_override: str | None = None


def runtime_mode() -> str:
    """The active message-plane mode: ``auto``, ``flat``, ``shm`` or
    ``object``.

    Resolution order: programmatic override (:func:`set_runtime_mode` /
    :func:`use_runtime`), then the ``REPRO_RUNTIME`` environment variable
    read through :mod:`repro.config`, then ``auto``.  Unknown env values
    fall back to ``auto`` (same spirit as ``REPRO_BACKEND``: junk must
    not break a run).
    """
    if _mode_override is not None:
        return _mode_override
    return _config.runtime()


def set_runtime_mode(mode: str | None) -> None:
    """Set (or with ``None`` clear) the programmatic mode override."""
    global _mode_override
    if mode is not None and mode not in _VALID_MODES:
        raise ValueError(f"unknown runtime mode {mode!r}; "
                         f"choices: {_VALID_MODES}")
    _mode_override = mode


@contextmanager
def use_runtime(mode: str):
    """Context manager: force a message-plane mode, restoring on exit."""
    previous = _mode_override
    set_runtime_mode(mode)
    try:
        yield
    finally:
        set_runtime_mode(previous)


class FlatEdgePlane:
    """Preallocated mailboxes for a fixed directed-edge topology.

    Parameters
    ----------
    n_procs:
        Number of virtual processes (destination ranks).
    stats:
        The shared :class:`~repro.runtime.stats.MessageStats`; every put /
        drain is charged exactly like the object plane charges it.
    edges:
        Iterable of ``(src, dst, n_vals, n_z)``: one entry per directed
        coupling, with the ``vals`` buffer length (rows of ``dst`` coupled
        to ``src``) and the ``z`` buffer length (ghost payload; 0 if the
        method ships no ghosts).
    tracer:
        Optional :class:`~repro.trace.Tracer`; every put / drain fires
        one batched trace hook at the same site that charges the stats,
        so trace aggregates reconcile exactly with ``MessageStats``.
    """

    def __init__(self, n_procs: int, stats, edges, tracer=None) -> None:
        self.n_procs = n_procs
        self.stats = stats
        self.tracer = tracer if tracer is not None else NULL_TRACER
        edges = list(edges)
        E = len(edges)
        self.n_edges = E
        # int32 slab-index fast path (first step of the million-row
        # campaign): when every slot-id and buffer offset fits in int32,
        # all index arrays use it — half the index memory, identical
        # indexing semantics, so the pinned digests are unchanged.  The
        # offsets are built in int64 first so the fit check itself never
        # overflows.
        vals_off64 = np.zeros(E + 1, dtype=np.int64)
        z_off64 = np.zeros(E + 1, dtype=np.int64)
        np.cumsum([int(e[2]) for e in edges], out=vals_off64[1:])
        np.cumsum([int(e[3]) for e in edges], out=z_off64[1:])
        lim = _INT32_LIMIT
        self.idx_dtype = (np.int32
                          if max(2 * E, int(vals_off64[-1]),
                                 int(z_off64[-1]), n_procs) <= lim
                          else np.int64)
        self.edge_index: dict[tuple[int, int], int] = {}
        self.edge_src = np.zeros(E, dtype=self.idx_dtype)
        self.edge_dst = np.zeros(E, dtype=self.idx_dtype)
        for eid, (src, dst, n_vals, n_z) in enumerate(edges):
            if not (0 <= src < n_procs and 0 <= dst < n_procs):
                raise IndexError(f"edge ({src}, {dst}) out of range")
            if src == dst:
                raise ValueError("a process does not message itself")
            key = (int(src), int(dst))
            if key in self.edge_index:
                raise ValueError(f"duplicate edge {key}")
            self.edge_index[key] = eid
            self.edge_src[eid] = src
            self.edge_dst[eid] = dst
        # all data regions live in flat backing arrays with per-edge
        # views, so edges with a common source (contiguous when the edge
        # list is sorted by (src, dst)) expose one contiguous per-sender
        # slab — the senders fill a whole fan-out with single vector ops
        self.vals_off = vals_off64.astype(self.idx_dtype)
        self.z_off = z_off64.astype(self.idx_dtype)
        self.vals_flat = np.empty(int(self.vals_off[-1]))
        self.zsolve_flat = np.empty(int(self.z_off[-1]))
        self.zres_flat = np.empty(int(self.z_off[-1]))
        #: per-edge delta buffer (solve slot only)
        self.vals: list[np.ndarray] = [
            self.vals_flat[self.vals_off[e]:self.vals_off[e + 1]]
            for e in range(E)]
        #: per-slot ghost buffer, indexed by slot-id ``2 * eid + kind``
        self.zbuf: list[np.ndarray] = []
        for e in range(E):
            self.zbuf.append(self.zsolve_flat[self.z_off[e]:
                                              self.z_off[e + 1]])
            self.zbuf.append(self.zres_flat[self.z_off[e]:
                                            self.z_off[e + 1]])
        #: per-slot headers (own squared norm, receiver-norm estimate)
        self.norm = np.zeros(2 * E)
        self.est = np.zeros(2 * E)
        # pending / visible mail as chunk arrays: a put_block appends its
        # (setup-constant) slot-id array, a single put a one-element
        # array; delivery groups one concatenation by destination
        self._pending: list[np.ndarray] = []
        self._in_pending = np.zeros(2 * E, dtype=bool)
        self._visible: list[list[np.ndarray]] = [[] for _ in range(n_procs)]
        self._mail = set()
        #: ranks with undrained mail, ascending (refreshed at epoch close)
        self.mail_ranks: list[int] = []
        #: every slot-id the last epoch close delivered, in put order —
        #: lets the methods run one vectorized header/payload pass over
        #: the whole epoch instead of per-receiver loops
        self.last_delivered: np.ndarray = _EMPTY_SIDS
        #: per-slot wire sizes (filled by the method at setup from its
        #: ``_flat_message_nbytes`` tables) — lets the batched trace
        #: hooks stamp exact per-message byte counts
        self.sid_nbytes = np.zeros(2 * E, dtype=np.int64)
        #: optional compiled fault plan (:class:`repro.faults
        #: .FaultRuntime`), attached by ``WindowSystem.configure_flat``;
        #: fates are drawn at put time (same point the object plane
        #: draws them) and applied at epoch close
        self.faults = None
        self._pending_fates: list[np.ndarray] = []
        #: fate bits aligned with :attr:`last_delivered` (valid only
        #: while a fault plan with message faults is attached)
        self.last_fates: np.ndarray = _EMPTY_SIDS

    # ------------------------------------------------------------------
    # origin side
    # ------------------------------------------------------------------
    def put(self, eid: int, slot: int, own_norm_sq: float,
            your_est_sq: float, nbytes: int, category: str) -> None:
        """Buffer the message in edge ``eid``'s ``slot`` mailbox.

        The caller has already written the data regions (``vals[eid]`` /
        ``zbuf[2 * eid + slot]``); this stamps the headers, queues the
        slot for the next epoch close, and charges the send.  Counts as
        exactly one message of ``nbytes`` (the precomputed wire size of
        this edge's message kind).
        """
        sid = 2 * eid + slot
        if self._in_pending[sid]:
            raise RuntimeError(
                f"flat mailbox collision: edge {eid} slot {slot} already "
                "holds an undelivered message this epoch")
        self._in_pending[sid] = True
        self.norm[sid] = own_norm_sq
        self.est[sid] = your_est_sq
        sids = np.array([sid], dtype=self.idx_dtype)
        self._pending.append(sids)
        if self.faults is not None and self.faults.message_faults:
            self._pending_fates.append(self.faults.fates_flat(sids))
        self.stats.record_message(int(self.edge_src[eid]), category, nbytes)
        if self.tracer.enabled:
            self.tracer.send(int(self.edge_src[eid]),
                             int(self.edge_dst[eid]), category, nbytes)

    def put_block(self, sids: np.ndarray, own_norm_sq: float,
                  est_vals, src: int, nbytes_total: int,
                  category: str) -> None:
        """Buffer one rank's whole fan-out in a single call.

        ``sids`` are the slot-ids (ascending destination order — the
        order the per-put path would have used), ``est_vals`` the
        per-slot receiver-norm estimates (scalar or array aligned with
        ``sids``).  The caller guarantees each slot is put at most once
        per epoch (the phase structure of the synchronous methods), so
        no collision check runs; the stats charge is one batched
        :meth:`~repro.runtime.stats.MessageStats.record_messages`, which
        is integer-exact equal to the per-put charges.
        """
        if sids.size == 0:      # no neighbors — the object path would not
            return              # have touched the category counters either
        self.norm[sids] = own_norm_sq
        self.est[sids] = est_vals
        self._pending.append(sids)
        if self.faults is not None and self.faults.message_faults:
            self._pending_fates.append(self.faults.fates_flat(sids))
        self.stats.record_messages(src, category, sids.size, nbytes_total)
        if self.tracer.enabled:
            self.tracer.sends_flat(self, sids, category)

    def put_epoch(self, sids: np.ndarray, norm_vals, est_vals,
                  srcs: np.ndarray, counts: np.ndarray,
                  nbytes_by_src: np.ndarray, category: str) -> None:
        """Buffer many ranks' whole fan-outs in a single call.

        ``sids`` must be in the order the per-put path would have used
        (ascending sender, ascending destination within each sender),
        each slot put at most once this epoch; ``norm_vals``/``est_vals``
        broadcast or align with ``sids``.  ``srcs`` are the *unique*
        sender ranks with ``counts`` messages / ``nbytes_by_src`` byte
        totals each (senders with zero neighbors may appear with count
        0 — the object path would not have sent for them either).  One
        pending append plus one grouped stats charge, integer-exact
        equal to the per-sender :meth:`put_block` calls.
        """
        if sids.size == 0:
            return
        self.norm[sids] = norm_vals
        self.est[sids] = est_vals
        self._pending.append(sids)
        if self.faults is not None and self.faults.message_faults:
            self._pending_fates.append(self.faults.fates_flat(sids))
        self.stats.record_message_groups(srcs, counts, nbytes_by_src,
                                         category)
        if self.tracer.enabled:
            self.tracer.sends_flat(self, sids, category)

    # ------------------------------------------------------------------
    # epoch control (driven by WindowSystem.close_epoch)
    # ------------------------------------------------------------------
    def deliver_pending(self) -> int:
        """Make every buffered put visible to its target; refresh
        :attr:`mail_ranks` and :attr:`last_delivered`.  Returns the
        number delivered."""
        chunks = self._pending
        if not chunks:
            self.last_delivered = _EMPTY_SIDS
            self.last_fates = _EMPTY_SIDS
            self._pending_fates = []
            self.mail_ranks = sorted(self._mail)
            return 0
        arr = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
        self._pending = []
        self._in_pending[arr] = False
        if self._pending_fates:
            fates = (self._pending_fates[0] if len(self._pending_fates) == 1
                     else np.concatenate(self._pending_fates))
            self._pending_fates = []
            arr, fates = self._apply_fates(arr, fates)
            self.last_fates = fates
            if arr.size == 0:
                self.last_delivered = _EMPTY_SIDS
                self.mail_ranks = sorted(self._mail)
                return 0
        delivered = arr.size
        self.last_delivered = arr
        dsts = self.edge_dst[arr >> 1]
        # stable grouping by destination keeps the global put order
        # within each mailbox — the drain contract both planes share
        order = np.argsort(dsts, kind="stable")
        sdst = dsts[order]
        sarr = arr[order]
        bounds = np.flatnonzero(
            np.concatenate(([True], sdst[1:] != sdst[:-1]))).tolist()
        group_dsts = sdst[bounds].tolist()
        bounds.append(delivered)
        visible = self._visible
        mail = self._mail
        for k, d in enumerate(group_dsts):
            visible[d].append(sarr[bounds[k]:bounds[k + 1]])
            mail.add(d)
        self.mail_ranks = sorted(self._mail)
        return delivered

    def _apply_fates(self, arr: np.ndarray,
                     fates: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Apply drawn fates to an epoch's delivery batch.

        Drops are removed (never delivered, never charged as receives),
        duplicates are expanded back to back, and reorder-fated messages
        move — stably — to the back of the batch, which induces exactly
        the object plane's per-destination reordering once the stable
        destination grouping runs.
        """
        from repro.faults import FATE_DROP, FATE_DUP, FATE_REORDER

        alive = (fates & FATE_DROP) == 0
        if not alive.all():
            arr, fates = arr[alive], fates[alive]
        dup = (fates & FATE_DUP) != 0
        if dup.any():
            reps = np.where(dup, 2, 1)
            arr, fates = np.repeat(arr, reps), np.repeat(fates, reps)
        moved = (fates & FATE_REORDER) != 0
        if moved.any():
            order = np.argsort(moved, kind="stable")
            arr, fates = arr[order], fates[order]
        return arr, fates

    @property
    def in_flight(self) -> int:
        """Messages buffered but not yet visible."""
        return sum(c.size for c in self._pending)

    # ------------------------------------------------------------------
    # target side
    # ------------------------------------------------------------------
    def drain(self, p: int) -> np.ndarray:
        """Slot-ids visible to ``p`` (int64 array), in arrival (= put)
        order.

        Clears ``p``'s mailbox and charges the receives in one batch,
        exactly matching the object plane's per-message charges.
        """
        chunks = self._visible[p]
        if not chunks:
            return _EMPTY_SIDS
        out = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
        self._visible[p] = []
        self._mail.discard(p)
        self.stats.record_receives(p, out.size)
        if self.tracer.enabled:
            self.tracer.recvs_flat(self, p, out)
        return out

    def drain_all(self) -> None:
        """Drain every undrained mailbox, charging receives only.

        For read phases that take their payloads from
        :attr:`last_delivered` (one vectorized pass over the epoch) and
        need the per-rank drains only for the receive accounting.
        Charge-equivalent to calling :meth:`drain` for every rank in
        :attr:`mail_ranks` and discarding the results.
        """
        visible = self._visible
        tracing = self.tracer.enabled
        ranks = []
        counts = []
        for p in self._mail:
            cs = visible[p]
            ranks.append(p)
            if tracing:
                arr = cs[0] if len(cs) == 1 else np.concatenate(cs)
                counts.append(arr.size)
                self.tracer.recvs_flat(self, p, arr)
            else:
                counts.append(cs[0].size if len(cs) == 1
                              else sum(c.size for c in cs))
            visible[p] = []
        if ranks:
            self.stats.record_receive_groups(
                np.array(ranks, dtype=np.int64),
                np.array(counts, dtype=np.int64))
        self._mail.clear()

    def src_of(self, sid: int) -> int:
        """Sender rank of a drained slot-id."""
        return int(self.edge_src[sid >> 1])
