"""Event-driven async message plane over the flat-buffer geometry.

The seed async engine (:mod:`repro.runtime.async_engine`) models the
paper's Casper-progressed one-sided MPI with per-message ``Message``
objects in per-destination heaps — correct, but pure interpreter churn:
every put allocates a dict payload, every read pops a heap.  This module
is the flat-plane rewrite (DESIGN.md §5.14): the mailbox storage is the
same preallocated per-edge slot layout as
:class:`~repro.runtime.flatplane.FlatEdgePlane`, extended with one
*timestamp per slot*.

Event model
-----------
Each rank owns a virtual clock priced by the
:class:`~repro.runtime.costmodel.CostModel`:

- compute advances it by ``flops * gamma / speed[p]`` (``speed_factors``
  model stragglers — a factor of 0.5 computes half as fast);
- a send batch advances the *sender* by ``count * alpha + nbytes * beta``
  and stamps every slot ``deliver_at = sender_clock + latency``;
- a read charges ``alpha_recv`` per delivered message to the receiver.

A slot holds at most one in-flight message (RMA overwrite semantics: a
newer put to the same window region supersedes the older one — which is
why the methods ship *cumulative* payloads on this plane, making
overwrites and drops self-healing).  The scheduler always runs the rank
with the smallest clock (ties to the lower rank), exactly like the seed
engine, so a straggling rank naturally falls behind while its neighbors
race ahead on stale estimates — staleness *emerges from simulated time*
instead of being injected.

Wire capture
------------
The lockstep plane lets receivers read the sender's live buffers because
an epoch barrier separates write from read.  Without epochs a sender may
relax again while its previous message is still in flight, so ``send``
snapshots the payload regions into separate *wire* stores
(``wire_vals`` / ``wire_zsolve`` / ``wire_zres`` + header scalars) at
stamp time.  Message faults compose at that same point: fates are drawn
*before* the wire copy, so a dropped message leaves the slot's previous
in-flight payload (if any) and stamp intact — the origin still pays the
send cost, the network just never delivers.

Determinism: all state transitions are pure functions of the scheduler
order (smallest clock, ties by rank) and the seeded fate streams, so a
fixed (matrix, partition, seed, config) reproduces bit-identical clocks,
histories and stats.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.runtime.costmodel import CORI_LIKE, CostModel
from repro.trace import NULL_TRACER

__all__ = ["AsyncFlatPlane"]

_EMPTY_SIDS = np.zeros(0, dtype=np.int64)
_EMPTY_FATES = np.zeros(0, dtype=np.int64)
_EMPTY_LIST: list[int] = []


class AsyncFlatPlane:
    """Timestamped slot mailboxes + smallest-clock scheduler.

    Parameters
    ----------
    plane:
        The configured lockstep :class:`~repro.runtime.flatplane
        .FlatEdgePlane` — supplies the edge geometry, per-slot wire
        sizes and the trace hooks' index arrays.  Its mutable buffers
        stay the *senders'* working storage; this class owns the
        in-flight copies.
    stats:
        The shared :class:`~repro.runtime.stats.MessageStats`; sends and
        receives are charged through the same batched entry points the
        lockstep plane uses, so totals stay integer-exact comparable.
    cost_model:
        Clock pricing (alpha/alpha_recv/beta/gamma).
    latency:
        One-way network latency added to every message's delivery stamp.
    speed_factors:
        Optional per-rank compute-speed multipliers (stragglers < 1).
    faults:
        Optional :class:`~repro.faults.FaultRuntime` (already
        ``attach_flat``-bound to ``plane``); drop/stale fates compose at
        send time, stalls and slowdowns are consulted by the executor.
    """

    def __init__(self, plane, stats, cost_model: CostModel = CORI_LIKE,
                 latency: float = 5.0e-6,
                 speed_factors: np.ndarray | None = None,
                 tracer=None, faults=None) -> None:
        if latency < 0.0:
            raise ValueError("latency must be non-negative")
        self.plane = plane
        self.stats = stats
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.faults = faults
        self.cost_model = cost_model
        self.latency = float(latency)
        P = plane.n_procs
        self.n_procs = P
        if speed_factors is None:
            self.speed = np.ones(P)
        else:
            self.speed = np.asarray(speed_factors, dtype=np.float64).copy()
            if self.speed.shape != (P,):
                raise ValueError("speed_factors must have one entry "
                                 "per process")
            if np.any(self.speed <= 0.0):
                raise ValueError("speed factors must be positive")
        self._alpha = cost_model.alpha
        self._alpha_recv = cost_model.alpha_recv
        self._beta = cost_model.beta
        self._gamma = cost_model.gamma
        #: per-rank virtual clocks and cumulative idle time — plain
        #: python floats: every access is a scalar read/write on the
        #: event path, where list indexing beats ndarray dispatch
        self.clocks = [0.0] * P
        self.idle = [0.0] * P
        self._speed_list = self.speed.tolist()
        E = plane.n_edges
        #: per-slot delivery stamp; +inf = slot empty (python list — the
        #: stamps are only ever touched a handful at a time)
        self.deliver_at = [math.inf] * (2 * E)
        # in-flight wire copies, laid out exactly like the lockstep
        # plane's stores (slot-id / edge offsets index both)
        self.wire_vals = np.zeros(int(plane.vals_off[-1]))
        self.wire_zsolve = np.zeros(int(plane.z_off[-1]))
        self.wire_zres = np.zeros(int(plane.z_off[-1]))
        self.wire_norm = np.zeros(2 * E)
        self.wire_est = np.zeros(2 * E)
        self.wire_fate = np.zeros(2 * E, dtype=np.int64)
        #: per-rank incoming slot-ids (both kinds), ascending
        dsts = np.asarray(plane.edge_dst, dtype=np.int64)
        self.in_sids = []
        for p in range(P):
            eids = np.flatnonzero(dsts == p)
            sids = np.empty(2 * eids.size, dtype=np.int64)
            sids[0::2] = 2 * eids
            sids[1::2] = 2 * eids + 1
            self.in_sids.append(np.sort(sids))
        #: receiver rank per slot-id (both kinds of an edge share one)
        self.sid_dst = np.repeat(dsts, 2)
        # python mirrors of the tiny per-rank index sets: the event loop
        # touches a handful of slots per turn, where list iteration and
        # scalar compares beat numpy's per-call dispatch overhead
        self._in_sids_list = [s.tolist() for s in self.in_sids]
        self._sid_dst_list = self.sid_dst.tolist()
        # per-rank count of in-flight messages — a plain python list so
        # the every-turn "anything pending?" check costs one list index
        # instead of a numpy reduction over the rank's slots
        self.n_pending = [0] * P
        # per-rank LOWER BOUND on the earliest pending stamp: a restamp
        # (RMA overwrite) can raise a slot's stamp without raising this,
        # so a passed gate may still scan and find nothing — in which
        # case the scan re-tightens the bound.  ``bound > clock`` always
        # implies nothing is deliverable, so the gate is semantics-exact.
        self._next_at = [np.inf] * P
        # ranks parked by the executor (idle, empty mailbox, provably
        # nothing to do): not in the heap; the next send addressed to
        # one wakes it at the message's stamp
        self.parked = bytearray(P)
        # smallest-clock scheduler: lazy heap with staleness check — a
        # stale entry (clock != the rank's current clock) is skipped; a
        # (clock, rank) tuple orders ties to the lower rank
        self._heap: list[tuple[float, int]] = [(0.0, p) for p in range(P)]
        heapq.heapify(self._heap)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def next_process(self) -> int:
        """Pop the rank with the smallest clock (ties to lower rank)."""
        clocks = self.clocks
        heap = self._heap
        while True:
            clock, p = heapq.heappop(heap)
            if clock == clocks[p]:
                return p

    def reschedule(self, p: int) -> None:
        """Re-enter ``p`` into the scheduler at its current clock."""
        heapq.heappush(self._heap, (self.clocks[p], p))

    @property
    def elapsed(self) -> float:
        """Virtual time: the furthest-ahead rank's clock."""
        return max(self.clocks)

    @property
    def in_flight(self) -> int:
        """Messages stamped but not yet delivered."""
        return sum(self.n_pending)

    # ------------------------------------------------------------------
    # clock charges
    # ------------------------------------------------------------------
    def advance_compute(self, p: int, flops: float,
                        slowdown: float = 1.0) -> None:
        """Advance ``p``'s clock for ``flops`` of local work.

        ``slowdown`` multiplies the rank's base speed factor for this
        charge only (fault-plan slowdown windows)."""
        self.clocks[p] += (flops * self._gamma
                           / (self._speed_list[p] * slowdown))

    def advance_idle(self, p: int, seconds: float) -> None:
        """Advance ``p``'s clock through an idle wait."""
        if seconds > 0.0:
            self.clocks[p] += seconds
            self.idle[p] += seconds

    # ------------------------------------------------------------------
    # origin side
    # ------------------------------------------------------------------
    def send(self, src: int, sids: np.ndarray, norm_vals, est_vals,
             nbytes_total: int, category: str) -> np.ndarray:
        """Charge and stamp one rank's fan-out; returns the slot-ids that
        actually enter the network (drop-fated ones are charged at the
        origin but never stamped, so the slot keeps any older in-flight
        payload).

        The caller copies the ``vals``/``z`` payload regions of the
        *returned* sids into the wire stores — fates must land before
        payload capture so a dropped send cannot clobber a live message.
        """
        if sids.size == 0:
            return _EMPTY_SIDS
        self.stats.record_messages(src, category, sids.size,
                                   int(nbytes_total))
        if self.tracer.enabled:
            self.tracer.sends_flat(self.plane, sids, category)
        self.clocks[src] += (sids.size * self._alpha
                             + nbytes_total * self._beta)
        fr = self.faults
        if fr is not None and fr.message_faults:
            from repro.faults import FATE_DROP

            fates = fr.fates_flat(sids)
            alive = (fates & FATE_DROP) == 0
            if not alive.all():
                sids = sids[alive]
                fates = fates[alive]
                norm_vals = (norm_vals[alive]
                             if isinstance(norm_vals, np.ndarray)
                             and norm_vals.ndim else norm_vals)
                est_vals = (est_vals[alive]
                            if isinstance(est_vals, np.ndarray)
                            and est_vals.ndim else est_vals)
                if sids.size == 0:
                    return _EMPTY_SIDS
            self.wire_fate[sids] = fates
        self.wire_norm[sids] = norm_vals
        self.wire_est[sids] = est_vals
        # a restamped slot (RMA overwrite of a still-in-flight message)
        # is already counted; only empty slots grow the pending counts
        stamp = self.clocks[src] + self.latency
        da = self.deliver_at
        n_pending = self.n_pending
        next_at = self._next_at
        parked = self.parked
        sd = self._sid_dst_list
        clocks = self.clocks
        for s in sids.tolist():
            d = sd[s]
            if da[s] == math.inf:
                n_pending[d] += 1
            da[s] = stamp
            if stamp < next_at[d]:
                next_at[d] = stamp
            if parked[d]:
                # wake a parked receiver at the delivery stamp (it was
                # idle with an empty mailbox, so the wait is idle time)
                parked[d] = 0
                if stamp > clocks[d]:
                    self.idle[d] += stamp - clocks[d]
                    clocks[d] = stamp
                heapq.heappush(self._heap, (clocks[d], d))
        return sids

    # ------------------------------------------------------------------
    # target side
    # ------------------------------------------------------------------
    def deliver(self, p: int) -> list[int]:
        """Slot-ids delivered to ``p`` at its current clock, in stamp
        order (ties by slot-id); clears their stamps and charges the
        receives.  Returns a plain list — deliveries are a handful of
        slots, where list plumbing beats ndarray construction."""
        if not self.n_pending[p] or self._next_at[p] > self.clocks[p]:
            return _EMPTY_LIST
        clock = self.clocks[p]
        da = self.deliver_at
        ready: list[tuple[float, int]] = []
        nxt = math.inf
        for s in self._in_sids_list[p]:
            t = da[s]
            if t <= clock:
                ready.append((t, s))
            elif t < nxt:
                nxt = t
        if not ready:
            # the bound was stale (an overwrite raised a stamp);
            # re-tighten it from the scan we just paid for
            self._next_at[p] = nxt
            return _EMPTY_LIST
        # stamp order, ties by slot-id — the tuple sort is exactly the
        # old lexsort((sid, stamp)) ordering
        ready.sort()
        for t, s in ready:
            da[s] = math.inf
        sids = [s for _, s in ready]
        self.n_pending[p] -= len(sids)
        self._next_at[p] = nxt if self.n_pending[p] else math.inf
        self.clocks[p] += len(sids) * self._alpha_recv
        self.stats.record_receives(p, len(sids))
        if self.tracer.enabled:
            self.tracer.recvs_flat(self.plane, p,
                                   np.array(sids, dtype=np.int64))
        return sids

    def earliest_pending(self, p: int) -> float:
        """Earliest in-flight stamp addressed to ``p`` (inf if none)."""
        if not self.n_pending[p]:
            return math.inf
        da = self.deliver_at
        e = math.inf
        for s in self._in_sids_list[p]:
            t = da[s]
            if t < e:
                e = t
        self._next_at[p] = e        # scan paid for: re-tighten the bound
        return e
