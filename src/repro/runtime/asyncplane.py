"""Event-driven async message plane over the flat-buffer geometry.

The seed async engine (:mod:`repro.runtime.async_engine`) models the
paper's Casper-progressed one-sided MPI with per-message ``Message``
objects in per-destination heaps — correct, but pure interpreter churn:
every put allocates a dict payload, every read pops a heap.  This module
is the flat-plane rewrite (DESIGN.md §5.14): the mailbox storage is the
same preallocated per-edge slot layout as
:class:`~repro.runtime.flatplane.FlatEdgePlane`, extended with one
*timestamp per slot*.

Event model
-----------
Each rank owns a virtual clock priced by the
:class:`~repro.runtime.costmodel.CostModel`:

- compute advances it by ``flops * gamma / speed[p]`` (``speed_factors``
  model stragglers — a factor of 0.5 computes half as fast);
- a send batch advances the *sender* by ``count * alpha + nbytes * beta``
  and stamps every slot ``deliver_at = sender_clock + latency``;
- a read charges ``alpha_recv`` per delivered message to the receiver.

A slot holds at most one in-flight message (RMA overwrite semantics: a
newer put to the same window region supersedes the older one — which is
why the methods ship *cumulative* payloads on this plane, making
overwrites and drops self-healing).  The scheduler always runs the rank
with the smallest clock (ties to the lower rank), exactly like the seed
engine, so a straggling rank naturally falls behind while its neighbors
race ahead on stale estimates — staleness *emerges from simulated time*
instead of being injected.

State layout
------------
``clocks`` / ``idle`` / ``deliver_at`` / ``_next_at`` / ``n_pending``
are flat float64/int64 arrays (+inf = empty slot / no bound), shared by
both schedulers (DESIGN.md §5.15): the scalar event loop indexes them a
rank at a time, the batched event-horizon scheduler scans them whole.
The per-rank incoming slot-ids are additionally kept concatenated
(``ins_flat`` along ``ins_off``) so a macro-turn's mailbox timestamp
scan is one gather + segment-reduce (optionally a numba kernel).

Wire capture
------------
The lockstep plane lets receivers read the sender's live buffers because
an epoch barrier separates write from read.  Without epochs a sender may
relax again while its previous message is still in flight, so ``send``
snapshots the payload regions into separate *wire* stores
(``wire_vals`` / ``wire_zsolve`` / ``wire_zres`` + header scalars) at
stamp time.  Message faults compose at that same point: fates are drawn
*before* the wire copy, so a dropped message leaves the slot's previous
in-flight payload (if any) and stamp intact — the origin still pays the
send cost, the network just never delivers.

Determinism: all state transitions are pure functions of the scheduler
order (smallest clock, ties by rank) and the seeded fate streams, so a
fixed (matrix, partition, seed, config) reproduces bit-identical clocks,
histories and stats.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.runtime.costmodel import CORI_LIKE, CostModel
from repro.runtime.flatplane import multi_arange
from repro.trace import NULL_TRACER

__all__ = ["AsyncFlatPlane"]

_EMPTY_SIDS = np.zeros(0, dtype=np.int64)
_EMPTY_FATES = np.zeros(0, dtype=np.int64)
_EMPTY_LIST: list[int] = []

# ----------------------------------------------------------------------
# optional numba kernel for the macro-turn mailbox timestamp scan
# ----------------------------------------------------------------------
_SEG_MIN = None
_SEG_MIN_FAILED = False


def _segment_min_kernel():
    """Lazily compile the per-rank stamp-minimum scan with numba.

    Returns the compiled kernel, or ``None`` when numba is unavailable
    (the caller falls back to the gather + ``np.minimum.reduceat``
    path, which computes the identical result — ``min`` over float64
    segments has no accumulation order sensitivity).
    """
    global _SEG_MIN, _SEG_MIN_FAILED
    if _SEG_MIN is not None or _SEG_MIN_FAILED:
        return _SEG_MIN
    try:
        import numba

        @numba.njit(cache=True, fastmath=False)
        def seg_min(deliver_at, ins_flat, ins_off, ranks, out):
            for i in range(ranks.size):
                r = ranks[i]
                lo = ins_off[r]
                hi = ins_off[r + 1]
                e = np.inf
                for k in range(lo, hi):
                    t = deliver_at[ins_flat[k]]
                    if t < e:
                        e = t
                out[i] = e

        # trigger the compile now so the first macro-turn is not billed
        seg_min(np.array([np.inf]), np.zeros(1, dtype=np.int64),
                np.zeros(2, dtype=np.int64), np.zeros(1, dtype=np.int64),
                np.zeros(1))
        _SEG_MIN = seg_min
    except Exception:               # pragma: no cover - numba missing
        _SEG_MIN_FAILED = True
    return _SEG_MIN


class AsyncFlatPlane:
    """Timestamped slot mailboxes + smallest-clock scheduler.

    Parameters
    ----------
    plane:
        The configured lockstep :class:`~repro.runtime.flatplane
        .FlatEdgePlane` — supplies the edge geometry, per-slot wire
        sizes and the trace hooks' index arrays.  Its mutable buffers
        stay the *senders'* working storage; this class owns the
        in-flight copies.
    stats:
        The shared :class:`~repro.runtime.stats.MessageStats`; sends and
        receives are charged through the same batched entry points the
        lockstep plane uses, so totals stay integer-exact comparable.
    cost_model:
        Clock pricing (alpha/alpha_recv/beta/gamma).
    latency:
        One-way network latency added to every message's delivery stamp.
    speed_factors:
        Optional per-rank compute-speed multipliers (stragglers < 1).
    faults:
        Optional :class:`~repro.faults.FaultRuntime` (already
        ``attach_flat``-bound to ``plane``); drop/stale fates compose at
        send time, stalls and slowdowns are consulted by the executor.
    """

    def __init__(self, plane, stats, cost_model: CostModel = CORI_LIKE,
                 latency: float = 5.0e-6,
                 speed_factors: np.ndarray | None = None,
                 tracer=None, faults=None) -> None:
        if latency < 0.0:
            raise ValueError("latency must be non-negative")
        self.plane = plane
        self.stats = stats
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.faults = faults
        self.cost_model = cost_model
        self.latency = float(latency)
        P = plane.n_procs
        self.n_procs = P
        if speed_factors is None:
            self.speed = np.ones(P)
        else:
            self.speed = np.asarray(speed_factors, dtype=np.float64).copy()
            if self.speed.shape != (P,):
                raise ValueError("speed_factors must have one entry "
                                 "per process")
            if np.any(self.speed <= 0.0):
                raise ValueError("speed factors must be positive")
        self._alpha = cost_model.alpha
        self._alpha_recv = cost_model.alpha_recv
        self._beta = cost_model.beta
        self._gamma = cost_model.gamma
        #: per-rank virtual clocks and cumulative idle time — float64
        #: arrays shared by both schedulers: the scalar loop touches one
        #: entry per turn, the batched scheduler reduces over the whole
        #: vector to find the horizon
        self.clocks = np.zeros(P)
        self.idle = np.zeros(P)
        E = plane.n_edges
        #: per-slot delivery stamp; +inf = slot empty
        self.deliver_at = np.full(2 * E, np.inf)
        # in-flight wire copies, laid out exactly like the lockstep
        # plane's stores (slot-id / edge offsets index both)
        self.wire_vals = np.zeros(int(plane.vals_off[-1]))
        self.wire_zsolve = np.zeros(int(plane.z_off[-1]))
        self.wire_zres = np.zeros(int(plane.z_off[-1]))
        self.wire_norm = np.zeros(2 * E)
        self.wire_est = np.zeros(2 * E)
        self.wire_fate = np.zeros(2 * E, dtype=np.int64)
        #: per-rank incoming slot-ids (both kinds), ascending — kept
        #: both as per-rank views and concatenated (``ins_flat`` along
        #: ``ins_off``) for the batched mailbox scans
        dsts = np.asarray(plane.edge_dst, dtype=np.int64)
        self.in_sids = []
        for p in range(P):
            eids = np.flatnonzero(dsts == p)
            sids = np.empty(2 * eids.size, dtype=np.int64)
            sids[0::2] = 2 * eids
            sids[1::2] = 2 * eids + 1
            self.in_sids.append(np.sort(sids))
        self.ins_off = np.zeros(P + 1, dtype=np.int64)
        np.cumsum([s.size for s in self.in_sids], out=self.ins_off[1:])
        self.ins_flat = (np.concatenate(self.in_sids)
                         if self.ins_off[-1] else _EMPTY_SIDS.copy())
        #: receiver / sender rank per slot-id (both kinds share one)
        self.sid_dst = np.repeat(dsts, 2)
        self.sid_src = np.repeat(
            np.asarray(plane.edge_src, dtype=np.int64), 2)
        #: per-rank count of in-flight messages
        self.n_pending = np.zeros(P, dtype=np.int64)
        # per-rank LOWER BOUND on the earliest pending stamp: a restamp
        # (RMA overwrite) can raise a slot's stamp without raising this,
        # so a passed gate may still scan and find nothing — in which
        # case the scan re-tightens the bound.  ``bound > clock`` always
        # implies nothing is deliverable, so the gate is semantics-exact.
        self._next_at = np.full(P, np.inf)
        # ranks parked by the executor (idle, empty mailbox, provably
        # nothing to do): not in the heap; the next send addressed to
        # one wakes it at the message's stamp
        self.parked = np.zeros(P, dtype=np.uint8)
        # smallest-clock scheduler: lazy heap with staleness check — a
        # stale entry (clock != the rank's current clock) is skipped; a
        # (clock, rank) tuple orders ties to the lower rank.  The
        # batched scheduler ignores the heap and recomputes the runnable
        # set from ``parked`` + ``clocks`` each macro-turn.
        self._heap: list[tuple[float, int]] = [(0.0, p) for p in range(P)]
        heapq.heapify(self._heap)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def next_process(self) -> int:
        """Pop the rank with the smallest clock (ties to lower rank)."""
        clocks = self.clocks
        heap = self._heap
        while True:
            clock, p = heapq.heappop(heap)
            if clock == clocks[p]:
                return p

    def reschedule(self, p: int) -> None:
        """Re-enter ``p`` into the scheduler at its current clock."""
        heapq.heappush(self._heap, (float(self.clocks[p]), p))

    @property
    def elapsed(self) -> float:
        """Virtual time: the furthest-ahead rank's clock."""
        return float(self.clocks.max())

    @property
    def in_flight(self) -> int:
        """Messages stamped but not yet delivered."""
        return int(self.n_pending.sum())

    # ------------------------------------------------------------------
    # clock charges
    # ------------------------------------------------------------------
    def advance_compute(self, p: int, flops: float,
                        slowdown: float = 1.0) -> None:
        """Advance ``p``'s clock for ``flops`` of local work.

        ``slowdown`` multiplies the rank's base speed factor for this
        charge only (fault-plan slowdown windows)."""
        self.clocks[p] += (flops * self._gamma
                           / (self.speed[p] * slowdown))

    def advance_idle(self, p: int, seconds: float) -> None:
        """Advance ``p``'s clock through an idle wait."""
        if seconds > 0.0:
            self.clocks[p] += seconds
            self.idle[p] += seconds

    # ------------------------------------------------------------------
    # origin side
    # ------------------------------------------------------------------
    def send(self, src: int, sids: np.ndarray, norm_vals, est_vals,
             nbytes_total: int, category: str) -> np.ndarray:
        """Charge and stamp one rank's fan-out; returns the slot-ids that
        actually enter the network (drop-fated ones are charged at the
        origin but never stamped, so the slot keeps any older in-flight
        payload).

        The caller copies the ``vals``/``z`` payload regions of the
        *returned* sids into the wire stores — fates must land before
        payload capture so a dropped send cannot clobber a live message.
        """
        if sids.size == 0:
            return _EMPTY_SIDS
        self.stats.record_messages(src, category, sids.size,
                                   int(nbytes_total))
        if self.tracer.enabled:
            self.tracer.sends_flat(self.plane, sids, category)
        self.clocks[src] += (sids.size * self._alpha
                             + nbytes_total * self._beta)
        fr = self.faults
        if fr is not None and fr.message_faults:
            from repro.faults import FATE_DROP

            fates = fr.fates_flat(sids)
            alive = (fates & FATE_DROP) == 0
            if not alive.all():
                sids = sids[alive]
                fates = fates[alive]
                norm_vals = (norm_vals[alive]
                             if isinstance(norm_vals, np.ndarray)
                             and norm_vals.ndim else norm_vals)
                est_vals = (est_vals[alive]
                            if isinstance(est_vals, np.ndarray)
                            and est_vals.ndim else est_vals)
                if sids.size == 0:
                    return _EMPTY_SIDS
            self.wire_fate[sids] = fates
        self.wire_norm[sids] = norm_vals
        self.wire_est[sids] = est_vals
        # a restamped slot (RMA overwrite of a still-in-flight message)
        # is already counted; only empty slots grow the pending counts.
        # One fan-out addresses each destination at most once (one slot
        # per (edge, kind)), so the updates are plain fancy assignments.
        stamp = self.clocks[src] + self.latency
        da = self.deliver_at
        dsts = self.sid_dst[sids]
        empty = np.isinf(da[sids])
        if empty.all():
            self.n_pending[dsts] += 1
        elif empty.any():
            self.n_pending[dsts[empty]] += 1
        da[sids] = stamp
        next_at = self._next_at
        next_at[dsts] = np.minimum(next_at[dsts], stamp)
        woken = dsts[self.parked[dsts].astype(bool)]
        if woken.size:
            # wake parked receivers at the delivery stamp (they were
            # idle with an empty mailbox, so the wait is idle time)
            clocks = self.clocks
            idle = self.idle
            for d in woken.tolist():
                self.parked[d] = 0
                if stamp > clocks[d]:
                    idle[d] += stamp - clocks[d]
                    clocks[d] = stamp
                heapq.heappush(self._heap, (float(clocks[d]), d))
        return sids

    # ------------------------------------------------------------------
    # target side
    # ------------------------------------------------------------------
    def deliver(self, p: int) -> list[int]:
        """Slot-ids delivered to ``p`` at its current clock, in stamp
        order (ties by slot-id); clears their stamps and charges the
        receives.  Returns a plain list — the downstream payload-apply
        paths branch on fan-in size with list plumbing."""
        if not self.n_pending[p] or self._next_at[p] > self.clocks[p]:
            return _EMPTY_LIST
        clock = self.clocks[p]
        sl = self.in_sids[p]
        t = self.deliver_at[sl]
        ready = t <= clock
        if not ready.any():
            # the bound was stale (an overwrite raised a stamp);
            # re-tighten it from the scan we just paid for
            self._next_at[p] = t.min()
            return _EMPTY_LIST
        # stamp order, ties by slot-id — lexsort's last key is primary,
        # exactly the old (stamp, sid) tuple-sort ordering
        tr = t[ready]
        sr = sl[ready]
        order = np.lexsort((sr, tr))
        sids_arr = sr[order]
        self.deliver_at[sids_arr] = np.inf
        rest = t[~ready]
        self.n_pending[p] -= sids_arr.size
        self._next_at[p] = (float(rest.min()) if rest.size
                            and self.n_pending[p] else math.inf)
        self.clocks[p] += sids_arr.size * self._alpha_recv
        self.stats.record_receives(p, sids_arr.size)
        if self.tracer.enabled:
            self.tracer.recvs_flat(self.plane, p, sids_arr)
        return sids_arr.tolist()

    def earliest_pending(self, p: int) -> float:
        """Earliest in-flight stamp addressed to ``p`` (inf if none)."""
        if not self.n_pending[p]:
            return math.inf
        e = float(self.deliver_at[self.in_sids[p]].min())
        self._next_at[p] = e        # scan paid for: re-tighten the bound
        return e

    # ------------------------------------------------------------------
    # batched event-horizon scheduler primitives (DESIGN.md §5.15)
    # ------------------------------------------------------------------
    def earliest_pending_batch(self, ranks: np.ndarray) -> np.ndarray:
        """Exact earliest pending stamp for every rank in ``ranks``
        (inf if none), re-tightening the ``_next_at`` bounds.  One
        mailbox timestamp scan for the whole candidate set — the numba
        kernel when available, gather + segment-min otherwise."""
        off = self.ins_off
        kern = _segment_min_kernel()
        ep = np.empty(ranks.size)
        if kern is not None:
            kern(self.deliver_at, self.ins_flat, off, ranks, ep)
        else:
            counts = off[ranks + 1] - off[ranks]
            idx = multi_arange(off[ranks], off[ranks + 1])
            t = self.deliver_at[self.ins_flat[idx]]
            nonempty = counts > 0
            ep.fill(np.inf)
            if t.size:
                heads = np.zeros(int(nonempty.sum()), dtype=np.int64)
                np.cumsum(counts[nonempty][:-1], out=heads[1:])
                ep[nonempty] = np.minimum.reduceat(t, heads)
        self._next_at[ranks] = ep
        return ep

    def first_hazard(self, ranks: np.ndarray, rc: np.ndarray,
                     pos: np.ndarray) -> int:
        """Index of the first rank in ``ranks`` (at clocks ``rc``)
        holding a deliverable slot whose *sender* is a batch member
        ordered before it (``pos`` maps rank → batch position, with a
        sentinel ≥ ``ranks.size`` for non-members), or -1.

        The batched scheduler truncates its macro-turn there: an
        earlier-ordered member's send could restamp (RMA-overwrite)
        that slot before this member's scalar-order turn, so delivering
        it in the batched phase could hand the member a message the
        oracle never sees.  Assuming every earlier member might send
        over-approximates (most don't relax or repair that turn) — that
        only shortens the batch, never changes results; senders ordered
        at or after the member, and non-members, cannot act before its
        turn, so they are exact non-hazards.
        """
        off = self.ins_off
        idx = multi_arange(off[ranks], off[ranks + 1])
        slots = self.ins_flat[idx]
        mid = np.repeat(np.arange(ranks.size),
                        off[ranks + 1] - off[ranks])
        hazard = ((self.deliver_at[slots] <= rc[mid])
                  & (pos[self.sid_src[slots]] < mid))
        hit = np.flatnonzero(hazard)
        return int(mid[hit[0]]) if hit.size else -1

    def deliver_batch(self, ranks: np.ndarray
                      ) -> tuple[np.ndarray, np.ndarray]:
        """Deliver every ready slot of every rank in ``ranks`` (each of
        which must have a deliverable stamp) in one vectorized sweep.

        Returns ``(sids, counts)``: the delivered slot-ids concatenated
        rank-major — within a rank in stamp order, ties by slot-id,
        exactly :meth:`deliver`'s ordering — and the per-rank counts.
        Clears the stamps, updates the pending counters and bounds, and
        charges the receive clock/stat costs per rank (the same
        per-rank arithmetic as :meth:`deliver`, so clocks stay
        bit-identical).  Trace emission is left to the caller, which
        replays receives in scalar turn order.
        """
        off = self.ins_off
        counts_all = off[ranks + 1] - off[ranks]
        idx = multi_arange(off[ranks], off[ranks + 1])
        slots = self.ins_flat[idx]
        t = self.deliver_at[slots]
        mid = np.repeat(np.arange(ranks.size), counts_all)
        ready = t <= self.clocks[ranks][mid]
        sr = slots[ready]
        tr = t[ready]
        mr = mid[ready]
        # rank-major, then stamp, ties by slot-id (lexsort: last key
        # is primary) — per rank this is exactly deliver()'s ordering
        order = np.lexsort((sr, tr, mr))
        sids = sr[order]
        counts = np.bincount(mr, minlength=ranks.size)
        self.deliver_at[sids] = np.inf
        self.n_pending[ranks] -= counts
        # remaining-stamp minimum per rank (inf when nothing is left):
        # identical to deliver()'s re-tightened bound
        t_left = np.where(ready, np.inf, t)
        heads = np.zeros(ranks.size, dtype=np.int64)
        np.cumsum(counts_all[:-1], out=heads[1:])
        nonempty = counts_all > 0
        nxt = np.full(ranks.size, np.inf)
        if t_left.size:
            nxt[nonempty] = np.minimum.reduceat(t_left, heads[nonempty])
        self._next_at[ranks] = nxt
        # the same per-rank scalar receive charge as deliver(): int *
        # float is one IEEE multiply either way
        self.clocks[ranks] += counts * self._alpha_recv
        self.stats.record_receive_groups(ranks, counts)
        return sids, counts

    def deliver_scanned(self, ranks: np.ndarray, slots: np.ndarray,
                        t: np.ndarray, mid: np.ndarray,
                        ready: np.ndarray, counts_all: np.ndarray,
                        heads: np.ndarray
                        ) -> tuple[np.ndarray, np.ndarray]:
        """Commit a delivery sweep from an already-gathered mailbox
        snapshot (the macro-turn's single scan): ``slots``/``t``/``mid``
        are the member prefix's slot-ids, stamps and member indices,
        ``ready`` the stamp-vs-clock mask, ``counts_all``/``heads`` the
        per-member segment shapes.  Same ordering, charges and bound
        refresh as :meth:`deliver_batch`, without re-gathering — ranks
        with no ready slot get a zero count and an exact (unchanged)
        ``_next_at`` refresh.
        """
        sr = slots[ready]
        tr = t[ready]
        mr = mid[ready]
        order = np.lexsort((sr, tr, mr))
        sids = sr[order]
        counts = np.bincount(mr, minlength=ranks.size)
        self.deliver_at[sids] = np.inf
        self.n_pending[ranks] -= counts
        t_left = np.where(ready, np.inf, t)
        nonempty = counts_all > 0
        nxt = np.full(ranks.size, np.inf)
        if t_left.size:
            nxt[nonempty] = np.minimum.reduceat(t_left, heads[nonempty])
        self._next_at[ranks] = nxt
        # charge and count receives only where something landed — the
        # same per-rank scalar arithmetic as deliver()
        deliv = counts > 0
        dr = ranks[deliv]
        self.clocks[dr] += counts[deliv] * self._alpha_recv
        self.stats.record_receive_groups(dr, counts[deliv])
        return sids, counts
