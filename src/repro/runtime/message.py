"""Message objects flowing through the simulated RMA windows.

Every put into a neighbor's memory window is one message, as in the paper's
accounting ("communication cost is the total number of messages sent by all
processes divided by the total number of processes").  Messages carry a
category so the Table 3 breakdown (solve comm vs explicit-residual comm)
falls out of the counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

__all__ = ["CATEGORY_SOLVE", "CATEGORY_RESIDUAL", "Message", "payload_nbytes"]

# Message categories, matching the paper's Table 3 breakdown:
#   solve comm - updates sent to neighbors after a local subdomain solve
#   res comm   - explicit residual(-norm) update messages
CATEGORY_SOLVE = "solve"
CATEGORY_RESIDUAL = "residual"

_HEADER_BYTES = 16  # tag + source + payload length, like an MPI envelope


@dataclass(frozen=True)
class Message:
    """One one-sided write into a remote memory window.

    Attributes
    ----------
    src, dst:
        Origin and target process ranks.
    category:
        :data:`CATEGORY_SOLVE` or :data:`CATEGORY_RESIDUAL`.
    payload:
        Arbitrary mapping of named fields (numpy arrays / floats).  Payloads
        are treated as immutable once sent.
    nbytes:
        Wire size used by the cost model.
    step:
        Parallel step index at which the message was sent.
    seq:
        Per-``(src, dst, category)`` send-sequence number, stamped only
        when a fault plan is active (-1 otherwise).  Receivers use it to
        discard duplicated / out-of-order cumulative solve updates.
    fate:
        Injected-fault bits (:data:`repro.faults.FATE_DROP` etc.); 0 for
        a healthy message.
    """

    src: int
    dst: int
    category: str
    payload: Mapping[str, Any]
    nbytes: int
    step: int = field(default=-1, compare=False)
    seq: int = field(default=-1, compare=False)
    fate: int = field(default=0, compare=False)


def payload_nbytes(payload: Mapping[str, Any]) -> int:
    """Wire-size estimate of a payload: array bytes + 8 per scalar + header.

    Index arrays ride along at their true width; None fields are free.
    """
    total = _HEADER_BYTES
    for value in payload.values():
        if value is None:
            continue
        if isinstance(value, np.ndarray):
            total += value.nbytes
        elif np.isscalar(value):
            total += 8
        else:
            raise TypeError(f"unsupported payload field type {type(value)!r}")
    return total
