"""Simulated distributed-memory runtime (MPI-3 RMA substitute).

The paper implements everything over one-sided MPI: every process exposes a
memory window; origins ``MPI_Put`` into neighbors' windows inside
post/start/complete/wait epochs.  With no MPI available offline, this
package substitutes a deterministic simulation with the same semantics and
**exact** message/byte accounting:

- :class:`WindowSystem` — windows, buffered ``put``, collective epoch close
  (writes become visible only after the epoch, as in RMA), optional
  staleness injection;
- :class:`MessageStats` — per-category and per-step counters from which the
  paper's communication metrics (messages / P, solve-vs-residual breakdown,
  per-step means) are computed;
- :class:`CostModel` — alpha-beta-gamma pricing of a lockstep parallel step
  (``max`` over processes), giving a simulated wall-clock whose *shape*
  tracks the paper's measured times;
- :class:`ParallelEngine` — the bundle the solvers drive.
"""

from repro.runtime.async_engine import AsyncEngine
from repro.runtime.asyncplane import AsyncFlatPlane
from repro.runtime.costmodel import CORI_LIKE, ZERO_COST, CostModel
from repro.runtime.engine import ParallelEngine
from repro.runtime.flatplane import (
    SLOT_RESIDUAL,
    SLOT_SOLVE,
    FlatEdgePlane,
    runtime_mode,
    set_runtime_mode,
    use_runtime,
)
from repro.runtime.mpiplane import MpiEdgePlane, mpi_available
from repro.runtime.pool import (
    ForkTaskPool,
    ForkWorkers,
    ShmUnavailable,
    rank_bounds,
    shm_available,
)
from repro.runtime.shmplane import (
    ShmArena,
    ShmArenaOverflow,
    ShmExecutionPlane,
)
from repro.runtime.message import (
    CATEGORY_RESIDUAL,
    CATEGORY_SOLVE,
    Message,
    payload_nbytes,
)
from repro.runtime.stats import MessageStats, StepSnapshot
from repro.runtime.window import Window, WindowSystem

__all__ = [
    "AsyncEngine",
    "AsyncFlatPlane",
    "CATEGORY_RESIDUAL",
    "CATEGORY_SOLVE",
    "CORI_LIKE",
    "CostModel",
    "FlatEdgePlane",
    "ForkTaskPool",
    "ForkWorkers",
    "Message",
    "MessageStats",
    "MpiEdgePlane",
    "ParallelEngine",
    "SLOT_RESIDUAL",
    "SLOT_SOLVE",
    "ShmArena",
    "ShmArenaOverflow",
    "ShmExecutionPlane",
    "ShmUnavailable",
    "StepSnapshot",
    "Window",
    "WindowSystem",
    "ZERO_COST",
    "mpi_available",
    "payload_nbytes",
    "rank_bounds",
    "runtime_mode",
    "shm_available",
    "set_runtime_mode",
    "use_runtime",
]
