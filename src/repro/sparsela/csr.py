"""Compressed sparse row matrix, built from scratch on numpy arrays.

This is the working format for every solver in the package.  The class keeps
the three canonical arrays (``indptr``, ``indices``, ``data``) with column
indices sorted within each row and no duplicate coordinates, which is the
invariant assumed by all kernels.

Design notes (following the HPC-Python guides): all bulk operations are
vectorised numpy; ``matvec``/``rmatvec`` dispatch to the active kernel
backend (:mod:`repro.sparsela.backend` — compiled scipy kernels by default,
pure-numpy reference and optional numba variants selectable), and with
``out=`` the compiled paths accumulate straight into the caller's buffer
so the hot loop allocates nothing.  Derived structure that relaxation
kernels need every sweep — the diagonal, its zero check, the ``L+D``
Gauss-Seidel factor, the per-``omega`` SOR factor, the scipy handle — is
computed once per matrix and cached, invalidated when ``data`` is
replaced.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.sparsela.backend import get_backend

__all__ = ["CSRMatrix"]


class CSRMatrix:
    """Sparse matrix in compressed sparse row format.

    Parameters
    ----------
    indptr:
        ``(m+1,)`` row-pointer array; row ``i`` occupies
        ``indices[indptr[i]:indptr[i+1]]``.
    indices:
        ``(nnz,)`` column indices, sorted within each row, no duplicates.
    data:
        ``(nnz,)`` entry values.
    shape:
        ``(m, n)``.
    """

    __slots__ = ("indptr", "indices", "data", "shape", "_row_ids",
                 "_derived", "_derived_src")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray,
                 data: np.ndarray, shape: tuple[int, int]):
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.data = np.ascontiguousarray(data, dtype=np.float64)
        self.shape = (int(shape[0]), int(shape[1]))
        self._row_ids: np.ndarray | None = None
        self._derived: dict | None = None
        self._derived_src = None
        self._validate()

    # ------------------------------------------------------------------
    # construction & validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        m, n = self.shape
        if self.indptr.shape != (m + 1,):
            raise ValueError(f"indptr has shape {self.indptr.shape}, "
                             f"expected ({m + 1},)")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise ValueError("indptr endpoints inconsistent with indices")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indices.size != self.data.size:
            raise ValueError("indices and data lengths differ")
        if self.indices.size:
            if self.indices.min() < 0 or self.indices.max() >= n:
                raise ValueError("column index out of range")

    @classmethod
    def from_coo(cls, rows: Iterable[int], cols: Iterable[int],
                 vals: Iterable[float], shape: tuple[int, int]) -> "CSRMatrix":
        """Build from triplets (duplicates summed)."""
        from repro.sparsela.coo import COOMatrix

        return COOMatrix(np.asarray(list(rows) if not isinstance(rows, np.ndarray) else rows),
                         np.asarray(list(cols) if not isinstance(cols, np.ndarray) else cols),
                         np.asarray(list(vals) if not isinstance(vals, np.ndarray) else vals),
                         shape).to_csr()

    @classmethod
    def from_dense(cls, dense: np.ndarray, tol: float = 0.0) -> "CSRMatrix":
        """Build from a dense array, dropping ``|a| <= tol`` entries."""
        from repro.sparsela.coo import COOMatrix

        return COOMatrix.from_dense(dense, tol=tol).to_csr()

    @classmethod
    def from_scipy(cls, mat) -> "CSRMatrix":
        """Build from any scipy.sparse matrix."""
        csr = mat.tocsr()
        csr.sum_duplicates()
        csr.sort_indices()
        return cls(csr.indptr.astype(np.int64), csr.indices.astype(np.int64),
                   csr.data.astype(np.float64), csr.shape)

    @classmethod
    def identity(cls, n: int, scale: float = 1.0) -> "CSRMatrix":
        """``scale * I`` of order ``n``."""
        idx = np.arange(n, dtype=np.int64)
        return cls(np.arange(n + 1, dtype=np.int64), idx,
                   np.full(n, float(scale)), (n, n))

    @classmethod
    def diagonal_matrix(cls, diag: np.ndarray) -> "CSRMatrix":
        """Diagonal matrix with the given diagonal."""
        diag = np.asarray(diag, dtype=np.float64)
        n = diag.size
        idx = np.arange(n, dtype=np.int64)
        return cls(np.arange(n + 1, dtype=np.int64), idx, diag.copy(), (n, n))

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.data.size)

    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    def row_counts(self) -> np.ndarray:
        """Entries per row."""
        return np.diff(self.indptr)

    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """Views of ``(columns, values)`` for row ``i``."""
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def _expanded_row_ids(self) -> np.ndarray:
        """Cached ``(nnz,)`` array mapping entry position -> row index."""
        if self._row_ids is None or self._row_ids.size != self.nnz:
            self._row_ids = np.repeat(
                np.arange(self.n_rows, dtype=np.int64), self.row_counts())
        return self._row_ids

    def copy(self) -> "CSRMatrix":
        """Deep copy."""
        return CSRMatrix(self.indptr.copy(), self.indices.copy(),
                         self.data.copy(), self.shape)

    def __getstate__(self):
        """Pickle only the canonical arrays (setup-plane cache format).

        The derived caches (scipy handle, SuperLU-adjacent factors, row-id
        expansion) are dropped: they may hold unpicklable compiled
        objects, and they rebuild lazily on first use after load.
        """
        return (self.indptr, self.indices, self.data, self.shape)

    def __setstate__(self, state):
        indptr, indices, data, shape = state
        self.indptr = indptr
        self.indices = indices
        self.data = data
        self.shape = shape
        self._row_ids = None
        self._derived = None
        self._derived_src = None

    def __repr__(self) -> str:
        return (f"CSRMatrix(shape={self.shape}, nnz={self.nnz})")

    def __eq__(self, other) -> bool:
        if not isinstance(other, CSRMatrix):
            return NotImplemented
        return (self.shape == other.shape
                and np.array_equal(self.indptr, other.indptr)
                and np.array_equal(self.indices, other.indices)
                and np.array_equal(self.data, other.data))

    def __hash__(self):  # mutable container
        raise TypeError("CSRMatrix is unhashable")

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``A @ x`` through the active kernel backend.

        Parameters
        ----------
        x:
            ``(n,)`` input vector.
        out:
            Optional preallocated ``(m,)`` output (overwritten).  On the
            compiled backends the product accumulates directly into
            ``out`` — no intermediate array is allocated.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n_cols,):
            raise ValueError(f"x has shape {x.shape}, expected ({self.n_cols},)")
        if out is not None and out.shape != (self.n_rows,):
            raise ValueError(f"out has shape {out.shape}, "
                             f"expected ({self.n_rows},)")
        return get_backend().matvec(self, x, out=out)

    def rmatvec(self, y: np.ndarray,
                out: np.ndarray | None = None) -> np.ndarray:
        """``A.T @ y`` without forming the transpose (backend-dispatched)."""
        y = np.asarray(y, dtype=np.float64)
        if y.shape != (self.n_rows,):
            raise ValueError(f"y has shape {y.shape}, expected ({self.n_rows},)")
        if out is not None and out.shape != (self.n_cols,):
            raise ValueError(f"out has shape {out.shape}, "
                             f"expected ({self.n_cols},)")
        return get_backend().rmatvec(self, y, out=out)

    def __matmul__(self, x):
        if isinstance(x, np.ndarray) and x.ndim == 1:
            return self.matvec(x)
        return NotImplemented

    def matmat(self, other: "CSRMatrix") -> "CSRMatrix":
        """Sparse-sparse product ``A @ B``.

        Dispatches to scipy's compiled SpGEMM (validated against dense
        products in the tests); used by the Galerkin coarse-operator
        construction ``R A P`` in the multigrid package.
        """
        if self.n_cols != other.n_rows:
            raise ValueError(
                f"shape mismatch: {self.shape} @ {other.shape}")
        out = self.to_scipy() @ other.to_scipy()
        return CSRMatrix.from_scipy(out)

    def scale(self, alpha: float) -> "CSRMatrix":
        """Return ``alpha * A``."""
        return CSRMatrix(self.indptr.copy(), self.indices.copy(),
                         self.data * float(alpha), self.shape)

    def add(self, other: "CSRMatrix") -> "CSRMatrix":
        """Return ``A + B`` (shapes must match)."""
        if self.shape != other.shape:
            raise ValueError("shape mismatch in add")
        from repro.sparsela.coo import COOMatrix

        rows = np.concatenate([self._expanded_row_ids(),
                               other._expanded_row_ids()])
        cols = np.concatenate([self.indices, other.indices])
        vals = np.concatenate([self.data, other.data])
        return COOMatrix(rows, cols, vals, self.shape).to_csr()

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def _derived_cache(self) -> dict:
        """Per-matrix cache of derived structure (diag, sweep factors).

        Invalidated when ``data`` is replaced — the same discipline as
        the cached scipy handle.  In-place mutation of ``data`` is not
        part of the matrix's contract (arithmetic returns new objects).
        """
        if self._derived is None or self._derived_src is not self.data:
            self._derived = {}
            self._derived_src = self.data
        return self._derived

    def diagonal(self) -> np.ndarray:
        """The matrix diagonal as a dense vector (zeros where unstored).

        Cached per matrix and returned read-only; copy before mutating.
        """
        cache = self._derived_cache()
        d = cache.get("diag")
        if d is None:
            m, n = self.shape
            d = np.zeros(min(m, n))
            rows = self._expanded_row_ids()
            mask = self.indices == rows
            hit_rows = rows[mask]
            d[hit_rows] = self.data[mask]
            d.setflags(write=False)
            cache["diag"] = d
        return d

    @property
    def has_zero_diagonal(self) -> bool:
        """Whether any (stored or implicit) diagonal entry is zero (cached)."""
        cache = self._derived_cache()
        flag = cache.get("diag_zero")
        if flag is None:
            flag = bool(np.any(self.diagonal() == 0.0))
            cache["diag_zero"] = flag
        return flag

    def ld_factor(self) -> "CSRMatrix":
        """The cached Gauss-Seidel factor ``L + D`` (lower triangle).

        Built once per matrix so repeated sweeps do zero structural
        work; the factor's own cached scipy handle gives the compiled
        backends a ready triangular operand.
        """
        cache = self._derived_cache()
        ld = cache.get("ld")
        if ld is None:
            ld = self.lower_triangle(include_diagonal=True)
            cache["ld"] = ld
        return ld

    def sor_factor(self, omega: float) -> "CSRMatrix":
        """The cached SOR factor ``D/omega + L`` for one ``omega``."""
        cache = self._derived_cache()
        key = ("sor", float(omega))
        M = cache.get(key)
        if M is None:
            L = self.lower_triangle(include_diagonal=False)
            M = L.add(CSRMatrix.diagonal_matrix(
                np.asarray(self.diagonal()) / float(omega)))
            cache[key] = M
        return M

    def transpose(self) -> "CSRMatrix":
        """Explicit transpose (CSR of ``A.T``)."""
        from repro.sparsela.coo import COOMatrix

        return COOMatrix(self.indices, self._expanded_row_ids(), self.data,
                         (self.n_cols, self.n_rows)).to_csr()

    def is_symmetric(self, tol: float = 1e-12) -> bool:
        """Structural+numeric symmetry check (square matrices only)."""
        if self.n_rows != self.n_cols:
            return False
        t = self.transpose()
        if not np.array_equal(t.indptr, self.indptr):
            return False
        if not np.array_equal(t.indices, self.indices):
            return False
        return bool(np.allclose(t.data, self.data, atol=tol, rtol=0.0))

    def prune(self, tol: float = 0.0) -> "CSRMatrix":
        """Drop entries with ``|a| <= tol``."""
        keep = np.abs(self.data) > tol
        counts = np.bincount(self._expanded_row_ids()[keep],
                             minlength=self.n_rows)
        indptr = np.zeros(self.n_rows + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return CSRMatrix(indptr, self.indices[keep], self.data[keep],
                         self.shape)

    def extract_rows(self, rows: Sequence[int]) -> "CSRMatrix":
        """Submatrix of the given rows (all columns), in the given order."""
        rows = np.asarray(rows, dtype=np.int64)
        counts = self.indptr[rows + 1] - self.indptr[rows]
        indptr = np.zeros(rows.size + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        nnz = int(indptr[-1])
        indices = np.empty(nnz, dtype=np.int64)
        data = np.empty(nnz)
        # Gather the row slices with one fancy-index per contiguous run.
        src = _slices_to_gather_index(self.indptr, rows, nnz)
        indices[:] = self.indices[src]
        data[:] = self.data[src]
        return CSRMatrix(indptr, indices, data, (rows.size, self.n_cols))

    def extract_block(self, rows: Sequence[int],
                      cols: Sequence[int]) -> "CSRMatrix":
        """Submatrix ``A[rows, cols]`` with renumbered column indices.

        ``cols`` must not contain duplicates.  Columns outside ``cols`` are
        dropped.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        sub = self.extract_rows(rows)
        colmap = np.full(self.n_cols, -1, dtype=np.int64)
        colmap[cols] = np.arange(cols.size)
        new_cols = colmap[sub.indices]
        keep = new_cols >= 0
        counts = np.bincount(sub._expanded_row_ids()[keep],
                             minlength=rows.size)
        indptr = np.zeros(rows.size + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        out = CSRMatrix(indptr, new_cols[keep], sub.data[keep],
                        (rows.size, cols.size))
        return out.sort_indices()

    def sort_indices(self) -> "CSRMatrix":
        """Return a copy with columns sorted within each row (in place if
        already sorted)."""
        rows = self._expanded_row_ids()
        keys = rows * (self.n_cols + 1) + self.indices
        if np.all(keys[1:] >= keys[:-1]) if keys.size else True:
            return self
        order = np.argsort(keys, kind="stable")
        return CSRMatrix(self.indptr.copy(), self.indices[order],
                         self.data[order], self.shape)

    def permute(self, perm: np.ndarray) -> "CSRMatrix":
        """Symmetric permutation ``A[perm, perm]`` (square matrices).

        ``perm[k]`` is the original index placed at position ``k``.
        """
        if self.n_rows != self.n_cols:
            raise ValueError("symmetric permutation needs a square matrix")
        perm = np.asarray(perm, dtype=np.int64)
        if perm.size != self.n_rows or np.unique(perm).size != perm.size:
            raise ValueError("perm must be a permutation of all rows")
        inv = np.empty_like(perm)
        inv[perm] = np.arange(perm.size)
        sub = self.extract_rows(perm)
        new_indices = inv[sub.indices]
        out = CSRMatrix(sub.indptr, new_indices, sub.data, self.shape)
        return out.sort_indices()

    def to_dense(self) -> np.ndarray:
        """Materialise as a dense array."""
        out = np.zeros(self.shape)
        out[self._expanded_row_ids(), self.indices] = self.data
        return out

    def to_scipy(self):
        """A cached ``scipy.sparse.csr_matrix`` built from this data.

        The compiled backends' operand: built once per matrix (scipy
        copies ``data`` and downcasts indices to int32 at construction,
        so the handle genuinely caches — the seed's shared-``data``
        identity check never hit) and invalidated when ``data`` is
        replaced, like all derived structure.
        """
        import scipy.sparse as sp

        cache = self._derived_cache()
        S = cache.get("scipy")
        if S is None:
            S = sp.csr_matrix(
                (self.data, self.indices, self.indptr), shape=self.shape)
            cache["scipy"] = S
        return S

    # ------------------------------------------------------------------
    # triangular splits & norms
    # ------------------------------------------------------------------
    def lower_triangle(self, include_diagonal: bool = True) -> "CSRMatrix":
        """The (strictly) lower triangular part."""
        rows = self._expanded_row_ids()
        keep = (self.indices <= rows) if include_diagonal else (self.indices < rows)
        return self._filter_entries(keep)

    def upper_triangle(self, include_diagonal: bool = True) -> "CSRMatrix":
        """The (strictly) upper triangular part."""
        rows = self._expanded_row_ids()
        keep = (self.indices >= rows) if include_diagonal else (self.indices > rows)
        return self._filter_entries(keep)

    def _filter_entries(self, keep: np.ndarray) -> "CSRMatrix":
        counts = np.bincount(self._expanded_row_ids()[keep],
                             minlength=self.n_rows)
        indptr = np.zeros(self.n_rows + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return CSRMatrix(indptr, self.indices[keep], self.data[keep],
                         self.shape)

    def frobenius_norm(self) -> float:
        """Frobenius norm."""
        return float(np.sqrt(np.dot(self.data, self.data)))

    def inf_norm(self) -> float:
        """Maximum absolute row sum."""
        if self.nnz == 0:
            return 0.0
        sums = np.bincount(self._expanded_row_ids(),
                           weights=np.abs(self.data), minlength=self.n_rows)
        return float(sums.max())


def _slices_to_gather_index(indptr: np.ndarray, rows: np.ndarray,
                            total: int) -> np.ndarray:
    """Flattened gather index for the concatenation of per-row CSR slices.

    Builds, without a python loop, the index array equivalent to
    ``np.concatenate([np.arange(indptr[r], indptr[r+1]) for r in rows])``.
    """
    starts = indptr[rows]
    counts = indptr[rows + 1] - starts
    out = np.ones(total, dtype=np.int64)
    if total == 0:
        return out
    offsets = np.zeros(rows.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=offsets[1:])
    nonempty = counts > 0
    out[offsets[nonempty]] = starts[nonempty]
    # after the first element of each run, the index increments by one;
    # fix up the run boundaries so cumsum produces consecutive runs.
    run_starts = offsets[nonempty][1:]
    prev_rows = np.flatnonzero(nonempty)[:-1]
    out[run_starts] -= starts[prev_rows] + counts[prev_rows] - 1
    return np.cumsum(out)
