"""Pluggable kernel backends for the sparse substrate.

Every solver in the package bottoms out in three primitives — CSR
matrix-vector product, sparse lower-triangular solve, and the
Gauss-Seidel sweep built from them.  This module makes those primitives
*dispatchable*: a registry of named backends, each implementing the same
small :class:`KernelBackend` interface, selectable globally via
:func:`set_backend`, per-scope via :func:`use_backend`, or from the
environment with ``REPRO_BACKEND``.

Backends
--------
``reference``
    The original pure-numpy code (``np.bincount`` gather for matvec, a
    python forward-substitution loop for triangular solves).  Kept
    verbatim as ground truth: running with ``REPRO_BACKEND=reference``
    reproduces the seed implementation bit-for-bit.
``scipy``
    Compiled kernels through the ``CSRMatrix.to_scipy()`` cached handle:
    ``csr_matvec``/``csc_matvec`` from ``scipy.sparse._sparsetools``
    (accumulating directly into a caller-supplied output buffer, so
    ``matvec(out=...)`` performs no allocation) and
    ``spsolve_triangular`` for the sweep factors.  The default.
``numba``
    Optional nopython kernels (CSR matvec, forward/backward triangular
    solve, and a *fused* Gauss-Seidel sweep that never forms the
    triangular factor).  Auto-registered only when numba imports; the
    one-time JIT warm-up happens at backend activation.  When numba is
    absent, selection falls back to the default with a warning — it is
    never a hard dependency.

The interface is deliberately small and operates on :class:`CSRMatrix`
duck-typed attributes (``indptr``/``indices``/``data``/``shape`` plus
the cached-factor helpers), so this module never imports the matrix
class and stays import-cycle free.
"""

from __future__ import annotations

import contextlib
import warnings

import numpy as np

from repro import config as _config

__all__ = [
    "KernelBackend",
    "available_backends",
    "default_backend_name",
    "get_backend",
    "register_backend",
    "set_backend",
    "use_backend",
]

#: environment variable consulted for the initial backend choice
#: (read through :mod:`repro.config`, the central knob module)
ENV_VAR = _config.ENV_BACKEND


# ----------------------------------------------------------------------
# shared reference implementations (also reused by kernels.py)
# ----------------------------------------------------------------------
def reference_lower_solve(L, b: np.ndarray,
                          unit_diagonal: bool = False) -> np.ndarray:
    """Solve ``L y = b`` by forward substitution (pure python, row loop).

    Strictly-upper entries, if present, are an error.  This is the
    ground-truth implementation every compiled path is validated
    against.
    """
    n = L.n_rows
    b = np.asarray(b, dtype=np.float64)
    y = np.zeros(n)
    for i in range(n):
        cols, vals = L.row(i)
        if cols.size and cols[-1] > i:
            raise ValueError("matrix has entries above the diagonal")
        diag = 1.0
        acc = b[i]
        for c, v in zip(cols, vals):
            if c == i:
                diag = v
            else:
                acc -= v * y[c]
        if not unit_diagonal:
            if diag == 0.0:
                raise ZeroDivisionError(f"zero diagonal at row {i}")
            acc /= diag
        y[i] = acc
    return y


# ----------------------------------------------------------------------
# interface
# ----------------------------------------------------------------------
class KernelBackend:
    """Interface of one kernel implementation set.

    Subclasses provide ``matvec``/``rmatvec``/``solve_lower``;
    :meth:`gauss_seidel_sweep` has a generic implementation through the
    matrix's cached ``L+D`` factor which fused backends may override.
    Instances are stateless beyond one-time setup, so one instance per
    backend is shared process-wide.
    """

    #: registry key; subclasses set it
    name = "abstract"

    def matvec(self, A, x: np.ndarray,
               out: np.ndarray | None = None) -> np.ndarray:
        """``A @ x`` into ``out`` if given (no allocation on that path)."""
        raise NotImplementedError  # pragma: no cover

    def matvec_plan(self, A):
        """Return ``f(x, out)`` computing ``A @ x`` into ``out``.

        The plan binds ``A``'s current storage so the per-call dispatch
        (handle lookups, layout checks) is paid once instead of per
        product — the block methods call it thousands of times per
        parallel step on the frozen coupling blocks.  Bit-identical to
        ``matvec(A, x, out=out)``.  Preconditions the block methods
        guarantee: ``x``/``out`` are contiguous float64 of the right
        shape, and ``A.data`` is never rebound while the plan is live.
        """
        def plan(x, out, _mv=self.matvec, _A=A):
            _mv(_A, x, out=out)
        return plan

    def rmatvec(self, A, y: np.ndarray,
                out: np.ndarray | None = None) -> np.ndarray:
        """``A.T @ y`` without forming the transpose."""
        raise NotImplementedError  # pragma: no cover

    def solve_lower(self, L, b: np.ndarray,
                    unit_diagonal: bool = False) -> np.ndarray:
        """Solve ``L y = b`` for lower-triangular ``L``."""
        raise NotImplementedError  # pragma: no cover

    def gauss_seidel_sweep(self, A, x: np.ndarray, b: np.ndarray,
                           r: np.ndarray | None = None) -> np.ndarray:
        """One forward GS sweep ``x + (L+D)^{-1} (b - A x)``.

        ``r`` is the current residual if already known (skips a matvec).
        """
        x = np.asarray(x, dtype=np.float64)
        if r is None:
            r = np.asarray(b, dtype=np.float64) - self.matvec(A, x)
        dx = self.solve_lower(A.ld_factor(), r)
        return x + dx

    # ---- partitioner kernels (setup plane, DESIGN.md §5.10) ----------
    #
    # These dispatch the two sequential-greedy hot loops of the
    # multilevel partitioner.  Every implementation must reproduce the
    # seed's decision sequence bit-for-bit (pinned partition digests);
    # the default is the list-based fast path in
    # ``repro.partition._kernels``, imported lazily to stay cycle-free.

    def hem_match(self, graph, perm: np.ndarray) -> np.ndarray:
        """Heavy-edge matching of ``graph`` over the ``perm`` visit order."""
        from repro.partition import _kernels
        return _kernels.hem_match_fast(graph, perm)

    def fm_refine(self, graph, side: np.ndarray, target0: float, lo: float,
                  hi: float, max_passes: int,
                  stall_limit: int) -> np.ndarray:
        """FM boundary refinement of a bisection (in place on ``side``)."""
        from repro.partition import _kernels
        return _kernels.fm_refine_fast(graph, side, target0, lo, hi,
                                       max_passes, stall_limit)

    def warm_up(self) -> None:
        """One-time setup (JIT compilation); called on activation."""


# ----------------------------------------------------------------------
# reference backend — the seed pure-numpy code, kept as ground truth
# ----------------------------------------------------------------------
class ReferenceBackend(KernelBackend):
    """The original vectorised-numpy kernels (bit-identical to seed)."""

    name = "reference"

    def matvec(self, A, x, out=None):
        contrib = A.data * x[A.indices]
        y = np.bincount(A._expanded_row_ids(), weights=contrib,
                        minlength=A.n_rows)
        if out is not None:
            out[:] = y
            return out
        return y

    def rmatvec(self, A, y, out=None):
        contrib = A.data * y[A._expanded_row_ids()]
        x = np.bincount(A.indices, weights=contrib, minlength=A.n_cols)
        if out is not None:
            out[:] = x
            return out
        return x

    def solve_lower(self, L, b, unit_diagonal=False):
        return reference_lower_solve(L, b, unit_diagonal=unit_diagonal)

    def hem_match(self, graph, perm):
        from repro.partition import _kernels
        return _kernels.hem_match_reference(graph, perm)

    def fm_refine(self, graph, side, target0, lo, hi, max_passes,
                  stall_limit):
        from repro.partition import _kernels
        return _kernels.fm_refine_reference(graph, side, target0, lo, hi,
                                            max_passes, stall_limit)


# ----------------------------------------------------------------------
# scipy backend — compiled kernels through the cached scipy handle
# ----------------------------------------------------------------------
class SciPyBackend(KernelBackend):
    """Compiled CSR kernels from scipy (the default backend).

    ``matvec(out=...)``/``rmatvec(out=...)`` call the ``_sparsetools``
    accumulation kernels directly so the caller's buffer is the only
    output array touched; without ``out`` they fall back to the public
    operator product.  Triangular solves go through
    ``spsolve_triangular`` on the factor's cached scipy handle.
    """

    name = "scipy"

    def __init__(self):
        import scipy.sparse as sp
        import scipy.sparse.linalg as spla

        self._sp = sp
        self._spla = spla
        try:
            from scipy.sparse import _sparsetools
            self._csr_matvec = _sparsetools.csr_matvec
            self._csc_matvec = _sparsetools.csc_matvec
        except (ImportError, AttributeError):  # pragma: no cover
            self._csr_matvec = None
            self._csc_matvec = None

    @staticmethod
    def _writable_contig(out) -> bool:
        return out.flags.c_contiguous and out.flags.writeable

    def matvec(self, A, x, out=None):
        S = A.to_scipy()
        if out is None:
            return S @ x
        if self._csr_matvec is None or not self._writable_contig(out):
            out[:] = S @ x          # pragma: no cover - fallback path
            return out
        x = np.ascontiguousarray(x, dtype=np.float64)
        out[:] = 0.0
        m, n = A.shape
        self._csr_matvec(m, n, S.indptr, S.indices, S.data, x, out)
        return out

    def matvec_plan(self, A):
        if self._csr_matvec is None:  # pragma: no cover - scipy too old
            return super().matvec_plan(A)
        S = A.to_scipy()
        m, n = A.shape

        def plan(x, out, _kernel=self._csr_matvec, _m=m, _n=n,
                 _indptr=S.indptr, _indices=S.indices, _data=S.data):
            out[:] = 0.0
            _kernel(_m, _n, _indptr, _indices, _data, x, out)
        return plan

    def rmatvec(self, A, y, out=None):
        S = A.to_scipy()
        if out is None:
            # CSR of A read as CSC of A.T: one compiled pass, no transpose
            return (S.T @ y) if self._csc_matvec is None else self._rmv(A, S, y)
        if self._csc_matvec is None or not self._writable_contig(out):
            out[:] = S.T @ y        # pragma: no cover - fallback path
            return out
        y = np.ascontiguousarray(y, dtype=np.float64)
        out[:] = 0.0
        m, n = A.shape
        self._csc_matvec(n, m, S.indptr, S.indices, S.data, y, out)
        return out

    def _rmv(self, A, S, y):
        out = np.zeros(A.n_cols)
        y = np.ascontiguousarray(y, dtype=np.float64)
        m, n = A.shape
        self._csc_matvec(n, m, S.indptr, S.indices, S.data, y, out)
        return out

    def solve_lower(self, L, b, unit_diagonal=False):
        return self._spla.spsolve_triangular(
            L.to_scipy(), b, lower=True, unit_diagonal=unit_diagonal)


# ----------------------------------------------------------------------
# numba backend — optional nopython kernels with a fused GS sweep
# ----------------------------------------------------------------------
def _build_numba_kernels():
    """Compile the nopython kernels (raises ImportError without numba)."""
    import numba

    jit = numba.njit(cache=True, fastmath=False)

    @jit
    def nb_matvec(indptr, indices, data, x, out):
        for i in range(out.size):
            acc = 0.0
            for j in range(indptr[i], indptr[i + 1]):
                acc += data[j] * x[indices[j]]
            out[i] = acc

    @jit
    def nb_rmatvec(indptr, indices, data, y, n_rows, out):
        out[:] = 0.0
        for i in range(n_rows):
            yi = y[i]
            for j in range(indptr[i], indptr[i + 1]):
                out[indices[j]] += data[j] * yi

    @jit
    def nb_solve_lower(indptr, indices, data, b, unit_diagonal, out):
        # returns the row index of a zero diagonal, or -1 on success;
        # -2 flags an entry above the diagonal (caller raises)
        n = out.size
        for i in range(n):
            acc = b[i]
            diag = 1.0
            for j in range(indptr[i], indptr[i + 1]):
                c = indices[j]
                if c > i:
                    return -2
                if c == i:
                    diag = data[j]
                else:
                    acc -= data[j] * out[c]
            if not unit_diagonal:
                if diag == 0.0:
                    return i
                acc /= diag
            out[i] = acc
        return -1

    @jit
    def nb_gs_sweep(indptr, indices, data, b, x):
        # fused textbook forward sweep, in place on x
        n = x.size
        for i in range(n):
            acc = b[i]
            diag = 0.0
            for j in range(indptr[i], indptr[i + 1]):
                c = indices[j]
                if c == i:
                    diag = data[j]
                else:
                    acc -= data[j] * x[c]
            x[i] = acc / diag
        return x

    return nb_matvec, nb_rmatvec, nb_solve_lower, nb_gs_sweep


class NumbaBackend(KernelBackend):
    """Nopython CSR kernels (optional; requires numba).

    The Gauss-Seidel sweep is *fused*: one pass over the matrix with no
    triangular factor, no residual vector and no intermediate arrays.
    """

    name = "numba"

    def __init__(self):
        from repro.partition import _kernels

        (self._matvec, self._rmatvec,
         self._solve_lower, self._gs) = _build_numba_kernels()
        self._hem_match, self._fm_pass = _kernels.make_numba_kernels()

    def warm_up(self):
        """Trigger JIT compilation once, on tiny inputs."""
        indptr = np.array([0, 1, 2], dtype=np.int64)
        indices = np.array([0, 1], dtype=np.int64)
        data = np.array([1.0, 2.0])
        v = np.array([1.0, 1.0])
        out = np.empty(2)
        self._matvec(indptr, indices, data, v, out)
        self._rmatvec(indptr, indices, data, v, 2, out)
        self._solve_lower(indptr, indices, data, v, False, out)
        self._gs(indptr, indices, data, v, v.copy())
        # partitioner kernels: a 2-vertex path graph
        xadj = np.array([0, 1, 2], dtype=np.int64)
        adjncy = np.array([1, 0], dtype=np.int64)
        adjwgt = np.array([1.0, 1.0])
        perm = np.array([0, 1], dtype=np.int64)
        self._hem_match(xadj, adjncy, adjwgt, perm)
        side = np.array([0, 1], dtype=np.int8)
        self._fm_pass(xadj, adjncy, adjwgt,
                      np.array([1, 1], dtype=np.int64), side,
                      np.array([2.0, 2.0]), np.array([0, 1], dtype=np.int64),
                      1.0, 1.0, 0.9, 1.1, 4)

    def matvec(self, A, x, out=None):
        x = np.ascontiguousarray(x, dtype=np.float64)
        if out is None:
            out = np.empty(A.n_rows)
        self._matvec(A.indptr, A.indices, A.data, x, out)
        return out

    def matvec_plan(self, A):
        def plan(x, out, _kernel=self._matvec, _indptr=A.indptr,
                 _indices=A.indices, _data=A.data):
            _kernel(_indptr, _indices, _data, x, out)
        return plan

    def rmatvec(self, A, y, out=None):
        y = np.ascontiguousarray(y, dtype=np.float64)
        if out is None:
            out = np.empty(A.n_cols)
        self._rmatvec(A.indptr, A.indices, A.data, y, A.n_rows, out)
        return out

    def solve_lower(self, L, b, unit_diagonal=False):
        b = np.ascontiguousarray(b, dtype=np.float64)
        out = np.empty(L.n_rows)
        status = self._solve_lower(L.indptr, L.indices, L.data, b,
                                   unit_diagonal, out)
        if status == -2:
            raise ValueError("matrix has entries above the diagonal")
        if status >= 0:
            raise ZeroDivisionError(f"zero diagonal at row {status}")
        return out

    def gauss_seidel_sweep(self, A, x, b, r=None):
        if r is not None:
            # identity path keeps the precomputed residual useful
            dx = self.solve_lower(A.ld_factor(), r)
            return np.asarray(x, dtype=np.float64) + dx
        x_new = np.array(x, dtype=np.float64)
        b = np.ascontiguousarray(b, dtype=np.float64)
        self._gs(A.indptr, A.indices, A.data, b, x_new)
        return x_new

    def hem_match(self, graph, perm):
        return self._hem_match(
            np.ascontiguousarray(graph.xadj, dtype=np.int64),
            np.ascontiguousarray(graph.adjncy, dtype=np.int64),
            np.ascontiguousarray(graph.adjwgt, dtype=np.float64),
            np.ascontiguousarray(perm, dtype=np.int64))

    def fm_refine(self, graph, side, target0, lo, hi, max_passes,
                  stall_limit):
        # pass loop and gain init stay in numpy (identical to the seed);
        # only the sequential move loop is compiled
        xadj = np.ascontiguousarray(graph.xadj, dtype=np.int64)
        adjncy = np.ascontiguousarray(graph.adjncy, dtype=np.int64)
        adjwgt = np.ascontiguousarray(graph.adjwgt, dtype=np.float64)
        vwgt = np.ascontiguousarray(graph.vwgt, dtype=np.int64)
        n = xadj.size - 1
        rows = graph.expanded_rows()
        for _ in range(max_passes):
            same = side[rows] == side[adjncy]
            ext = np.bincount(rows, weights=np.where(same, 0.0, adjwgt),
                              minlength=n)
            int_ = np.bincount(rows, weights=np.where(same, adjwgt, 0.0),
                               minlength=n)
            boundary = np.flatnonzero(ext > 0)
            if boundary.size == 0:
                break
            weight0 = float(vwgt[side == 0].sum())
            best_cum = self._fm_pass(xadj, adjncy, adjwgt, vwgt, side,
                                     ext - int_, boundary, weight0,
                                     float(target0), float(lo), float(hi),
                                     int(stall_limit))
            if best_cum <= 1e-12:
                break
        return side


# ----------------------------------------------------------------------
# registry & selection
# ----------------------------------------------------------------------
_REGISTRY: dict[str, type[KernelBackend]] = {}
_INSTANCES: dict[str, KernelBackend] = {}
_current: KernelBackend | None = None


def register_backend(name: str, cls: type[KernelBackend]) -> None:
    """Register a backend class under ``name`` (overwrites silently)."""
    _REGISTRY[name] = cls


register_backend("reference", ReferenceBackend)
register_backend("scipy", SciPyBackend)
register_backend("numba", NumbaBackend)


def default_backend_name() -> str:
    """The backend used when nothing is selected: scipy when importable."""
    try:
        import scipy.sparse  # noqa: F401
        return "scipy"
    except ImportError:  # pragma: no cover - scipy is a hard dependency
        return "reference"


def _instantiate(name: str) -> KernelBackend:
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown backend {name!r}; registered: {sorted(_REGISTRY)}")
    if name not in _INSTANCES:
        backend = _REGISTRY[name]()     # may raise ImportError (numba)
        backend.warm_up()
        _INSTANCES[name] = backend
    return _INSTANCES[name]


def available_backends() -> list[str]:
    """Registered backends whose dependencies actually import."""
    out = []
    for name in _REGISTRY:
        try:
            _instantiate(name)
        except ImportError:
            continue
        out.append(name)
    return sorted(out)


def set_backend(name: str) -> KernelBackend:
    """Select the process-wide backend; returns the instance.

    Raises ``ValueError`` for unknown names and ``ImportError`` when the
    backend's dependency (numba) is missing.
    """
    global _current
    _current = _instantiate(name)
    return _current


def get_backend() -> KernelBackend:
    """The active backend, resolving ``REPRO_BACKEND`` on first use.

    An unavailable (or misspelled) environment selection degrades to the
    default with a warning instead of breaking import of the package.
    """
    global _current
    if _current is None:
        requested = _config.backend() or ""
        name = requested or default_backend_name()
        try:
            _current = _instantiate(name)
        except (ImportError, ValueError) as exc:
            fallback = default_backend_name()
            warnings.warn(
                f"{ENV_VAR}={requested!r} is not usable ({exc}); "
                f"falling back to {fallback!r}", RuntimeWarning,
                stacklevel=2)
            _current = _instantiate(fallback)
    return _current


@contextlib.contextmanager
def use_backend(name: str):
    """Context manager: run a scope under another backend."""
    global _current
    previous = get_backend()
    _current = _instantiate(name)
    try:
        yield _current
    finally:
        _current = previous
