"""Matrix file IO: Matrix Market text and a compact binary format.

The SC17 artifact distributes its matrices as ``<name>.mtx.bin`` binary
files; we mirror that with a small self-describing binary layout, plus a
standard Matrix Market reader/writer (``coordinate real
general|symmetric``) for interoperability.
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np

from repro.sparsela.coo import COOMatrix
from repro.sparsela.csr import CSRMatrix

__all__ = [
    "read_binary",
    "read_matrix_market",
    "write_binary",
    "write_matrix_market",
]

_BIN_MAGIC = b"DSWBIN01"


def write_matrix_market(path: str | Path, A: CSRMatrix,
                        symmetric: bool | None = None,
                        comment: str = "") -> None:
    """Write a matrix in Matrix Market coordinate format.

    Parameters
    ----------
    symmetric:
        Write only the lower triangle with a ``symmetric`` header.  Default:
        auto-detect via :meth:`CSRMatrix.is_symmetric`.
    """
    if symmetric is None:
        symmetric = A.is_symmetric()
    out = A.lower_triangle(include_diagonal=True) if symmetric else A
    kind = "symmetric" if symmetric else "general"
    path = Path(path)
    with path.open("w") as fh:
        fh.write(f"%%MatrixMarket matrix coordinate real {kind}\n")
        for line in comment.splitlines():
            fh.write(f"% {line}\n")
        fh.write(f"{A.n_rows} {A.n_cols} {out.nnz}\n")
        rows = out._expanded_row_ids()
        for i, j, v in zip(rows, out.indices, out.data):
            fh.write(f"{i + 1} {j + 1} {float(v):.17g}\n")


def read_matrix_market(path: str | Path) -> CSRMatrix:
    """Read a ``coordinate real general|symmetric`` Matrix Market file."""
    path = Path(path)
    with path.open() as fh:
        header = fh.readline().strip().lower().split()
        if (len(header) < 5 or header[0] != "%%matrixmarket"
                or header[1] != "matrix" or header[2] != "coordinate"):
            raise ValueError(f"unsupported Matrix Market header: {header}")
        if header[3] not in ("real", "integer"):
            raise ValueError(f"unsupported field type {header[3]!r}")
        kind = header[4]
        if kind not in ("general", "symmetric"):
            raise ValueError(f"unsupported symmetry {kind!r}")
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        m, n, nnz = (int(t) for t in line.split())
        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.empty(nnz)
        for k in range(nnz):
            parts = fh.readline().split()
            rows[k] = int(parts[0]) - 1
            cols[k] = int(parts[1]) - 1
            vals[k] = float(parts[2]) if len(parts) > 2 else 1.0
    if kind == "symmetric":
        off = rows != cols
        rows = np.concatenate([rows, cols[off]])
        cols = np.concatenate([cols, rows[:nnz][off]])
        vals = np.concatenate([vals, vals[off]])
    return COOMatrix(rows, cols, vals, (m, n)).to_csr()


def write_binary(path: str | Path, A: CSRMatrix) -> None:
    """Write the compact binary format (magic, shape, nnz, CSR arrays)."""
    path = Path(path)
    with path.open("wb") as fh:
        fh.write(_BIN_MAGIC)
        fh.write(struct.pack("<qqq", A.n_rows, A.n_cols, A.nnz))
        fh.write(A.indptr.astype("<i8").tobytes())
        fh.write(A.indices.astype("<i8").tobytes())
        fh.write(A.data.astype("<f8").tobytes())


def read_binary(path: str | Path) -> CSRMatrix:
    """Read the compact binary format written by :func:`write_binary`."""
    path = Path(path)
    with path.open("rb") as fh:
        magic = fh.read(len(_BIN_MAGIC))
        if magic != _BIN_MAGIC:
            raise ValueError(f"{path}: not a DSWBIN01 file")
        m, n, nnz = struct.unpack("<qqq", fh.read(24))
        indptr = np.frombuffer(fh.read(8 * (m + 1)), dtype="<i8")
        indices = np.frombuffer(fh.read(8 * nnz), dtype="<i8")
        data = np.frombuffer(fh.read(8 * nnz), dtype="<f8")
    return CSRMatrix(indptr.copy(), indices.copy(), data.copy(), (m, n))
