"""Graph orderings over the sparsity pattern: BFS and reverse Cuthill-McKee.

These operate on the (symmetrised) adjacency structure of a square CSR
matrix.  BFS is used by the multicoloring code (the paper assigns colors
"using a breadth-first traversal") and RCM is offered as a bandwidth-reducing
preprocessing option.
"""

from __future__ import annotations

import numpy as np

from repro.sparsela.csr import CSRMatrix

__all__ = ["bfs_levels", "bfs_order", "rcm_order"]


def _neighbors(A: CSRMatrix, i: int) -> np.ndarray:
    cols, _ = A.row(i)
    return cols[cols != i]


def bfs_levels(A: CSRMatrix, start: int = 0) -> np.ndarray:
    """Breadth-first level of every row from ``start``.

    Unreachable rows get level ``-1``.  Requires structural symmetry for the
    levels to mean graph distance (callers symmetrise first if needed).
    """
    n = A.n_rows
    level = np.full(n, -1, dtype=np.int64)
    level[start] = 0
    frontier = [start]
    depth = 0
    while frontier:
        depth += 1
        nxt: list[int] = []
        for u in frontier:
            for v in _neighbors(A, u):
                if level[v] < 0:
                    level[v] = depth
                    nxt.append(int(v))
        frontier = nxt
    return level


def bfs_order(A: CSRMatrix, start: int = 0) -> np.ndarray:
    """Breadth-first visitation order covering every component.

    Components beyond the first are entered at their lowest-numbered
    unvisited row, so the order is a permutation of ``0..n-1``.
    """
    n = A.n_rows
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    pos = 0
    seed = start
    while pos < n:
        if visited[seed]:
            seed = int(np.flatnonzero(~visited)[0])
        visited[seed] = True
        order[pos] = seed
        pos += 1
        head = pos - 1
        while head < pos:
            u = order[head]
            head += 1
            for v in _neighbors(A, int(u)):
                if not visited[v]:
                    visited[v] = True
                    order[pos] = v
                    pos += 1
        seed = start  # force re-seed lookup next component
    return order


def rcm_order(A: CSRMatrix, start: int | None = None) -> np.ndarray:
    """Reverse Cuthill-McKee ordering.

    BFS that visits each level's vertices in increasing-degree order, then
    reverses.  ``start`` defaults to a minimum-degree vertex; disconnected
    components are handled by re-seeding.
    """
    n = A.n_rows
    degree = A.row_counts()
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    pos = 0
    while pos < n:
        unvisited = np.flatnonzero(~visited)
        if start is not None and not visited[start]:
            seed = start
        else:
            seed = int(unvisited[np.argmin(degree[unvisited])])
        visited[seed] = True
        order[pos] = seed
        pos += 1
        head = pos - 1
        while head < pos:
            u = int(order[head])
            head += 1
            nbrs = _neighbors(A, u)
            fresh = nbrs[~visited[nbrs]]
            if fresh.size:
                fresh = fresh[np.argsort(degree[fresh], kind="stable")]
                visited[fresh] = True
                order[pos:pos + fresh.size] = fresh
                pos += fresh.size
    return order[::-1].copy()
