"""Relaxation kernels: Jacobi, Gauss-Seidel and SOR sweeps, residuals.

Each kernel exists in two forms:

- a **reference** implementation — a straightforward per-row python loop that
  transcribes the textbook recurrence (used by tests as ground truth and for
  very small systems), and
- a **fast path** that expresses the sweep as a sparse triangular solve and
  dispatches to scipy's compiled ``spsolve_triangular`` (validated against
  the reference in the test suite).

A forward Gauss-Seidel sweep on ``A x = b`` from iterate ``x`` with residual
``r = b - A x`` is exactly::

    x_new = x + (L + D)^{-1} r

where ``L + D`` is the lower triangle of ``A`` — the identity the fast path
uses.  The paper's local subdomain solver is one such sweep (``-loc_solver
gs`` in the SC17 artifact).
"""

from __future__ import annotations

import numpy as np

from repro.sparsela.csr import CSRMatrix

__all__ = [
    "gauss_seidel_sweep",
    "gauss_seidel_sweep_reference",
    "jacobi_sweep",
    "lower_triangular_solve",
    "residual",
    "sor_sweep",
]


def residual(A: CSRMatrix, x: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``r = b - A x``."""
    return np.asarray(b, dtype=np.float64) - A.matvec(x)


def jacobi_sweep(A: CSRMatrix, x: np.ndarray, b: np.ndarray,
                 omega: float = 1.0) -> np.ndarray:
    """One (damped) Jacobi sweep; returns the new iterate.

    ``x_new = x + omega * D^{-1} (b - A x)``.
    """
    d = A.diagonal()
    if np.any(d == 0.0):
        raise ZeroDivisionError("Jacobi sweep requires a nonzero diagonal")
    return x + omega * residual(A, x, b) / d


def lower_triangular_solve(L: CSRMatrix, b: np.ndarray,
                           unit_diagonal: bool = False) -> np.ndarray:
    """Solve ``L y = b`` for lower-triangular ``L`` (reference, pure python).

    Strictly-upper entries, if present, are an error.  Used as ground truth
    for the compiled fast path.
    """
    n = L.n_rows
    b = np.asarray(b, dtype=np.float64)
    y = np.zeros(n)
    for i in range(n):
        cols, vals = L.row(i)
        if cols.size and cols[-1] > i:
            raise ValueError("matrix has entries above the diagonal")
        diag = 1.0
        acc = b[i]
        for c, v in zip(cols, vals):
            if c == i:
                diag = v
            else:
                acc -= v * y[c]
        if not unit_diagonal:
            if diag == 0.0:
                raise ZeroDivisionError(f"zero diagonal at row {i}")
            acc /= diag
        y[i] = acc
    return y


def gauss_seidel_sweep_reference(A: CSRMatrix, x: np.ndarray, b: np.ndarray,
                                 order: np.ndarray | None = None) -> np.ndarray:
    """One forward Gauss-Seidel sweep, textbook per-row loop.

    Rows are relaxed in ``order`` (default natural order); each relaxation
    immediately uses the freshest values of its neighbours.
    """
    x = np.array(x, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    rows = range(A.n_rows) if order is None else order
    for i in rows:
        cols, vals = A.row(i)
        diag = 0.0
        acc = b[i]
        for c, v in zip(cols, vals):
            if c == i:
                diag = v
            else:
                acc -= v * x[c]
        if diag == 0.0:
            raise ZeroDivisionError(f"zero diagonal at row {i}")
        x[i] = acc / diag
    return x


def gauss_seidel_sweep(A: CSRMatrix, x: np.ndarray, b: np.ndarray,
                       r: np.ndarray | None = None) -> np.ndarray:
    """One forward Gauss-Seidel sweep via the triangular-solve identity.

    Equivalent to :func:`gauss_seidel_sweep_reference` in natural order but
    runs through a compiled sparse triangular solve.  If the current residual
    ``r = b - A x`` is already known, pass it to skip one matvec.
    """
    import scipy.sparse.linalg as spla

    if r is None:
        r = residual(A, x, b)
    LD = A.lower_triangle(include_diagonal=True).to_scipy()
    dx = spla.spsolve_triangular(LD, r, lower=True)
    return np.asarray(x, dtype=np.float64) + dx


def sor_sweep(A: CSRMatrix, x: np.ndarray, b: np.ndarray,
              omega: float) -> np.ndarray:
    """One forward SOR sweep with relaxation factor ``omega``.

    ``x_new = x + (D/omega + L)^{-1} r``; ``omega = 1`` reduces to
    Gauss-Seidel.
    """
    import scipy.sparse.linalg as spla

    if not 0.0 < omega < 2.0:
        raise ValueError("SOR requires 0 < omega < 2 for SPD convergence")
    r = residual(A, x, b)
    L = A.lower_triangle(include_diagonal=False)
    d = A.diagonal()
    M = L.add(CSRMatrix.diagonal_matrix(d / omega))
    dx = spla.spsolve_triangular(M.to_scipy(), r, lower=True)
    return np.asarray(x, dtype=np.float64) + dx
