"""Relaxation kernels: Jacobi, Gauss-Seidel and SOR sweeps, residuals.

Each kernel dispatches through the active kernel backend
(:mod:`repro.sparsela.backend`):

- the **reference** backend runs a straightforward transcription of the
  textbook recurrences (used by tests as ground truth and bit-identical
  to the seed implementation), and
- the compiled backends (**scipy** — the default — and optional
  **numba**) express each sweep through cached triangular factors or a
  fused nopython loop, validated against the reference in the
  cross-backend equivalence suite.

A forward Gauss-Seidel sweep on ``A x = b`` from iterate ``x`` with residual
``r = b - A x`` is exactly::

    x_new = x + (L + D)^{-1} r

where ``L + D`` is the lower triangle of ``A`` — the identity the
factor-based fast paths use.  The ``L + D`` factor (and the per-``omega``
SOR factor ``D/omega + L``) is built **once per matrix** and cached on the
:class:`CSRMatrix` (:meth:`CSRMatrix.ld_factor` /
:meth:`CSRMatrix.sor_factor`), so repeated sweeps do zero structural work.
The paper's local subdomain solver is one such sweep (``-loc_solver gs``
in the SC17 artifact).
"""

from __future__ import annotations

import numpy as np

from repro.sparsela.backend import get_backend, reference_lower_solve
from repro.sparsela.csr import CSRMatrix

__all__ = [
    "gauss_seidel_sweep",
    "gauss_seidel_sweep_reference",
    "jacobi_sweep",
    "lower_triangular_solve",
    "residual",
    "sor_sweep",
]


def residual(A: CSRMatrix, x: np.ndarray, b: np.ndarray,
             out: np.ndarray | None = None) -> np.ndarray:
    """``r = b - A x``; with ``out`` given, no array is allocated."""
    if out is None:
        return np.asarray(b, dtype=np.float64) - A.matvec(x)
    A.matvec(x, out=out)
    np.subtract(b, out, out=out)
    return out


def jacobi_sweep(A: CSRMatrix, x: np.ndarray, b: np.ndarray,
                 omega: float = 1.0) -> np.ndarray:
    """One (damped) Jacobi sweep; returns the new iterate.

    ``x_new = x + omega * D^{-1} (b - A x)``.  The diagonal and its
    zero check are cached on the matrix, so repeated sweeps pay neither.
    """
    if A.has_zero_diagonal:
        raise ZeroDivisionError("Jacobi sweep requires a nonzero diagonal")
    return x + omega * residual(A, x, b) / A.diagonal()


def lower_triangular_solve(L: CSRMatrix, b: np.ndarray,
                           unit_diagonal: bool = False) -> np.ndarray:
    """Solve ``L y = b`` for lower-triangular ``L`` (reference, pure python).

    Strictly-upper entries, if present, are an error.  Used as ground truth
    for the compiled fast paths (every backend's ``solve_lower`` is checked
    against this in the equivalence suite).
    """
    return reference_lower_solve(L, b, unit_diagonal=unit_diagonal)


def gauss_seidel_sweep_reference(A: CSRMatrix, x: np.ndarray, b: np.ndarray,
                                 order: np.ndarray | None = None) -> np.ndarray:
    """One forward Gauss-Seidel sweep, textbook per-row loop.

    Rows are relaxed in ``order`` (default natural order); each relaxation
    immediately uses the freshest values of its neighbours.
    """
    x = np.array(x, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    rows = range(A.n_rows) if order is None else order
    for i in rows:
        cols, vals = A.row(i)
        diag = 0.0
        acc = b[i]
        for c, v in zip(cols, vals):
            if c == i:
                diag = v
            else:
                acc -= v * x[c]
        if diag == 0.0:
            raise ZeroDivisionError(f"zero diagonal at row {i}")
        x[i] = acc / diag
    return x


def gauss_seidel_sweep(A: CSRMatrix, x: np.ndarray, b: np.ndarray,
                       r: np.ndarray | None = None) -> np.ndarray:
    """One forward Gauss-Seidel sweep via the active backend.

    Equivalent to :func:`gauss_seidel_sweep_reference` in natural order but
    runs through the backend's fast path (a compiled triangular solve on
    the cached ``L+D`` factor, or numba's fused sweep).  If the current
    residual ``r = b - A x`` is already known, pass it to skip one matvec.
    """
    return get_backend().gauss_seidel_sweep(A, x, b, r=r)


def sor_sweep(A: CSRMatrix, x: np.ndarray, b: np.ndarray,
              omega: float) -> np.ndarray:
    """One forward SOR sweep with relaxation factor ``omega``.

    ``x_new = x + (D/omega + L)^{-1} r``; ``omega = 1`` reduces to
    Gauss-Seidel.  The factor is cached per (matrix, omega), so repeated
    sweeps only pay the triangular solve.
    """
    if not 0.0 < omega < 2.0:
        raise ValueError("SOR requires 0 < omega < 2 for SPD convergence")
    r = residual(A, x, b)
    dx = get_backend().solve_lower(A.sor_factor(omega), r)
    return np.asarray(x, dtype=np.float64) + dx
