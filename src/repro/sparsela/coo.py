"""Coordinate-format sparse matrix (construction format).

COO is the assembly format: generators and the FEM assembler accumulate
``(row, col, value)`` triplets, possibly with duplicates, and convert to CSR
once at the end.  Duplicate entries are summed on conversion, matching the
usual finite-element assembly semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["COOMatrix"]


@dataclass
class COOMatrix:
    """Sparse matrix in coordinate (triplet) format.

    Parameters
    ----------
    rows, cols:
        Integer arrays of equal length giving entry coordinates.
    vals:
        Float array of entry values (duplicates allowed; they sum).
    shape:
        ``(m, n)`` matrix shape.
    """

    rows: np.ndarray
    cols: np.ndarray
    vals: np.ndarray
    shape: tuple[int, int]

    def __post_init__(self) -> None:
        self.rows = np.ascontiguousarray(self.rows, dtype=np.int64)
        self.cols = np.ascontiguousarray(self.cols, dtype=np.int64)
        self.vals = np.ascontiguousarray(self.vals, dtype=np.float64)
        if not (self.rows.shape == self.cols.shape == self.vals.shape):
            raise ValueError("rows, cols, vals must have identical shapes")
        if self.rows.ndim != 1:
            raise ValueError("COO arrays must be one-dimensional")
        m, n = self.shape
        if m < 0 or n < 0:
            raise ValueError(f"invalid shape {self.shape}")
        if self.rows.size:
            if self.rows.min() < 0 or self.rows.max() >= m:
                raise ValueError("row index out of range")
            if self.cols.min() < 0 or self.cols.max() >= n:
                raise ValueError("column index out of range")

    @property
    def nnz(self) -> int:
        """Number of stored triplets (before duplicate summation)."""
        return int(self.vals.size)

    @classmethod
    def empty(cls, shape: tuple[int, int]) -> "COOMatrix":
        """An all-zero matrix of the given shape."""
        z = np.zeros(0)
        return cls(z.astype(np.int64), z.astype(np.int64), z, shape)

    @classmethod
    def from_dense(cls, dense: np.ndarray, tol: float = 0.0) -> "COOMatrix":
        """Build from a dense array, dropping entries with ``|a| <= tol``."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError("dense array must be two-dimensional")
        rows, cols = np.nonzero(np.abs(dense) > tol)
        return cls(rows, cols, dense[rows, cols], dense.shape)

    def sum_duplicates(self) -> "COOMatrix":
        """Return an equivalent COO with duplicate coordinates summed."""
        if self.nnz == 0:
            return self
        m, n = self.shape
        keys = self.rows * n + self.cols
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        vals = self.vals[order]
        boundary = np.empty(keys.size, dtype=bool)
        boundary[0] = True
        np.not_equal(keys[1:], keys[:-1], out=boundary[1:])
        starts = np.flatnonzero(boundary)
        summed = np.add.reduceat(vals, starts)
        unique_keys = keys[starts]
        return COOMatrix(unique_keys // n, unique_keys % n, summed, self.shape)

    def transpose(self) -> "COOMatrix":
        """Transpose (swap coordinates)."""
        return COOMatrix(self.cols.copy(), self.rows.copy(), self.vals.copy(),
                         (self.shape[1], self.shape[0]))

    def to_dense(self) -> np.ndarray:
        """Materialise as a dense array (duplicates summed)."""
        out = np.zeros(self.shape)
        np.add.at(out, (self.rows, self.cols), self.vals)
        return out

    def to_csr(self, dedup: bool = True):
        """Convert to :class:`~repro.sparsela.csr.CSRMatrix`.

        Duplicates are summed and explicit zeros retained (callers that want
        them dropped use :meth:`CSRMatrix.prune`).

        ``dedup=False`` is the fast path for callers that *guarantee* the
        triplets are already unique and sorted in row-major order (e.g.
        slices of an existing CSR): the sort/reduce pass is skipped and
        the triplet arrays are adopted without copying.  The result is
        bit-identical to ``dedup=True`` on such input — a stable sort of
        already-sorted keys is the identity and reduction over singleton
        groups is a copy — so this is purely a work-avoidance knob.
        """
        from repro.sparsela.csr import CSRMatrix

        # sum_duplicates returns triplets sorted by row-major key, so no
        # further ordering pass is needed on either path
        coo = self.sum_duplicates() if dedup else self
        m, _ = self.shape
        counts = np.bincount(coo.rows, minlength=m)
        indptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return CSRMatrix(indptr, coo.cols, coo.vals, self.shape)
