"""Symmetric diagonal scaling.

The paper scales every test matrix "symmetrically ... to have unit diagonal
values" (Section 4.2): ``A_scaled = D^{-1/2} A D^{-1/2}`` with
``D = diag(A)``.  Under this scaling the Gauss-Southwell rule (largest
``|r_i / a_ii|``) coincides with the Southwell rule (largest ``|r_i|``),
which is why the paper can use the two interchangeably.

Right-hand sides transform as ``b_scaled = D^{-1/2} b`` and solutions as
``x = D^{-1/2} x_scaled``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparsela.csr import CSRMatrix

__all__ = ["ScaledSystem", "symmetric_unit_diagonal_scale"]


@dataclass(frozen=True)
class ScaledSystem:
    """Result of symmetric unit-diagonal scaling.

    Attributes
    ----------
    matrix:
        ``D^{-1/2} A D^{-1/2}`` — unit diagonal.
    scale:
        The vector ``d = diag(A)^{1/2}`` used, so an original-space solution
        is recovered as ``x = x_scaled / d`` and ``b_scaled = b / d``.
    """

    matrix: CSRMatrix
    scale: np.ndarray

    def scale_rhs(self, b: np.ndarray) -> np.ndarray:
        """Map an original-space right-hand side into scaled space."""
        return np.asarray(b, dtype=np.float64) / self.scale

    def unscale_solution(self, x_scaled: np.ndarray) -> np.ndarray:
        """Map a scaled-space solution back to original space."""
        return np.asarray(x_scaled, dtype=np.float64) / self.scale


def symmetric_unit_diagonal_scale(A: CSRMatrix) -> ScaledSystem:
    """Symmetrically scale a square matrix to unit diagonal.

    Raises
    ------
    ValueError
        If the matrix is not square or has a non-positive diagonal entry
        (an SPD matrix always has a strictly positive diagonal).
    """
    if A.n_rows != A.n_cols:
        raise ValueError("symmetric scaling needs a square matrix")
    diag = A.diagonal()
    if np.any(diag <= 0.0):
        bad = int(np.argmin(diag))
        raise ValueError(
            f"non-positive diagonal entry {diag[bad]!r} at row {bad}; "
            "matrix cannot be SPD")
    d = np.sqrt(diag)
    rows = A._expanded_row_ids()
    scaled = CSRMatrix(A.indptr.copy(), A.indices.copy(),
                       A.data / (d[rows] * d[A.indices]), A.shape)
    return ScaledSystem(matrix=scaled, scale=d)
