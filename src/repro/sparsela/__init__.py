"""From-scratch sparse linear algebra substrate.

The paper's implementation stores matrices in CSR and works with
unit-diagonal symmetrically scaled SPD systems.  This package provides:

- :class:`COOMatrix` / :class:`CSRMatrix` — numpy-backed sparse containers
  built from scratch (construction, matvec, transpose, slicing, block
  extraction).
- :mod:`repro.sparsela.scaling` — symmetric diagonal scaling to unit diagonal
  (the paper scales every test matrix this way).
- :mod:`repro.sparsela.kernels` — relaxation kernels (Jacobi, Gauss-Seidel,
  SOR sweeps) with a pure-python reference implementation and a fast path.
- :mod:`repro.sparsela.backend` — pluggable kernel backends (``reference``,
  ``scipy``, optional ``numba``), selectable via :func:`set_backend` or the
  ``REPRO_BACKEND`` environment variable.
- :mod:`repro.sparsela.io` — Matrix Market and a compact binary format
  (mirroring the artifact's ``.mtx.bin`` files).
- :mod:`repro.sparsela.ordering` — BFS and reverse Cuthill-McKee orderings.
"""

from repro.sparsela.backend import (
    KernelBackend,
    available_backends,
    get_backend,
    register_backend,
    set_backend,
    use_backend,
)
from repro.sparsela.coo import COOMatrix
from repro.sparsela.csr import CSRMatrix
from repro.sparsela.io import (
    read_binary,
    read_matrix_market,
    write_binary,
    write_matrix_market,
)
from repro.sparsela.kernels import (
    gauss_seidel_sweep,
    jacobi_sweep,
    residual,
    sor_sweep,
)
from repro.sparsela.ordering import bfs_levels, bfs_order, rcm_order
from repro.sparsela.scaling import symmetric_unit_diagonal_scale

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "KernelBackend",
    "available_backends",
    "bfs_levels",
    "bfs_order",
    "gauss_seidel_sweep",
    "get_backend",
    "jacobi_sweep",
    "rcm_order",
    "read_binary",
    "read_matrix_market",
    "register_backend",
    "residual",
    "set_backend",
    "sor_sweep",
    "symmetric_unit_diagonal_scale",
    "use_backend",
    "write_binary",
    "write_matrix_market",
]
