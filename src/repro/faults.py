"""Deterministic, seeded fault injection for the simulated runtime.

The paper's central robustness claim is that Distributed Southwell
tolerates *inexact* neighbor information — stale ``‖r_q‖`` estimates and
the Γ̃ repair mechanism exist precisely so the method survives imperfect
communication, whereas Parallel Southwell needs exact explicit updates
(PAPER.md, Algorithms 2–3).  This module turns that claim into a testable
fault model: a frozen :class:`FaultPlan` describes per-category message
**drop**, **duplication**, **reordering**, epoch-**delay** distributions,
optional **ghost-payload staleness**, and per-process **stall/slowdown**
schedules; a :class:`FaultRuntime` compiles the plan into per-edge
counter-based random streams and is consulted by *both* message planes
(:mod:`repro.runtime.window` and :mod:`repro.runtime.flatplane`).

Determinism contract
--------------------
Every fault decision is a pure function of
``(plan.seed, src, dst, kind, sequence-number, salt)`` via a splitmix64-
style hash — there is *no* stateful RNG.  Both planes maintain identical
per-``(edge, kind)`` send-sequence counters (exactly one message per
``(edge, kind)`` per epoch, in put order), so a faulted run makes
bit-identical fate decisions on the object plane and the flat plane, and
two runs with the same plan are bit-identical to each other.  A plan
whose message-fault rates are all zero (:attr:`FaultPlan.is_null`)
compiles to *disabled* machinery: such runs are bit-identical to runs
with no plan at all (the CI zero-behavior-change guard).

Fate semantics
--------------
dropped
    The send is charged (the origin paid for the put) but the message is
    never delivered and therefore never charged as a receive.
duplicated
    Delivered twice, back to back (two receives).
reordered
    Moved, stably, to the back of its destination's delivery batch for
    the epoch.
delayed
    Held back 1..``max_delay`` whole epochs.  Requires per-message
    storage, so a plan with ``delay > 0`` forces the object plane
    (:attr:`FaultPlan.requires_object_plane`), mirroring the existing
    ``delay_probability`` ablation.
ghost-stale
    The ghost payload (``z``) of the message is not applied by the
    receiver; headers (norms) still land.  Models a torn one-sided read.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = [
    "FATE_DROP",
    "FATE_DUP",
    "FATE_REORDER",
    "FATE_STALE",
    "DegradedRunError",
    "EdgeFaults",
    "FaultPlan",
    "FaultRuntime",
    "SlowdownWindow",
    "StallWindow",
]

#: fate bit flags carried on :class:`~repro.runtime.message.Message.fate`
#: and in the flat plane's per-delivery fate array
FATE_DROP = 1
FATE_DUP = 2
FATE_REORDER = 4
FATE_STALE = 8

_FATE_NAMES = ((FATE_DROP, "drop"), (FATE_DUP, "duplicate"),
               (FATE_REORDER, "reorder"), (FATE_STALE, "ghost_stale"))

#: message-kind integers hashed into the fate stream (solve / residual)
KIND_SOLVE = 0
KIND_RESIDUAL = 1
_KIND_OF = {"solve": KIND_SOLVE, "residual": KIND_RESIDUAL}
_CAT_OF = {KIND_SOLVE: "solve", KIND_RESIDUAL: "residual"}

# hash salts: one independent substream per fault decision
_SALT_DROP = 1
_SALT_DUP = 2
_SALT_REORDER = 3
_SALT_DELAY = 4
_SALT_DELAY_LEN = 5
_SALT_STALE = 6


class DegradedRunError(RuntimeError):
    """Raised by the strict failure policy when a faulted run degrades
    (detects an unrecoverable deadlock) instead of converging."""


# ----------------------------------------------------------------------
# plan dataclasses
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EdgeFaults:
    """Per-message fault rates for one message category."""

    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    delay: float = 0.0
    max_delay: int = 1
    ghost_stale: float = 0.0

    def __post_init__(self):
        for name in ("drop", "duplicate", "reorder", "delay", "ghost_stale"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {v!r}")
        if self.max_delay < 1:
            raise ValueError("max_delay must be >= 1")

    @property
    def any_fault(self) -> bool:
        return (self.drop > 0 or self.duplicate > 0 or self.reorder > 0
                or self.delay > 0 or self.ghost_stale > 0)


@dataclass(frozen=True)
class StallWindow:
    """Rank ``rank`` performs no relaxations during steps
    ``start <= step < stop`` (1-based parallel steps).  It still drains
    its window — one-sided progress does not need the target's CPU."""

    rank: int
    start: int
    stop: int


@dataclass(frozen=True)
class SlowdownWindow:
    """Rank ``rank`` computes at ``factor`` of full speed during steps
    ``start <= step < stop`` (cost model only; numerics unchanged)."""

    rank: int
    start: int
    stop: int
    factor: float


@dataclass(frozen=True)
class FaultPlan:
    """A frozen, seeded description of every fault a run will suffer.

    ``resend_after`` / ``retry_budget`` parameterize the Distributed
    Southwell loss-hardening (heartbeat re-send of the residual-norm
    repair message when an edge has been silent that many steps, at most
    ``retry_budget`` consecutive times per edge); ``deadlock_patience``
    is how many fully quiet steps (no active process, no sends, nothing
    in flight, residual above target) the run tolerates before declaring
    graceful degradation.
    """

    seed: int = 0
    solve: EdgeFaults = field(default_factory=EdgeFaults)
    residual: EdgeFaults = field(default_factory=EdgeFaults)
    stalls: tuple[StallWindow, ...] = ()
    slowdowns: tuple[SlowdownWindow, ...] = ()
    resend_after: int = 4
    retry_budget: int = 25
    deadlock_patience: int = 8

    def __post_init__(self):
        # JSON round-trips hand us lists/dicts; freeze them into the
        # declared types so equality and hashing behave
        if not isinstance(self.solve, EdgeFaults):
            object.__setattr__(self, "solve", EdgeFaults(**dict(self.solve)))
        if not isinstance(self.residual, EdgeFaults):
            object.__setattr__(self, "residual",
                               EdgeFaults(**dict(self.residual)))
        if self.stalls and not isinstance(self.stalls[0], StallWindow):
            object.__setattr__(self, "stalls", tuple(
                StallWindow(**dict(s)) for s in self.stalls))
        else:
            object.__setattr__(self, "stalls", tuple(self.stalls))
        if self.slowdowns and not isinstance(self.slowdowns[0],
                                             SlowdownWindow):
            object.__setattr__(self, "slowdowns", tuple(
                SlowdownWindow(**dict(s)) for s in self.slowdowns))
        else:
            object.__setattr__(self, "slowdowns", tuple(self.slowdowns))
        if self.resend_after < 1:
            raise ValueError("resend_after must be >= 1")
        if self.retry_budget < 0:
            raise ValueError("retry_budget must be >= 0")
        if self.deadlock_patience < 1:
            raise ValueError("deadlock_patience must be >= 1")

    # -- derived properties -------------------------------------------
    @property
    def message_faults(self) -> bool:
        """Any per-message fault rate nonzero?"""
        return self.solve.any_fault or self.residual.any_fault

    @property
    def is_null(self) -> bool:
        """Compiles to disabled machinery: a run under a null plan is
        bit-identical to a run with no plan at all."""
        return (not self.message_faults and not self.stalls
                and not self.slowdowns)

    @property
    def lossy(self) -> bool:
        """Can messages be lost or double-applied?  Gates the cumulative
        self-healing solve payloads and the DS heartbeat hardening."""
        return (self.solve.drop > 0 or self.solve.duplicate > 0
                or self.residual.drop > 0 or self.residual.duplicate > 0)

    @property
    def requires_object_plane(self) -> bool:
        """Delay distributions need per-message storage, which only the
        object plane has (same constraint as ``delay_probability``)."""
        return self.solve.delay > 0 or self.residual.delay > 0

    # -- constructors / serialization ---------------------------------
    @classmethod
    def uniform(cls, drop: float = 0.0, duplicate: float = 0.0,
                reorder: float = 0.0, delay: float = 0.0,
                max_delay: int = 1, ghost_stale: float = 0.0,
                **plan_fields) -> "FaultPlan":
        """Same fault rates for both message categories."""
        ef = EdgeFaults(drop=drop, duplicate=duplicate, reorder=reorder,
                        delay=delay, max_delay=max_delay,
                        ghost_stale=ghost_stale)
        return cls(solve=ef, residual=ef, **plan_fields)

    def to_json(self) -> str:
        """Round-trippable JSON document (see :meth:`from_json`)."""
        doc = dataclasses.asdict(self)
        doc["schema"] = "repro.faultplan/v1"
        return json.dumps(doc, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        doc = json.loads(text)
        doc.pop("schema", None)
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(doc) - known
        if unknown:
            raise ValueError(f"unknown FaultPlan fields: {sorted(unknown)}")
        return cls(**doc)

    @classmethod
    def from_file(cls, path: str | Path) -> "FaultPlan":
        return cls.from_json(Path(path).read_text())


# ----------------------------------------------------------------------
# counter-based hashing (stateless, identical on both planes)
# ----------------------------------------------------------------------
_GOLD = np.uint64(0x9E3779B97F4A7C15)
_C1 = np.uint64(0xFF51AFD7ED558CCD)
_C2 = np.uint64(0xC4CEB9FE1A85EC53)
_INV53 = 2.0 ** -53


def _mix64(z: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer over uint64 arrays (wrapping arithmetic)."""
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


def _u01(seed: np.uint64, src, dst, kind: int, seq, salt: int) -> np.ndarray:
    """Uniforms in [0, 1) from the (seed, src, dst, kind, seq, salt) key.

    ``src``/``dst``/``seq`` may be uint64 arrays (broadcast) or scalars;
    the result has the broadcast shape.  Pure function — the whole fault
    stream is replayable from the plan alone.
    """
    with np.errstate(over="ignore"):    # uint64 wraparound is the point
        h = _mix64(seed + _GOLD)
        h = _mix64(h ^ (np.asarray(src, dtype=np.uint64) * _C1))
        h = _mix64(h ^ (np.asarray(dst, dtype=np.uint64) * _C2))
        h = _mix64(h ^ (np.uint64(kind) * _GOLD))
        h = _mix64(h ^ (np.asarray(seq, dtype=np.uint64) * _C1))
        h = _mix64(h ^ (np.uint64(salt) * _C2))
    return (h >> np.uint64(11)).astype(np.float64) * _INV53


# ----------------------------------------------------------------------
# the compiled runtime
# ----------------------------------------------------------------------
class FaultRuntime:
    """A :class:`FaultPlan` compiled for one run: per-edge sequence
    counters, injected-fault accounting, and per-step stall/slowdown
    lookups.  One instance per run; shared by whichever message plane
    the run uses (a run uses exactly one)."""

    def __init__(self, plan: FaultPlan, n_procs: int, tracer=None):
        from repro.trace import NULL_TRACER

        self.plan = plan
        self.n_procs = n_procs
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._seed = np.uint64(plan.seed & 0xFFFFFFFFFFFFFFFF)
        self.message_faults = plan.message_faults
        #: object-plane sequence counters: (src, dst, kind) -> next seq
        self._seq: dict[tuple[int, int, int], int] = {}
        #: flat-plane sequence counters, one per slot id (2E)
        self._sid_seq: np.ndarray | None = None
        self._sid_src: np.ndarray | None = None
        self._sid_dst: np.ndarray | None = None
        #: injected-fault totals, e.g. {"drop:solve": 3, "stall": 2}
        self.injected: dict[str, int] = {}
        self.retries = 0
        self._stall_by_rank: dict[int, list[tuple[int, int]]] = {}
        for s in plan.stalls:
            self._stall_by_rank.setdefault(s.rank, []).append(
                (s.start, s.stop))
        self._slow_by_rank: dict[int, list[tuple[int, int, float]]] = {}
        for s in plan.slowdowns:
            self._slow_by_rank.setdefault(s.rank, []).append(
                (s.start, s.stop, s.factor))
        self._stall_memo: tuple[int, np.ndarray | None] = (-1, None)

    # -- accounting ----------------------------------------------------
    def _count(self, key: str, n: int = 1) -> None:
        if n:
            self.injected[key] = self.injected.get(key, 0) + int(n)

    def count_retries(self, n: int) -> None:
        """DS loss-hardening reports its timeout re-sends here so trace
        reconciliation stays an equality check."""
        if n:
            self.retries += int(n)
            self.injected["retry"] = self.injected.get("retry", 0) + int(n)

    def summary(self) -> dict[str, int]:
        """Injected totals (faults + stalls + DS retries), nonzero only."""
        return dict(self.injected)

    # -- fate streams --------------------------------------------------
    def _edge_fates(self, ef: EdgeFaults, src, dst, kind: int, seq):
        """Vectorized fate bits (+ delay lengths) for one category."""
        n = np.broadcast(np.asarray(seq)).size
        fate = np.zeros(n, dtype=np.int64)
        if ef.drop > 0:
            fate |= np.where(
                _u01(self._seed, src, dst, kind, seq, _SALT_DROP) < ef.drop,
                FATE_DROP, 0)
        alive = (fate & FATE_DROP) == 0
        if ef.duplicate > 0:
            hit = _u01(self._seed, src, dst, kind, seq,
                       _SALT_DUP) < ef.duplicate
            fate |= np.where(hit & alive, FATE_DUP, 0)
        if ef.reorder > 0:
            hit = _u01(self._seed, src, dst, kind, seq,
                       _SALT_REORDER) < ef.reorder
            fate |= np.where(hit & alive, FATE_REORDER, 0)
        if ef.ghost_stale > 0:
            hit = _u01(self._seed, src, dst, kind, seq,
                       _SALT_STALE) < ef.ghost_stale
            fate |= np.where(hit & alive, FATE_STALE, 0)
        delay = None
        if ef.delay > 0:
            hit = _u01(self._seed, src, dst, kind, seq,
                       _SALT_DELAY) < ef.delay
            length = 1 + np.minimum(
                (_u01(self._seed, src, dst, kind, seq, _SALT_DELAY_LEN)
                 * ef.max_delay).astype(np.int64),
                ef.max_delay - 1)
            delay = np.where(hit & alive, length, 0)
        return fate, delay

    def fate(self, src: int, dst: int, category: str) -> tuple[int, int, int]:
        """Object-plane fate for the next message on ``(src, dst,
        category)``: ``(fate_bits, delay_epochs, seq)``.  Advances the
        edge's sequence counter and records/traces every injected fault."""
        kind = _KIND_OF[category]
        key = (src, dst, kind)
        seq = self._seq.get(key, 0)
        self._seq[key] = seq + 1
        ef = self.plan.solve if kind == KIND_SOLVE else self.plan.residual
        if not ef.any_fault:
            return 0, 0, seq
        fate_arr, delay_arr = self._edge_fates(ef, src, dst, kind, seq)
        fate = int(fate_arr[0])
        delay = int(delay_arr[0]) if delay_arr is not None else 0
        trc = self.tracer
        for bit, name in _FATE_NAMES:
            if fate & bit:
                self._count(f"{name}:{category}")
                if trc.enabled:
                    trc.fault(name, src, dst, category)
        if delay:
            self._count(f"delay:{category}")
            if trc.enabled:
                trc.fault("delay", src, dst, category)
        return fate, delay, seq

    # -- flat plane ----------------------------------------------------
    def attach_flat(self, plane) -> None:
        """Bind to a :class:`~repro.runtime.flatplane.FlatEdgePlane`:
        per-slot sequence counters plus cached src/dst/kind keys."""
        if self.plan.requires_object_plane:
            raise RuntimeError("a FaultPlan with delay > 0 requires the "
                               "object message plane")
        n_slots = 2 * len(plane.edge_src)
        self._sid_seq = np.zeros(n_slots, dtype=np.int64)
        eids = np.arange(n_slots, dtype=np.int64) >> 1
        self._sid_src = plane.edge_src[eids].astype(np.uint64)
        self._sid_dst = plane.edge_dst[eids].astype(np.uint64)

    def fates_flat(self, sids: np.ndarray) -> np.ndarray:
        """Fates for a batch of flat-plane slot puts (one message per
        sid).  Bit-identical to per-message :meth:`fate` calls because
        both hash the same ``(src, dst, kind, seq)`` keys."""
        seqs = self._sid_seq[sids]
        self._sid_seq[sids] += 1
        fates = np.zeros(sids.size, dtype=np.int64)
        srcs = self._sid_src[sids]
        dsts = self._sid_dst[sids]
        for kind, ef in ((KIND_SOLVE, self.plan.solve),
                         (KIND_RESIDUAL, self.plan.residual)):
            sel = np.flatnonzero((sids & 1) == kind)
            if sel.size == 0 or not ef.any_fault:
                continue
            f, _ = self._edge_fates(ef, srcs[sel], dsts[sel], kind,
                                    seqs[sel])
            fates[sel] = f
            cat = _CAT_OF[kind]
            trc = self.tracer
            for bit, name in _FATE_NAMES:
                hit = np.flatnonzero(f & bit)
                if hit.size:
                    self._count(f"{name}:{cat}", hit.size)
                    if trc.enabled:
                        trc.faults_flat(name, srcs[sel[hit]].astype(np.int64),
                                        dsts[sel[hit]].astype(np.int64), cat)
        return fates

    # -- stalls / slowdowns -------------------------------------------
    def stall_mask(self, step: int) -> np.ndarray | None:
        """Boolean mask of stalled ranks at 1-based ``step`` (or None).

        Memoized per step: counting and tracing happen once per step no
        matter how many phases consult the mask."""
        if not self._stall_by_rank:
            return None
        if self._stall_memo[0] == step:
            return self._stall_memo[1]
        mask = np.zeros(self.n_procs, dtype=bool)
        for rank, wins in self._stall_by_rank.items():
            if 0 <= rank < self.n_procs and any(
                    lo <= step < hi for lo, hi in wins):
                mask[rank] = True
        out = mask if mask.any() else None
        if out is not None:
            stalled = np.flatnonzero(out)
            self._count("stall", stalled.size)
            if self.tracer.enabled:
                for p in stalled:
                    self.tracer.fault("stall", int(p), -1, "")
        self._stall_memo = (step, out)
        return out

    def speed_factors(self, step: int,
                      base: np.ndarray | None) -> np.ndarray | None:
        """Per-process compute-speed factors at 1-based ``step``,
        combining the run's base factors with active slowdown windows."""
        if not self._slow_by_rank:
            return base
        factors = None
        for rank, wins in self._slow_by_rank.items():
            for lo, hi, f in wins:
                if lo <= step < hi and 0 <= rank < self.n_procs:
                    if factors is None:
                        factors = (np.ones(self.n_procs)
                                   if base is None
                                   else np.asarray(base,
                                                   dtype=np.float64).copy())
                    factors[rank] *= f
        return base if factors is None else factors

    def rank_stalled(self, p: int, turn: int) -> bool:
        """Per-rank stall check at 1-based ``turn``.

        The async executor's ranks advance through turns independently,
        so the per-step memo of :meth:`stall_mask` does not apply; each
        (rank, turn) pair is consulted exactly once, so counting and
        tracing here stays deterministic."""
        wins = self._stall_by_rank.get(p)
        if not wins or not any(lo <= turn < hi for lo, hi in wins):
            return False
        self._count("stall", 1)
        if self.tracer.enabled:
            self.tracer.fault("stall", int(p), -1, "")
        return True

    def rank_slowdown(self, p: int, turn: int) -> float:
        """Combined slowdown multiplier for rank ``p`` at 1-based
        ``turn`` (1.0 = full speed); the async-executor counterpart of
        :meth:`speed_factors`."""
        wins = self._slow_by_rank.get(p)
        if not wins:
            return 1.0
        f = 1.0
        for lo, hi, factor in wins:
            if lo <= turn < hi:
                f *= factor
        return f
