"""Top-level convenience API: one front door for the three block methods.

:func:`solve` is the package's canonical entry point: it takes the matrix
plus a frozen :class:`RunConfig` describing *everything else* — problem
shape (``n_parts``, ``max_steps``, targets), machine (``cost_model``),
and execution environment (kernel ``backend``, message-plane ``runtime``,
``trace``) — runs the method end to end, and returns a
:class:`SolveResult` with the solution, the convergence history, the
communication statistics, and the resolved configuration.  It is the
*only* entry point: the seed-era per-method wrappers
(``run_block_method``, ``solve_block_jacobi``, ...) were removed in
v2.0 after a deprecation cycle.

``runtime="async"`` swaps the lockstep epoch driver for the
event-driven executor (DESIGN.md §5.14): per-rank virtual clocks priced
by the cost model, simulated-time message delivery, stragglers via
:class:`AsyncConfig.speed_factors`.  Async runs fill the v4 result
fields (``virtual_time``, ``rank_clocks``, ``rank_idle``) and sample
their history on the virtual-time axis (:meth:`SolveResult.timeline`).

Configuration precedence follows :mod:`repro.config`: a ``RunConfig``
field set here beats the corresponding ``REPRO_*`` environment variable,
which beats the built-in default.  ``backend`` / ``runtime`` overrides
are applied *scoped* (context managers) so a ``solve`` call never leaks
process-global state.
"""

from __future__ import annotations

import dataclasses
import sys
from contextlib import ExitStack
from dataclasses import dataclass

import numpy as np

from repro import config as _config
from repro.analysis.history import ConvergenceHistory
from repro.core.async_exec import AsyncExecutor
from repro.core.block_base import BlockMethodBase
from repro.core.distributed_southwell_block import DistributedSouthwell
from repro.core.parallel_southwell_block import ParallelSouthwell
from repro.faults import DegradedRunError, FaultPlan
from repro.runtime import (
    CATEGORY_RESIDUAL,
    CATEGORY_SOLVE,
    CORI_LIKE,
    CostModel,
    runtime_mode,
    use_runtime,
)
from repro.setupcache import get_setup
from repro.solvers.block_jacobi import BlockJacobi
from repro.sparsela import CSRMatrix
from repro.sparsela.backend import use_backend
from repro.trace import NULL_TRACER, RunTracer, Tracer, tracer_from_config

__all__ = [
    "AsyncConfig",
    "MultigridConfig",
    "RunConfig",
    "SolveResult",
    "solve",
]

_METHODS = {
    "block-jacobi": BlockJacobi,
    "parallel-southwell": ParallelSouthwell,
    "distributed-southwell": DistributedSouthwell,
}


@dataclass(frozen=True)
class AsyncConfig:
    """Event-driven-runtime knobs (``RunConfig.async_config``).

    Only consulted when the run executes under ``runtime="async"``.
    ``None`` fields defer down the usual precedence chain: ``latency``
    to ``REPRO_ASYNC_LATENCY`` then the built-in default,
    ``speed_factors`` to ``REPRO_ASYNC_SPEED_FACTORS`` then "no
    stragglers", ``max_turns`` to ``max_steps × P × 8``.

    ``speed_factors`` is a tuple of ``(rank, factor)`` pairs — factor
    0.5 makes that rank compute at half speed (a 2× straggler).
    ``max_time`` bounds *simulated* seconds.  ``poll_interval`` is how
    long an idle rank sleeps before re-checking its mailbox;
    ``record_every`` is the history sampling cadence in turns.

    ``scheduler`` picks the event-loop engine: ``"scalar"`` (one rank
    per turn — the oracle) or ``"batched"`` (vectorized event-horizon
    macro-turns, bit-identical results, DESIGN.md §5.15); ``None``
    defers to ``REPRO_ASYNC_SCHEDULER`` then ``"scalar"``.
    """

    latency: float | None = None
    poll_interval: float = 2.0e-6
    speed_factors: tuple[tuple[int, float], ...] | None = None
    max_time: float | None = None
    max_turns: int | None = None
    record_every: int = 64
    scheduler: str | None = None

    def __post_init__(self) -> None:
        if self.latency is not None and self.latency < 0.0:
            raise ValueError("latency must be non-negative")
        if self.poll_interval <= 0.0:
            raise ValueError("poll_interval must be positive")
        if self.speed_factors is not None:
            for pair in self.speed_factors:
                rank, factor = pair
                if int(rank) < 0:
                    raise ValueError("speed factor ranks must be >= 0")
                if float(factor) <= 0.0:
                    raise ValueError("speed factors must be positive")
        if self.max_time is not None and self.max_time <= 0.0:
            raise ValueError("max_time must be positive")
        if self.max_turns is not None and self.max_turns < 1:
            raise ValueError("max_turns must be at least 1")
        if self.record_every < 1:
            raise ValueError("record_every must be at least 1")
        if self.scheduler is not None:
            _config.async_scheduler(self.scheduler)   # validates


@dataclass(frozen=True)
class MultigridConfig:
    """Multigrid knobs (``RunConfig.mg``), consulted by ``method="mg"``.

    ``None`` fields defer down the usual precedence chain (explicit >
    ``REPRO_MG_*`` environment > default): ``smoother`` to
    ``REPRO_MG_SMOOTHER`` then ``"ds"``, ``budget`` to
    ``REPRO_MG_BUDGET`` then 1.0 sweeps, ``drop_tol`` to
    ``REPRO_MG_DROP_TOL`` then 0.0, ``cycles`` to ``REPRO_MG_CYCLES``
    then 9, ``levels`` to ``REPRO_MG_LEVELS`` then the full hierarchy.

    ``smoother`` names the per-level smoother
    (:data:`repro.config.VALID_MG_SMOOTHERS`): ``"ds"`` / ``"ps"`` /
    ``"bj"`` run the block methods through the real distributed runtime
    (``RunConfig.n_parts`` processes per level, messages accounted per
    level); ``"scalar-ds"`` / ``"scalar-ps"`` are the paper's published
    Figure 6 smoothers; ``"gs"`` is the Gauss-Seidel baseline.
    ``budget`` is the equal-relaxation-budget contract in sweeps
    (relaxations per smoothing application = ``budget × level rows``).
    A positive ``drop_tol`` sparsifies the Galerkin coarse operators
    (arXiv 1512.04629) — and implies ``hierarchy="galerkin"``.
    """

    smoother: str | None = None
    budget: float | None = None
    drop_tol: float | None = None
    cycles: int | None = None
    levels: int | None = None
    hierarchy: str = "geometric"
    coarsest_dim: int = 3

    def __post_init__(self) -> None:
        # the config getters validate explicit values (and raise on junk)
        if self.smoother is not None:
            _config.mg_smoother(self.smoother)
        if self.budget is not None:
            _config.mg_budget(self.budget)
        if self.drop_tol is not None:
            _config.mg_drop_tol(self.drop_tol)
        if self.cycles is not None:
            _config.mg_cycles(self.cycles)
        if self.levels is not None:
            _config.mg_levels(self.levels)
        if self.hierarchy not in ("geometric", "galerkin"):
            raise ValueError(
                f"unknown hierarchy {self.hierarchy!r}; expected "
                f"'geometric' or 'galerkin'")
        if self.coarsest_dim < 3:
            raise ValueError("coarsest grid must be at least 3x3")


@dataclass(frozen=True)
class RunConfig:
    """Everything about a run except the matrix and the vectors.

    Frozen so a config can key caches and be attached to results without
    defensive copies; derive variants with :func:`dataclasses.replace`
    (or the ``**overrides`` shorthand of :func:`solve`).

    ``backend`` / ``runtime`` / ``trace`` / ``faults`` are
    execution-environment overrides: ``None`` defers to the ``REPRO_*``
    environment knobs (see :mod:`repro.config`).  ``runtime`` picks the
    message plane — ``"flat"`` (preallocated single-process buffers),
    ``"shm"`` (the flat plane executed by real worker processes over
    shared memory, DESIGN.md §5.12; bit-identical results, and if shared
    memory or forking is unavailable the run falls back to ``"flat"``
    with ``SolveResult.degraded_reason = "shm-unavailable"``),
    ``"async"`` (the event-driven virtual-time executor, tuned by
    ``async_config``), or
    ``"object"`` (the reference dict plane).  ``trace`` accepts a
    file path (a JSONL or Chrome trace is written there after the run —
    suffix picks the format) or a :class:`~repro.trace.Tracer` instance
    to record into.  ``faults`` is a frozen
    :class:`~repro.faults.FaultPlan` (``None`` defers to the
    ``REPRO_FAULTS`` plan file); ``strict=True`` turns a gracefully
    degraded run (reported unrecoverable deadlock) into a raised
    :class:`~repro.faults.DegradedRunError` instead of a returned
    result.
    """

    n_parts: int | None = None
    max_steps: int = 50
    target_norm: float | None = None
    stop_at_target: bool = False
    local_solver: str = "gs"
    cost_model: CostModel = CORI_LIKE
    partition_method: str = "multilevel"
    seed: int = 0
    backend: str | None = None
    runtime: str | None = None
    trace: str | Tracer | None = None
    faults: FaultPlan | None = None
    strict: bool = False
    async_config: AsyncConfig | None = None
    mg: MultigridConfig | None = None

    def to_dict(self) -> dict:
        """JSON-able view (cost-model coefficients inlined)."""
        d = dataclasses.asdict(self)
        d["cost_model"] = dataclasses.asdict(self.cost_model)
        if isinstance(self.trace, Tracer):
            d["trace"] = type(self.trace).__name__
        return d


@dataclass
class SolveResult:
    """Everything a paper table needs about one run."""

    method: str
    x: np.ndarray
    history: ConvergenceHistory
    n_parts: int
    comm_cost: float
    solve_comm: float
    residual_comm: float
    parallel_steps: int
    relaxations: int
    simulated_time: float
    #: cumulative per-category comm cost after each step (index 0 = before
    #: any step), aligned with ``history`` — Table 3 reads these at the
    #: Table 2 target crossing
    solve_comm_curve: np.ndarray | None = None
    residual_comm_curve: np.ndarray | None = None
    #: the resolved configuration the run executed under (when it went
    #: through :func:`solve` / :func:`run_block_method`)
    config: RunConfig | None = None
    #: where the run's trace file was written, if tracing to disk
    trace_path: str | None = None
    #: per-kind injected-fault totals ("drop:solve", "stall", "retry",
    #: ...) when the run executed under a fault plan, else ``None``
    faults_injected: dict | None = None
    #: deadlock-repair messages the method sent (timeout re-sends
    #: included)
    repairs: int = 0
    #: did the run stop by *reporting* an unrecoverable deadlock
    #: (graceful degradation) instead of converging / hitting max_steps?
    degraded: bool = False
    #: why the run degraded — a deadlock report, or ``"shm-unavailable"``
    #: when ``runtime="shm"`` fell back to the single-process flat plane
    #: (results are identical either way; ``degraded`` stays False then)
    degraded_reason: str | None = None
    #: process peak resident-set high-water mark (bytes) observed right
    #: after the run — ``getrusage(RUSAGE_SELF).ru_maxrss``, with the shm
    #: workers' ``RUSAGE_CHILDREN`` peak folded in when the run forked a
    #: pool (their slab pages are charged to them, not us).  ``None``
    #: where the ``resource`` module is unavailable.  A high-water mark
    #: for the whole process, not a per-run delta: in a fresh process
    #: (one cell of ``scripts/bench_scale.py``) it IS the run's peak.
    peak_rss_bytes: int | None = None
    #: simulated seconds the event-driven run spanned (the furthest
    #: rank clock); ``None`` for lockstep runs
    virtual_time: float | None = None
    #: per-rank final virtual clocks (async runs; ``None`` otherwise) —
    #: the spread shows straggler lag directly
    rank_clocks: tuple[float, ...] | None = None
    #: per-rank cumulative idle seconds inside ``rank_clocks``
    rank_idle: tuple[float, ...] | None = None
    #: per-level multigrid smoothing totals
    #: (:class:`~repro.multigrid.mg_exec.LevelStats` rows, finest first;
    #: they sum to the run totals by equality) — ``None`` for
    #: single-level runs
    levels: tuple | None = None
    #: V-cycles executed (``method="mg"``); ``None`` for single-level
    #: runs
    cycles: int | None = None

    def comm_breakdown_at(self, target: float
                          ) -> tuple[float, float] | None:
        """(solve comm, res comm) at the ``‖r‖ = target`` crossing.

        Linear interpolation on the parallel-step axis; ``None`` if the
        run never reaches the target (the paper's ``†``).
        """
        k = self.history.cost_to_reach(target, axis="parallel_steps")
        if k is None or self.solve_comm_curve is None:
            return None
        steps = np.asarray(self.history.parallel_steps, dtype=np.float64)
        solve = float(np.interp(k, steps, self.solve_comm_curve))
        res = float(np.interp(k, steps, self.residual_comm_curve))
        return solve, res

    def timeline(self) -> dict[str, np.ndarray]:
        """The convergence history as aligned numpy columns.

        Keys: ``residual_norms``, ``relaxations``, ``parallel_steps``
        (turns for async runs), ``comm_costs``, ``times`` (simulated
        seconds — the virtual-time axis for async runs) and
        ``active_fractions``.  ``timeline()["times"]`` against
        ``timeline()["residual_norms"]`` is the async fig8 plot.
        """
        return self.history.as_arrays()

    @property
    def final_norm(self) -> float:
        return self.history.final_norm

    def reached(self, target: float) -> bool:
        """Did the run ever get the residual norm to ``target``?"""
        return self.history.cost_to_reach(target,
                                          axis="parallel_steps") is not None

    def summary(self) -> str:
        """One-line report in the spirit of the artifact's output."""
        line = (f"{self.method}: P={self.n_parts} "
                f"steps={self.parallel_steps}"
                f" ‖r‖={self.final_norm:.3e}"
                f" comm={self.comm_cost:.2f} msg/proc"
                f" (solve {self.solve_comm:.2f} / residual"
                f" {self.residual_comm:.2f})"
                f" time={self.simulated_time * 1e3:.2f} ms (simulated)")
        if self.degraded:
            line += " [DEGRADED: unrecoverable deadlock reported]"
        return line

    def to_dict(self) -> dict:
        """JSON-able sibling of :meth:`summary` (the CLI ``--json``
        payload): scalar metrics, the history arrays, the resolved
        config, and the trace path — everything except the solution
        vector."""
        return {
            "schema": "repro.solveresult/v5",
            "method": self.method,
            "n_parts": self.n_parts,
            "parallel_steps": self.parallel_steps,
            "relaxations": self.relaxations,
            "final_norm": self.final_norm,
            "comm_cost": self.comm_cost,
            "solve_comm": self.solve_comm,
            "residual_comm": self.residual_comm,
            "simulated_time": self.simulated_time,
            "history": {
                "residual_norms": [float(v)
                                   for v in self.history.residual_norms],
                "relaxations": [int(v) for v in self.history.relaxations],
                "parallel_steps": [int(v)
                                   for v in self.history.parallel_steps],
            },
            "config": self.config.to_dict() if self.config else None,
            "trace_path": self.trace_path,
            "faults_injected": self.faults_injected,
            "repairs": self.repairs,
            "degraded": self.degraded,
            "degraded_reason": self.degraded_reason,
            "peak_rss_bytes": self.peak_rss_bytes,
            # v4: event-driven-runtime clock breakdowns (null = lockstep)
            "virtual_time": self.virtual_time,
            "rank_clocks": (list(self.rank_clocks)
                            if self.rank_clocks is not None else None),
            "rank_idle": (list(self.rank_idle)
                          if self.rank_idle is not None else None),
            # v5: multigrid per-level accounting (null = single-level run)
            "levels": ([lvl.to_dict() for lvl in self.levels]
                       if self.levels is not None else None),
            "cycles": self.cycles,
        }


def solve(A: CSRMatrix, b: np.ndarray | None = None,
          method: str | BlockMethodBase = "distributed-southwell",
          x0: np.ndarray | None = None,
          config: RunConfig | None = None, **overrides) -> SolveResult:
    """Run one distributed method end to end (the package front door).

    ``b`` defaults to zero with a random ``x0`` scaled so ``‖r⁰‖₂ = 1``
    (the paper's Section 4.2 setup).  ``method`` may be a name
    (``'block-jacobi'``, ``'parallel-southwell'``,
    ``'distributed-southwell'``, ``'mg'``) or an already-built method
    instance (whose system is then reused).  Keyword ``overrides`` are
    :class:`RunConfig` fields applied on top of ``config``::

        solve(A, method="distributed-southwell",
              config=RunConfig(n_parts=64, trace="run.jsonl"))
        solve(A, n_parts=64, max_steps=100)      # config built for you

    ``method="mg"`` runs communication-aware multigrid V-cycles
    (DESIGN.md §5.16) tuned by ``RunConfig.mg``
    (:class:`MultigridConfig`); the defaults follow Figure 6 — 9
    V-cycles, a seeded random RHS in ``[-1, 1]``, zero initial guess —
    and the result carries per-level message accounting in
    ``SolveResult.levels``::

        solve(A, method="mg", n_parts=16,
              config=RunConfig(mg=MultigridConfig(smoother="ds",
                                                  drop_tol=0.02)))
    """
    cfg = config if config is not None else RunConfig()
    if overrides:
        cfg = dataclasses.replace(cfg, **overrides)
    return _solve_with_config(method, A, x0, b, cfg)


def _peak_rss_bytes(include_children: bool) -> int | None:
    """Peak RSS high-water mark in bytes, or ``None`` without ``resource``.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; the children
    peak (the shm workers) is an upper-bound fold — shared segment pages
    count once per process, so the sum over-reports sharing, which is
    the safe direction for a memory-budget gate.
    """
    try:
        import resource
    except ImportError:      # pragma: no cover - POSIX-only module
        return None
    unit = 1 if sys.platform == "darwin" else 1024
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * unit
    if include_children:
        peak += resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss * unit
    return int(peak)


def _solve_with_config(method: str | BlockMethodBase, A: CSRMatrix,
                       x0: np.ndarray | None, b: np.ndarray | None,
                       cfg: RunConfig) -> SolveResult:
    """The one real driver behind :func:`solve` and the legacy wrappers."""
    if method == "mg":
        return _solve_multigrid(A, x0, b, cfg)
    trace_path: str | None = None
    tracer: Tracer | None = None
    if isinstance(cfg.trace, Tracer):
        tracer = cfg.trace
    elif cfg.trace is not None:
        tracer = RunTracer()
        trace_path = str(cfg.trace)
    # fault-plan precedence: explicit RunConfig field > REPRO_FAULTS file
    plan = cfg.faults
    if plan is None:
        spec = _config.faults_spec()
        if spec is not None:
            plan = FaultPlan.from_file(spec)
    with ExitStack() as stack:
        if cfg.backend is not None:
            stack.enter_context(use_backend(cfg.backend))
        if cfg.runtime is not None:
            stack.enter_context(use_runtime(cfg.runtime))
        if isinstance(method, BlockMethodBase):
            runner = method
            name = runner.name
            if tracer is not None:
                raise ValueError(
                    "pass tracer= to the method constructor when supplying "
                    "an already-built method instance")
            if plan is not None and runner.fault_plan is None:
                runner.fault_plan = plan
        else:
            if method not in _METHODS:
                raise ValueError(f"unknown method {method!r}; "
                                 f"choices: {sorted(_METHODS)}")
            if cfg.n_parts is None:
                raise ValueError("n_parts is required when method is a name")
            # partition + block build through the setup plane: traced,
            # and served from the persistent cache when enabled
            _, system = get_setup(A, cfg.n_parts,
                                  method=cfg.partition_method,
                                  seed=cfg.seed,
                                  local_solver=cfg.local_solver,
                                  tracer=tracer or NULL_TRACER)
            runner = _METHODS[method](system, cost_model=cfg.cost_model,
                                      seed=cfg.seed, tracer=tracer,
                                      faults=plan)
            name = method
        if x0 is None or b is None:
            rng = np.random.default_rng(cfg.seed)
            x0 = rng.uniform(-1.0, 1.0, A.n_rows)
            b = np.zeros(A.n_rows)
            r0 = b - A.matvec(x0)
            x0 = x0 / np.linalg.norm(r0)
        executor = None
        if runtime_mode() == "async":
            acfg = cfg.async_config or AsyncConfig()
            executor = AsyncExecutor(runner, latency=acfg.latency,
                                     poll_interval=acfg.poll_interval,
                                     speed_factors=acfg.speed_factors,
                                     record_every=acfg.record_every,
                                     scheduler=acfg.scheduler)
            history = executor.run(x0, b, max_steps=cfg.max_steps,
                                   target_norm=cfg.target_norm,
                                   stop_at_target=cfg.stop_at_target,
                                   max_turns=acfg.max_turns,
                                   max_time=acfg.max_time)
        else:
            history = runner.run(x0, b, max_steps=cfg.max_steps,
                                 target_norm=cfg.target_norm,
                                 stop_at_target=cfg.stop_at_target)
    peak_rss = _peak_rss_bytes(
        include_children=bool(getattr(runner, "_shm_was_active", False)))
    if trace_path is not None:
        tracer.save(trace_path)
    degraded = bool(getattr(runner, "degraded", False))
    degraded_reason = getattr(runner, "degraded_reason", None)
    if degraded and cfg.strict:
        raise DegradedRunError(degraded_reason or
                               f"{name} run degraded under fault plan")
    fault_rt = getattr(runner, "_faults", None)
    stats = runner.engine.stats
    zero = np.zeros(1)
    aplane = executor.aplane if executor is not None else None
    return SolveResult(
        method=name,
        x=runner.solution(),
        history=history,
        n_parts=runner.system.n_parts,
        comm_cost=stats.communication_cost(),
        solve_comm=stats.category_cost(CATEGORY_SOLVE),
        residual_comm=stats.category_cost(CATEGORY_RESIDUAL),
        parallel_steps=runner.steps_taken,
        relaxations=runner.total_relaxations,
        simulated_time=stats.elapsed_time(),
        solve_comm_curve=np.concatenate(
            [zero, stats.cumulative_category_costs(CATEGORY_SOLVE)]),
        residual_comm_curve=np.concatenate(
            [zero, stats.cumulative_category_costs(CATEGORY_RESIDUAL)]),
        config=cfg,
        trace_path=trace_path,
        faults_injected=(dict(fault_rt.injected)
                         if fault_rt is not None else None),
        repairs=int(getattr(runner, "repairs_sent", 0)),
        degraded=degraded,
        degraded_reason=degraded_reason,
        peak_rss_bytes=peak_rss,
        virtual_time=(aplane.elapsed if aplane is not None else None),
        rank_clocks=(tuple(float(c) for c in aplane.clocks)
                     if aplane is not None else None),
        rank_idle=(tuple(float(c) for c in aplane.idle)
                   if aplane is not None else None),
    )


def _solve_multigrid(A: CSRMatrix, x0: np.ndarray | None,
                     b: np.ndarray | None, cfg: RunConfig) -> SolveResult:
    """``solve(A, method="mg", ...)``: V-cycles with message accounting.

    Defaults follow the paper's Figure 6 protocol: a seeded random RHS
    in ``[-1, 1]``, zero initial guess, 9 V-cycles.  Block smoothers
    require ``cfg.n_parts`` (processes per level); a positive effective
    ``drop_tol`` implies the Galerkin hierarchy.
    """
    from repro.multigrid.mg_exec import MultigridExecutor, make_smoother

    trace_path: str | None = None
    tracer: Tracer | None = None
    if isinstance(cfg.trace, Tracer):
        tracer = cfg.trace
    elif cfg.trace is not None:
        tracer = RunTracer()
        trace_path = str(cfg.trace)
    if tracer is None:
        # resolve the REPRO_TRACE default once so the executor and every
        # level runner record into the same tracer
        tracer = tracer_from_config()
    plan = cfg.faults
    if plan is None:
        spec = _config.faults_spec()
        if spec is not None:
            plan = FaultPlan.from_file(spec)
    mcfg = cfg.mg if cfg.mg is not None else MultigridConfig()
    smoother_name = _config.mg_smoother(mcfg.smoother)
    budget = _config.mg_budget(mcfg.budget)
    drop_tol = _config.mg_drop_tol(mcfg.drop_tol)
    cycles = _config.mg_cycles(mcfg.cycles)
    n_levels = _config.mg_levels(mcfg.levels)
    hierarchy = "galerkin" if drop_tol > 0.0 else mcfg.hierarchy
    if smoother_name in ("ds", "ps", "bj") and cfg.n_parts is None:
        raise ValueError(
            "n_parts is required for the block multigrid smoothers")
    if b is None:
        rng = np.random.default_rng(cfg.seed)
        b = rng.uniform(-1.0, 1.0, A.n_rows)
    with ExitStack() as stack:
        if cfg.backend is not None:
            stack.enter_context(use_backend(cfg.backend))
        if cfg.runtime is not None:
            stack.enter_context(use_runtime(cfg.runtime))
        smoother = make_smoother(
            smoother_name, budget=budget, n_parts=cfg.n_parts or 1,
            seed=cfg.seed, local_solver=cfg.local_solver,
            partition_method=cfg.partition_method,
            cost_model=cfg.cost_model, tracer=tracer, faults=plan)
        executor = MultigridExecutor(
            A, smoother, coarsest_dim=mcfg.coarsest_dim,
            n_levels=n_levels, hierarchy=hierarchy, drop_tol=drop_tol,
            tracer=tracer)
        history = executor.run(b, x0=x0, n_cycles=cycles)
    peak_rss = _peak_rss_bytes(include_children=False)
    if trace_path is not None:
        tracer.save(trace_path)
    level_rows = tuple(executor.level_stats())
    agg = executor.aggregate_stats()
    faults_injected = executor._merged_faults()
    return SolveResult(
        method=f"mg-{getattr(smoother, 'name', smoother_name)}",
        x=executor.x,
        history=history,
        n_parts=max((row.n_parts for row in level_rows), default=1),
        comm_cost=agg.communication_cost(),
        solve_comm=(agg.category_msgs.get(CATEGORY_SOLVE, 0)
                    / agg.n_procs),
        residual_comm=(agg.category_msgs.get(CATEGORY_RESIDUAL, 0)
                       / agg.n_procs),
        parallel_steps=cycles,
        relaxations=executor._totals()[3],
        simulated_time=agg.elapsed_time(),
        config=cfg,
        trace_path=trace_path,
        faults_injected=faults_injected,
        peak_rss_bytes=peak_rss,
        levels=level_rows,
        cycles=cycles,
    )
