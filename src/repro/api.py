"""Top-level convenience API: one-call drivers for the three block methods.

These wrap partitioning, block-system construction, and the run loop, and
return a :class:`SolveResult` with the solution, the convergence history
and the communication statistics — everything the paper's tables report.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.history import ConvergenceHistory
from repro.core.block_base import BlockMethodBase
from repro.core.blockdata import build_block_system
from repro.core.distributed_southwell_block import DistributedSouthwell
from repro.core.parallel_southwell_block import ParallelSouthwell
from repro.partition import partition
from repro.runtime import (
    CATEGORY_RESIDUAL,
    CATEGORY_SOLVE,
    CORI_LIKE,
    CostModel,
)
from repro.solvers.block_jacobi import BlockJacobi
from repro.sparsela import CSRMatrix

__all__ = [
    "SolveResult",
    "run_block_method",
    "solve_block_jacobi",
    "solve_distributed_southwell",
    "solve_parallel_southwell",
]

_METHODS = {
    "block-jacobi": BlockJacobi,
    "parallel-southwell": ParallelSouthwell,
    "distributed-southwell": DistributedSouthwell,
}


@dataclass
class SolveResult:
    """Everything a paper table needs about one run."""

    method: str
    x: np.ndarray
    history: ConvergenceHistory
    n_parts: int
    comm_cost: float
    solve_comm: float
    residual_comm: float
    parallel_steps: int
    relaxations: int
    simulated_time: float
    #: cumulative per-category comm cost after each step (index 0 = before
    #: any step), aligned with ``history`` — Table 3 reads these at the
    #: Table 2 target crossing
    solve_comm_curve: np.ndarray | None = None
    residual_comm_curve: np.ndarray | None = None

    def comm_breakdown_at(self, target: float
                          ) -> tuple[float, float] | None:
        """(solve comm, res comm) at the ``‖r‖ = target`` crossing.

        Linear interpolation on the parallel-step axis; ``None`` if the
        run never reaches the target (the paper's ``†``).
        """
        k = self.history.cost_to_reach(target, axis="parallel_steps")
        if k is None or self.solve_comm_curve is None:
            return None
        steps = np.asarray(self.history.parallel_steps, dtype=np.float64)
        solve = float(np.interp(k, steps, self.solve_comm_curve))
        res = float(np.interp(k, steps, self.residual_comm_curve))
        return solve, res

    @property
    def final_norm(self) -> float:
        return self.history.final_norm

    def reached(self, target: float) -> bool:
        """Did the run ever get the residual norm to ``target``?"""
        return self.history.cost_to_reach(target,
                                          axis="parallel_steps") is not None

    def summary(self) -> str:
        """One-line report in the spirit of the artifact's output."""
        return (f"{self.method}: P={self.n_parts} steps={self.parallel_steps}"
                f" ‖r‖={self.final_norm:.3e}"
                f" comm={self.comm_cost:.2f} msg/proc"
                f" (solve {self.solve_comm:.2f} / residual"
                f" {self.residual_comm:.2f})"
                f" time={self.simulated_time * 1e3:.2f} ms (simulated)")


def run_block_method(method: str | BlockMethodBase, A: CSRMatrix,
                     n_parts: int | None = None,
                     x0: np.ndarray | None = None,
                     b: np.ndarray | None = None,
                     max_steps: int = 50,
                     target_norm: float | None = None,
                     stop_at_target: bool = False,
                     local_solver: str = "gs",
                     cost_model: CostModel = CORI_LIKE,
                     partition_method: str = "multilevel",
                     seed: int = 0) -> SolveResult:
    """Run one distributed method end to end.

    Parameters mirror the paper's framework: ``b`` defaults to zero with a
    random ``x0`` scaled so ``‖r⁰‖₂ = 1`` (Section 4.2).  ``method`` may be
    a name (``'block-jacobi'``, ``'parallel-southwell'``,
    ``'distributed-southwell'``) or an already-built method instance (whose
    system is then reused).
    """
    if isinstance(method, BlockMethodBase):
        runner = method
        name = runner.name
    else:
        if method not in _METHODS:
            raise ValueError(f"unknown method {method!r}; "
                             f"choices: {sorted(_METHODS)}")
        if n_parts is None:
            raise ValueError("n_parts is required when method is a name")
        part = partition(A, n_parts, method=partition_method, seed=seed)
        system = build_block_system(A, part, local_solver=local_solver)
        runner = _METHODS[method](system, cost_model=cost_model, seed=seed)
        name = method
    if x0 is None or b is None:
        rng = np.random.default_rng(seed)
        x0 = rng.uniform(-1.0, 1.0, A.n_rows)
        b = np.zeros(A.n_rows)
        r0 = b - A.matvec(x0)
        x0 = x0 / np.linalg.norm(r0)
    history = runner.run(x0, b, max_steps=max_steps, target_norm=target_norm,
                         stop_at_target=stop_at_target)
    stats = runner.engine.stats
    zero = np.zeros(1)
    return SolveResult(
        method=name,
        x=runner.solution(),
        history=history,
        n_parts=runner.system.n_parts,
        comm_cost=stats.communication_cost(),
        solve_comm=stats.category_cost(CATEGORY_SOLVE),
        residual_comm=stats.category_cost(CATEGORY_RESIDUAL),
        parallel_steps=runner.steps_taken,
        relaxations=runner.total_relaxations,
        simulated_time=stats.elapsed_time(),
        solve_comm_curve=np.concatenate(
            [zero, stats.cumulative_category_costs(CATEGORY_SOLVE)]),
        residual_comm_curve=np.concatenate(
            [zero, stats.cumulative_category_costs(CATEGORY_RESIDUAL)]),
    )


def solve_block_jacobi(A: CSRMatrix, n_parts: int, **kwargs) -> SolveResult:
    """Block Jacobi (Algorithm 1).  See :func:`run_block_method`."""
    return run_block_method("block-jacobi", A, n_parts, **kwargs)


def solve_parallel_southwell(A: CSRMatrix, n_parts: int,
                             **kwargs) -> SolveResult:
    """Parallel Southwell (Algorithm 2).  See :func:`run_block_method`."""
    return run_block_method("parallel-southwell", A, n_parts, **kwargs)


def solve_distributed_southwell(A: CSRMatrix, n_parts: int,
                                **kwargs) -> SolveResult:
    """Distributed Southwell (Algorithm 3).  See :func:`run_block_method`."""
    return run_block_method("distributed-southwell", A, n_parts, **kwargs)
