"""Classic scalar methods with per-relaxation convergence traces.

These produce the comparison curves of the paper's Figure 2: Gauss-Seidel
(per-relaxation trace), Jacobi (one parallel step per sweep), and Multicolor
Gauss-Seidel (one parallel step per color class).  Each returns a
:class:`ConvergenceHistory` whose x-axes (relaxations / parallel steps)
match the paper's plotting conventions.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.history import ConvergenceHistory
from repro.partition.coloring import color_classes, greedy_coloring
from repro.sparsela import CSRMatrix

__all__ = ["gauss_seidel_trace", "jacobi_trace", "multicolor_gs_trace"]


def gauss_seidel_trace(A: CSRMatrix, x0: np.ndarray, b: np.ndarray,
                       n_sweeps: int, record_every: int = 1
                       ) -> ConvergenceHistory:
    """Forward Gauss-Seidel with a residual-norm sample per relaxation.

    Each row relaxation updates only the coupled residuals and maintains
    the norm incrementally.  Sequential GS performs one relaxation per
    parallel step, so ``parallel_steps == relaxations`` here (Figure 2's
    convention).  ``record_every`` thins the trace for large systems.
    """
    x = np.array(x0, dtype=np.float64)
    r = np.asarray(b, dtype=np.float64) - A.matvec(x)
    At = A.transpose()
    diag = A.diagonal()
    if np.any(diag == 0.0):
        raise ValueError("zero diagonal entry")
    n = A.n_rows
    hist = ConvergenceHistory()
    norm_sq = float(r @ r)
    hist.append(norm=np.sqrt(max(norm_sq, 0.0)), relaxations=0,
                parallel_steps=0)
    k = 0
    for _ in range(n_sweeps):
        for i in range(n):
            dx = r[i] / diag[i]
            x[i] += dx
            cols, vals = At.row(i)
            old = r[cols]
            new = old - vals * dx
            norm_sq += float(new @ new - old @ old)
            r[cols] = new
            k += 1
            if k % record_every == 0:
                hist.append(norm=np.sqrt(max(norm_sq, 0.0)), relaxations=k,
                            parallel_steps=k)
    if k % record_every:
        hist.append(norm=np.sqrt(max(norm_sq, 0.0)), relaxations=k,
                    parallel_steps=k)
    return hist


def jacobi_trace(A: CSRMatrix, x0: np.ndarray, b: np.ndarray,
                 n_sweeps: int, omega: float = 1.0) -> ConvergenceHistory:
    """(Damped) Jacobi; one sample per sweep (= one parallel step)."""
    x = np.array(x0, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    diag = A.diagonal()
    if np.any(diag == 0.0):
        raise ValueError("zero diagonal entry")
    n = A.n_rows
    r = b - A.matvec(x)
    hist = ConvergenceHistory()
    hist.append(norm=float(np.linalg.norm(r)), relaxations=0,
                parallel_steps=0)
    for s in range(1, n_sweeps + 1):
        x = x + omega * r / diag
        r = b - A.matvec(x)
        hist.append(norm=float(np.linalg.norm(r)), relaxations=s * n,
                    parallel_steps=s, active_fraction=1.0)
    return hist


def multicolor_gs_trace(A: CSRMatrix, x0: np.ndarray, b: np.ndarray,
                        n_sweeps: int, colors: np.ndarray | None = None
                        ) -> ConvergenceHistory:
    """Multicolor Gauss-Seidel; one sample per color class (parallel step).

    Colors default to the greedy BFS coloring (the paper's choice; its
    Figure 2 problem needs 6 colors with very unbalanced classes).  Rows of
    one color relax simultaneously — a Jacobi update restricted to the
    class, which is exact GS because same-color rows are uncoupled.
    """
    x = np.array(x0, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    diag = A.diagonal()
    if colors is None:
        colors = greedy_coloring(A)
    classes = color_classes(colors)
    n = A.n_rows
    r = b - A.matvec(x)
    hist = ConvergenceHistory()
    hist.append(norm=float(np.linalg.norm(r)), relaxations=0,
                parallel_steps=0)
    k = 0
    steps = 0
    for _ in range(n_sweeps):
        for cls in classes:
            dx = np.zeros(n)
            dx[cls] = r[cls] / diag[cls]
            x += dx
            r = r - A.matvec(dx)
            k += cls.size
            steps += 1
            hist.append(norm=float(np.linalg.norm(r)), relaxations=k,
                        parallel_steps=steps,
                        active_fraction=cls.size / n)
    return hist
