"""Baseline solvers: Jacobi/GS family, Block Jacobi, local solvers, CG.

Everything the paper compares Distributed Southwell against lives here;
the Southwell family itself is in :mod:`repro.core`.
"""

from repro.solvers.block_jacobi import BlockJacobi
from repro.solvers.krylov import conjugate_gradient
from repro.core.local_solvers import (
    DirectLocal,
    GaussSeidelLocal,
    LocalSolver,
    make_local_solver,
)
from repro.solvers.scalar import (
    gauss_seidel_trace,
    jacobi_trace,
    multicolor_gs_trace,
)

__all__ = [
    "BlockJacobi",
    "DirectLocal",
    "GaussSeidelLocal",
    "LocalSolver",
    "conjugate_gradient",
    "gauss_seidel_trace",
    "jacobi_trace",
    "make_local_solver",
    "multicolor_gs_trace",
]
