"""Block Jacobi (Algorithm 1) — the paper's baseline.

Every parallel step, *every* process relaxes its subdomain (one local
Gauss-Seidel sweep by default — "Hybrid Gauss-Seidel" / "Processor Block
Gauss-Seidel"), writes boundary updates to all neighbors' windows, waits,
and applies incoming updates.  Highly parallel, but convergence degrades
(or fails outright) as subdomains shrink — the behaviour Distributed
Southwell is built to fix.

The known mitigation is damping (Baker, Falgout, Kolev & Yang — the
paper's reference [4] studies exactly this): under-relaxing the hybrid
sweep with ``omega < 1`` restores convergence at the price of speed.
``omega`` is exposed here so the trade-off is measurable against
Distributed Southwell, which needs no damping parameter at all.
"""

from __future__ import annotations

import numpy as np

from repro.core.block_base import BlockMethodBase
from repro.runtime import CATEGORY_SOLVE

__all__ = ["BlockJacobi"]


class BlockJacobi(BlockMethodBase):
    """Algorithm 1.  One message per (process, neighbor) per step.

    ``omega`` damps every local update (``x_p += omega dx_p``); 1.0 is
    the paper's (undamped) method.
    """

    name = "block-jacobi"

    def __init__(self, *args, omega: float = 1.0, **kwargs):
        super().__init__(*args, **kwargs)
        if not 0.0 < omega <= 1.0:
            raise ValueError("omega must be in (0, 1]")
        self.omega = omega

    # ------------------------------------------------------------------
    # flat-buffer plane hooks (DESIGN.md §5.8)
    # ------------------------------------------------------------------
    def _flat_supported(self) -> bool:
        return True

    def _flat_message_nbytes(self, n_vals: int, n_z: int
                             ) -> tuple[int, int]:
        # solve = {vals}; Block Jacobi sends no residual messages
        return 16 + 8 * n_vals, 0

    def step(self) -> int:
        if self._use_flat:
            return self._step_flat()
        sysm = self.system
        P = sysm.n_parts
        trc = self.tracer
        tracing = trc.enabled
        # phase 1: everyone relaxes and writes updates (Alg 1 lines 7-8);
        # stall-fated ranks sit the relaxation out but still read below
        if tracing:
            trc.phase_begin("relax")
        relaxed = self._mask_stalled(np.ones(P, dtype=bool))
        for p in np.flatnonzero(relaxed):
            p = int(p)
            deltas = self.relax(p, damping=self.omega)
            for q, vals in deltas.items():
                self.engine.put(p, q, CATEGORY_SOLVE,
                                {"vals": self._outgoing_vals(p, q, vals)})
        self.engine.close_epoch()
        if tracing:
            trc.phase_end("relax")
            trc.phase_begin("apply")
        # phase 2: wait + read (lines 9-10)
        for p in range(P):
            changed = False
            for msg in self.engine.drain(p):
                changed = self._apply_update(p, msg) or changed
            if changed:
                self.refresh_norm(p)
        if tracing:
            trc.phase_end("apply")
        self.engine.close_step()
        return int(relaxed.sum())

    def _relax_one_flat(self, p: int) -> None:
        """BJ's relax-phase body: the damped relax plus, under a lossy
        plan, the cumulative-payload finalize."""
        self._relax_send(p, damping=self.omega)
        if self._lossy:
            self._lossy_finalize_send(p)

    def _step_flat(self) -> int:
        """Same two phases over the preallocated flat-buffer plane.

        Bit-for-bit and byte-for-byte equivalent to :meth:`step` (see
        DESIGN.md §5.8): relax deltas land directly in the edge
        mailboxes, only ranks with mail run the read phase.  In ``shm``
        mode the relax and apply phases run on the worker pool
        (DESIGN.md §5.12) with identical results.
        """
        self._shm_ensure()  # re-homes arrays — must precede the locals
        P = self.system.n_parts
        plane = self.engine.flat
        trc = self.tracer
        tracing = trc.enabled
        # phase 1: everyone relaxes and writes updates (Alg 1 lines 7-8);
        # stall-fated ranks sit the relaxation out but still read below
        if tracing:
            trc.phase_begin("relax")
        relaxed = self._mask_stalled(np.ones(P, dtype=bool))
        active = np.flatnonzero(relaxed)
        self._flat_relax_phase(relaxed)     # deltas land in plane.vals
        if active.size == P:
            plane.put_epoch(self._slab_solve_sids, 0.0, 0.0,
                            self._all_ranks, self._nbr_counts,
                            self._solve_nbytes_arr, CATEGORY_SOLVE)
        elif active.size:
            wmask = relaxed[self._slab_owner]
            plane.put_epoch(self._slab_solve_sids[wmask], 0.0, 0.0, active,
                            self._nbr_counts[active],
                            self._solve_nbytes_arr[active], CATEGORY_SOLVE)
        self.engine.close_epoch()
        if tracing:
            trc.phase_end("relax")
            trc.phase_begin("apply")
        # phase 2: wait + read (lines 9-10)
        self._apply_flat_epoch()
        if tracing:
            trc.phase_end("apply")
        self._flat_close_step()
        return int(relaxed.sum())
