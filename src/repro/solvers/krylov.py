"""Conjugate gradients, optionally preconditioned by any block method.

The paper positions Distributed Southwell "as a competitor to Block Jacobi
for preconditioning and multigrid smoothing" — this module supplies the
preconditioning side: a textbook (flexible) PCG where the preconditioner
``M^{-1} v`` is "run a few parallel steps of a block method on ``A e = v``
from zero".  Since a Southwell preconditioner is nonlinear (which rows
relax depends on the input), the flexible (Polak-Ribière) variant is used
whenever a callable preconditioner is given.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.sparsela import CSRMatrix

__all__ = ["CGResult", "conjugate_gradient", "block_method_preconditioner"]


@dataclass
class CGResult:
    """Outcome of a CG solve."""

    x: np.ndarray
    converged: bool
    iterations: int
    residual_norms: list[float]


def conjugate_gradient(A: CSRMatrix, b: np.ndarray,
                       x0: np.ndarray | None = None,
                       tol: float = 1e-8, max_iter: int = 1000,
                       preconditioner: Callable[[np.ndarray], np.ndarray]
                       | None = None) -> CGResult:
    """(Flexible) preconditioned conjugate gradients for SPD ``A``.

    ``preconditioner(v)`` must approximate ``A^{-1} v``; with one supplied,
    the flexible beta (Polak-Ribière) is used so nonlinear preconditioners
    (Southwell-type methods) stay admissible.  Convergence is declared at
    ``‖r‖₂ ≤ tol · ‖b‖₂`` (or absolute tol for ``b = 0``).
    """
    n = A.n_rows
    b = np.asarray(b, dtype=np.float64)
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64)
    r = b - A.matvec(x)
    bnorm = float(np.linalg.norm(b))
    stop = tol * bnorm if bnorm > 0 else tol
    norms = [float(np.linalg.norm(r))]
    if norms[0] <= stop:
        return CGResult(x=x, converged=True, iterations=0,
                        residual_norms=norms)
    z = preconditioner(r) if preconditioner is not None else r.copy()
    p = z.copy()
    rz = float(r @ z)
    r_prev = r.copy()
    for k in range(1, max_iter + 1):
        Ap = A.matvec(p)
        pAp = float(p @ Ap)
        if pAp <= 0.0:
            # numerical loss of definiteness (or an indefinite
            # preconditioner); bail out with what we have
            return CGResult(x=x, converged=False, iterations=k - 1,
                            residual_norms=norms)
        alpha = rz / pAp
        x += alpha * p
        r -= alpha * Ap
        norms.append(float(np.linalg.norm(r)))
        if norms[-1] <= stop:
            return CGResult(x=x, converged=True, iterations=k,
                            residual_norms=norms)
        z = preconditioner(r) if preconditioner is not None else r
        if preconditioner is None:
            rz_new = float(r @ r)
            beta = rz_new / rz
        else:
            # flexible: beta = z·(r - r_prev) / rz
            rz_new = float(r @ z)
            beta = float(z @ (r - r_prev)) / rz
        rz = rz_new
        r_prev = r.copy()
        p = z + beta * p
    return CGResult(x=x, converged=False, iterations=max_iter,
                    residual_norms=norms)


def block_method_preconditioner(method_factory: Callable[[], object],
                                n_steps: int = 2
                                ) -> Callable[[np.ndarray], np.ndarray]:
    """Wrap a block method as ``M^{-1} v`` for :func:`conjugate_gradient`.

    ``method_factory`` returns a *fresh, already-constructed* block method
    (its :class:`~repro.core.blockdata.BlockSystem` can be shared across
    calls — construction is the expensive part).  Each application runs
    ``n_steps`` parallel steps on ``A e = v`` from ``e = 0`` and returns
    the resulting ``e``.
    """
    def apply(v: np.ndarray) -> np.ndarray:
        method = method_factory()
        method.run(np.zeros(v.size), v, max_steps=n_steps)
        return method.solution()

    return apply
