"""Figure 7 bench: convergence profiles for the four BJ-regime problems.

Regenerates residual-vs-{time, comm, step} curves for Geo_1438 and
Hook_1498 (BJ reaches 0.1 then diverges), bone010 (BJ never reaches 0.1)
and af_5_k101 (BJ never diverges), and asserts each regime.
"""

import numpy as np

from repro.analysis.history import interp_log_residual
from repro.experiments import run_fig7


def _norms(series, method):
    return np.asarray(series[method]["residual_norms"])


def test_fig7(benchmark, scale, at_paper_scale):
    out = benchmark.pedantic(
        lambda: run_fig7(n_procs=scale.n_procs,
                         size_scale=scale.size_scale,
                         max_steps=scale.max_steps, seed=scale.seed,
                         names=scale.fig7_names),
        rounds=1, iterations=1)

    print()
    for name, series in out.items():
        line = f"{name:12s}"
        for method, cols in series.items():
            n = cols["residual_norms"]
            line += (f"  {method.split('-')[0][:4]}: "
                     f"min={n.min():.2e} fin={n[-1]:.2e}")
        print(line)

    target = scale.target_norm
    for name, series in out.items():
        bj = _norms(series, "block-jacobi")
        # DS and PS converge steadily on all four problems
        for m in ("parallel-southwell", "distributed-southwell"):
            assert _norms(series, m)[-1] < target, (name, m)

    if at_paper_scale:
        geo = _norms(out["Geo_1438"], "block-jacobi")
        hook = _norms(out["Hook_1498"], "block-jacobi")
        bone = _norms(out["bone010"], "block-jacobi")
        af = _norms(out["af_5_k101"], "block-jacobi")
        # Geo/Hook: reach the target, then diverge past the initial norm
        for curve in (geo, hook):
            assert curve.min() <= target
            assert curve[-1] > target
        # bone010: shrinks but never reaches the target, then grows
        assert bone.min() > target
        assert bone.min() < bone[0]
        assert bone[-1] > bone.min()
        # af_5_k101: monotone-ish decrease, never diverges
        assert af[-1] == af.min()
        assert interp_log_residual(
            np.asarray(out["af_5_k101"]["block-jacobi"]["parallel_steps"],
                       dtype=float), af, target) is not None
