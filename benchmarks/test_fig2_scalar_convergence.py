"""Figure 2 bench: scalar-method convergence on the small FEM problem.

Regenerates the residual-norm-vs-relaxations curves for GS, Sequential
Southwell, Parallel Southwell, Multicolor GS and Jacobi, prints the curve
samples at sweep fractions, and asserts the paper's shape:

- Sequential Southwell reaches norm 0.6 in roughly half of GS's
  relaxations ("about half ... when only low accuracy is required");
- Parallel Southwell converges almost as fast as Sequential Southwell;
- Jacobi is the slowest per relaxation (at ≥ 1 sweep);
- Par SW needs far fewer relaxations than MC GS for low accuracy.
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.experiments import run_fig2


def _norm_at(hist, k):
    r = np.asarray(hist.relaxations)
    n = np.asarray(hist.residual_norms)
    return float(n[min(np.searchsorted(r, k), len(n) - 1)])


def test_fig2(benchmark, scale, at_paper_scale):
    out = benchmark.pedantic(
        lambda: run_fig2(fem_rows=scale.fem_rows, n_sweeps=3, seed=0),
        rounds=1, iterations=1)

    n = scale.fem_rows
    marks = [n // 2, n, 2 * n, 3 * n]
    rows = [{"relaxations": k,
             **{label: _norm_at(hist, k) for label, hist in out.items()}}
            for k in marks]
    print()
    print(format_table(rows, title=f"Figure 2 — residual norm vs "
                                   f"relaxations (n={n})"))

    to_06 = {label: hist.cost_to_reach(0.6, axis="relaxations")
             for label, hist in out.items()}
    print("relaxations to ‖r‖=0.6:",
          {k: None if v is None else round(v) for k, v in to_06.items()})

    # --- paper-shape assertions
    assert to_06["SW"] is not None and to_06["GS"] is not None
    assert to_06["SW"] < 0.65 * to_06["GS"]            # ~half of GS
    assert to_06["Par SW"] < 1.3 * to_06["SW"]         # PS tracks SW
    assert to_06["Par SW"] < to_06["MC GS"]            # beats MC GS
    # Jacobi slowest at the 1-sweep mark
    assert _norm_at(out["Jacobi"], n) >= max(
        _norm_at(out[m], n) for m in ("GS", "SW", "Par SW")) - 1e-12
