"""Table 1 bench: the test suite (paper sizes vs synthetic analogs)."""

from repro.analysis.tables import format_table
from repro.experiments import run_table1
from repro.matrices.suite import SUITE_NAMES


def test_table1(benchmark, scale):
    rows = benchmark.pedantic(
        lambda: run_table1(size_scale=scale.size_scale),
        rounds=1, iterations=1)

    print()
    print(format_table(rows, title="Table 1 — test problems "
                                   "(paper vs synthetic analog)", digits=0))

    assert [r["matrix"] for r in rows] == list(SUITE_NAMES)
    for row in rows:
        assert row["analog_equations"] > 0
        assert row["analog_nonzeros"] > row["analog_equations"]
    # descending-nnz ordering, matching the paper's table
    nnz = [r["paper_nonzeros"] for r in rows]
    assert nnz == sorted(nnz, reverse=True)
