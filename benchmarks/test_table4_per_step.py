"""Table 4 bench: per-parallel-step mean time and communication.

Asserts the paper's ordering DS < PS < BJ in both per-step simulated
time and per-step messages, over the full 50-step runs — the view that
matters for multigrid smoothing and preconditioning, where only a few
steps are taken.
"""

from repro.analysis.tables import format_table
from repro.experiments import run_table4


def test_table4(benchmark, scale):
    rows = benchmark.pedantic(
        lambda: run_table4(n_procs=scale.n_procs,
                           size_scale=scale.size_scale,
                           max_steps=scale.max_steps, seed=scale.seed),
        rounds=1, iterations=1)

    print()
    print(format_table(rows, title="Table 4 — mean per-step cost over "
                                   f"{scale.max_steps} steps", digits=5))

    for row in rows:
        assert row["comm_DS"] < row["comm_PS"] < row["comm_BJ"], \
            row["matrix"]
        assert row["time_DS"] < row["time_BJ"], row["matrix"]
        assert row["time_DS"] < row["time_PS"] * 1.05, row["matrix"]
        assert row["time_PS"] < row["time_BJ"] * 1.05, row["matrix"]
