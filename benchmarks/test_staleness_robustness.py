"""Extension bench: robustness to asynchronous message delay.

The paper implements everything over one-sided MPI with Casper's
asynchronous progress; its Section 5 discusses asynchronous-method
variants.  This bench injects random per-message delivery delays
(messages arrive whole epochs late) and checks that Distributed
Southwell keeps converging — deadlock avoidance makes it robust to
staleness, since over-estimates are repaired whenever they are detected.
"""

from repro.core import DistributedSouthwell
from repro.core.blockdata import build_block_system
from repro.matrices.suite import load_problem
from repro.partition import partition


def test_staleness(benchmark, scale):
    prob = load_problem("ldoor", size_scale=scale.size_scale)
    part = partition(prob.matrix, scale.n_procs, seed=0)
    system = build_block_system(prob.matrix, part)
    x0, b = prob.initial_state(seed=0)

    def run():
        out = {}
        for delay in (0.0, 0.2, 0.5):
            ds = DistributedSouthwell(system, delay_probability=delay,
                                      seed=7)
            ds.run(x0, b, max_steps=2 * scale.max_steps)
            out[delay] = ds.global_norm()
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for delay, norm in out.items():
        print(f"delay probability {delay:.1f}: final ‖r‖ = {norm:.3e}")
    # synchronous run converges well; delayed runs still converge (the
    # point), if more slowly
    assert out[0.0] < 0.05
    for delay, norm in out.items():
        assert norm < 0.5, f"diverged/stalled at delay={delay}"
