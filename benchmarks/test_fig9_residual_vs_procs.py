"""Figure 9 bench: residual after 50 steps vs process count.

Asserts the paper's robustness story: as P grows, Block Jacobi's 50-step
residual degrades catastrophically (divergence, norm > 1) on the hard
problems, while Parallel and Distributed Southwell degrade only mildly —
the argument for DS as the massively-parallel smoother.
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.experiments import run_fig9


def test_fig9(benchmark, scale, at_paper_scale):
    rows = benchmark.pedantic(
        lambda: run_fig9(proc_sweep=scale.proc_sweep,
                         size_scale=scale.size_scale,
                         max_steps=scale.max_steps, seed=scale.seed,
                         names=scale.scaling_names),
        rounds=1, iterations=1)

    print()
    print(format_table(
        [{k: (f"{v:.2e}" if isinstance(v, float) else v)
          for k, v in row.items()} for row in rows],
        title=f"Figure 9 — ‖r‖ after {scale.max_steps} steps"))

    by_matrix: dict = {}
    for row in rows:
        by_matrix.setdefault(row["matrix"], []).append(row)

    for name, mrows in by_matrix.items():
        mrows.sort(key=lambda r: r["P"])
        ds = np.array([r["norm_DS"] for r in mrows])
        ps = np.array([r["norm_PS"] for r in mrows])
        # Southwell methods never diverge (initial norm is 1)
        assert ds.max() < 1.0, name
        assert ps.max() < 1.0, name

    if at_paper_scale:
        # BJ diverges at the largest P on a majority of these problems
        largest = max(scale.proc_sweep)
        blowups = sum(1 for r in rows
                      if r["P"] == largest and r["norm_BJ"] > 1.0)
        assert blowups >= len(by_matrix) // 2
        # and degrades with P: max-P residual far exceeds min-P residual
        for name, mrows in by_matrix.items():
            if name == "Hook_1498":
                continue            # mild-divergence member
            first, last = mrows[0]["norm_BJ"], mrows[-1]["norm_BJ"]
            if last > 1.0:
                assert last > 10.0 * first, name
