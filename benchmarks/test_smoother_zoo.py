"""Extension bench: the smoother zoo at matched relaxation budgets.

Extends the paper's Figure 6 with every smoother in the library — GS,
weighted Jacobi, red-black GS, Chebyshev(2), Parallel Southwell and
Distributed Southwell — all at a one-sweep-equivalent budget, on the
largest Figure 6 grid.  The Southwell smoothers' selling point is that
they match or beat the classics *while choosing adaptively where to
spend the budget* (important for the irregular/jump problems Rüde's work
targets; on the uniform Poisson problem they simply have to not lose).
"""

import pytest

from repro.analysis.tables import format_table
from repro.multigrid import (
    ChebyshevSmoother,
    DistributedSouthwellSmoother,
    GaussSeidelSmoother,
    ParallelSouthwellSmoother,
    RedBlackGaussSeidelSmoother,
    WeightedJacobiSmoother,
    vcycle_experiment_run,
)

# vcycle_experiment_run is deprecated (one cycle) in favour of
# solve(method="mg"); the zoo pins the legacy path until removal
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

SMOOTHERS = (
    ("GS", lambda: GaussSeidelSmoother(1)),
    ("weighted Jacobi 0.8", lambda: WeightedJacobiSmoother(0.8)),
    ("red-black GS", lambda: RedBlackGaussSeidelSmoother()),
    ("Chebyshev(2)", lambda: ChebyshevSmoother(degree=2)),
    ("Par SW (1 sweep)", lambda: ParallelSouthwellSmoother(1.0)),
    ("Dist SW (1 sweep)", lambda: DistributedSouthwellSmoother(1.0)),
)


def test_smoother_zoo(benchmark, scale):
    dim = max(scale.grid_dims)

    def run():
        return {name: vcycle_experiment_run(dim, factory, seed=0)
                for name, factory in SMOOTHERS}

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [{"smoother": k, "rel_residual_9V": f"{v:.2e}"}
            for k, v in out.items()]
    print()
    print(format_table(rows, title=f"smoother zoo, {dim}² grid, "
                                   "9 V-cycles, 1-sweep budgets"))

    # everything converges usefully
    for name, rel in out.items():
        assert rel < 1e-2, name
    # DS is the best of the parallel-friendly smoothers on this problem
    assert out["Dist SW (1 sweep)"] < out["weighted Jacobi 0.8"]
    assert out["Dist SW (1 sweep)"] < out["Chebyshev(2)"]
    # and beats plain GS per relaxation, the paper's claim
    assert out["Dist SW (1 sweep)"] < out["GS"]
