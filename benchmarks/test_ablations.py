"""Ablation benches for the design choices DESIGN.md calls out.

Not a paper table — these quantify each mechanism's contribution:

1. **Deadlock avoidance** (Alg 3 lines 27-30): without it, Distributed
   Southwell is the broken ICCS'16-style scheme and stalls.
2. **Ghost-layer estimation** (line 15): without local estimate updates,
   estimates are staler, so convergence needs more deadlock-repair
   traffic to make the same progress.
3. **Piggy-backing** (Alg 2 line 10): Parallel Southwell without it sends
   the relaxer's norm as a separate message — counting exactly what the
   optimisation saves.
"""

import numpy as np

from repro.core import DistributedSouthwell, ParallelSouthwell
from repro.core.blockdata import build_block_system
from repro.matrices.suite import load_problem
from repro.partition import partition
from repro.runtime import CATEGORY_RESIDUAL


def _setup(scale):
    prob = load_problem("bone010", size_scale=scale.size_scale)
    part = partition(prob.matrix, scale.n_procs, seed=0)
    system = build_block_system(prob.matrix, part)
    x0, b = prob.initial_state(seed=0)
    return system, x0, b


def test_ablation_deadlock_avoidance(benchmark, scale):
    system, x0, b = _setup(scale)

    def run():
        out = {}
        for flag in (True, False):
            ds = DistributedSouthwell(system, deadlock_avoidance=flag)
            ds.setup(x0, b)
            idle = 0
            for _ in range(scale.max_steps):
                if ds.step() == 0:
                    idle += 1
                    if idle >= 3:
                        break
                else:
                    idle = 0
            out[flag] = (ds.global_norm(), idle >= 3)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    norm_on, stalled_on = out[True]
    norm_off, stalled_off = out[False]
    print(f"\nwith avoidance:    ‖r‖ = {norm_on:.3e} stalled={stalled_on}")
    print(f"without avoidance: ‖r‖ = {norm_off:.3e} stalled={stalled_off}")
    assert not stalled_on
    assert stalled_off, "the estimate-only scheme must deadlock"
    assert norm_on < norm_off


def test_ablation_ghost_estimation(benchmark, scale):
    system, x0, b = _setup(scale)

    def run():
        out = {}
        for flag in (True, False):
            ds = DistributedSouthwell(system, ghost_estimation=flag)
            ds.run(x0, b, max_steps=scale.max_steps)
            out[flag] = (ds.global_norm(),
                         ds.engine.stats.category_cost(CATEGORY_RESIDUAL))
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    norm_on, res_on = out[True]
    norm_off, res_off = out[False]
    print(f"\nwith ghost estimation:    ‖r‖ = {norm_on:.3e} "
          f"res-comm = {res_on:.1f}/proc")
    print(f"without ghost estimation: ‖r‖ = {norm_off:.3e} "
          f"res-comm = {res_off:.1f}/proc")
    # both make progress (deadlock avoidance still active), but local
    # estimation buys accuracy per unit of repair traffic
    assert norm_on < 0.1
    assert norm_on <= norm_off * 1.5
    assert res_on <= res_off * 1.2


def test_ablation_piggyback(benchmark, scale):
    system, x0, b = _setup(scale)

    def run():
        out = {}
        for flag in (True, False):
            ps = ParallelSouthwell(system, piggyback=flag)
            ps.run(x0, b, max_steps=scale.max_steps)
            out[flag] = (np.array(ps.history.residual_norms),
                         ps.engine.stats.communication_cost())
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    norms_on, comm_on = out[True]
    norms_off, comm_off = out[False]
    print(f"\npiggyback on:  comm = {comm_on:.1f}/proc")
    print(f"piggyback off: comm = {comm_off:.1f}/proc "
          f"(+{comm_off - comm_on:.1f})")
    # identical mathematics, strictly more messages
    assert np.allclose(norms_on, norms_off, rtol=1e-12)
    assert comm_off > comm_on
