"""Figure 6 bench: multigrid smoothing with Distributed Southwell.

Regenerates the relative-residual-after-9-V-cycles table for grids
15² → 255² and asserts the paper's headline shapes:

- grid-size-independent convergence for all three smoother configs
  (the largest grid is within ~1.5 orders of the smallest);
- Dist SW (1 sweep) is a more efficient smoother than GS (1 sweep);
- Dist SW (1/2 sweep) still converges grid-independently.
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.experiments import run_fig6


def test_fig6(benchmark, scale, at_paper_scale):
    rows = benchmark.pedantic(
        lambda: run_fig6(grid_dims=scale.grid_dims, n_cycles=9, seed=0),
        rounds=1, iterations=1)

    print()
    print(format_table(
        [{k: (f"{v:.2e}" if isinstance(v, float) else v)
          for k, v in row.items()} for row in rows],
        title="Figure 6 — rel. residual after 9 V-cycles"))

    for key in ("GS, 1 sweep", "Dist SW, 1/2 sweep", "Dist SW, 1 sweep"):
        vals = np.array([row[key] for row in rows])
        assert np.all(vals < 1e-5), key
        # grid-size independence: no systematic blow-up with dimension
        assert vals.max() / vals.min() < 50.0, key

    for row in rows:
        assert row["Dist SW, 1 sweep"] < row["GS, 1 sweep"]
