"""Extension bench: the Section 5 related methods in one comparison.

Not a paper figure — it contextualises Distributed Southwell against the
related work the paper discusses: Rüde's sequential/simultaneous adaptive
relaxation, Griebel & Oswald's greedy multiplicative Schwarz, and the
variable-threshold communication reduction grafted onto DS.
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.core import (
    DistributedSouthwell,
    SimultaneousAdaptiveRelaxation,
    ThresholdedDistributedSouthwell,
    greedy_multiplicative_schwarz,
    sequential_adaptive_relaxation,
    sequential_southwell,
)
from repro.core.blockdata import build_block_system
from repro.matrices.fem import fem_poisson_2d
from repro.partition import partition


def test_related_scalar_methods(benchmark, scale):
    prob = fem_poisson_2d(target_rows=scale.fem_rows, seed=0)
    A = prob.matrix
    rng = np.random.default_rng(1)
    b = rng.uniform(-1, 1, A.n_rows)
    b /= np.linalg.norm(b)
    x0 = np.zeros(A.n_rows)
    budget = 2 * A.n_rows

    def run():
        return {
            "Sequential Southwell": sequential_southwell(A, x0, b, budget),
            "Sequential adaptive (Rüde)": sequential_adaptive_relaxation(
                A, x0, b, budget, tolerance=1e-4),
            "Simultaneous adaptive (Rüde)": SimultaneousAdaptiveRelaxation(
                A, theta_factor=0.5).run(x0, b, max_steps=40),
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [{"method": k,
             "relaxations": h.relaxations[-1],
             "parallel_steps": h.parallel_steps[-1],
             "final_norm": f"{h.final_norm:.3e}"}
            for k, h in out.items()]
    print()
    print(format_table(rows, title="Section 5 scalar methods "
                                   f"(n={A.n_rows}, budget 2 sweeps)"))
    # all converge on the M-matrix FEM problem
    for hist in out.values():
        assert hist.final_norm < 0.5


def test_greedy_schwarz_vs_distributed_southwell(benchmark, scale):
    """Greedy multiplicative Schwarz is the sequential ideal DS chases:
    per relaxation it is at least as good, but it is inherently serial
    (one subdomain at a time) where DS relaxes many per step."""
    prob = fem_poisson_2d(target_rows=scale.fem_rows, seed=0)
    A = prob.matrix
    part = partition(A, 32, seed=0)
    system = build_block_system(A, part)
    x0, b = prob.initial_state(seed=0)

    def run():
        gms = greedy_multiplicative_schwarz(system, x0, b, n_solves=96)
        ds = DistributedSouthwell(system)
        ds_hist = ds.run(x0, b, max_steps=50)
        return gms, ds_hist

    gms, ds_hist = benchmark.pedantic(run, rounds=1, iterations=1)
    reach_gms = gms.cost_to_reach(0.1, axis="relaxations")
    reach_ds = ds_hist.cost_to_reach(0.1, axis="relaxations")
    steps_gms = gms.cost_to_reach(0.1, axis="parallel_steps")
    steps_ds = ds_hist.cost_to_reach(0.1, axis="parallel_steps")
    print(f"\nto ‖r‖=0.1:  greedy Schwarz {reach_gms:.0f} relaxations in "
          f"{steps_gms:.0f} serial solves")
    print(f"             Distributed SW {reach_ds:.0f} relaxations in "
          f"{steps_ds:.0f} parallel steps")
    assert reach_gms is not None and reach_ds is not None
    # the greedy serial method wins per relaxation...
    assert reach_gms <= reach_ds * 1.2
    # ...but DS needs far fewer parallel rounds
    assert steps_ds < steps_gms


def test_threshold_ds_comm_tradeoff(benchmark, scale):
    from repro.matrices.suite import load_problem
    from repro.runtime import CATEGORY_SOLVE

    prob = load_problem("msdoor", size_scale=scale.size_scale)
    part = partition(prob.matrix, scale.n_procs, seed=0)
    system = build_block_system(prob.matrix, part)
    x0, b = prob.initial_state(seed=0)

    def run():
        out = {}
        for thr in (0.0, 0.2, 0.5):
            m = ThresholdedDistributedSouthwell(system, threshold=thr)
            m.run(x0, b, max_steps=scale.max_steps)
            out[thr] = (m.history.final_norm,
                        m.engine.stats.category_msgs[CATEGORY_SOLVE],
                        m.suppressed_sends)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for thr, (norm, solve_msgs, suppressed) in out.items():
        print(f"threshold {thr:.1f}: ‖r‖ = {norm:.3e}, "
              f"solve msgs = {solve_msgs}, suppressed = {suppressed}")
    # messages fall monotonically with the threshold; convergence survives
    msgs = [out[t][1] for t in (0.0, 0.2, 0.5)]
    assert msgs[0] > msgs[1] > msgs[2]
    for thr, (norm, _, _) in out.items():
        assert norm < 0.1, f"threshold {thr} broke convergence"
