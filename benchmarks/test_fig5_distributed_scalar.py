"""Figure 5 bench: scalar Distributed Southwell vs the Figure 2 methods.

Asserts the paper's shape: Dist SW closely matches Parallel Southwell at
the low-accuracy sweet spot (norm 0.6), takes fewer parallel steps for
the same relaxation budget (it relaxes more rows per step), and — with
inexact estimates — may degrade relative to Par SW at higher accuracy.
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.experiments import run_fig5


def test_fig5(benchmark, scale, at_paper_scale):
    out = benchmark.pedantic(
        lambda: run_fig5(fem_rows=scale.fem_rows, n_sweeps=3, seed=0),
        rounds=1, iterations=1)

    rows = []
    for label, hist in out.items():
        rows.append({
            "method": label,
            "relax_to_0.6": hist.cost_to_reach(0.6, axis="relaxations"),
            "final_norm": hist.final_norm,
            "parallel_steps": hist.parallel_steps[-1],
        })
    print()
    print(format_table(rows, title="Figure 5 — scalar Distributed "
                                   "Southwell comparison"))

    to_06 = {label: hist.cost_to_reach(0.6, axis="relaxations")
             for label, hist in out.items()}
    assert to_06["Dist SW"] is not None
    # DS tracks PS at low accuracy
    assert to_06["Dist SW"] < 1.25 * to_06["Par SW"]
    # DS relaxes more rows per parallel step => fewer steps for the budget
    assert (out["Dist SW"].parallel_steps[-1]
            <= out["Par SW"].parallel_steps[-1])
    # both Southwell parallel variants beat MC GS to low accuracy
    assert to_06["Dist SW"] < to_06["MC GS"]
