"""Extension bench: weak scaling (fixed subdomain size, growing problem).

The paper's Figure 8 is strong scaling; the natural companion holds the
block size fixed (~45 rows) and grows the problem with the process
count.  Measured shape (and what the assertions encode):

- even at *fixed* block size, Block Jacobi's 50-step residual degrades
  steadily with P (small instances enjoy proportionally more Dirichlet
  boundary, which pads diagonal dominance; that cushion dilutes as the
  domain grows) — >4x worse from P=8 to P=128;
- DS's residual is nearly flat over the same sweep (<2x), and PS's only
  mildly worse;
- per-process communication stays roughly flat for DS (neighborhoods,
  not the global problem, set the message count).
"""

from repro.analysis.tables import format_table
from repro.api import RunConfig, solve
from repro.matrices.elasticity import elasticity_fem_2d

BLOCK_ROWS = 45


def test_weak_scaling(benchmark, scale, at_paper_scale):
    procs = (8, 16, 32, 64, 128) if at_paper_scale else (4, 8)

    def run():
        rows = []
        for P in procs:
            prob = elasticity_fem_2d(target_rows=BLOCK_ROWS * P, nu=0.49,
                                     seed=21)
            row = {"P": P, "n": prob.n}
            for method, label in (("block-jacobi", "BJ"),
                                  ("parallel-southwell", "PS"),
                                  ("distributed-southwell", "DS")):
                res = solve(prob.matrix, method=method,
                            config=RunConfig(n_parts=P,
                                             max_steps=scale.max_steps,
                                             seed=0))
                row[f"norm50_{label}"] = res.final_norm
                row[f"comm_{label}"] = res.comm_cost
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        [{k: (f"{v:.2e}" if isinstance(v, float) else v)
          for k, v in r.items()} for r in rows],
        title=f"weak scaling, ~{BLOCK_ROWS} rows/process, "
              f"{scale.max_steps} steps"))

    if at_paper_scale:
        first, last = rows[0], rows[-1]
        # BJ degrades markedly with scale even at fixed block size...
        assert last["norm50_BJ"] > 4.0 * first["norm50_BJ"]
        # ...while DS stays nearly flat and everyone Southwell converges
        assert last["norm50_DS"] < 2.5 * first["norm50_DS"]
        for r in rows:
            assert r["norm50_DS"] < 0.1, r["P"]
            assert r["norm50_PS"] < 0.1, r["P"]
        # DS per-process communication is scale-free-ish: the largest
        # run costs at most ~2x the smallest per process
        comms = [r["comm_DS"] for r in rows]
        assert max(comms) < 2.0 * min(comms)
