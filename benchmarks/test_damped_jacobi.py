"""Extension bench: damped Block Jacobi vs Distributed Southwell.

The practitioner's fix for Block Jacobi divergence is damping (the
paper's reference [4]).  Measured finding, reported honestly: on this
reproduction's 2D elasticity analogs, even mild damping (omega = 0.9)
fully rescues Block Jacobi, and the damped method then reaches the 0.1
target *faster and with fewer messages* than Distributed Southwell — BJ
relaxes everyone every step, which is very effective for a one-order
residual reduction once it converges at all.  The catch the bench pins
down: undamped (omega = 1) diverges on every one of these problems, so
Block Jacobi's reliability hinges on a problem-dependent parameter that
Distributed Southwell does not have.  (The paper compares against the
common undamped default.)
"""

from repro.analysis.tables import format_table
from repro.core import DistributedSouthwell
from repro.experiments.runners import get_block_system
from repro.matrices.suite import load_problem
from repro.solvers.block_jacobi import BlockJacobi

NAMES = ("bone010", "ldoor", "Emilia_923")


def test_damped_bj_vs_ds(benchmark, scale, at_paper_scale):
    def run():
        rows = []
        for name in NAMES:
            prob = load_problem(name, size_scale=scale.size_scale)
            system = get_block_system(name, scale.n_procs,
                                      scale.size_scale, scale.seed)
            x0, b = prob.initial_state(seed=scale.seed)
            row = {"matrix": name}
            for label, method in (
                    ("BJ", BlockJacobi(system)),
                    ("BJ_damped", BlockJacobi(system, omega=0.9)),
                    ("DS", DistributedSouthwell(system))):
                hist = method.run(x0, b, max_steps=scale.max_steps)
                row[f"steps_{label}"] = hist.cost_to_reach(
                    scale.target_norm, axis="parallel_steps")
                row[f"comm_{label}"] = hist.cost_to_reach(
                    scale.target_norm, axis="comm_costs")
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="damped Block Jacobi vs Distributed "
                                   f"Southwell (target {scale.target_norm})",
                       digits=1))

    if at_paper_scale:
        for row in rows:
            # plain BJ fails on these members; mild damping rescues it
            assert row["steps_BJ"] is None, row["matrix"]
            assert row["steps_BJ_damped"] is not None, row["matrix"]
            # and the rescued method is genuinely fast to low accuracy —
            # the honest finding: DS's advantage over BJ is reliability
            # without tuning, not raw speed when BJ is well-tuned
            assert row["steps_BJ_damped"] < row["steps_DS"], row["matrix"]
            # DS still reaches the target with no parameter at all
            assert row["steps_DS"] is not None, row["matrix"]
