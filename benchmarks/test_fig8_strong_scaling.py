"""Figure 8 bench: strong scaling (time to ``‖r‖ = 0.1`` vs P).

Asserts the paper's shape on six problems: DS is faster than PS at every
process count where both reach the target; BJ, where it reaches the
target at all, is the fastest — but it drops out (†) at larger P on the
hard problems while the Southwell methods keep working.
"""

from repro.analysis.tables import format_table
from repro.experiments import run_fig8


def test_fig8(benchmark, scale, at_paper_scale):
    rows = benchmark.pedantic(
        lambda: run_fig8(proc_sweep=scale.proc_sweep,
                         size_scale=scale.size_scale,
                         max_steps=scale.max_steps,
                         target_norm=scale.target_norm, seed=scale.seed,
                         names=scale.scaling_names),
        rounds=1, iterations=1)

    print()
    print(format_table(rows, title="Figure 8 — simulated seconds to "
                                   f"‖r‖ = {scale.target_norm}", digits=5))

    ds_beats_ps = 0
    comparable = 0
    for row in rows:
        if row["time_DS"] is not None and row["time_PS"] is not None:
            comparable += 1
            if row["time_DS"] < row["time_PS"]:
                ds_beats_ps += 1
    assert comparable > 0
    # the paper: DS faster than PS everywhere except one near-tie
    assert ds_beats_ps >= 0.9 * comparable

    if at_paper_scale:
        # BJ drops out at the largest P on a majority of the hard problems
        largest = max(scale.proc_sweep)
        bj_fail = sum(1 for r in rows
                      if r["P"] == largest and r["time_BJ"] is None)
        assert bj_fail >= len(scale.scaling_names) // 2
        # where BJ converges, it's fastest
        for row in rows:
            if row["time_BJ"] is not None:
                assert row["time_BJ"] < row["time_DS"] * 1.05, row
