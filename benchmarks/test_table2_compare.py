"""Table 2 bench: BJ vs PS vs DS reaching ``‖r‖₂ = 0.1``.

Regenerates the paper's headline table (time / communication cost /
parallel steps / relaxations-per-n / active fraction at the target
crossing; † where unreachable in 50 steps) and asserts its shape:

- DS reaches the target on *every* suite problem;
- BJ reaches it only on a few (the paper: Geo_1438, Hook_1498,
  af_5_k101) and is the fastest method where it does;
- DS needs less communication and fewer parallel steps than PS
  throughout; PS needs fewer (or comparable) relaxations;
- DS keeps a larger fraction of processes active than PS.
"""

from repro.analysis.tables import format_table
from repro.experiments import run_table2


def test_table2(benchmark, scale, at_paper_scale):
    rows = benchmark.pedantic(
        lambda: run_table2(n_procs=scale.n_procs,
                           size_scale=scale.size_scale,
                           max_steps=scale.max_steps,
                           target_norm=scale.target_norm,
                           seed=scale.seed),
        rounds=1, iterations=1)

    for block, digits in (("time", 4), ("comm", 1), ("steps", 1),
                          ("relax_per_n", 2), ("active", 3)):
        cols = ["matrix"] + [f"{block}_{m}" for m in ("BJ", "PS", "DS")]
        print()
        print(format_table(rows, columns=cols,
                           title=f"Table 2 — {block} to reach "
                                 f"‖r‖ = {scale.target_norm}",
                           digits=digits))

    ds_reached = sum(r["steps_DS"] is not None for r in rows)
    ps_reached = sum(r["steps_PS"] is not None for r in rows)
    bj_reached = sum(r["steps_BJ"] is not None for r in rows)
    print(f"\nreached target: DS {ds_reached}/14, PS {ps_reached}/14, "
          f"BJ {bj_reached}/14")

    assert ds_reached == len(rows), "DS must reach the target everywhere"
    if at_paper_scale:
        # BJ's †-pattern: only a minority reach (paper: 3 of 14)
        assert bj_reached <= len(rows) // 2
        assert bj_reached >= 1
    for row in rows:
        if row["steps_PS"] is None:
            continue
        # the headline: DS beats PS in communication and steps
        assert row["comm_DS"] < row["comm_PS"], row["matrix"]
        assert row["steps_DS"] <= row["steps_PS"] * 1.05, row["matrix"]
        assert row["time_DS"] < row["time_PS"], row["matrix"]
        # inexact estimates => DS relaxes at least as much as PS
        assert (row["relax_per_n_DS"]
                >= 0.95 * row["relax_per_n_PS"]), row["matrix"]
        # and keeps more processes active
        assert row["active_DS"] > row["active_PS"] * 0.9, row["matrix"]
        # BJ is fastest where it converges
        if row["steps_BJ"] is not None:
            assert row["time_BJ"] < row["time_DS"], row["matrix"]
