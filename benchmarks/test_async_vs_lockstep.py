"""Extension bench: straggler tolerance across execution models.

The paper's implementation runs over one-sided MPI with asynchronous
progress (Casper); the core algorithms are epoch-synchronised per
parallel step.  This bench puts one process at quarter speed in a
compute-bound regime (large subdomains; gamma raised 100x so local solves
dominate the cost model) and measures the time-to-target penalty:

- **Block Jacobi, lockstep**: every process relaxes every step, so every
  step waits for the straggler — penalty ≈ the slowdown factor;
- **Distributed Southwell, lockstep**: the straggler only stretches the
  steps in which it wins the criterion (~1/8 of them) — the greedy
  selection is *inherently* straggler-friendly;
- **Distributed Southwell, event-driven async**: the rest of the machine
  iterates around the slow process — the smallest penalty of all.
"""

import numpy as np

from repro.core import AsyncDistributedSouthwell, DistributedSouthwell
from repro.core.blockdata import build_block_system
from repro.matrices.suite import load_problem
from repro.partition import partition
from repro.runtime import CostModel
from repro.solvers.block_jacobi import BlockJacobi

#: compute-bound machine: gamma raised so local solves dominate messages
COMPUTE_BOUND = CostModel(alpha=2.0e-6, alpha_recv=2.0e-6, beta=1.6e-10,
                          gamma=2.5e-8)


def test_straggler_penalty_by_execution_model(benchmark, scale,
                                              at_paper_scale):
    prob = load_problem("msdoor", size_scale=scale.size_scale)
    n_procs = min(scale.n_procs, 32)     # keep BJ convergent (m >= ~140)
    part = partition(prob.matrix, n_procs, seed=0)
    system = build_block_system(prob.matrix, part)
    x0, b = prob.initial_state(seed=0)
    target = scale.target_norm

    slow = np.ones(n_procs)
    slow[n_procs // 3] = 0.25

    def run():
        out = {}

        def lockstep(cls, factors):
            m = cls(system, cost_model=COMPUTE_BOUND,
                    speed_factors=factors)
            m.run(x0, b, max_steps=300, target_norm=target,
                  stop_at_target=True)
            return m.engine.stats.elapsed_time(), m.global_norm()

        out["BJ lockstep"] = lockstep(BlockJacobi, None)
        out["BJ lockstep+straggler"] = lockstep(BlockJacobi, slow)
        out["DS lockstep"] = lockstep(DistributedSouthwell, None)
        out["DS lockstep+straggler"] = lockstep(DistributedSouthwell, slow)

        def async_run(factors):
            a = AsyncDistributedSouthwell(system,
                                          cost_model=COMPUTE_BOUND,
                                          speed_factors=factors)
            a.run(x0, b, max_turns=2_000_000, target_norm=target,
                  record_every=4 * n_procs)
            return a.engine.elapsed, a.global_norm()

        out["DS async"] = async_run(None)
        out["DS async+straggler"] = async_run(slow)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for label, (t, norm) in out.items():
        print(f"{label:24s} time-to-target = {t * 1e3:8.3f} ms "
              f"(final ‖r‖ = {norm:.3e})")
    penalties = {
        name: out[f"{name}+straggler"][0] / out[name][0]
        for name in ("BJ lockstep", "DS lockstep", "DS async")}
    print("straggler penalties: "
          + ", ".join(f"{k} {v:.2f}x" for k, v in penalties.items()))

    for label, (_, norm) in out.items():
        assert norm <= target * 1.2, label
    # the narrative gradient: BJ pays almost the full 4x; DS's greedy
    # selection absorbs most of it; the async model absorbs the most
    assert penalties["BJ lockstep"] > 2.0
    assert penalties["DS lockstep"] < 0.7 * penalties["BJ lockstep"]
    assert penalties["DS async"] <= penalties["DS lockstep"] * 1.05
