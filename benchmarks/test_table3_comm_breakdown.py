"""Table 3 bench: solve-comm vs explicit-residual-comm for PS and DS.

Asserts the paper's shape: PS's residual messages dominate its
communication (several times its solve comm); DS cuts the residual
messages by a large factor while its solve comm is comparable (slightly
higher, because inexact estimates let more processes relax).
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.experiments import run_table3


def test_table3(benchmark, scale, at_paper_scale):
    rows = benchmark.pedantic(
        lambda: run_table3(n_procs=scale.n_procs,
                           size_scale=scale.size_scale,
                           max_steps=scale.max_steps, seed=scale.seed),
        rounds=1, iterations=1)

    print()
    print(format_table(rows, title="Table 3 — communication breakdown "
                                   "(messages per process)"))

    res_ratio = np.array([r["res_comm_PS"] / max(r["res_comm_DS"], 1e-12)
                          for r in rows])
    print(f"\nres-comm reduction PS/DS: median {np.median(res_ratio):.2f}x")

    for row in rows:
        # PS: explicit residual updates dominate
        assert row["res_comm_PS"] > row["solve_comm_PS"], row["matrix"]
        # DS sends far fewer residual messages
        assert row["res_comm_DS"] < row["res_comm_PS"], row["matrix"]
        # solve comm is comparable (DS a bit higher, as in the paper)
        assert row["solve_comm_DS"] >= 0.8 * row["solve_comm_PS"], \
            row["matrix"]
    if at_paper_scale:
        assert np.median(res_ratio) > 2.0
