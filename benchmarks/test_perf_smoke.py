"""Performance smoke tests for the kernel backend layer.

These benches guard the PR's acceptance bar rather than a paper figure:

1. the default compiled (``scipy``) backend's matvec beats the pure-numpy
   ``reference`` bincount path by >=3x on a 100k-row 2D Poisson operator;
2. a Distributed Southwell parallel step allocates no per-neighbor
   temporaries — the relax/apply hot path runs entirely through the
   preallocated workspaces (verified by array identity, not timing);
3. ``scripts/bench_kernels.py --smoke`` runs end-to-end and writes a
   schema-conformant JSON document.

Timing assertions are best-of-N on a dedicated operator, so they are
robust to scheduler noise; they still assume the box is not fully
oversubscribed, which is why they live in ``benchmarks/`` (excluded from
the tier-1 ``tests/`` run) alongside the other perf-sensitive suites.
"""

from __future__ import annotations

import json
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import DistributedSouthwell
from repro.core.blockdata import build_block_system
from repro.matrices.poisson import poisson_2d
from repro.partition import partition
from repro.runtime import use_runtime
from repro.sparsela import symmetric_unit_diagonal_scale, use_backend

REPO_ROOT = Path(__file__).resolve().parent.parent


def _best_of(fn, repeats: int = 20) -> float:
    fn()                                    # warm-up (caches, handles)
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return min(samples)


# ----------------------------------------------------------------------
# 1. compiled matvec beats the seed bincount path
# ----------------------------------------------------------------------
def test_scipy_matvec_at_least_3x_reference_100k():
    A = symmetric_unit_diagonal_scale(poisson_2d(317)).matrix
    assert A.n_rows >= 100_000
    x = np.random.default_rng(0).standard_normal(A.n_cols)
    out = np.empty(A.n_rows)
    with use_backend("reference"):
        t_ref = _best_of(lambda: A.matvec(x, out=out))
    with use_backend("scipy"):
        t_scipy = _best_of(lambda: A.matvec(x, out=out))
    ratio = t_ref / t_scipy
    assert ratio >= 3.0, (
        f"scipy matvec only {ratio:.2f}x reference "
        f"({t_scipy * 1e3:.3f} ms vs {t_ref * 1e3:.3f} ms)")


def test_gs_sweep_backend_beats_reference():
    """The compiled triangular solve dwarfs per-row python solves."""
    from repro.sparsela.kernels import gauss_seidel_sweep

    A = symmetric_unit_diagonal_scale(poisson_2d(64)).matrix
    rng = np.random.default_rng(1)
    x = rng.standard_normal(A.n_rows)
    b = rng.standard_normal(A.n_rows)
    with use_backend("reference"):
        t_ref = _best_of(lambda: gauss_seidel_sweep(A, x, b), repeats=3)
    with use_backend("scipy"):
        t_scipy = _best_of(lambda: gauss_seidel_sweep(A, x, b), repeats=3)
    assert t_scipy < t_ref / 3.0


# ----------------------------------------------------------------------
# 2. DS step is allocation-free on the per-neighbor path
# ----------------------------------------------------------------------
def _ds_on_poisson(side=24, n_parts=8, delay_probability=0.0):
    A = symmetric_unit_diagonal_scale(poisson_2d(side)).matrix
    part = partition(A, n_parts, seed=0)
    system = build_block_system(A, part)
    ds = DistributedSouthwell(system, delay_probability=delay_probability,
                              seed=0)
    rng = np.random.default_rng(2)
    ds.setup(rng.uniform(-1, 1, A.n_rows), np.zeros(A.n_rows))
    return ds


def test_relax_reuses_preallocated_delta_buffers():
    """With synchronous epochs every outgoing delta IS the workspace
    buffer — the same array object on every relax — so a parallel step
    performs no per-neighbor allocation."""
    ds = _ds_on_poisson()
    for p in range(ds.system.n_parts):
        if ds.system.neighbors_of(p).size == 0:
            continue
        first = {q: buf for q, buf in ds.relax(p).items()}
        again = ds.relax(p)
        for q, buf in again.items():
            assert buf is first[q], "delta buffer was reallocated"
            assert buf is ds._ws_delta[(p, int(q))]
        break
    else:  # pragma: no cover
        pytest.fail("no process with neighbors in the partition")


def test_relax_allocates_fresh_buffers_under_delay_injection():
    """With staleness injection a message can outlive the producing step,
    so deltas must own their storage: fresh arrays every relax."""
    ds = _ds_on_poisson(delay_probability=0.5)
    for p in range(ds.system.n_parts):
        if ds.system.neighbors_of(p).size == 0:
            continue
        first = {q: buf for q, buf in ds.relax(p).items()}
        again = ds.relax(p)
        for q, buf in again.items():
            assert buf is not first[q]
            assert buf is not ds._ws_delta[(p, int(q))]
        break


def test_ds_step_residual_exact_with_buffer_reuse():
    """Buffer reuse must not leak stale values into the bookkeeping: the
    end-of-step invariant r_p == (b - A x)_p still holds exactly."""
    ds = _ds_on_poisson(side=20, n_parts=6)
    A = symmetric_unit_diagonal_scale(poisson_2d(20)).matrix
    for _ in range(5):
        ds.step()
    r_true = np.zeros(A.n_rows) - A.matvec(ds.solution())
    np.testing.assert_allclose(ds.residual_vector(), r_true, atol=1e-10)


# ----------------------------------------------------------------------
# 3. the bench harness runs and writes its schema
# ----------------------------------------------------------------------
def test_bench_kernels_smoke_writes_schema(tmp_path):
    out = tmp_path / "bench.json"
    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts" / "bench_kernels.py"),
         "--smoke", "--quiet", "--output", str(out)],
        capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stderr
    doc = json.loads(out.read_text())
    assert doc["schema"] == "repro.bench_kernels/v1"
    assert doc["smoke"] is True
    assert {"python", "numpy", "scipy", "numba",
            "platform"} <= doc["environment"].keys()
    kinds = {r["kind"] for r in doc["results"]}
    assert kinds == {"kernel", "block_step"}
    for rec in doc["results"]:
        assert rec["best_s"] > 0.0
        assert rec["mean_s"] >= rec["best_s"] * 0.5
        if rec["kind"] == "kernel":
            assert rec["backend"] in doc["config"]["backends"]
            assert rec["kernel"] in {"matvec", "gs_sweep", "jacobi_sweep"}
        else:
            assert rec["method"] in {"block-jacobi", "parallel-southwell",
                                     "distributed-southwell"}


# ----------------------------------------------------------------------
# 4. the flat-buffer message plane beats the object plane at scale
# ----------------------------------------------------------------------
def test_flat_plane_beats_object_plane_ds_p256():
    """The PR-2 acceptance bar (DESIGN.md §5.8): a Distributed Southwell
    parallel step at P=256 must be faster on the flat-buffer plane than
    on the object plane — on *identical* trajectories and identical
    message/byte accounting, verified here alongside the timing.  The
    full measurement (≥3× at P=256, all three methods, both planes)
    lives in ``scripts/bench_runtime.py`` → ``BENCH_runtime.json``; this
    smoke asserts a noise-robust 1.5× so an accidental pessimisation of
    either plane fails CI without flaking on a loaded box.
    """
    side = 96
    A = symmetric_unit_diagonal_scale(poisson_2d(side)).matrix
    part = partition(A, 256, method="grid", grid_shape=(side, side))
    system = build_block_system(A, part)
    rng = np.random.default_rng(1)
    x0 = rng.uniform(-1.0, 1.0, A.n_rows)
    b = np.zeros(A.n_rows)
    steps, repeats = 5, 3

    def measure(mode):
        best = np.inf
        with use_runtime(mode):
            for _ in range(repeats):
                ds = DistributedSouthwell(system)
                ds.setup(x0, b)
                t0 = time.perf_counter()
                for _ in range(steps):
                    ds.step()
                best = min(best, time.perf_counter() - t0)
        return best / steps, ds

    t_obj, ds_obj = measure("object")
    t_flat, ds_flat = measure("flat")
    assert not ds_obj._use_flat and ds_flat._use_flat
    np.testing.assert_array_equal(ds_obj.norms, ds_flat.norms)
    so, sf = ds_obj.engine.stats, ds_flat.engine.stats
    assert so.total_messages == sf.total_messages
    assert so.total_bytes == sf.total_bytes
    ratio = t_obj / t_flat
    assert ratio >= 1.5, (
        f"flat plane only {ratio:.2f}x object plane "
        f"({t_flat * 1e3:.3f} ms vs {t_obj * 1e3:.3f} ms per step)")


# ----------------------------------------------------------------------
# 5. tracing is free when off (the PR-3 overhead policy, DESIGN.md §5.9)
# ----------------------------------------------------------------------
def test_null_tracer_overhead_under_5pct_ds_p256():
    """The observability acceptance bar: with tracing off (the default
    ``NULL_TRACER``), the per-step cost of the hook sites on the P=256
    flat-plane Distributed Southwell hot path is ≤5%.  Measured against
    a tracer that *is* enabled but records nothing, so the comparison
    isolates the ``tracer.enabled`` gating from the cost of actually
    buffering events (which traced runs knowingly pay)."""
    from repro.trace import NULL_TRACER, Tracer

    class EnabledNoop(Tracer):
        """Forces every hook site through its tracing branch."""

        enabled = True

        def relax(self, p):
            pass

        def ghosts(self, p, neighbors):
            pass

        def repairs(self, srcs, dsts):
            pass

        def sends_flat(self, plane, sids, category):
            pass

        def recvs_flat(self, plane, dst, sids):
            pass

    side = 96
    A = symmetric_unit_diagonal_scale(poisson_2d(side)).matrix
    part = partition(A, 256, method="grid", grid_shape=(side, side))
    system = build_block_system(A, part)
    rng = np.random.default_rng(1)
    x0 = rng.uniform(-1.0, 1.0, A.n_rows)
    b = np.zeros(A.n_rows)
    steps, repeats = 5, 5

    def measure(tracer):
        best = np.inf
        with use_runtime("flat"):
            for _ in range(repeats):
                ds = DistributedSouthwell(system, tracer=tracer)
                ds.setup(x0, b)
                t0 = time.perf_counter()
                for _ in range(steps):
                    ds.step()
                best = min(best, time.perf_counter() - t0)
        return best / steps, ds

    t_hooks, ds_hooks = measure(EnabledNoop())
    t_off, ds_off = measure(NULL_TRACER)
    np.testing.assert_array_equal(ds_off.norms, ds_hooks.norms)
    overhead = t_off / t_hooks
    # t_off must not be meaningfully slower than the enabled-hooks run;
    # the gated-off path should in fact be the faster of the two.
    assert overhead <= 1.05, (
        f"NullTracer path {overhead:.3f}x the enabled-hook path "
        f"({t_off * 1e3:.3f} ms vs {t_hooks * 1e3:.3f} ms per step)")


def test_bench_runtime_smoke_writes_schema(tmp_path):
    out = tmp_path / "bench.json"
    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts" / "bench_runtime.py"),
         "--smoke", "--quiet", "--output", str(out)],
        capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stderr
    doc = json.loads(out.read_text())
    assert doc["schema"] == "repro.bench_runtime/v1"
    assert doc["smoke"] is True
    assert doc["summary"]["pairs_identical"] is True
    planes = {(r["method"], r["runtime"]) for r in doc["results"]}
    for m in ("block-jacobi", "parallel-southwell",
              "distributed-southwell"):
        assert (m, "object") in planes and (m, "flat") in planes


# ----------------------------------------------------------------------
# 6. the vectorized partitioner beats the seed kernels (PR-4 bar)
# ----------------------------------------------------------------------
def test_partition_fast_at_least_2x_reference():
    """The setup-plane acceptance bar (DESIGN.md §5.10): the vectorized
    matching/refinement kernels must beat the seed reference kernels on
    a multilevel partition, with bit-identical output.  The full
    measurement (af_5_k101 analog at P=256: ~3× total, ~4.7× on the
    coarsening stage) lives in ``scripts/bench_setup.py`` →
    ``BENCH_setup.json``; this smoke asserts noise-robust floors — 2×
    total, 3× coarsening — so a pessimisation fails CI without flaking
    on a loaded box."""
    import repro.partition.multilevel as _ml

    A = poisson_2d(64)

    def measure():
        t0 = time.perf_counter()
        part = partition(A, 32, method="multilevel", seed=0)
        return time.perf_counter() - t0, part

    def measure_coarsen():
        elapsed = [0.0]
        orig = _ml.coarsen_graph

        def timed(*a, **kw):
            t0 = time.perf_counter()
            try:
                return orig(*a, **kw)
            finally:
                elapsed[0] += time.perf_counter() - t0

        _ml.coarsen_graph = timed
        try:
            partition(A, 32, method="multilevel", seed=0)
        finally:
            _ml.coarsen_graph = orig
        return elapsed[0]

    t_fast, best_c_fast = np.inf, np.inf
    t_ref, best_c_ref = np.inf, np.inf
    for _ in range(3):
        dt, part_fast = measure()
        t_fast = min(t_fast, dt)
        best_c_fast = min(best_c_fast, measure_coarsen())
    with use_backend("reference"):
        for _ in range(3):
            dt, part_ref = measure()
            t_ref = min(t_ref, dt)
            best_c_ref = min(best_c_ref, measure_coarsen())

    np.testing.assert_array_equal(part_fast.parts, part_ref.parts)
    ratio = t_ref / t_fast
    assert ratio >= 2.0, (
        f"fast partition only {ratio:.2f}x reference "
        f"({t_fast * 1e3:.1f} ms vs {t_ref * 1e3:.1f} ms)")
    c_ratio = best_c_ref / best_c_fast
    assert c_ratio >= 3.0, (
        f"fast coarsening only {c_ratio:.2f}x reference "
        f"({best_c_fast * 1e3:.1f} ms vs {best_c_ref * 1e3:.1f} ms)")


# ----------------------------------------------------------------------
# 7. the persistent setup cache pays for itself (PR-4 bar)
# ----------------------------------------------------------------------
def test_setup_cache_warm_at_least_10x_cold(tmp_path):
    """A warm ``get_setup`` (disk load + local-solver re-factorization)
    must be ≥10× faster than a cold one (partition + block build +
    store).  Best-of-3 on both sides; the measured ratio on this
    configuration is ~14×, so the bar has headroom without being loose
    enough to hide a regression to eager recompute.  On a 1-core box
    the warm path's small fixed cost is inflated by whatever else the
    core is running (observed ~8-9× under load), so the floor degrades
    there instead of flaking."""
    import os

    from repro.setupcache import get_setup, setup_key

    A = symmetric_unit_diagonal_scale(poisson_2d(80)).matrix
    key = setup_key(A, 64)
    colds, warms = [], []
    for _ in range(3):
        (tmp_path / f"{key}.pkl").unlink(missing_ok=True)
        t0 = time.perf_counter()
        get_setup(A, 64, cache_dir=tmp_path)
        colds.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        get_setup(A, 64, cache_dir=tmp_path)
        warms.append(time.perf_counter() - t0)
    floor = 10.0 if (os.cpu_count() or 1) >= 2 else 6.0
    ratio = min(colds) / min(warms)
    assert ratio >= floor, (
        f"warm setup only {ratio:.2f}x cold (floor {floor:.0f}x, "
        f"{min(warms) * 1e3:.1f} ms vs {min(colds) * 1e3:.1f} ms)")


def test_warm_run_method_skips_partition_and_block_build(tmp_path,
                                                         monkeypatch):
    """The end-to-end claim behind the knob: with ``REPRO_SETUP_CACHE``
    set, a warm ``run_method`` performs *no* partitioning and *no* block
    assembly — verified structurally (the stage entry points are never
    entered), not by timing."""
    from repro import setupcache
    from repro.experiments.runners import clear_run_caches, run_method

    monkeypatch.setenv("REPRO_SETUP_CACHE", str(tmp_path))
    clear_run_caches()
    r1 = run_method("af_5_k101", "distributed-southwell", 8,
                    size_scale=0.05, max_steps=5)
    clear_run_caches()

    def boom(*a, **kw):  # pragma: no cover - only on regression
        raise AssertionError("setup stage ran despite a warm cache")

    monkeypatch.setattr(setupcache, "partition", boom)
    monkeypatch.setattr(setupcache, "build_block_system", boom)
    r2 = run_method("af_5_k101", "distributed-southwell", 8,
                    size_scale=0.05, max_steps=5)
    np.testing.assert_array_equal(r1.x, r2.x)
    clear_run_caches()


def test_bench_setup_smoke_writes_schema(tmp_path):
    out = tmp_path / "bench.json"
    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts" / "bench_setup.py"),
         "--smoke", "--quiet", "--output", str(out)],
        capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stderr
    doc = json.loads(out.read_text())
    assert doc["schema"] == "repro.bench_setup/v1"
    assert doc["smoke"] is True
    assert doc["summary"]["digests_identical"] is True
    kinds = {r["kind"] for r in doc["results"]}
    assert kinds == {"partition", "block_build", "setup_cache"}
    for rec in doc["results"]:
        if rec["kind"] == "partition":
            assert rec["backend"] in doc["config"]["backends"]
            assert rec["coarsen_s"] > 0.0 and rec["refine_s"] > 0.0
            assert rec["coarsen_s"] + rec["refine_s"] <= rec["best_s"]
        elif rec["kind"] == "setup_cache":
            assert rec["cold_s"] > rec["warm_s"] > 0.0


# ----------------------------------------------------------------------
# 8. the fault plane is free when disabled (PR-5 bar, DESIGN.md §5.11)
# ----------------------------------------------------------------------
def test_null_fault_plan_overhead_under_5pct_ds_p256():
    """The resilience acceptance bar: attaching a *null*
    :class:`~repro.faults.FaultPlan` (every rate zero, no schedules) to
    the P=256 flat-plane Distributed Southwell hot path costs ≤5% per
    step relative to no plan at all, and the trajectory stays
    bit-identical.  Null plans must compile to disabled machinery —
    `plan.is_null` short-circuits before any fate hashing — so the only
    residual cost is the `is None` gating at the hook sites."""
    from repro.faults import FaultPlan

    side = 96
    A = symmetric_unit_diagonal_scale(poisson_2d(side)).matrix
    part = partition(A, 256, method="grid", grid_shape=(side, side))
    system = build_block_system(A, part)
    rng = np.random.default_rng(1)
    x0 = rng.uniform(-1.0, 1.0, A.n_rows)
    b = np.zeros(A.n_rows)
    steps, repeats = 5, 5

    def measure(plan):
        best = np.inf
        with use_runtime("flat"):
            for _ in range(repeats):
                ds = DistributedSouthwell(system, faults=plan)
                ds.setup(x0, b)
                t0 = time.perf_counter()
                for _ in range(steps):
                    ds.step()
                best = min(best, time.perf_counter() - t0)
            assert ds._use_flat
        return best / steps, ds

    t_off, ds_off = measure(None)
    t_null, ds_null = measure(FaultPlan(seed=11))
    np.testing.assert_array_equal(ds_off.norms, ds_null.norms)
    so, sn = ds_off.engine.stats, ds_null.engine.stats
    assert so.total_messages == sn.total_messages
    assert so.total_bytes == sn.total_bytes
    overhead = t_null / t_off
    assert overhead <= 1.05, (
        f"null fault plan costs {overhead:.3f}x the no-plan path "
        f"({t_null * 1e3:.3f} ms vs {t_off * 1e3:.3f} ms per step)")


def test_bench_faults_smoke_writes_schema(tmp_path):
    out = tmp_path / "bench.json"
    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts" / "bench_faults.py"),
         "--smoke", "--quiet", "--output", str(out)],
        capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stderr
    doc = json.loads(out.read_text())
    assert doc["schema"] == "repro.bench_faults/v1"
    assert doc["smoke"] is True
    assert doc["summary"]["null_identical_to_off"] is True
    plans = {r["plan"] for r in doc["results"]}
    assert plans == {"off", "null", "drop"}
    by = {r["plan"]: r for r in doc["results"]}
    assert by["drop"]["injected"]["drop:solve"] > 0
    assert by["null"]["history_digest"] == by["off"]["history_digest"]


# ----------------------------------------------------------------------
# 9. the shm worker pool beats single-process flat on real cores (§5.12)
# ----------------------------------------------------------------------
def test_bench_parallel_smoke_writes_schema(tmp_path):
    out = tmp_path / "bench.json"
    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts" / "bench_parallel.py"),
         "--smoke", "--quiet", "--output", str(out)],
        capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stderr
    doc = json.loads(out.read_text())
    assert doc["schema"] == "repro.bench_parallel/v1"
    assert doc["smoke"] is True
    assert doc["summary"]["all_identical"] is True
    assert doc["environment"]["cpu_count"] >= 1
    assert doc["environment"]["workers"] >= 1
    pairs = {(r["method"], r["runtime"]) for r in doc["results"]}
    for m in ("block-jacobi", "parallel-southwell",
              "distributed-southwell"):
        assert (m, "flat") in pairs and (m, "shm") in pairs
    for rec in doc["results"]:
        assert rec["best_step_s"] > 0.0
        assert rec["mean_step_s"] >= rec["best_step_s"] * 0.5


@pytest.mark.skipif((__import__("os").cpu_count() or 1) < 2,
                    reason="shm speedup needs at least 2 physical cores")
def test_shm_plane_beats_flat_plane_ds_p256():
    """The §5.12 acceptance bar: with real cores available, a
    Distributed Southwell parallel step at P=256 on the shm worker pool
    must beat the single-process flat plane — on identical trajectories
    and identical message/byte accounting, verified alongside the
    timing.  The full measurement lives in ``scripts/bench_parallel.py``
    → ``BENCH_parallel.json``; this smoke asserts a noise-robust 1.3×
    so a pessimisation of the pool fails CI without flaking."""
    import os

    from repro.runtime.pool import shm_available

    if not shm_available():
        pytest.skip("shared memory / fork unavailable here")
    os.environ.setdefault("REPRO_WORKERS", "0")  # size to the core count

    side = 224                  # n = 50176
    A = symmetric_unit_diagonal_scale(poisson_2d(side)).matrix
    part = partition(A, 256, method="grid", grid_shape=(side, side))
    system = build_block_system(A, part)
    rng = np.random.default_rng(1)
    x0 = rng.uniform(-1.0, 1.0, A.n_rows)
    b = np.zeros(A.n_rows)
    steps, repeats = 5, 3

    def measure(mode):
        best = np.inf
        with use_runtime(mode):
            for _ in range(repeats):
                ds = DistributedSouthwell(system)
                ds.setup(x0, b)
                ds._shm_ensure()        # fork outside the timed region
                t0 = time.perf_counter()
                for _ in range(steps):
                    ds.step()
                best = min(best, time.perf_counter() - t0)
                ds._shm_close()
            assert ds._use_flat
        return best / steps, ds

    t_flat, ds_flat = measure("flat")
    t_shm, ds_shm = measure("shm")
    assert ds_shm.degraded_reason is None
    np.testing.assert_array_equal(ds_flat.norms, ds_shm.norms)
    sf, ss = ds_flat.engine.stats, ds_shm.engine.stats
    assert sf.total_messages == ss.total_messages
    assert sf.total_bytes == ss.total_bytes
    ratio = t_flat / t_shm
    assert ratio >= 1.3, (
        f"shm plane only {ratio:.2f}x flat plane "
        f"({t_shm * 1e3:.3f} ms vs {t_flat * 1e3:.3f} ms per step)")


# ----------------------------------------------------------------------
# 10. the event-driven async engine beats the seed object-plane engine
# ----------------------------------------------------------------------
def test_async_engine_beats_object_async_engine_ds_p256():
    """The §5.14 acceptance bar: Distributed Southwell at P=256 run to a
    residual target in simulated time must be faster on the event-driven
    flat plane (``AsyncExecutor``) than on the seed object-plane engine
    (``AsyncDistributedSouthwell``).  Both are timed steady-state — the
    executor front-loads setup via ``prepare()``; the seed engine's
    setup is a negligible slice of its run.  The full measurement (≈2×
    at the full-depth target-0.01 horizon) lives in
    ``scripts/bench_async.py`` → ``BENCH_async.json``; this smoke
    asserts a noise-robust 1.35× at a shorter horizon so a pessimisation
    of the event engine fails CI without flaking on a loaded box."""
    from repro.core.async_exec import AsyncExecutor
    from repro.core.async_southwell import AsyncDistributedSouthwell

    side, n_parts, target = 96, 256, 0.02
    A = symmetric_unit_diagonal_scale(poisson_2d(side)).matrix
    part = partition(A, n_parts, method="grid", grid_shape=(side, side))
    system = build_block_system(A, part)
    rng = np.random.default_rng(0)
    x0 = rng.standard_normal(A.n_rows)
    x0 /= np.linalg.norm(A.matvec(x0))
    b = np.zeros(A.n_rows)

    t_obj = np.inf
    t_flat = np.inf
    for _ in range(3):
        seed_engine = AsyncDistributedSouthwell(system)
        t0 = time.perf_counter()
        seed_engine.run(x0.copy(), b, max_turns=10 ** 9,
                        target_norm=target)
        t_obj = min(t_obj, time.perf_counter() - t0)

        runner = DistributedSouthwell(system, seed=0)
        ex = AsyncExecutor(runner)
        ex.prepare(x0.copy(), b)    # setup outside the timed region
        t0 = time.perf_counter()
        hist = ex.run(max_steps=10 ** 9, target_norm=target,
                      stop_at_target=True)
        t_flat = min(t_flat, time.perf_counter() - t0)
    # both engines actually reached the target (same problem, same bar)
    assert seed_engine.global_norm() <= target
    assert hist.cost_to_reach(target, axis="times") is not None
    ratio = t_obj / t_flat
    assert ratio >= 1.35, (
        f"async flat engine only {ratio:.2f}x the object engine "
        f"({t_flat * 1e3:.1f} ms vs {t_obj * 1e3:.1f} ms to target)")


def test_batched_scheduler_beats_scalar_ds_p256():
    """The §5.15 acceptance bar: at P=256 under a latency-dominated
    config (400 µs links, 0.25 µs polls) the batched event-horizon
    scheduler must beat the scalar heap oracle on the *same* turn
    budget — with a bit-identical solution, turn count and history,
    verified alongside the timing.  The full measurement (≥3× at
    P=1024) lives in ``scripts/bench_async.py`` → ``BENCH_async.json``
    schema v2; this smoke asserts a noise-robust 2× (measured ~4×) so a
    pessimisation of either engine fails CI without flaking on a loaded
    box."""
    import hashlib

    from repro.api import AsyncConfig, solve

    A = poisson_2d(96)
    out = {}
    for sched in ("scalar", "batched"):
        best, res = np.inf, None
        for _ in range(3):
            cfg = AsyncConfig(record_every=4096, scheduler=sched,
                              latency=400e-6, poll_interval=0.25e-6)
            t0 = time.perf_counter()
            r = solve(A, method="distributed-southwell", runtime="async",
                      n_parts=256, max_steps=500, seed=0,
                      async_config=cfg)
            dt = time.perf_counter() - t0
            if dt < best:
                best, res = dt, r
        out[sched] = (best, res)
    t_s, r_s = out["scalar"]
    t_b, r_b = out["batched"]
    assert (hashlib.sha256(r_s.x.tobytes()).hexdigest()
            == hashlib.sha256(r_b.x.tobytes()).hexdigest())
    assert r_s.parallel_steps == r_b.parallel_steps
    assert r_s.virtual_time == r_b.virtual_time
    np.testing.assert_array_equal(r_s.history.residual_norms,
                                  r_b.history.residual_norms)
    np.testing.assert_array_equal(r_s.history.times, r_b.history.times)
    np.testing.assert_array_equal(r_s.rank_idle, r_b.rank_idle)
    ratio = t_s / t_b
    assert ratio >= 2.0, (
        f"batched scheduler only {ratio:.2f}x scalar "
        f"({t_b * 1e3:.1f} ms vs {t_s * 1e3:.1f} ms)")


def test_bench_async_smoke_writes_schema(tmp_path):
    out = tmp_path / "bench.json"
    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts" / "bench_async.py"),
         "--smoke", "--quiet", "--output", str(out)],
        capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stderr
    doc = json.loads(out.read_text())
    assert doc["schema"] == "repro.bench_async/v2"
    assert doc["smoke"] is True
    assert doc["summary"]["deterministic"] is True
    assert doc["summary"]["ds_beats_ps_at_max_drop"] is True
    assert doc["summary"]["async_engine_speedup"] > 0.0
    assert doc["engine"]["flat_best_s"] > 0.0
    assert doc["engine"]["turns"] > 0
    methods = {r["method"] for r in doc["fig8_async"]}
    assert methods == {"BJ", "PS", "DS"}
    # schema v2: the scalar-vs-batched scheduler sweep with hard-gated
    # digest identity
    assert doc["summary"]["scheduler_identical"] is True
    assert doc["summary"]["batched_speedup_max_p"] > 0.0
    sweep = doc["scheduler_sweep"]
    pairs = {(r["n_parts"], r["scheduler"]) for r in sweep}
    for case in doc["config"]["scheduler_sweep"]:
        assert (case["n_parts"], "scalar") in pairs
        assert (case["n_parts"], "batched") in pairs
    by = {(r["n_parts"], r["scheduler"]): r for r in sweep}
    for (P, sched), r in by.items():
        assert r["best_s"] > 0.0 and r["turns"] > 0
        assert r["digest"] == by[(P, "scalar")]["digest"]
        if sched == "batched":
            assert r["sched_stats"]["turns"] == r["turns"]


# ----------------------------------------------------------------------
# 10. communication-aware multigrid: messages per digit (§5.16)
# ----------------------------------------------------------------------
def test_bench_mg_smoke_writes_schema(tmp_path):
    out = tmp_path / "bench.json"
    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts" / "bench_mg.py"),
         "--smoke", "--quiet", "--output", str(out)],
        capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stderr
    doc = json.loads(out.read_text())
    assert doc["schema"] == "repro.bench_mg/v1"
    assert doc["smoke"] is True
    assert doc["summary"]["ds_fewer_msgs_per_digit_than_ps"] is True
    assert doc["summary"]["sparsify_msgs_monotone"] is True
    assert doc["summary"]["sparsify_saves_msgs"] is True
    assert doc["summary"]["grid_independent"] is True
    assert doc["summary"]["deterministic"] is True
    names = {r["smoother"] for r in doc["smoothers"]}
    assert names == {"ds", "ps", "bj", "gs"}
    for rec in doc["smoothers"]:
        assert rec["rel_resid"] < 1e-5          # every smoother converges
        if rec["smoother"] in ("ds", "ps", "bj"):
            assert rec["msgs"] > 0
            assert sum(lvl["msgs"] for lvl in rec["levels"]) == rec["msgs"]
    tols = [r["drop_tol"] for r in doc["sparsification"]]
    assert tols == sorted(tols)
