"""Shared configuration for the experiment benches.

Each bench regenerates one of the paper's tables or figures at the
default ("paper") reproduction scale — 256 simulated processes, the
calibrated suite — prints the artifact, and asserts the qualitative shape
the paper reports.  ``--repro-scale=small`` runs everything at smoke-test
scale (used in constrained environments; shape assertions loosen or skip
where the small scale cannot express them).
"""

from __future__ import annotations

import pytest

from repro.experiments import get_scale


def pytest_addoption(parser):
    parser.addoption("--repro-scale", default="paper",
                     choices=("paper", "small"),
                     help="experiment scale for the reproduction benches")


@pytest.fixture(scope="session")
def scale(request):
    return get_scale(request.config.getoption("--repro-scale"))


@pytest.fixture(scope="session")
def at_paper_scale(request):
    return request.config.getoption("--repro-scale") == "paper"
