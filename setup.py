"""Setup shim: enables `python setup.py develop` on offline machines
without the `wheel` package (the modern editable path needs bdist_wheel)."""
from setuptools import setup

setup()
