"""Tests for the scalar Southwell family (sequential, parallel, distributed)."""

import numpy as np
import pytest

from repro.core.scalar import (
    EdgeStructure,
    ScalarDistributedSouthwell,
    ScalarParallelSouthwell,
    sequential_southwell,
)
from repro.sparsela import CSRMatrix


@pytest.fixture
def state(poisson_100):
    rng = np.random.default_rng(11)
    n = poisson_100.n_rows
    b = rng.uniform(-1, 1, n)
    b /= np.linalg.norm(b)
    return poisson_100, np.zeros(n), b


# ---------------------------------------------------------------- edges
def test_edge_structure_reverse_involution(poisson_100):
    e = EdgeStructure.from_matrix(poisson_100)
    assert np.array_equal(e.rev[e.rev], np.arange(e.n_edges))
    assert np.array_equal(e.src[e.rev], e.dst)
    assert np.array_equal(e.dst[e.rev], e.src)


def test_edge_coupling_values(poisson_100):
    e = EdgeStructure.from_matrix(poisson_100)
    dense = poisson_100.to_dense()
    for k in range(0, e.n_edges, 37):
        assert np.isclose(e.coupling[k], dense[e.dst[k], e.src[k]])


def test_edge_structure_rejects_nonsymmetric_pattern():
    d = np.array([[1.0, 2.0], [0.0, 1.0]])
    with pytest.raises(ValueError):
        EdgeStructure.from_matrix(CSRMatrix.from_dense(d))


def test_row_max(poisson_100):
    e = EdgeStructure.from_matrix(poisson_100)
    vals = np.arange(e.n_edges, dtype=float)
    rm = e.row_max(vals)
    for i in (0, 13, 99):
        mask = e.src == i
        assert rm[i] == vals[mask].max()


# ------------------------------------------------------------ sequential
def test_sequential_southwell_reduces_and_tracks_norm(state):
    A, x0, b = state
    hist = sequential_southwell(A, x0, b, 300)
    assert hist.residual_norms[-1] < hist.residual_norms[0]
    # incremental norm tracking matches a direct recomputation:
    # rebuild x by replay is overkill — instead check monotone-ish sanity
    assert len(hist) == 301


def test_sequential_southwell_picks_largest(state):
    A, x0, b = state
    # after one relaxation of row argmax|r|, that residual entry is 0
    hist = sequential_southwell(A, x0, b, 1)
    i = int(np.argmax(np.abs(b)))
    # replay: r after = b - A*dx with dx_i = b_i
    dx = np.zeros(A.n_rows)
    dx[i] = b[i]
    r = b - A.matvec(dx)
    assert np.isclose(hist.residual_norms[-1], np.linalg.norm(r))


def test_sequential_southwell_energy_descent(state):
    """Gauss-Southwell descends monotonically in the energy norm
    ‖x - x*‖_A (its greedy-coordinate-descent characterisation); the
    2-norm of the residual may wiggle, the energy never increases."""
    A, x0, b = state
    dense = A.to_dense()
    x_star = np.linalg.solve(dense, b)

    x = np.array(x0)
    diag = A.diagonal()
    prev = (x - x_star) @ dense @ (x - x_star)
    for _ in range(100):
        r = b - dense @ x
        i = int(np.argmax(np.abs(r)))
        x[i] += r[i] / diag[i]
        cur = (x - x_star) @ dense @ (x - x_star)
        assert cur <= prev + 1e-12
        prev = cur


# -------------------------------------------------------------- parallel
def test_scalar_ps_residual_exact(state):
    A, x0, b = state
    ps = ScalarParallelSouthwell(A)
    ps.setup(x0, b)
    for _ in range(10):
        ps.step()
    assert np.allclose(ps.r, b - A.matvec(ps.x), atol=1e-13)


def test_scalar_ps_no_adjacent_relaxers(state):
    A, x0, b = state
    ps = ScalarParallelSouthwell(A)
    ps.setup(x0, b)
    e = ps.edges
    for _ in range(10):
        win = ps.winners()
        # exact criterion: no edge connects two winners
        assert not np.any(win[e.src] & win[e.dst])
        ps.step(win)


def test_scalar_ps_run_budget(state):
    A, x0, b = state
    hist = ScalarParallelSouthwell(A).run(x0, b, max_relaxations=150)
    assert hist.relaxations[-1] >= 150


def test_scalar_ps_exact_budget(state):
    A, x0, b = state
    hist = ScalarParallelSouthwell(A).run(x0, b, max_relaxations=77,
                                          exact_relaxations=True, seed=1)
    assert hist.relaxations[-1] == 77


# ----------------------------------------------------------- distributed
def test_scalar_ds_residual_exact(state):
    A, x0, b = state
    ds = ScalarDistributedSouthwell(A)
    ds.setup(x0, b)
    for _ in range(12):
        ds.step()
    assert np.allclose(ds.r, b - A.matvec(ds.x), atol=1e-13)


def test_scalar_ds_progress_and_convergence(state):
    A, x0, b = state
    hist = ScalarDistributedSouthwell(A).run(x0, b, max_steps=200)
    assert hist.residual_norms[-1] < 0.05


def test_scalar_ds_counts_both_message_kinds(state):
    A, x0, b = state
    ds = ScalarDistributedSouthwell(A)
    ds.run(x0, b, max_steps=30)
    assert ds.solve_messages > 0
    assert ds.residual_messages > 0


def test_scalar_ds_fewer_messages_than_ps(state):
    """The headline claim holds in scalar form too."""
    A, x0, b = state
    ps = ScalarParallelSouthwell(A)
    ps.run(x0, b, max_relaxations=3 * A.n_rows)
    ds = ScalarDistributedSouthwell(A)
    ds.run(x0, b, max_relaxations=3 * A.n_rows)
    assert (ds.solve_messages + ds.residual_messages
            < ps.solve_messages + ps.residual_messages)


def test_scalar_ds_more_relaxations_per_step(state):
    """Inexact estimates let DS relax more rows per parallel step."""
    A, x0, b = state
    budget = 2 * A.n_rows
    ps_hist = ScalarParallelSouthwell(A).run(x0, b, max_relaxations=budget)
    ds_hist = ScalarDistributedSouthwell(A).run(x0, b,
                                                max_relaxations=budget)
    assert ds_hist.parallel_steps[-1] <= ps_hist.parallel_steps[-1]


def test_run_argument_validation(state):
    A, x0, b = state
    with pytest.raises(ValueError):
        ScalarParallelSouthwell(A).run(x0, b)
    with pytest.raises(ValueError):
        ScalarDistributedSouthwell(A).run(x0, b)
