"""Property-based tests for the relaxation kernels on random SPD systems."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matrices.random_spd import random_sparse_spd
from repro.sparsela import (
    CSRMatrix,
    gauss_seidel_sweep,
    jacobi_sweep,
    symmetric_unit_diagonal_scale,
)
from repro.sparsela.kernels import gauss_seidel_sweep_reference, residual


def _system(n, seed):
    A = random_sparse_spd(n, density=0.1, seed=seed, shift=0.5)
    A = symmetric_unit_diagonal_scale(A).matrix
    rng = np.random.default_rng(seed + 7)
    return A, rng.standard_normal(n), rng.standard_normal(n)


@given(st.integers(5, 40), st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_gs_fast_path_equals_reference(n, seed):
    A, x, b = _system(n, seed)
    assert np.allclose(gauss_seidel_sweep(A, x, b),
                       gauss_seidel_sweep_reference(A, x, b), atol=1e-10)


@given(st.integers(5, 30), st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_gs_energy_descent_random_spd(n, seed):
    A, x, b = _system(n, seed)
    dense = A.to_dense()
    x_star = np.linalg.solve(dense, b)

    def energy(v):
        e = v - x_star
        return float(e @ dense @ e)

    x1 = gauss_seidel_sweep(A, x, b)
    assert energy(x1) <= energy(x) + 1e-12


@given(st.integers(5, 30), st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_fixed_point_is_invariant(n, seed):
    A, _, b = _system(n, seed)
    x_star = np.linalg.solve(A.to_dense(), b)
    for sweep in (gauss_seidel_sweep, jacobi_sweep):
        out = sweep(A, x_star, b)
        assert np.allclose(out, x_star, atol=1e-8)


@given(st.integers(5, 30), st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_residual_definition(n, seed):
    A, x, b = _system(n, seed)
    assert np.allclose(residual(A, x, b), b - A.to_dense() @ x, atol=1e-10)


@given(st.integers(4, 25), st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_unit_scaling_congruence(n, seed):
    A = random_sparse_spd(n, density=0.15, seed=seed, shift=0.5)
    scaled = symmetric_unit_diagonal_scale(A)
    assert np.allclose(scaled.matrix.diagonal(), 1.0)
    d = scaled.scale
    assert np.allclose(scaled.matrix.to_dense() * np.outer(d, d),
                       A.to_dense(), atol=1e-10)
