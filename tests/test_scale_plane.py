"""Scaling-plane tests (DESIGN.md §5.13): the paper-scale machinery.

Covers the pieces the million-row campaign rides on: the in-place
relabel coarsening path and the ``coarse`` partition method, the sized
``ShmArenaOverflow`` error and the ``REPRO_SHM_MB`` floor knob, the
memmap-backed setup-cache blobs, and ``peak_rss_bytes`` on
:class:`~repro.api.SolveResult`.  (Bit-identity of the streamed
generators lives in ``tests/test_stream_matrices.py``; the int32 slab
dtype extension in ``tests/test_runtime_parallel.py``.)
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import config as _config
from repro.api import solve
from repro.matrices.poisson import poisson_2d
from repro.partition import (
    coarsen_graph,
    coarsen_labels,
    matching_relabel,
    matrix_graph,
    partition,
    parts_are_valid,
)
from repro.partition.coarsen import heavy_edge_matching
from repro.runtime.pool import ShmUnavailable, shm_available
from repro.runtime.shmplane import ShmArena, ShmArenaOverflow
from repro.sparsela import symmetric_unit_diagonal_scale

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="shared memory / fork unavailable here")


@pytest.fixture
def A():
    return symmetric_unit_diagonal_scale(poisson_2d(32)).matrix


# ----------------------------------------------------------------------
# compact coarsening path
# ----------------------------------------------------------------------
def test_matching_relabel_matches_contract_maps(A):
    g = matrix_graph(A)
    match = heavy_edge_matching(g, seed=3)
    cmap, nc = matching_relabel(match)
    assert cmap.shape == (g.n_vertices,)
    assert nc == int(cmap.max()) + 1
    # every matched pair collapses to one coarse id, singletons keep one
    assert np.array_equal(cmap, cmap[match])


@pytest.mark.parametrize("min_vertices", [48, 200])
def test_coarsen_labels_identical_to_hierarchy(A, min_vertices):
    """The streaming composition equals composing the materialized
    per-level cmaps of ``coarsen_graph`` — same seeds, same stop rules."""
    g = matrix_graph(A)
    labels, coarse, n_levels = coarsen_labels(
        g, min_vertices=min_vertices, seed=0)
    levels = coarsen_graph(g, min_vertices=min_vertices, seed=0)
    ref = np.arange(g.n_vertices)
    for level in levels:
        ref = level.cmap[ref]
    assert n_levels == len(levels)
    assert np.array_equal(labels, ref)
    assert coarse.n_vertices == levels[-1].graph.n_vertices
    assert np.array_equal(coarse.xadj, levels[-1].graph.xadj)
    assert np.array_equal(coarse.adjncy, levels[-1].graph.adjncy)
    assert np.array_equal(coarse.adjwgt, levels[-1].graph.adjwgt)
    assert np.array_equal(coarse.vwgt, levels[-1].graph.vwgt)


def test_coarse_partition_method_valid_and_balanced(A):
    part = partition(A, 16, method="coarse")
    assert parts_are_valid(part.parts, 16)
    sizes = np.bincount(part.parts, minlength=16)
    assert sizes.min() > 0
    # coarse-first trades some balance for memory; keep it within 2x
    assert sizes.max() <= 2 * A.n_rows / 16


def test_coarse_method_through_solve(A):
    res = solve(A, n_parts=8, max_steps=5, partition_method="coarse",
                seed=0)
    assert res.n_parts == 8
    assert np.isfinite(res.final_norm)


# ----------------------------------------------------------------------
# sized arena overflow + the REPRO_SHM_MB floor
# ----------------------------------------------------------------------
@needs_shm
def test_arena_overflow_error_is_sized_and_actionable():
    arena = ShmArena(256)
    try:
        arena.take(16, np.float64)
        with pytest.raises(ShmArenaOverflow) as ei:
            arena.take(10_000, np.float64)
        err = ei.value
        assert isinstance(err, ShmUnavailable)       # degradation still works
        assert err.requested_nbytes == 80_000
        assert err.used_nbytes == 128                # 16*8 aligned to 64
        assert err.capacity_nbytes >= 256
        assert err.suggested_mb >= 1
        msg = str(err)
        assert "REPRO_SHM_MB" in msg
        assert "80000 B" in msg
    finally:
        arena.release()


@needs_shm
def test_arena_overflow_suggestion_has_headroom():
    arena = ShmArena(1 << 20)
    try:
        with pytest.raises(ShmArenaOverflow) as ei:
            arena.take(300 << 20, np.uint8)
        # suggestion must cover the request with ~25% headroom, in MB
        assert ei.value.suggested_mb >= 300
        assert ei.value.suggested_mb <= 500
    finally:
        arena.release()


def test_shm_mb_knob_parsing(monkeypatch):
    monkeypatch.delenv("REPRO_SHM_MB", raising=False)
    assert _config.shm_mb() == 0                     # default: demand-driven
    monkeypatch.setenv("REPRO_SHM_MB", "64")
    assert _config.shm_mb() == 64
    assert _config.shm_mb(128) == 128                # explicit beats env
    monkeypatch.setenv("REPRO_SHM_MB", "junk")
    assert _config.shm_mb() == 0                     # junk degrades
    monkeypatch.setenv("REPRO_SHM_MB", "-5")
    assert _config.shm_mb() == 0                     # negative degrades


def test_shm_mb_knob_in_describe(monkeypatch):
    monkeypatch.delenv("REPRO_SHM_MB", raising=False)
    assert "REPRO_SHM_MB" in _config.describe()


@needs_shm
def test_shm_mb_floor_enlarges_segment(monkeypatch):
    from repro.runtime.shmplane import ShmExecutionPlane

    monkeypatch.delenv("REPRO_SHM_MB", raising=False)
    small = ShmExecutionPlane(4, np.full(4, 8), 2, extra_nbytes=1024,
                              sid_capacity=16)
    try:
        demand_size = small.arena.seg.size
    finally:
        small.close()
    monkeypatch.setenv("REPRO_SHM_MB", "8")
    floored = ShmExecutionPlane(4, np.full(4, 8), 2, extra_nbytes=1024,
                                sid_capacity=16)
    try:
        assert floored.arena.seg.size >= 8 << 20
        assert floored.arena.seg.size > demand_size
    finally:
        floored.close()


# ----------------------------------------------------------------------
# memmap-backed setup cache
# ----------------------------------------------------------------------
def test_warm_setup_arrays_are_memmap_views(A, tmp_path):
    from repro.setupcache import get_setup

    get_setup(A, 4, cache_dir=tmp_path)
    key_files = list(tmp_path.glob("*.blob"))
    assert len(key_files) == 1, "cold store must write the blob sidecar"
    part, system = get_setup(A, 4, cache_dir=tmp_path)
    # big arrays come back as read-only memmap views into the blob
    assert isinstance(part.perm, np.memmap)
    assert not part.perm.flags.writeable
    assert isinstance(system.A.data, np.memmap)
    # small arrays stay inline (offsets array is tiny at P=4)
    assert not isinstance(part.offsets, np.memmap)


def test_warm_setup_solve_identity_all_runtimes(A, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "2")
    monkeypatch.setenv("REPRO_SETUP_CACHE", str(tmp_path))
    cold = solve(A, n_parts=4, max_steps=6, seed=0, runtime="flat")
    for rt in ("flat", "shm", "object"):
        warm = solve(A, n_parts=4, max_steps=6, seed=0, runtime=rt)
        assert (warm.history.residual_norms
                == cold.history.residual_norms), rt
        np.testing.assert_array_equal(warm.x, cold.x)


# ----------------------------------------------------------------------
# peak RSS accounting
# ----------------------------------------------------------------------
def test_solve_reports_peak_rss(A):
    res = solve(A, n_parts=4, max_steps=3, seed=0)
    assert res.peak_rss_bytes is not None
    assert res.peak_rss_bytes > 1 << 20          # more than a megabyte
    d = res.to_dict()
    assert d["schema"] == "repro.solveresult/v5"
    assert d["peak_rss_bytes"] == res.peak_rss_bytes


@needs_shm
def test_shm_run_folds_children_rss(A, monkeypatch):
    """A pooled run reports at least the flat run's self peak plus the
    reaped workers' high-water mark (the fold is an upper bound)."""
    import resource

    monkeypatch.setenv("REPRO_WORKERS", "2")
    flat = solve(A, n_parts=4, max_steps=3, seed=0, runtime="flat")
    res = solve(A, n_parts=4, max_steps=3, seed=0, runtime="shm")
    assert res.degraded_reason is None
    kids = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss * 1024
    assert kids > 0, "shm workers were reaped, so children peak is set"
    assert res.peak_rss_bytes >= flat.peak_rss_bytes + kids
