"""Fault-injection plane tests (DESIGN.md §5.11).

The resilience contract pinned here:

- a **null plan** (every rate zero, no schedules) compiles to disabled
  machinery: runs are bit-identical to runs with no plan at all, on both
  message planes (property-tested over plan seeds and repair knobs);
- a **seeded lossy plan** produces bit-identical histories, identical
  injected-fault counts, and byte-identical :class:`MessageStats` on the
  object and flat planes — the fate stream is a pure function of the
  plan, never of runtime representation;
- accounting: drops are charged as sends but **never** as receives;
  duplicates charge two receives;
- DS's repair/retry hardening keeps it converging under 5% and 20%
  message loss, while PS — whose criterion needs exact neighbor norms —
  stops by *reporting* deadlock (``degraded``), never by hanging;
- the ``REPRO_FAULTS`` knob, the ``solve()`` front door's
  ``RunConfig.faults``/``strict`` fields, the deprecation of the legacy
  wrappers, the v2 ``SolveResult`` schema, and trace reconciliation of
  the ``fault:*`` / ``repair:*`` event categories.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import config as _config
from repro.api import RunConfig, solve
from repro.core import DistributedSouthwell, ParallelSouthwell
from repro.core.blockdata import build_block_system
from repro.faults import (
    DegradedRunError,
    EdgeFaults,
    FaultPlan,
    FaultRuntime,
    SlowdownWindow,
    StallWindow,
)
from repro.matrices.poisson import poisson_2d
from repro.partition import partition
from repro.runtime import use_runtime
from repro.solvers.block_jacobi import BlockJacobi
from repro.sparsela import symmetric_unit_diagonal_scale

_CLASSES = {"block-jacobi": BlockJacobi,
            "parallel-southwell": ParallelSouthwell,
            "distributed-southwell": DistributedSouthwell}

LOSSY_PLAN = FaultPlan.uniform(drop=0.1, duplicate=0.05, reorder=0.1,
                               seed=7)


@pytest.fixture(scope="module")
def small_setup():
    A = symmetric_unit_diagonal_scale(poisson_2d(20)).matrix
    part = partition(A, 8, seed=3)
    return A, build_block_system(A, part)


@pytest.fixture(scope="module")
def loss_setup():
    """The acceptance problem: Poisson, P=64."""
    A = symmetric_unit_diagonal_scale(poisson_2d(40)).matrix
    part = partition(A, 64, seed=3)
    return A, build_block_system(A, part)


def _run(system, n, cls, mode, plan, steps=15, **kwargs):
    m = cls(system, faults=plan, **kwargs)
    rng = np.random.default_rng(7)
    x0 = rng.uniform(-1.0, 1.0, n)
    with use_runtime(mode):
        hist = m.run(x0, np.zeros(n), max_steps=steps)
    return m, hist


def _digest(hist) -> str:
    norms = np.asarray(hist.residual_norms, dtype=np.float64)
    relax = np.asarray(hist.relaxations, dtype=np.int64)
    return hashlib.sha256(norms.tobytes() + relax.tobytes()).hexdigest()


# ----------------------------------------------------------------------
# null plans are bit-identical to no plan (both planes)
# ----------------------------------------------------------------------
_BASELINE: dict[str, str] = {}


def _baseline_digest(small_setup, mode: str) -> str:
    if mode not in _BASELINE:
        A, system = small_setup
        _, hist = _run(system, A.n_rows, DistributedSouthwell, mode, None)
        _BASELINE[mode] = _digest(hist)
    return _BASELINE[mode]


@pytest.mark.parametrize("mode", ["object", "flat"])
@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 2**31 - 1),
       resend_after=st.integers(1, 10),
       retry_budget=st.integers(0, 50),
       patience=st.integers(1, 20))
def test_null_plan_bit_identical_to_faultless(small_setup, mode, seed,
                                              resend_after, retry_budget,
                                              patience):
    """Any plan with zero rates runs exactly like no plan at all."""
    plan = FaultPlan(seed=seed, resend_after=resend_after,
                     retry_budget=retry_budget,
                     deadlock_patience=patience)
    assert plan.is_null
    A, system = small_setup
    _, hist = _run(system, A.n_rows, DistributedSouthwell, mode, plan)
    assert _digest(hist) == _baseline_digest(small_setup, mode)


# ----------------------------------------------------------------------
# seeded lossy plans: object plane ≡ flat plane, exactly
# ----------------------------------------------------------------------
@pytest.mark.parametrize("method", sorted(_CLASSES))
def test_lossy_plan_object_vs_flat_identical(small_setup, method):
    """Histories, stats and injected-fault counts all match bitwise.

    This also pins the drain-path accounting fix: dropped messages are
    charged as sends but never as receives, identically on both planes,
    so ``MessageStats`` equality holds under a nonzero fault plan.
    """
    A, system = small_setup
    cls = _CLASSES[method]
    m_o, h_o = _run(system, A.n_rows, cls, "object", LOSSY_PLAN)
    m_f, h_f = _run(system, A.n_rows, cls, "flat", LOSSY_PLAN)
    assert _digest(h_o) == _digest(h_f)
    assert dict(m_o._faults.injected) == dict(m_f._faults.injected)
    so, sf = m_o.engine.stats, m_f.engine.stats
    assert so.total_messages == sf.total_messages
    assert so.total_bytes == sf.total_bytes
    assert so.total_receives == sf.total_receives


def test_same_plan_is_deterministic(small_setup):
    A, system = small_setup
    _, h1 = _run(system, A.n_rows, DistributedSouthwell, "flat", LOSSY_PLAN)
    _, h2 = _run(system, A.n_rows, DistributedSouthwell, "flat", LOSSY_PLAN)
    assert _digest(h1) == _digest(h2)


def test_drops_charged_as_sends_not_receives(small_setup):
    """With drop-only faults, receives == sends − drops, exactly."""
    A, system = small_setup
    plan = FaultPlan.uniform(drop=0.15, seed=5)
    for mode in ("object", "flat"):
        m, _ = _run(system, A.n_rows, BlockJacobi, mode, plan)
        stats = m.engine.stats
        drops = m._faults.injected.get("drop:solve", 0)
        assert drops > 0
        assert stats.total_receives == stats.total_messages - drops


def test_duplicates_charge_two_receives(small_setup):
    A, system = small_setup
    plan = FaultPlan.uniform(duplicate=0.2, seed=5)
    for mode in ("object", "flat"):
        m, _ = _run(system, A.n_rows, BlockJacobi, mode, plan)
        stats = m.engine.stats
        dups = m._faults.injected.get("duplicate:solve", 0)
        assert dups > 0
        assert stats.total_receives == stats.total_messages + dups


# ----------------------------------------------------------------------
# plan serialization
# ----------------------------------------------------------------------
_rate = st.floats(0.0, 1.0, allow_nan=False)


@settings(max_examples=25, deadline=None)
@given(drop=_rate, duplicate=_rate, reorder=_rate, delay=_rate,
       ghost_stale=_rate, max_delay=st.integers(1, 8),
       seed=st.integers(0, 2**31 - 1))
def test_plan_json_roundtrip(drop, duplicate, reorder, delay, ghost_stale,
                             max_delay, seed):
    plan = FaultPlan.uniform(drop=drop, duplicate=duplicate,
                             reorder=reorder, delay=delay,
                             max_delay=max_delay, ghost_stale=ghost_stale,
                             seed=seed,
                             stalls=(StallWindow(rank=1, start=2, stop=5),),
                             slowdowns=(SlowdownWindow(rank=0, start=1,
                                                       stop=3,
                                                       factor=2.5),))
    doc = plan.to_json()
    assert json.loads(doc)["schema"] == "repro.faultplan/v1"
    assert FaultPlan.from_json(doc) == plan


def test_plan_from_json_rejects_unknown_fields():
    with pytest.raises(ValueError, match="unknown FaultPlan fields"):
        FaultPlan.from_json('{"seed": 1, "bogus": 2}')


# ----------------------------------------------------------------------
# resilience semantics: DS converges under loss, PS reports deadlock
# ----------------------------------------------------------------------
@pytest.mark.parametrize("drop", [0.05, 0.2])
def test_ds_converges_under_loss(loss_setup, drop):
    A, system = loss_setup
    plan = FaultPlan.uniform(drop=drop, seed=11)
    m = DistributedSouthwell(system, faults=plan)
    rng = np.random.default_rng(7)
    x0 = rng.uniform(-1.0, 1.0, A.n_rows)
    x0 /= np.linalg.norm(A.matvec(x0))
    with use_runtime("flat"):
        hist = m.run(x0, np.zeros(A.n_rows), max_steps=200,
                     target_norm=0.1, stop_at_target=True)
    assert not m.degraded
    assert hist.final_norm < 0.1          # ‖r⁰‖ = 1: converged under loss
    assert m.repairs_sent > 0             # the hardening did real work


def test_ps_deadlock_detected_not_hung(loss_setup):
    """PS under loss stops early and *says why* instead of spinning."""
    A, system = loss_setup
    plan = FaultPlan.uniform(drop=0.2, seed=11)
    m = ParallelSouthwell(system, faults=plan)
    rng = np.random.default_rng(7)
    x0 = rng.uniform(-1.0, 1.0, A.n_rows)
    x0 /= np.linalg.norm(A.matvec(x0))
    with use_runtime("flat"):
        m.run(x0, np.zeros(A.n_rows), max_steps=400, target_norm=1e-8,
              stop_at_target=True)
    assert m.degraded
    assert m.steps_taken < 400            # early, bounded stop
    assert "deadlock" in m.degraded_reason or "no active" \
        in m.degraded_reason


def test_strict_policy_raises_on_degradation(loss_setup):
    A, _ = loss_setup
    plan = FaultPlan.uniform(drop=0.2, seed=11)
    cfg = RunConfig(n_parts=64, max_steps=400, target_norm=1e-8,
                    stop_at_target=True, faults=plan, strict=True)
    with pytest.raises(DegradedRunError):
        solve(A, method="parallel-southwell", config=cfg)
    # same run without strict returns the diagnosis instead
    res = solve(A, method="parallel-southwell",
                config=RunConfig(n_parts=64, max_steps=400,
                                 target_norm=1e-8, stop_at_target=True,
                                 faults=plan))
    assert res.degraded and res.degraded_reason


# ----------------------------------------------------------------------
# stall / slowdown / delay schedules
# ----------------------------------------------------------------------
def test_stall_schedule_skips_relaxations(small_setup):
    A, system = small_setup
    plan = FaultPlan(seed=3, stalls=(StallWindow(rank=0, start=1, stop=6),))
    base, _ = _run(system, A.n_rows, BlockJacobi, "flat", None, steps=10)
    digests = set()
    for mode in ("object", "flat"):
        m, hist = _run(system, A.n_rows, BlockJacobi, mode, plan, steps=10)
        # rank 0 sat out 5 of its 10 relaxations (row-weighted counter)
        assert m.total_relaxations < base.total_relaxations
        assert m._faults.injected["stall"] == 5
        digests.add(_digest(hist))
    assert len(digests) == 1              # stalls are plane-agnostic too


def test_slowdown_schedule_stretches_time(small_setup):
    A, system = small_setup
    # factor = fraction of full speed; 1e-3 makes rank 0 a straggler
    # whose stretched compute dominates the lockstep step time
    slow = FaultPlan(seed=3, slowdowns=(SlowdownWindow(rank=0, start=1,
                                                       stop=11,
                                                       factor=1e-3),))
    m_base, h_base = _run(system, A.n_rows, BlockJacobi, "flat", None,
                          steps=10)
    m_slow, h_slow = _run(system, A.n_rows, BlockJacobi, "flat", slow,
                          steps=10)
    # same numerics (slowdowns only bend the clock) but more elapsed time
    assert _digest(h_base) == _digest(h_slow)
    assert (m_slow.engine.stats.elapsed_time()
            > 2.0 * m_base.engine.stats.elapsed_time())


def test_delay_plan_requires_object_plane(small_setup):
    A, system = small_setup
    plan = FaultPlan(seed=3, solve=EdgeFaults(delay=0.3, max_delay=3))
    assert plan.requires_object_plane
    m, _ = _run(system, A.n_rows, DistributedSouthwell, "flat", plan)
    assert not m._use_flat                # fell back to the object plane
    assert m._faults.injected.get("delay:solve", 0) > 0


# ----------------------------------------------------------------------
# config knob + solve() front door
# ----------------------------------------------------------------------
def test_faults_spec_precedence(monkeypatch, tmp_path):
    monkeypatch.delenv(_config.ENV_FAULTS, raising=False)
    assert _config.faults_spec() is None
    for off in ("0", "off", "false", "no", ""):
        monkeypatch.setenv(_config.ENV_FAULTS, off)
        assert _config.faults_spec() is None
    path = str(tmp_path / "plan.json")
    monkeypatch.setenv(_config.ENV_FAULTS, path)
    assert _config.faults_spec() == path
    assert _config.faults_spec("other.json") == "other.json"  # explicit wins
    assert "REPRO_FAULTS" in _config.describe()


def test_env_plan_feeds_solve(monkeypatch, tmp_path, small_setup):
    A, _ = small_setup
    path = tmp_path / "plan.json"
    path.write_text(FaultPlan.uniform(drop=0.1, seed=7).to_json())
    monkeypatch.setenv(_config.ENV_FAULTS, str(path))
    res = solve(A, n_parts=8, max_steps=10)
    assert res.faults_injected is not None
    assert sum(res.faults_injected.values()) > 0
    # an explicit (null) RunConfig plan beats the environment plan
    res2 = solve(A, n_parts=8, max_steps=10, faults=FaultPlan(seed=1))
    assert res2.faults_injected is None


def test_solveresult_v4_schema(small_setup):
    A, _ = small_setup
    res = solve(A, n_parts=8, max_steps=10,
                faults=FaultPlan.uniform(drop=0.1, seed=7))
    doc = res.to_dict()
    assert doc["schema"] == "repro.solveresult/v5"
    assert doc["faults_injected"] == res.faults_injected
    assert doc["degraded"] is False
    assert doc["repairs"] == res.repairs
    json.dumps(doc)                       # fully JSON-able, plan included


def test_removed_wrappers_are_gone():
    """v2.0: ``solve()`` is the only entry point — the deprecated
    per-method wrappers must be absent from both API surfaces."""
    import repro
    import repro.api

    for name in ("run_block_method", "solve_block_jacobi",
                 "solve_parallel_southwell", "solve_distributed_southwell",
                 "_deprecated", "_cfg_kwargs"):
        assert not hasattr(repro.api, name), name
        assert not hasattr(repro, name), name
        assert name not in repro.api.__all__
        assert name not in repro.__all__


# ----------------------------------------------------------------------
# trace integration
# ----------------------------------------------------------------------
def test_trace_reconciles_fault_and_repair_events(small_setup, tmp_path):
    from repro.analysis.traceagg import summarize_trace

    A, _ = small_setup
    path = tmp_path / "faulted.trace.jsonl"
    res = solve(A, n_parts=8, max_steps=15, faults=LOSSY_PLAN,
                trace=str(path))
    s = summarize_trace(path)
    assert s.reconciles()
    assert s.fault_counts == res.faults_injected
    assert int(s.repair_matrix.sum()) == res.repairs


def test_trace_reconciles_without_faults(small_setup, tmp_path):
    from repro.analysis.traceagg import summarize_trace

    A, _ = small_setup
    path = tmp_path / "clean.trace.jsonl"
    solve(A, n_parts=8, max_steps=10, trace=str(path))
    s = summarize_trace(path)
    assert s.reconciles()
    assert s.fault_counts == {}


# ----------------------------------------------------------------------
# fate-stream unit properties
# ----------------------------------------------------------------------
def test_fate_stream_is_stateless_and_seeded():
    plan = FaultPlan.uniform(drop=0.3, duplicate=0.1, seed=42)
    a = FaultRuntime(plan, 8)
    b = FaultRuntime(plan, 8)
    for _ in range(50):
        assert a.fate(1, 2, "solve") == b.fate(1, 2, "solve")
    other = FaultRuntime(FaultPlan.uniform(drop=0.3, duplicate=0.1,
                                           seed=43), 8)
    # different seeds decorrelate (not a hard guarantee per message, but
    # 200 draws agreeing would mean the seed is ignored)
    draws_a = [a.fate(3, 4, "solve")[0] for _ in range(200)]
    draws_c = [other.fate(3, 4, "solve")[0] for _ in range(200)]
    assert draws_a != draws_c
