"""Tests for the plain-text table renderer."""

from repro.analysis.tables import DAGGER, format_table, render_float


def test_render_float_formats():
    assert render_float(1.23456, digits=2) == "1.23"
    assert render_float(None) == DAGGER
    assert render_float(7) == "7"
    assert render_float("name") == "name"
    assert render_float(True) == "True"


def test_format_table_alignment_and_dagger():
    rows = [{"matrix": "A", "x": 1.5, "y": None},
            {"matrix": "Blonger", "x": 22.125, "y": 0.25}]
    text = format_table(rows, title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "matrix" in lines[1]
    assert DAGGER in text
    assert "22.125" in text


def test_format_table_column_selection():
    rows = [{"a": 1, "b": 2, "c": 3}]
    text = format_table(rows, columns=["c", "a"])
    assert "b" not in text.splitlines()[0]
    assert text.splitlines()[0].startswith("c")


def test_format_table_empty():
    assert "(no rows)" in format_table([])
    assert format_table([], title="X").startswith("X")
