"""The run-trace observability layer (DESIGN.md §5.9).

The contract under test, in order of importance:

1. **Zero behavior change**: a traced run produces the bit-identical
   seed-DS convergence digest and byte-identical ``MessageStats`` on
   *both* message planes.
2. **Exact reconciliation**: the event-derived per-edge/per-category
   counts equal the stats totals exactly, on both planes, and both
   planes' traces aggregate to identical matrices.
3. The sinks round-trip: JSONL → ``summarize_trace`` → the ``repro
   trace`` report; Chrome export is valid ``trace_event`` JSON.
4. The ``solve``/``RunConfig`` front door is behaviour-identical across
   message planes for lockstep modes.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np
import pytest

from repro.api import RunConfig, solve
from repro.cli import main as cli_main
from repro.core import DistributedSouthwell
from repro.core.blockdata import build_block_system
from repro.analysis import format_trace_summary, summarize_trace
from repro.matrices.poisson import poisson_2d
from repro.partition import partition
from repro.runtime import use_runtime
from repro.sparsela import symmetric_unit_diagonal_scale
from repro.trace import (
    NULL_TRACER,
    NullTracer,
    RunTracer,
    Tracer,
    tracer_from_config,
)

# digest of the seed implementation's DS run (tests/test_backends.py)
SEED_DS_DIGEST = \
    "43241919e53e91ddde3be083df3a0b9a477db7d1c4ff8edb6160dd1d6edb0850"


def _seed_ds_problem():
    A = symmetric_unit_diagonal_scale(poisson_2d(16)).matrix
    part = partition(A, 8, seed=3)
    system = build_block_system(A, part)
    rng = np.random.default_rng(7)
    x0 = rng.uniform(-1.0, 1.0, A.n_rows)
    return A, system, x0


def _run_seed_ds(tracer=None):
    """The exact seed-DS run of test_backends, optionally traced."""
    A, system, x0 = _seed_ds_problem()
    ds = DistributedSouthwell(system, tracer=tracer)
    hist = ds.run(x0, np.zeros(A.n_rows), max_steps=25)
    norms = np.asarray(hist.residual_norms, dtype=np.float64)
    relax = np.asarray(hist.relaxations, dtype=np.int64)
    digest = hashlib.sha256(norms.tobytes() + relax.tobytes()).hexdigest()
    return digest, ds.engine.stats


def _stats_fingerprint(stats):
    """Everything MessageStats counts, snapshot order included."""
    return (stats.total_messages, stats.total_bytes,
            dict(stats.category_msgs), dict(stats.category_bytes),
            [(s.msgs.tolist(), s.nbytes.tolist(), s.recvs.tolist(),
              dict(s.category_msgs), s.time) for s in stats.steps])


# ----------------------------------------------------------------------
# 1. zero behavior change, pinned by the seed digest on both planes
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", ["flat", "object"])
def test_traced_run_reproduces_seed_digest(mode):
    with use_runtime(mode):
        digest, _ = _run_seed_ds(tracer=RunTracer())
    assert digest == SEED_DS_DIGEST


@pytest.mark.parametrize("mode", ["flat", "object"])
def test_traced_stats_byte_identical_to_untraced(mode):
    with use_runtime(mode):
        d_off, s_off = _run_seed_ds(tracer=None)
        d_on, s_on = _run_seed_ds(tracer=RunTracer())
    assert d_on == d_off
    assert _stats_fingerprint(s_on) == _stats_fingerprint(s_off)


def test_null_tracer_is_disabled_and_silent():
    assert NULL_TRACER.enabled is False
    assert isinstance(NULL_TRACER, NullTracer)
    # every hook is a no-op on the base protocol
    NULL_TRACER.relax(0)
    NULL_TRACER.send(0, 1, "solve", 8)
    NULL_TRACER.phase_begin("relax")
    NULL_TRACER.phase_end("relax")


# ----------------------------------------------------------------------
# 2. exact reconciliation with MessageStats, identical across planes
# ----------------------------------------------------------------------
def _traced_summary(mode, tmp_path):
    tracer = RunTracer()
    with use_runtime(mode):
        _, stats = _run_seed_ds(tracer=tracer)
    path = tracer.save_jsonl(tmp_path / f"ds-{mode}.trace.jsonl")
    return summarize_trace(path), stats


@pytest.mark.parametrize("mode", ["flat", "object"])
def test_trace_reconciles_exactly_with_stats(mode, tmp_path):
    s, stats = _traced_summary(mode, tmp_path)
    assert s.reconciles()
    assert s.total_messages == stats.total_messages
    assert s.total_bytes == stats.total_bytes
    assert s.category_messages() == {
        k: v for k, v in stats.category_msgs.items() if v}
    # every read message was traced as a receive
    assert int(s.recv_counts.sum()) == s.total_messages
    assert s.communication_cost() == stats.communication_cost()


def test_both_planes_record_identical_traces(tmp_path):
    s_flat, _ = _traced_summary("flat", tmp_path)
    s_obj, _ = _traced_summary("object", tmp_path)
    np.testing.assert_array_equal(s_flat.send_matrix, s_obj.send_matrix)
    np.testing.assert_array_equal(s_flat.bytes_matrix, s_obj.bytes_matrix)
    np.testing.assert_array_equal(s_flat.repair_matrix,
                                  s_obj.repair_matrix)
    np.testing.assert_array_equal(s_flat.relax_counts, s_obj.relax_counts)
    np.testing.assert_array_equal(s_flat.recv_counts, s_obj.recv_counts)
    assert s_flat.ghost_updates == s_obj.ghost_updates
    assert s_flat.n_steps == s_obj.n_steps == 25
    for cat in s_flat.send_by_category:
        np.testing.assert_array_equal(s_flat.send_by_category[cat],
                                      s_obj.send_by_category[cat])


def test_trace_records_phases_and_meta(tmp_path):
    s, _ = _traced_summary("flat", tmp_path)
    assert s.method == "distributed-southwell"
    assert s.n_procs == 8
    # DS has three phases, 25 spans each, all with non-negative time
    assert set(s.phase_times) == {"relax", "apply", "finalize"}
    for name, (spans, total) in s.phase_times.items():
        assert spans == 25, name
        assert total >= 0.0
    rows = s.phase_rows()
    assert abs(sum(r["share"] for r in rows) - 1.0) < 1e-12


# ----------------------------------------------------------------------
# 3. sinks and the CLI summarizer
# ----------------------------------------------------------------------
def test_jsonl_events_are_valid_json_with_schema(tmp_path):
    tracer = RunTracer()
    _run_seed_ds(tracer=tracer)
    path = tracer.save_jsonl(tmp_path / "run.trace.jsonl")
    lines = path.read_text().splitlines()
    head = json.loads(lines[0])
    assert head["ev"] == "meta"
    assert head["schema"] == "repro.trace/v1"
    kinds = {json.loads(line)["ev"] for line in lines}
    assert {"meta", "stats", "step", "phase", "relax", "send",
            "recv"} <= kinds
    # summarizing an event iterable works the same as a path
    events = [json.loads(line) for line in lines]
    assert summarize_trace(events).reconciles()


def test_chrome_sink_is_valid_trace_event_json(tmp_path):
    tracer = RunTracer()
    _run_seed_ds(tracer=tracer)
    path = tracer.save(tmp_path / "run.chrome")   # suffix picks the sink
    doc = json.loads(path.read_text())
    events = doc["traceEvents"]
    phases = [e for e in events if e.get("ph") == "X"]
    counters = [e for e in events if e.get("ph") == "C"]
    assert len(phases) == 75            # 3 phases x 25 steps
    assert len(counters) == 25          # one active-count sample per step
    assert all(e["dur"] >= 0.0 and e["ts"] >= 0.0 for e in phases)
    meta = [e for e in events if e.get("ph") == "M"]
    assert meta and meta[0]["args"]["name"] == "distributed-southwell"


def test_cli_trace_subcommand_summarizes(tmp_path, capsys):
    tracer = RunTracer()
    _run_seed_ds(tracer=tracer)
    path = tracer.save_jsonl(tmp_path / "run.trace.jsonl")
    assert cli_main(["trace", str(path)]) == 0
    out = capsys.readouterr().out
    assert "distributed-southwell: P=8 steps=25" in out
    assert "reconciles with MessageStats: yes" in out
    assert "phase times" in out


def test_cli_config_subcommand_lists_knobs(capsys):
    assert cli_main(["config"]) == 0
    out = capsys.readouterr().out
    for var in ("REPRO_BACKEND", "REPRO_RUNTIME", "REPRO_WORKERS",
                "REPRO_SWEEP_CACHE", "REPRO_TRACE",
                "REPRO_ASYNC_LATENCY", "REPRO_ASYNC_SPEED_FACTORS"):
        assert var in out


def test_cli_solver_trace_flag_and_json(tmp_path, capsys):
    trace_file = tmp_path / "cli.trace.jsonl"
    rc = cli_main(["-n", "4", "-grid_dim", "12", "-sweep_max", "5",
                   "--trace", str(trace_file), "--json",
                   "--runtime", "flat"])
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["method"] == "distributed-southwell"
    assert doc["trace_path"] == str(trace_file)
    assert doc["config"]["n_parts"] == 4
    assert len(doc["history"]["residual_norms"]) == 6
    assert summarize_trace(trace_file).reconciles()


# ----------------------------------------------------------------------
# 4. the solve()/RunConfig front door
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", ["flat", "object"])
def test_solve_runconfig_plane_equivalence(mode):
    A = symmetric_unit_diagonal_scale(poisson_2d(16)).matrix
    base = solve(A, method="distributed-southwell",
                 config=RunConfig(n_parts=8, max_steps=20, seed=3,
                                  runtime="flat"))
    cfg = RunConfig(n_parts=8, max_steps=20, seed=3, runtime=mode)
    front = solve(A, method="distributed-southwell", config=cfg)
    np.testing.assert_array_equal(base.history.residual_norms,
                                  front.history.residual_norms)
    assert base.comm_cost == front.comm_cost
    assert base.solve_comm == front.solve_comm
    assert base.residual_comm == front.residual_comm
    np.testing.assert_array_equal(base.x, front.x)
    assert front.config is cfg


def test_solve_overrides_build_config():
    A = symmetric_unit_diagonal_scale(poisson_2d(12)).matrix
    res = solve(A, method="block-jacobi", n_parts=4, max_steps=5, seed=1,
                runtime="flat")
    assert res.config.n_parts == 4
    assert res.config.max_steps == 5
    assert res.parallel_steps == 5


def test_solve_trace_path_writes_file(tmp_path):
    A = symmetric_unit_diagonal_scale(poisson_2d(12)).matrix
    path = tmp_path / "solve.trace.jsonl"
    res = solve(A, method="parallel-southwell", n_parts=4, max_steps=5,
                trace=str(path))
    assert res.trace_path == str(path)
    s = summarize_trace(path)
    assert s.method == "parallel-southwell"
    assert s.reconciles()


def test_solve_rejects_tracer_with_prebuilt_instance():
    A, system, x0 = _seed_ds_problem()
    ds = DistributedSouthwell(system)
    with pytest.raises(ValueError, match="method constructor"):
        solve(A, method=ds, trace=RunTracer())


def test_runconfig_to_dict_is_jsonable():
    cfg = RunConfig(n_parts=8, trace=RunTracer())
    doc = json.loads(json.dumps(cfg.to_dict()))
    assert doc["n_parts"] == 8
    assert doc["trace"] == "RunTracer"
    assert doc["cost_model"]["alpha"] == pytest.approx(2.0e-6)


def test_solve_result_to_dict_is_jsonable():
    A = symmetric_unit_diagonal_scale(poisson_2d(12)).matrix
    res = solve(A, method="block-jacobi", n_parts=4, max_steps=5,
                runtime="flat")
    doc = json.loads(json.dumps(res.to_dict()))
    assert doc["final_norm"] == pytest.approx(res.final_norm)
    assert doc["parallel_steps"] == 5
    assert doc["config"]["n_parts"] == 4
    assert doc["trace_path"] is None
    assert "x" not in doc


def test_run_method_writes_per_run_trace_files(monkeypatch, tmp_path):
    """REPRO_TRACE=<dir> makes the experiment runner write one trace
    file per (uncached) run, named after the task parameters."""
    from repro.experiments.runners import run_method

    monkeypatch.setenv("REPRO_TRACE", str(tmp_path))
    run_method.cache_clear()
    try:
        res = run_method("msdoor", "distributed-southwell", 4,
                         size_scale=0.05, max_steps=5)
        expected = tmp_path / "msdoor-DS-P4-x0.05-s0.trace.jsonl"
        assert res.trace_path == str(expected)
        s = summarize_trace(expected)
        assert s.method == "distributed-southwell"
        assert s.n_procs == 4
        assert s.reconciles()
    finally:
        run_method.cache_clear()


def test_tracer_from_config_env(monkeypatch):
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    assert tracer_from_config() is NULL_TRACER
    monkeypatch.setenv("REPRO_TRACE", "1")
    t = tracer_from_config()
    assert isinstance(t, RunTracer) and t.enabled
    monkeypatch.setenv("REPRO_TRACE", "off")
    assert tracer_from_config() is NULL_TRACER


def test_custom_tracer_protocol_receives_hooks():
    """A user Tracer subclass plugged into solve() sees the run events."""

    class Counting(Tracer):
        enabled = True

        def __init__(self):
            self.relaxes = 0
            self.sends = 0

        def relax(self, p):
            self.relaxes += 1

        def send(self, src, dst, category, nbytes):
            self.sends += 1

        def sends_flat(self, plane, sids, category):
            self.sends += int(np.asarray(sids).size)

    A = symmetric_unit_diagonal_scale(poisson_2d(12)).matrix
    counting = Counting()
    res = solve(A, method="block-jacobi", n_parts=4, max_steps=5,
                trace=counting, runtime="flat")
    assert res.trace_path is None       # instances are not auto-saved
    assert counting.relaxes == 4 * 5    # BJ: everyone relaxes every step
    assert counting.sends == res.n_parts * res.comm_cost
