"""Tests for convergence histories and the Table 2 interpolation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.history import ConvergenceHistory, interp_log_residual


def make_history(norms, xs=None):
    h = ConvergenceHistory()
    for k, n in enumerate(norms):
        h.append(norm=n, relaxations=k * 10, parallel_steps=k,
                 comm_cost=k * 2.0, time=k * 0.5, active_fraction=0.5)
    return h


def test_interp_exact_hit():
    xs = np.array([0.0, 1.0, 2.0])
    norms = np.array([1.0, 0.1, 0.01])
    assert interp_log_residual(xs, norms, 0.1) == 1.0


def test_interp_midpoint_log():
    xs = np.array([0.0, 1.0])
    norms = np.array([1.0, 0.01])
    # log10: 0 -> -2, target -1 is exactly halfway
    assert np.isclose(interp_log_residual(xs, norms, 0.1), 0.5)


def test_interp_never_reached_returns_none():
    assert interp_log_residual(np.array([0.0, 1.0]),
                               np.array([1.0, 0.5]), 0.1) is None


def test_interp_initial_already_below():
    assert interp_log_residual(np.array([3.0, 4.0]),
                               np.array([0.05, 0.01]), 0.1) == 3.0


def test_interp_validates():
    with pytest.raises(ValueError):
        interp_log_residual(np.array([0.0]), np.array([1.0, 2.0]), 0.1)
    with pytest.raises(ValueError):
        interp_log_residual(np.array([0.0]), np.array([1.0]), -0.5)


@given(st.lists(st.floats(1e-8, 10.0), min_size=2, max_size=30),
       st.floats(1e-6, 5.0))
@settings(max_examples=80, deadline=None)
def test_interp_result_within_bracket(norms, target):
    xs = np.arange(len(norms), dtype=float)
    out = interp_log_residual(xs, np.array(norms), target)
    if out is None:
        assert min(norms) > target
    else:
        assert 0.0 <= out <= xs[-1]
        # the crossing sits at or before the first at-or-under sample
        first = next(i for i, v in enumerate(norms) if v <= target)
        assert out <= first


def test_history_append_and_arrays():
    h = make_history([1.0, 0.5, 0.2])
    cols = h.as_arrays()
    assert len(h) == 3
    assert cols["residual_norms"].shape == (3,)
    assert h.final_norm == 0.2
    assert h.initial_norm == 1.0


def test_history_cost_to_reach_axes():
    h = make_history([1.0, 0.5, 0.05])
    for axis in ("times", "comm_costs", "parallel_steps", "relaxations"):
        v = h.cost_to_reach(0.1, axis=axis)
        assert v is not None and v > 0
    with pytest.raises(KeyError):
        h.cost_to_reach(0.1, axis="residual_norms")


def test_history_mean_active_excludes_initial():
    h = ConvergenceHistory()
    h.append(1.0, 0, 0, active_fraction=0.0)
    h.append(0.5, 10, 1, active_fraction=0.4)
    h.append(0.2, 20, 2, active_fraction=0.6)
    assert np.isclose(h.mean_active_fraction(), 0.5)
    assert ConvergenceHistory().mean_active_fraction() == 0.0


def test_history_diverged():
    assert make_history([1.0, 2.0]).diverged()
    assert not make_history([1.0, 0.9]).diverged()
