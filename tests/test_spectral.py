"""Tests for the spectral (Fiedler) partitioner."""

import numpy as np
import pytest

from repro.matrices.poisson import poisson_1d, poisson_2d
from repro.partition import (
    edge_cut,
    fiedler_vector,
    imbalance,
    matrix_graph,
    partition,
    parts_are_valid,
    spectral_bisection,
    spectral_partition,
)


def test_fiedler_vector_of_path_is_monotone():
    """On a path graph the Fiedler vector is a cosine — strictly monotone
    along the path (up to sign)."""
    g = matrix_graph(poisson_1d(40))
    f = fiedler_vector(g)
    d = np.diff(f)
    assert np.all(d > 0) or np.all(d < 0)


def test_spectral_bisection_of_path_splits_in_half():
    g = matrix_graph(poisson_1d(20))
    side = spectral_bisection(g)
    # contiguous halves -> cut of exactly one edge
    assert side.sum() == 10
    assert edge_cut(g, side.astype(np.int64)) == pytest.approx(2.0)


def test_spectral_bisection_fraction():
    g = matrix_graph(poisson_1d(20))
    side = spectral_bisection(g, fraction0=0.25)
    assert (side == 0).sum() == 5
    with pytest.raises(ValueError):
        spectral_bisection(g, fraction0=0.0)


def test_spectral_partition_valid_and_balanced():
    A = poisson_2d(12)
    g = matrix_graph(A)
    parts = spectral_partition(g, 4, seed=0)
    assert parts_are_valid(parts, 4)
    assert imbalance(g, parts, 4) < 1.2


def test_spectral_partition_odd_k():
    A = poisson_2d(10)
    g = matrix_graph(A)
    parts = spectral_partition(g, 5, seed=0)
    assert parts_are_valid(parts, 5)
    assert imbalance(g, parts, 5) < 1.35


def test_spectral_quality_comparable_to_multilevel():
    A = poisson_2d(16)
    g = matrix_graph(A)
    sp = partition(A, 8, method="spectral", seed=0)
    ml = partition(A, 8, method="multilevel", seed=0)
    st = partition(A, 8, method="strided")
    # spectral should land in the same quality class as multilevel and
    # beat the naive strided split
    assert edge_cut(g, sp.parts) < edge_cut(g, st.parts)
    assert edge_cut(g, sp.parts) < 2.0 * edge_cut(g, ml.parts)


def test_spectral_partition_one_part():
    g = matrix_graph(poisson_2d(5))
    assert np.all(spectral_partition(g, 1) == 0)
    with pytest.raises(ValueError):
        spectral_partition(g, 0)


def test_solver_works_on_spectral_partition(fem_300):
    """End-to-end: DS over a spectral partition behaves normally."""
    from repro.api import solve

    res = solve(fem_300, method="distributed-southwell", n_parts=8,
                max_steps=20, partition_method="spectral", seed=0)
    assert res.final_norm < 0.5
